"""Repo-wide pytest hooks.

``--trace-out FILE`` exports every span the run recorded (benchmarks
and tests instrument through :mod:`repro.obs`) as one Chrome-trace-event
JSON — load it at https://ui.perfetto.dev.  The option lives here
because only root-level conftests may register options; the spans come
from whatever the selected tests exercised.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--trace-out", action="store", default=None, metavar="FILE",
        help="write spans recorded during this run as Chrome-trace-event "
        "JSON (Perfetto-loadable)")


@pytest.fixture(scope="session", autouse=True)
def _export_session_trace(request):
    yield
    path = request.config.getoption("--trace-out")
    if path:
        from repro.obs import export_chrome_trace

        count = export_chrome_trace(path)
        print(f"\nwrote {count} trace events to {path}")
