"""Design-space exploration in series with the generator (paper §VII-a).

Search array shapes x buffer sizes x dataflow sets for ResNet50 under an
area budget, print the latency/energy Pareto frontier, then generate the
RTL of the winner — the Timeloop+LEGO loop the paper describes.

Run:  python examples/design_space_exploration.py
"""

from repro.dse.explorer import DesignSpace, explore, generate_winner, pareto_front
from repro.models import zoo


def main() -> None:
    space = DesignSpace(
        arrays=((8, 8), (16, 16), (8, 32)),
        buffer_kb=(128.0, 256.0),
        dataflow_sets=(("ICOC",), ("MN", "ICOC"), ("MN", "ICOC", "OCOH")),
    )
    print(f"exploring {space.size()} design points on ResNet50 ...")
    points = explore([zoo.resnet50()], space, objective="edp",
                     area_budget_mm2=5.0)

    front = pareto_front(points)
    print(f"\nlatency/energy Pareto frontier ({len(front)} of "
          f"{len(points)} points):")
    print(f"{'design':30s}{'GOP/s':>8s}{'GOPS/W':>9s}{'energy mJ':>11s}")
    for p in front:
        print(f"{p.arch.name:30s}{p.gops:8.1f}{p.gops_per_watt:9.0f}"
              f"{p.energy_pj / 1e9:11.2f}")

    winner = points[0]
    print(f"\nEDP winner: {winner.arch.name} — generating its RTL ...")
    acc = generate_winner(winner, workload_scale=1)
    print(f"generated in {acc.generation_seconds:.1f}s: "
          f"{len(acc.design.dag.nodes)} primitives, "
          f"{acc.area_power().total_area_mm2:.2f} mm2")


if __name__ == "__main__":
    main()
