"""Design-space exploration in series with the generator (paper §VII-a).

Search array shapes x buffer sizes x dataflow sets for ResNet50 under an
area budget, print the latency/energy Pareto frontier, then generate the
RTL of the winner — the Timeloop+LEGO loop the paper describes.  The
second half re-runs the search under the guided strategies
(`repro.dse.strategies`), which find the same winner on a fraction of
the evaluation budget.

Run:  python examples/design_space_exploration.py
"""

from repro.dse.explorer import DesignSpace, generate_winner, pareto_front
from repro.dse.strategies import run_search
from repro.models import zoo


def main() -> None:
    space = DesignSpace(
        arrays=((8, 8), (16, 16), (8, 32)),
        buffer_kb=(128.0, 256.0),
        dataflow_sets=(("ICOC",), ("MN", "ICOC"), ("MN", "ICOC", "OCOH")),
    )
    models = [zoo.resnet50()]
    print(f"exploring {space.size()} design points on ResNet50 ...")
    exhaustive = run_search(models, space, objective="edp",
                            area_budget_mm2=5.0)
    points = exhaustive.points

    front = pareto_front(points)
    print(f"\nlatency/energy Pareto frontier ({len(front)} of "
          f"{len(points)} points):")
    print(f"{'design':30s}{'GOP/s':>8s}{'GOPS/W':>9s}{'energy mJ':>11s}")
    for p in front:
        print(f"{p.arch.name:30s}{p.gops:8.1f}{p.gops_per_watt:9.0f}"
              f"{p.energy_pj / 1e9:11.2f}")

    print("\nguided strategies reach the same neighbourhood on a "
          "fraction of the budget:")
    for strategy in ("anneal", "halving"):
        guided = run_search(models, space, strategy=strategy,
                            objective="edp", area_budget_mm2=5.0,
                            max_evals=max(2, space.size() // 3))
        gap = guided.best.edp / exhaustive.best.edp - 1.0
        print(f"  {guided.strategy:10s} {guided.evals_used:5.1f} evals "
              f"(exhaustive: {exhaustive.evals_used:.0f})  "
              f"best {guided.best.arch.name}  EDP gap {gap:+.1%}")

    winner = points[0]
    print(f"\nEDP winner: {winner.arch.name} — generating its RTL ...")
    acc = generate_winner(winner, workload_scale=1)
    print(f"generated in {acc.generation_seconds:.1f}s: "
          f"{len(acc.design.dag.nodes)} primitives, "
          f"{acc.area_power().total_area_mm2:.2f} mm2")


if __name__ == "__main__":
    main()
