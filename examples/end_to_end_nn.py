"""End-to-end neural network evaluation: LEGO-MNICOC vs the Gemmini-class
baseline on ResNet50 and MobileNetV2 (the Fig. 11 experiment, two models).

Shows the per-layer mapping search choosing different spatial dataflows
per layer — the dynamic switching that fixed-dataflow generators lack.

Run:  python examples/end_to_end_nn.py
"""

from collections import Counter

from repro.mapper import map_model
from repro.models import zoo
from repro.sim.perf_model import GEMMINI_LIKE, ArchPerf, evaluate_model

LEGO = ArchPerf(name="LEGO-MNICOC", dataflows=("MN", "ICOC", "OCOH"))


def main() -> None:
    for name in ("ResNet50", "MobileNetV2"):
        model = zoo.MODEL_BUILDERS[name]()
        lego = evaluate_model(model, LEGO)
        gem = evaluate_model(model, GEMMINI_LIKE)
        print(f"== {name}:  {model.total_ops() / 1e9:.2f} GOPs")
        print(f"   LEGO    : {lego.gops:7.1f} GOP/s   "
              f"{lego.gops_per_watt:7.0f} GOPS/W   "
              f"util {100 * lego.utilization:4.1f}%  "
              f"PPU share {100 * lego.ppu_fraction:4.1f}%")
        print(f"   Gemmini : {gem.gops:7.1f} GOP/s   "
              f"{gem.gops_per_watt:7.0f} GOPS/W")
        print(f"   speedup {lego.gops / gem.gops:.1f}x,  "
              f"energy eff. {lego.gops_per_watt / gem.gops_per_watt:.1f}x")

        chosen = Counter(m.dataflow for _l, m in map_model(model, LEGO)
                         if m is not None)
        print(f"   dataflow choices: {dict(chosen)}")
        # The layers where switching matters most:
        mapped = [(l, m) for l, m in map_model(model, LEGO) if m is not None]
        examples = [(l, m) for l, m in mapped if m.dataflow != "ICOC"][:3]
        for layer, mapping in examples:
            print(f"     {layer.name:18s} -> {mapping.dataflow:5s} "
                  f"(util {100 * mapping.utilization:4.1f}%)")
        print()


if __name__ == "__main__":
    main()
