"""Design service walkthrough: batched generation, caching, cached DSE.

Runs a 9-design sweep cold through the worker pool, repeats it warm from
the content-addressed cache, and finishes with a cached design-space
exploration — the LEGO-in-series-with-DSE loop (§VII-a) that the service
layer accelerates.

Run with:  PYTHONPATH=src python examples/batch_service.py
"""

import tempfile
import time

from repro.dse.explorer import DesignSpace
from repro.models import zoo
from repro.service import BatchEngine, DesignCache, DesignRequest
from repro.service.engine import evaluate_archs


def main() -> None:
    requests = [DesignRequest(kernel=kernel, dataflows=(df,), array=array)
                for kernel, df in (("gemm", "KJ"), ("gemm", "IJ"),
                                   ("mttkrp", "IJ"))
                for array in ((4, 4), (8, 8), (4, 8))]

    with tempfile.TemporaryDirectory() as tmp:
        engine = BatchEngine(cache=DesignCache(root=tmp), workers=4)

        start = time.perf_counter()
        cold = engine.generate_many(requests)
        cold_s = time.perf_counter() - start
        print(f"cold: {len(cold)} designs in {cold_s:.2f}s "
              f"({sum(r.ok for r in cold)} ok)")
        for result in cold[:3]:
            report = result.design["report"]
            print(f"  {result.request.kernel}-"
                  f"{'+'.join(result.request.dataflows)} "
                  f"@{result.request.array}: "
                  f"{report['register_bits']} register bits, "
                  f"{len(result.rtl.splitlines())} lines of Verilog")

        start = time.perf_counter()
        warm = engine.generate_many(requests)
        warm_s = time.perf_counter() - start
        print(f"warm: same batch in {warm_s * 1000:.1f}ms — "
              f"{'all' if all(r.from_cache for r in warm) else 'some'} "
              f"served from cache")
        print(f"cache stats: {engine.cache.stats.as_dict()}")

        # Cached DSE: the second exploration never re-evaluates a point.
        space = DesignSpace(arrays=((8, 8), (16, 16)),
                            buffer_kb=(128.0, 256.0))
        archs = list(space.points())
        from repro.sim.energy_model import TSMC28
        for label in ("cold", "warm"):
            start = time.perf_counter()
            evaluate_archs([zoo.lenet()], archs, TSMC28, workers=4,
                           cache=engine.cache)
            print(f"DSE sweep ({label}): {len(archs)} points in "
                  f"{time.perf_counter() - start:.2f}s")


if __name__ == "__main__":
    main()
