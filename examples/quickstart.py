"""Quickstart: generate a TPU-like systolic GEMM accelerator from four
affine matrices, optimize it, verify it bit-exactly, and look at the RTL.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import BackendOptions, build_adg, generate, kernels, run_backend
from repro.backend.verilog import emit_verilog
from repro.sim.dag_sim import Simulator, make_input
from repro.sim.energy_model import evaluate_design


def main() -> None:
    # 1. Describe the workload: GEMM as a loop nest with affine data maps.
    workload = kernels.gemm(32, 32, 32)
    print(f"workload: {workload.name}, dims {workload.dims}, "
          f"{workload.total_ops() / 1e3:.0f} Kops")

    # 2. Pick a dataflow: parallelize k and j on an 8x8 array, systolic
    #    control (c = [1, 1]) — the Fig. 3 schedule.
    dataflow = kernels.gemm_dataflow("KJ", workload, 8, 8)
    print(f"dataflow: {dataflow.name}, FU array {dataflow.rs}, "
          f"control flow {dataflow.control}")

    # 3. Front end: reuse analysis -> interconnections -> memory banking.
    adg = build_adg([dataflow])
    print("ADG:", adg.stats())

    # 4. Back end: codegen + LP delay matching + reduction trees + pin
    #    reuse + power gating.
    design = run_backend(generate(adg), BackendOptions())
    print(f"DAG: {len(design.dag.nodes)} primitives, "
          f"{design.report['register_bits']} register bits after optimization")

    # 5. Verify bit-exactly against numpy on the cycle-accurate simulator.
    rng = np.random.default_rng(0)
    x = make_input(design, dataflow.name, "X", rng)
    w = make_input(design, dataflow.name, "W", rng)
    y = Simulator(design, dataflow.name).run({"X": x, "W": w}).outputs["Y"]
    assert np.array_equal(y, x @ w), "generated hardware disagrees with numpy!"
    print("functional check: generated design == numpy GEMM  [OK]")

    # 6. Area/power and RTL.
    report = evaluate_design(design)
    print(f"FU array: {report.total_area_mm2 * 1000:.0f} kum2, "
          f"{report.total_power_mw:.1f} mW")
    rtl = emit_verilog(design, "gemm_8x8")
    print(f"Verilog: {len(rtl.splitlines())} lines; header:")
    for line in rtl.splitlines()[:6]:
        print("   ", line)


if __name__ == "__main__":
    main()
