"""Generative AI on a scaled-up design (the Table II experiment): DDPM,
Stable Diffusion, and LLaMA-7B decode on LEGO-ICOC-1K (1024 FUs, 576 KB,
32 GB/s).

Demonstrates the compute-bound / memory-bound split the paper reports:
diffusion models keep the array >80% busy; single-batch LLM decode is
crushed by DRAM bandwidth, and batching recovers utilization.

Run:  python examples/generative_ai.py
"""

from repro.models import zoo
from repro.sim.perf_model import ArchPerf, evaluate_model

LEGO_1K = ArchPerf(
    name="LEGO-ICOC-1K",
    array=(32, 32),
    buffer_kb=576.0,
    dram_gbps=32.0,
    n_ppus=32,
    dataflows=("MN", "ICOC", "OCOH"),
)


def main() -> None:
    cases = [
        ("DDPM", zoo.ddpm()),
        ("Stable Diffusion", zoo.stable_diffusion()),
        ("LLaMA-7B bs=1", zoo.llama7b_decode(1)),
        ("LLaMA-7B bs=32", zoo.llama7b_decode(32)),
    ]
    print(f"{'model':20s}{'util':>8s}{'GOP/s':>10s}{'GOPS/W':>10s}"
          f"{'PPU overhead':>14s}")
    for name, model in cases:
        perf = evaluate_model(model, LEGO_1K)
        print(f"{name:20s}{100 * perf.utilization:7.1f}%"
              f"{perf.gops:10.0f}{perf.gops_per_watt:10.0f}"
              f"{100 * perf.ppu_fraction:13.1f}%")
    print()
    print("Note: LLaMA decode at bs=1 has arithmetic intensity ~2 ops/byte;"
          "\nthe array idles on DRAM — exactly the paper's Table II finding.")


if __name__ == "__main__":
    main()
