"""Build a complete fused accelerator with the top-level API, inspect its
area/power breakdown (the Fig. 12 view), and write the Verilog to disk.

Run:  python examples/rtl_inspection.py
"""

import pathlib

from repro.arch import AcceleratorSpec, build
from repro.models import zoo


def main() -> None:
    spec = AcceleratorSpec(
        name="LEGO-MNICOC-demo",
        array=(8, 8),
        buffer_kb=128,
        conv_dataflows=("ICOC", "OHOW"),
        gemm_dataflows=("IJ",),
        n_ppus=4,
    )
    acc = build(spec)
    print(f"generated {spec.name} in {acc.generation_seconds:.1f}s "
          f"({len(acc.design.dag.nodes)} primitives)")

    report = acc.area_power()
    total_a, total_p = report.total_area_mm2, report.total_power_mw
    print(f"\narea {total_a:.2f} mm2, power {total_p:.0f} mW")
    for cat in sorted(report.area_um2):
        a = report.area_um2[cat] / 1e6
        p = report.power_mw.get(cat, 0.0)
        print(f"  {cat:10s} {a:6.3f} mm2 ({100 * a / total_a:4.1f}%)   "
              f"{p:6.1f} mW ({100 * p / total_p:4.1f}%)")

    perf = acc.evaluate(zoo.lenet())
    print(f"\nLeNet on this design: {perf.gops:.1f} GOP/s, "
          f"{perf.gops_per_watt:.0f} GOPS/W")

    out = pathlib.Path(__file__).with_name("lego_mnicoc_demo.v")
    out.write_text(acc.verilog())
    print(f"\nVerilog written to {out} "
          f"({len(acc.verilog().splitlines())} lines)")


if __name__ == "__main__":
    main()
