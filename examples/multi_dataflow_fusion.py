"""Dataflow fusion (paper §IV-C): one physical FU array that switches
between GEMM I-J and K-J parallelism at runtime.

Shows the heuristic interconnection planning sharing physical links
across dataflows (vs the naive merge-with-muxes baseline), then verifies
both runtime configurations bit-exactly.

Run:  python examples/multi_dataflow_fusion.py
"""

import numpy as np

from repro import FrontendConfig, build_adg, generate, kernels, run_backend
from repro.sim.dag_sim import Simulator, make_input
from repro.sim.energy_model import evaluate_design


def main() -> None:
    workload = kernels.gemm(32, 32, 32)
    df_ij = kernels.gemm_dataflow("IJ", workload, 8, 8)
    df_kj = kernels.gemm_dataflow("KJ", workload, 8, 8)

    fused_adg = build_adg([df_ij, df_kj])
    naive_adg = build_adg([df_ij, df_kj], FrontendConfig(fuse_heuristic=False))
    print(f"{'':24s}{'heuristic':>12s}{'naive mux':>12s}")
    for key in ("n_connections", "delay_registers", "mux_inputs",
                "n_data_nodes"):
        print(f"{key:24s}{fused_adg.stats()[key]:12d}"
              f"{naive_adg.stats()[key]:12d}")
    shared = [c for c in fused_adg.connections if len(c.dataflows) == 2]
    print(f"physical links shared by both dataflows: {len(shared)}")

    fused = run_backend(generate(fused_adg))
    naive = run_backend(generate(naive_adg))
    for label, design in (("heuristic", fused), ("naive", naive)):
        report = evaluate_design(design)
        print(f"{label:10s}: {design.report['register_bits']:6d} register "
              f"bits, {report.total_power_mw:6.1f} mW")

    # Both configurations of the fused design compute correct GEMMs.
    rng = np.random.default_rng(1)
    for name in (df_ij.name, df_kj.name):
        x = make_input(fused, name, "X", rng)
        w = make_input(fused, name, "W", rng)
        y = Simulator(fused, name).run({"X": x, "W": w}).outputs["Y"]
        assert np.array_equal(y, x @ w)
        print(f"runtime config {name}: bit-exact  [OK]")


if __name__ == "__main__":
    main()
