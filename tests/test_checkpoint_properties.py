"""Property-style tests of DSE checkpointing: an interrupted-then-
resumed search must reproduce the uninterrupted run's evaluation
sequence **bit-for-bit** — same archs, same order, same raw
cycles/energy floats, same metered cost — for many seeds, strategies,
and interruption granularities, including across a JSON round-trip of
every intermediate checkpoint (the wire format the server polls out)."""

import json

import pytest

from repro.dse import (DesignSpace, SearchCheckpoint, SearchPaused,
                       run_checkpointed, run_search, space_from_dict,
                       space_to_dict)
from repro.dse.strategies import PointEvaluator
from repro.models import zoo

SPACE = DesignSpace(arrays=((8, 8), (16, 16), (8, 32)),
                    buffer_kb=(128.0, 256.0),
                    dataflow_sets=(("ICOC",), ("MN", "ICOC")))
MODELS = [zoo.lenet()]
SEEDS = range(6)


def interrupted_run(strategy, seed, step, max_evals=8, json_hop=True):
    """Drive a search to completion in `step`-sized interrupted pieces,
    optionally JSON-round-tripping the checkpoint between pieces."""
    result, ckpt = run_checkpointed(MODELS, SPACE, strategy=strategy,
                                    seed=seed, max_evals=max_evals,
                                    step_evals=step)
    hops = 0
    while result is None:
        hops += 1
        assert hops < 200, "resume loop did not converge"
        if json_hop:
            ckpt = SearchCheckpoint.loads(ckpt.dumps())
        result, ckpt = run_checkpointed(checkpoint=ckpt, step_evals=step)
    return result, ckpt, hops


class TestBitForBitReplay:
    @pytest.mark.parametrize("strategy", ["exhaustive", "anneal",
                                          "halving"])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_eval_sequence_identical(self, strategy, seed):
        full, done = run_checkpointed(MODELS, SPACE, strategy=strategy,
                                      seed=seed, max_evals=8)
        step = 0.5 + (seed % 3)  # vary the interruption granularity
        result, ckpt, hops = interrupted_run(strategy, seed, step)
        assert done.completed and ckpt.completed
        # The witness: every charged evaluation, in order, with the raw
        # model rows — equality here is exact float equality.
        assert ckpt.eval_log == done.eval_log
        assert ckpt.evals_used == done.evals_used
        assert ckpt.points_evaluated == done.points_evaluated
        assert result.best.arch.name == full.best.arch.name
        assert result.best.edp == full.best.edp
        assert ([p.arch.name for p in result.points]
                == [p.arch.name for p in full.points])

    @pytest.mark.parametrize("seed", SEEDS)
    def test_single_eval_steps_anneal(self, seed):
        """The finest pause granularity (one eval per request) still
        replays exactly — the serving front end's default."""
        full, done = run_checkpointed(MODELS, SPACE, strategy="anneal",
                                      seed=seed, max_evals=6)
        result, ckpt, hops = interrupted_run("anneal", seed, step=1,
                                             max_evals=6)
        assert ckpt.eval_log == done.eval_log
        assert result.best.edp == full.best.edp
        assert hops >= 1  # the run was actually interrupted

    def test_paused_run_is_a_prefix(self):
        result, ckpt = run_checkpointed(MODELS, SPACE, strategy="anneal",
                                        seed=0, max_evals=8, step_evals=2)
        assert result is None and not ckpt.completed
        _, done = run_checkpointed(MODELS, SPACE, strategy="anneal",
                                   seed=0, max_evals=8)
        assert ckpt.eval_log == done.eval_log[:len(ckpt.eval_log)]
        assert len(ckpt.eval_log) < len(done.eval_log)
        assert ckpt.rng_state is not None  # the pause-time RNG snapshot

    def test_matches_plain_run_search(self):
        """run_checkpointed without a step is run_search plus a
        completed checkpoint."""
        direct = run_search(MODELS, SPACE, strategy="halving", seed=3)
        result, ckpt = run_checkpointed(MODELS, SPACE, strategy="halving",
                                        seed=3)
        assert ckpt.completed and ckpt.rng_state is None
        assert result.best.edp == direct.best.edp
        assert result.evals_used == direct.evals_used

    def test_strategy_params_survive_resume(self):
        from repro.dse import SuccessiveHalving

        strat = SuccessiveHalving(eta=2, proxy_fraction=0.5)
        result, ckpt = run_checkpointed(MODELS, SPACE, strategy=strat,
                                        seed=1, step_evals=1)
        assert ckpt.strategy_params == {"eta": 2, "proxy_fraction": 0.5}
        while result is None:
            result, ckpt = run_checkpointed(checkpoint=ckpt, step_evals=1)
        full, _ = run_checkpointed(MODELS, SPACE,
                                   strategy=SuccessiveHalving(
                                       eta=2, proxy_fraction=0.5),
                                   seed=1)
        assert result.best.edp == full.best.edp


class TestCheckpointFormat:
    def test_json_roundtrip_exact(self):
        _, ckpt = run_checkpointed(MODELS, SPACE, strategy="anneal",
                                   seed=2, max_evals=5, step_evals=2)
        clone = SearchCheckpoint.loads(ckpt.dumps())
        assert clone.to_dict() == ckpt.to_dict()

    def test_save_load_file(self, tmp_path):
        _, ckpt = run_checkpointed(MODELS, SPACE, seed=0, step_evals=1)
        path = ckpt.save(tmp_path / "search.ckpt.json")
        resumed, done = run_checkpointed(checkpoint=path, step_evals=100)
        assert done.completed and resumed.best is not None

    def test_rejects_foreign_format(self):
        with pytest.raises(ValueError, match="checkpoint"):
            SearchCheckpoint.from_dict({"format": "something-else"})

    def test_space_roundtrip(self):
        clone = space_from_dict(json.loads(json.dumps(
            space_to_dict(SPACE))))
        assert clone == SPACE

    def test_model_fingerprint_mismatch_rejected(self):
        _, ckpt = run_checkpointed(MODELS, SPACE, seed=0, step_evals=1)
        with pytest.raises(ValueError, match="fingerprint"):
            run_checkpointed(models=[zoo.alexnet()], checkpoint=ckpt,
                             step_evals=1)

    def test_non_zoo_model_needs_explicit_models(self):
        from repro.models.layers import Model

        custom = Model("custom", zoo.lenet().layers)
        _, ckpt = run_checkpointed([custom], SPACE, seed=0, step_evals=1)
        with pytest.raises(ValueError, match="zoo"):
            run_checkpointed(checkpoint=ckpt, step_evals=1)
        result, done = run_checkpointed(models=[custom], checkpoint=ckpt,
                                        step_evals=100)
        assert done.completed and result.best is not None

    def test_fresh_run_requires_models(self):
        with pytest.raises(ValueError, match="models"):
            run_checkpointed(space=SPACE)


class TestPauseMechanics:
    def test_evaluator_raises_when_budget_spent(self):
        evaluator = PointEvaluator(MODELS, pause_after=2.0)
        archs = list(SPACE.points())[:4]
        with pytest.raises(SearchPaused):
            evaluator.evaluate(archs)
        assert evaluator.evals_used == 2.0
        assert len(evaluator.eval_log) == 2

    def test_no_pause_without_budget(self):
        evaluator = PointEvaluator(MODELS)
        points = evaluator.evaluate(list(SPACE.points())[:3])
        assert len(points) == 3

    def test_checkpoint_rows_make_resume_cheap(self):
        """Replay must reuse the checkpoint's rows rather than
        recomputing: a resume with a poisoned evaluate_model would only
        survive if every warm row came from the checkpoint."""
        _, ckpt = run_checkpointed(MODELS, SPACE, strategy="exhaustive",
                                   seed=0, step_evals=100)
        assert ckpt.completed and len(ckpt.rows) > 0
        # Resume the finished search: every row is warm, zero cold work.
        import repro.sim.perf_model as perf

        original = perf.evaluate_model

        def boom(*args, **kwargs):
            raise AssertionError("resume recomputed a warm row")

        perf.evaluate_model = boom
        try:
            result, done = run_checkpointed(checkpoint=ckpt)
        finally:
            perf.evaluate_model = original
        assert done.completed
        assert done.eval_log == ckpt.eval_log
