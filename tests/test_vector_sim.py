"""The vectorized step-program simulator is bit-exact against the
reference interpreter oracle.

Every comparison checks the *complete* observable state of a run:
output tensors, cycle count, per-node toggle counts, and the memory
access counters the energy model consumes — across all kernel families,
fused and broadcast designs, multi-level tilings, and randomized shapes
(hypothesis).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import BackendOptions, generate, run_backend
from repro.core import kernels
from repro.core.contraction import contraction
from repro.core.dataflow import Dataflow
from repro.core.frontend import FrontendConfig, build_adg
from repro.service.spec import DesignRequest
from repro.sim.dag_sim import Simulator, make_input

RNG = np.random.default_rng(11)


def assert_bit_exact(design, dataflow: str, tensors: dict) -> None:
    """Run both engines on identical inputs; every SimResult field must
    agree exactly."""
    vec = Simulator(design, dataflow)
    assert vec._program is not None, \
        "vectorized path unexpectedly unsupported for this design"
    got = vec.run(tensors)
    want = Simulator(design, dataflow, reference=True).run(tensors)
    assert got.cycles == want.cycles
    assert set(got.outputs) == set(want.outputs)
    for name in want.outputs:
        assert np.array_equal(got.outputs[name], want.outputs[name]), name
    assert got.toggles == want.toggles
    assert got.mem_reads == want.mem_reads
    assert got.mem_writes == want.mem_writes


def build(dataflows, options=None, frontend=None):
    return run_backend(generate(build_adg(list(dataflows),
                                          frontend or FrontendConfig())),
                       options)


def inputs_for(design, dataflow, rng=RNG):
    cfg = design.configs[dataflow]
    names = sorted({design.dag.nodes[n].params["tensor"]
                    for n in cfg.read_enable})
    return {t: make_input(design, dataflow, t, rng) for t in names}


class TestEveryKernelFamily:
    @pytest.mark.parametrize("kind,systolic", [
        ("KJ", True), ("KJ", False), ("IJ", False), ("IK", True)])
    def test_gemm(self, kind, systolic):
        wl = kernels.gemm(16, 16, 16)
        df = kernels.gemm_dataflow(kind, wl, 4, 4, systolic=systolic)
        design = build([df])
        tensors = inputs_for(design, df.name)
        assert_bit_exact(design, df.name, tensors)
        got = Simulator(design, df.name).run(tensors).outputs["Y"]
        assert np.array_equal(got, tensors["X"] @ tensors["W"])

    @pytest.mark.parametrize("kind", ["ICOC", "OHOW"])
    def test_conv2d(self, kind):
        wl = kernels.conv2d(1, 8, 8, 4, 4, 3, 3)
        df = kernels.conv2d_dataflow(kind, wl, 4, 4)
        design = build([df])
        assert_bit_exact(design, df.name, inputs_for(design, df.name))

    def test_mttkrp(self):
        wl = kernels.mttkrp(8, 8, 4, 4)
        df = kernels.mttkrp_dataflow("IJ", wl, 4, 4, systolic=False)
        design = build([df])
        assert_bit_exact(design, df.name, inputs_for(design, df.name))

    def test_attention_both_dataflows(self):
        request = DesignRequest(kernel="attention", array=(2, 2))
        design = build(request.build_dataflows())
        for name in design.configs:
            assert_bit_exact(design, name, inputs_for(design, name))

    def test_two_axis_reduction(self):
        """Combine-adder in-trees (reducers with multiple simultaneous
        partials) must vectorize exactly."""
        wl = contraction("ij,ijk->i", {"i": 4, "j": 4, "k": 4})
        df = Dataflow.build(wl, spatial=[("j", 4), ("k", 4)],
                            control=(0, 0), name="red2d")
        design = build([df])
        tensors = inputs_for(design, "red2d")
        assert_bit_exact(design, "red2d", tensors)
        got = Simulator(design, "red2d").run(tensors).outputs["Y"]
        assert np.array_equal(
            got, np.einsum("ij,ijk->i", tensors["T0"], tensors["T1"]))


class TestFusedAndVariants:
    @pytest.mark.parametrize("fuse", [True, False])
    def test_fused_broadcast_gemm(self, fuse):
        """Fused designs exercise dynamic (timestamp-gated) muxes and
        per-dataflow reducer pin filtering."""
        wl = kernels.gemm(16, 16, 16)
        dfs = [kernels.gemm_dataflow("IJ", wl, 8, 8, systolic=False),
               kernels.gemm_dataflow("KJ", wl, 8, 8, systolic=False)]
        design = build(dfs, frontend=FrontendConfig(fuse_heuristic=fuse))
        for name in ("GEMM-IJ", "GEMM-KJ"):
            assert_bit_exact(design, name, inputs_for(design, name))

    @pytest.mark.parametrize("options", [
        BackendOptions.baseline(),
        BackendOptions(True, False, False, False),
        BackendOptions(True, True, True, True),
    ])
    def test_backend_option_variants(self, options):
        wl = kernels.gemm(8, 8, 8)
        df = kernels.gemm_dataflow("KJ", wl, 4, 4, systolic=False)
        design = build([df], options)
        assert_bit_exact(design, df.name, inputs_for(design, df.name))

    def test_multilevel_tiling(self):
        wl = kernels.gemm(16, 16, 8)
        df = Dataflow.build(wl, spatial=[("i", 4), ("j", 4)],
                            temporal=[("i", 2), ("j", 2), ("k", 8),
                                      ("i", 2), ("j", 2)],
                            control=(1, 1), name="ml")
        design = build([df])
        assert_bit_exact(design, "ml", inputs_for(design, "ml"))


class TestRandomizedBitExactness:
    @given(
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=3),
        st.sampled_from([(2, 2), (2, 4), (4, 2)]),
        st.sampled_from(["IJ", "IK", "KJ"]),
        st.booleans(),
    )
    @settings(max_examples=10, deadline=None)
    def test_random_gemm_shapes(self, tm, tn, tk, array, kind, systolic):
        p0, p1 = array
        wl = kernels.gemm(4 * tm, 4 * tn, 4 * tk)
        df = kernels.gemm_dataflow(kind, wl, p0, p1, systolic=systolic)
        design = build([df])
        assert_bit_exact(design, df.name, inputs_for(design, df.name))


class TestEngineSelection:
    def test_reference_flag_skips_compilation(self):
        wl = kernels.gemm(8, 8, 8)
        df = kernels.gemm_dataflow("KJ", wl, 2, 2)
        design = build([df])
        assert Simulator(design, df.name, reference=True)._program is None
        assert Simulator(design, df.name)._program is not None

    def test_unsupported_designs_fall_back(self):
        """A non-accumulating commit port is order-sensitive across
        writers; the compiler must refuse it and run() must still work
        via the interpreter."""
        wl = kernels.gemm(8, 8, 8)
        df = kernels.gemm_dataflow("KJ", wl, 2, 2)
        design = build([df])
        for node in design.dag.nodes.values():
            if node.kind == "mem_write":
                node.params["accumulate"] = False
        sim = Simulator(design, df.name)
        assert sim._program is None  # fell back at compile time
        tensors = inputs_for(design, df.name)
        got = sim.run(tensors)
        want = Simulator(design, df.name, reference=True).run(tensors)
        for name in want.outputs:
            assert np.array_equal(got.outputs[name], want.outputs[name])

    def test_large_magnitude_inputs_fall_back_at_run_time(self):
        """Inputs whose products could exceed int64 must not wrap
        silently: the magnitude guard routes the run to the interpreter,
        which preserves the loud Python OverflowError on commit."""
        wl = kernels.gemm(8, 8, 8)
        df = kernels.gemm_dataflow("KJ", wl, 2, 2)
        design = build([df])
        sim = Simulator(design, df.name)
        assert sim._program is not None
        huge = {
            "X": np.full((8, 8), 2 ** 33, dtype=np.int64),
            "W": np.full((8, 8), 2 ** 33, dtype=np.int64),
        }
        storage, _ = sim._prepare_storage(huge)
        assert not sim._program.magnitude_safe(storage)
        with pytest.raises(OverflowError):  # same failure as pre-PR
            sim.run(huge)
        # sane magnitudes stay on the fast path
        small = inputs_for(design, df.name)
        storage, _ = sim._prepare_storage(small)
        assert sim._program.magnitude_safe(storage)

    def test_step_program_groups_by_kind(self):
        """The compiled program batches same-kind primitives and never
        groups a node with one of its own producers."""
        wl = kernels.gemm(8, 8, 8)
        df = kernels.gemm_dataflow("KJ", wl, 4, 4)
        design = build([df])
        program = Simulator(design, df.name)._program
        assert program is not None and program.steps
        row_of = program.row
        for kind, specs in program.steps:
            open_rows = set()
            for spec in specs:
                assert not (set(spec.get("_srcs", ())) & open_rows), \
                    f"step {kind!r} groups a node with its producer"
                open_rows.add(spec["row"])
        assert len(program.steps) < len(program.order), \
            "no batching happened at all"
