"""Sampling-profiler tests: the Profile value object (collapsed stacks,
top-N, merge, dict round-trip, bounded distinct stacks), the live
sampler (a busy thread shows up, samples carry the busy thread's open
span as their phase, drain semantics), and the ``GET /debug/profile``
surface on both a single server and the fan-and-merge router."""

import threading
import time

import pytest

from repro.obs import (DEFAULT_HZ, Profile, SamplingProfiler, profile_for,
                       trace_span)
from repro.service import BatchEngine, ServerThread, ServiceClient
from repro.service.router import RouterThread


def _spin(stop: threading.Event) -> None:
    while not stop.is_set():
        sum(i * i for i in range(500))


class TestProfileObject:
    def test_collapsed_busiest_first_and_idle_filtered(self):
        p = Profile(hz=50, stacks={"main.a;main.b": 3,
                                   "main.a;selectors.select": 9,
                                   "main.a;main.c": 7})
        assert p.collapsed() == "main.a;main.c 7\nmain.a;main.b 3"
        assert p.collapsed(include_idle=True).splitlines()[0] \
            == "main.a;selectors.select 9"

    def test_top_self_vs_total(self):
        p = Profile(hz=50, stacks={"m.a;m.b": 4, "m.a;m.b;m.c": 6})
        by_frame = {row["frame"]: row for row in p.top(10)}
        assert by_frame["m.c"]["self"] == 6
        assert by_frame["m.b"]["self"] == 4
        assert by_frame["m.b"]["total"] == 10
        assert by_frame["m.a"]["self"] == 0

    def test_merge_adds_counts_keeps_max_wall(self):
        a = Profile(hz=50, stacks={"x": 1}, by_phase={"emit": 1},
                    samples=1, idle_samples=0, wall_s=1.0)
        b = Profile(hz=50, stacks={"x": 2, "y": 3}, by_phase={"emit": 5},
                    samples=5, idle_samples=2, wall_s=3.0)
        a.merge(b)
        assert a.stacks == {"x": 3, "y": 3}
        assert a.by_phase == {"emit": 6}
        assert a.samples == 6 and a.idle_samples == 2
        assert a.wall_s == 3.0  # overlapping captures: max, not sum

    def test_dict_roundtrip(self):
        p = Profile(hz=99, stacks={"a;b": 2}, by_phase={"adg": 2},
                    samples=2, idle_samples=1, wall_s=0.5)
        clone = Profile.from_dict(p.to_dict())
        assert (clone.hz, clone.stacks, clone.by_phase, clone.samples,
                clone.idle_samples, clone.wall_s) \
            == (99, {"a;b": 2}, {"adg": 2}, 2, 1, 0.5)
        assert p.to_dict()["top"][0]["frame"] == "b"

    def test_distinct_stack_cap_overflows_to_truncated(self):
        # sampler not started: pre-fill to the cap, then drive
        # _sample_once by hand — novel stacks must aggregate
        profiler = SamplingProfiler(hz=10, max_stacks=2)
        profiler._stacks = {"s1": 1, "s2": 1}
        # a third novel stack must aggregate, not grow the dict
        stop = threading.Event()
        spinner = threading.Thread(target=_spin, args=(stop,),
                                   daemon=True)
        spinner.start()
        try:
            for _ in range(5):
                profiler._sample_once()
        finally:
            stop.set()
            spinner.join()
        novel = set(profiler._stacks) - {"s1", "s2"}
        assert novel <= {"(truncated)"}


class TestSamplingProfiler:
    def test_busy_thread_appears_with_phase(self):
        stop = threading.Event()

        def busy():
            with trace_span("hot_phase"):
                _spin(stop)

        worker = threading.Thread(target=busy, daemon=True,
                                  name="busy-under-test")
        worker.start()
        profiler = SamplingProfiler(hz=200)
        profiler.start()
        time.sleep(0.3)
        profiler.stop()
        stop.set()
        worker.join()
        profile = profiler.snapshot()
        assert profile.samples > 0
        assert any("_spin" in stack for stack in profile.stacks), \
            profile.stacks
        assert profile.by_phase.get("hot_phase", 0) > 0
        assert profile.wall_s == pytest.approx(0.3, abs=0.2)

    def test_take_drains_accumulators(self):
        profiler = SamplingProfiler(hz=100)
        stop = threading.Event()
        spinner = threading.Thread(target=_spin, args=(stop,),
                                   daemon=True)
        spinner.start()
        profiler.start()
        try:
            time.sleep(0.15)
        finally:
            profiler.stop()
            stop.set()
            spinner.join()
        first = profiler.take()
        assert first.samples > 0 and first.stacks
        # take() reset everything; with the sampler stopped, the next
        # read is empty
        empty = profiler.snapshot()
        assert empty.samples == 0 and empty.stacks == {}
        assert empty.wall_s == 0.0

    def test_profile_for_excludes_its_own_capture_thread(self):
        profile = profile_for(0.2, hz=150)
        assert all("profile_for" not in stack
                   for stack in profile.stacks), profile.stacks


class TestProfileEndpoint:
    def test_one_shot_capture(self):
        server = ServerThread(BatchEngine(cache=None)).start()
        try:
            with ServiceClient.from_url(server.url) as client:
                payload = client.profile(seconds=0.2, hz=100)
            assert payload["continuous"] is False
            assert payload["samples"] > 0  # parked threads still sample
            assert payload["hz"] == 100
            assert isinstance(payload["top"], list)
        finally:
            server.stop()

    def test_404_without_continuous_profiler_or_seconds(self):
        from repro.service import ServiceError

        server = ServerThread(BatchEngine(cache=None)).start()
        try:
            with ServiceClient.from_url(server.url) as client:
                with pytest.raises(ServiceError) as err:
                    client.profile()
            assert err.value.status == 404
        finally:
            server.stop()

    def test_bad_params_are_400(self):
        from repro.service import ServiceError

        server = ServerThread(BatchEngine(cache=None)).start()
        try:
            with ServiceClient.from_url(server.url) as client:
                with pytest.raises(ServiceError) as err:
                    client.request("GET", "/debug/profile?seconds=nope")
            assert err.value.status == 400
        finally:
            server.stop()

    def test_continuous_mode_snapshot(self):
        server = ServerThread(BatchEngine(cache=None),
                              profile_hz=150).start()
        try:
            assert server.server.profiler.running
            time.sleep(0.2)
            with ServiceClient.from_url(server.url) as client:
                payload = client.profile()
            assert payload["continuous"] is True
            assert payload["samples"] > 0
            assert payload["hz"] == 150
        finally:
            server.stop()

    def test_router_fans_and_merges(self):
        backend = ServerThread(BatchEngine(cache=None)).start()
        router = RouterThread([backend.url]).start()
        try:
            with ServiceClient.from_url(router.url) as client:
                payload = client.profile(seconds=0.2, hz=100)
            assert payload["merged_from"] == 2  # router + backend
            assert payload["samples"] > 0
            assert payload["backends"][0]["ok"] is True
            assert payload["backends"][0]["url"] == backend.url
        finally:
            router.stop()
            backend.stop()

    def test_router_404_when_nothing_available(self):
        from repro.service import ServiceError

        backend = ServerThread(BatchEngine(cache=None)).start()
        router = RouterThread([backend.url]).start()
        try:
            with ServiceClient.from_url(router.url) as client:
                with pytest.raises(ServiceError) as err:
                    client.profile()
            assert err.value.status == 404
        finally:
            router.stop()
            backend.stop()

    def test_default_hz_constant(self):
        # bench + CLI defaults reference 67 Hz; keep them honest
        assert DEFAULT_HZ == 67.0
