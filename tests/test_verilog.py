"""Structural checks of the emitted Verilog."""

import re

import pytest

from repro.backend import generate, run_backend
from repro.backend.verilog import emit_verilog
from repro.core import kernels
from repro.core.frontend import build_adg


@pytest.fixture(scope="module")
def design():
    wl = kernels.gemm(8, 8, 8)
    df = kernels.gemm_dataflow("KJ", wl, 4, 4)
    return run_backend(generate(build_adg([df])))


@pytest.fixture(scope="module")
def rtl(design):
    return emit_verilog(design, "test_mod")


class TestVerilogStructure:
    def test_module_balanced(self, rtl):
        assert rtl.count("module test_mod") == 1
        assert rtl.count("endmodule") == 1
        assert rtl.count(" begin") == rtl.count(" end\n") + rtl.count(" end ")

    def test_every_node_has_a_signal(self, design, rtl):
        for nid, node in design.dag.nodes.items():
            if node.kind in ("mem_write",):
                assert f"wr_addr_{nid}" in rtl
            else:
                assert f"n{nid}_{node.kind}" in rtl, node

    def test_signals_declared_before_use(self, rtl):
        declared = set(re.findall(
            r"(?:wire|reg)\s*(?:\[[^\]]+\])?\s*(n\d+_\w+)", rtl))
        used = set(re.findall(r"\b(n\d+_\w+)\b", rtl))
        # Helper suffixes (_r, _mem, _i) belong to their base signals.
        base_used = {u for u in used
                     if not re.search(r"_(r|mem|i)$", u)}
        assert base_used <= declared | {u + "_r" for u in declared}

    def test_ports_match_memory_interfaces(self, design, rtl):
        n_reads = design.dag.count("mem_read")
        n_writes = design.dag.count("mem_write")
        assert len(re.findall(r"output wire \[23:0\] rd_addr_", rtl)) == n_reads
        assert len(re.findall(r"output wire \[23:0\] wr_addr_", rtl)) == n_writes

    def test_pipeline_registers_emitted(self, design, rtl):
        total_el = sum(e.el for e in design.dag.edges)
        if total_el:
            assert "_dly" in rtl

    def test_no_zero_width_vectors(self, rtl):
        for match in re.findall(r"\[(-?\d+):0\]", rtl):
            assert int(match) >= 0

    def test_clock_and_reset(self, rtl):
        assert "input  wire clk" in rtl
        assert "posedge clk" in rtl

    def test_cfg_dataflow_port(self, rtl):
        assert "cfg_dataflow" in rtl


class TestVerilogVariants:
    def test_fused_design_emits_case(self):
        wl = kernels.gemm(8, 8, 8)
        dfa = kernels.gemm_dataflow("IJ", wl, 4, 4)
        dfb = kernels.gemm_dataflow("KJ", wl, 4, 4)
        design = run_backend(generate(build_adg([dfa, dfb])))
        rtl = emit_verilog(design)
        assert "case (cfg_dataflow)" in rtl

    def test_reducer_emitted(self):
        wl = kernels.gemm(8, 8, 8)
        df = kernels.gemm_dataflow("KJ", wl, 4, 4, systolic=False)
        design = run_backend(generate(build_adg([df])))
        rtl = emit_verilog(design)
        assert "balanced reduction tree" in rtl

    def test_mttkrp_two_multipliers(self):
        df = kernels.mttkrp_dataflow("KJ", kernels.mttkrp(4, 4, 4, 4), 2, 2)
        design = run_backend(generate(build_adg([df])))
        rtl = emit_verilog(design)
        # Two multipliers per FU, 4 FUs.
        assert len(re.findall(r"n\d+_mul\b(?!.*<=)", rtl, re.M)) >= 8

    def test_header_reports_stats(self, ):
        wl = kernels.gemm(8, 8, 8)
        df = kernels.gemm_dataflow("KJ", wl, 4, 4)
        design = run_backend(generate(build_adg([df])))
        rtl = emit_verilog(design)
        assert "pipeline register bits" in rtl.splitlines()[1]


class TestTestbench:
    def test_self_checking_testbench(self, design):
        from repro.backend.verilog import emit_testbench
        tb = emit_testbench(design, "GEMM-KJ", module_name="test_mod")
        assert "module test_mod_tb" in tb
        assert "TESTBENCH PASSED" in tb
        assert "gold_Y" in tb
        # Golden values must be non-trivial (a real expected result).
        import re
        golds = [int(v) for v in re.findall(r"gold_Y\[\d+\] = (-?\d+);", tb)]
        assert any(v != 0 for v in golds)

    def test_testbench_balanced(self, design):
        from repro.backend.verilog import emit_testbench
        tb = emit_testbench(design, "GEMM-KJ")
        assert tb.count("module") - tb.count("endmodule") == 1  # dut instantiation
        assert tb.count("initial begin") == 1
