"""Unit tests for the fusion heuristics (§IV-C) and additional front-end
properties checked with hypothesis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import kernels
from repro.core.dataflow import Dataflow
from repro.core.frontend import FrontendConfig, build_adg
from repro.core.fusion import (Chain, FusionPlan, condensed_delay_tree,
                               naive_merge_links, partition_chains,
                               plan_direct_interconnects)
from repro.core.interconnect import ReuseKind, find_reuse_solutions
from repro.core.memory_analysis import analyze_banks, verify_conflict_free


class TestPartitionChains:
    def test_broadcast_makes_one_chain(self):
        wl = kernels.conv2d(1, 4, 4, 8, 8, 3, 3)
        df = kernels.conv2d_dataflow("OHOW", wl, 4, 4)
        sols = find_reuse_solutions(df, "W")
        chains = partition_chains(df, "W", sols, delay_sinks=set())
        assert len(chains) == 1
        assert len(chains[0]) == 16

    def test_no_direct_reuse_gives_singletons(self):
        wl = kernels.conv2d(1, 4, 4, 8, 8, 3, 3)
        df = kernels.conv2d_dataflow("OHOW", wl, 4, 4)
        sols = find_reuse_solutions(df, "X")  # delay-only reuse
        chains = partition_chains(df, "X", sols, delay_sinks=set())
        assert len(chains) == 16
        assert all(len(c) == 1 for c in chains)

    def test_row_chains_for_gemm_x(self):
        wl = kernels.gemm(8, 8, 8)
        df = kernels.gemm_dataflow("KJ", wl, 4, 4)
        sols = find_reuse_solutions(df, "X")
        chains = partition_chains(df, "X", sols, delay_sinks=set())
        assert len(chains) == 4          # one chain per s_k row
        assert all(len(c) == 4 for c in chains)

    def test_delay_sinks_become_root_candidates(self):
        wl = kernels.gemm(8, 8, 8)
        df = kernels.gemm_dataflow("KJ", wl, 4, 4)
        sols = find_reuse_solutions(df, "X")
        chains = partition_chains(df, "X", sols, delay_sinks={(0, 0), (1, 0)})
        for chain in chains:
            if (0, 0) in chain.members:
                assert chain.root_candidates == ((0, 0),)


class TestPlanDirectInterconnects:
    def _chain(self, members, deltas, dataflow="df", tensor="X",
               candidates=None):
        return Chain(dataflow, tensor, tuple(members),
                     tuple(candidates or members), tuple(deltas))

    def test_single_chain_forms_path(self):
        members = [(0, i) for i in range(4)]
        plan = plan_direct_interconnects(
            [self._chain(members, [(0, 1)])], set())
        assert plan.n_physical_links == 3
        assert plan.mux_inputs() == 0

    def test_two_dataflows_share_links(self):
        members = [(0, i) for i in range(4)]
        chains = [self._chain(members, [(0, 1)], dataflow="a"),
                  self._chain(members, [(0, 1)], dataflow="b")]
        plan = plan_direct_interconnects(chains, set())
        assert plan.n_physical_links == 3
        assert plan.n_logical_links == 6  # 3 links x 2 users

    def test_output_chain_flows_toward_root(self):
        members = [(0, i) for i in range(3)]
        plan = plan_direct_interconnects(
            [self._chain(members, [(0, 1)])], set(), is_output=True)
        root = plan.roots["df"][0]
        # All links point at increasing proximity to the root.
        for (_src, dst) in plan.links:
            pass
        sinks = {dst for _s, dst in plan.links}
        sources = {src for src, _d in plan.links}
        assert root in sinks and root not in sources

    def test_empty(self):
        plan = plan_direct_interconnects([], set())
        assert plan.n_physical_links == 0


class TestCondensedDelayTree:
    def test_chains_connected_by_delay(self):
        wl = kernels.conv2d(1, 4, 4, 8, 8, 3, 3)
        df = kernels.conv2d_dataflow("OHOW", wl, 2, 2)
        sols = find_reuse_solutions(df, "X")
        chains = partition_chains(df, "X", sols, delay_sinks=set())
        plan = plan_direct_interconnects(list(chains), set())
        edges, roots = condensed_delay_tree(df, "X", False, chains, plan,
                                            sols, memory_cost=16.0)
        # The 4 singleton chains are spanned by 3 delay edges + >=1 root.
        assert len(edges) + len(roots) == len(chains)
        assert len(roots) >= 1

    def test_expensive_delay_loses_to_memory(self):
        wl = kernels.conv2d(1, 4, 4, 8, 8, 3, 3)
        df = kernels.conv2d_dataflow("OHOW", wl, 2, 2)
        sols = find_reuse_solutions(df, "X")
        chains = partition_chains(df, "X", sols, delay_sinks=set())
        plan = plan_direct_interconnects(list(chains), set())
        edges, roots = condensed_delay_tree(df, "X", False, chains, plan,
                                            sols, memory_cost=0.0)
        assert not edges
        assert len(roots) == len(chains)


class TestNaiveMerge:
    def test_union_semantics(self):
        merged = naive_merge_links({"a": [(0, 1)], "b": [(0, 1), (1, 2)]})
        assert merged[(0, 1)] == {"a", "b"}
        assert merged[(1, 2)] == {"b"}


class TestFrontendProperties:
    @given(st.sampled_from(["IJ", "IK", "KJ"]),
           st.sampled_from([2, 4]),
           st.booleans())
    @settings(max_examples=12, deadline=None)
    def test_every_fu_has_single_source_per_tensor(self, kind, p, systolic):
        """§IV-B's guarantee: one valid data source per FU per tensor —
        either exactly one incoming link or a data node (or both, when a
        boundary fallback port backs a partially-covering link)."""
        wl = kernels.gemm(8, 8, 8)
        df = kernels.gemm_dataflow(kind, wl, p, p, systolic=systolic)
        adg = build_adg([df])
        for tensor in ("X", "W"):
            nodes = {n.fu: n for n in adg.data_nodes_for(tensor, df.name)}
            for fu in df.fu_coords():
                incoming = [c for c in adg.connections_for(tensor, df.name)
                            if c.dst == fu]
                node = nodes.get(fu)
                if not incoming:
                    assert node is not None, (tensor, fu)
                else:
                    assert len(incoming) == 1
                    if node is not None:
                        assert df.name in node.fallback_of

    @given(st.sampled_from(["OHOW", "ICOC", "KHOH", "OCOH"]),
           st.sampled_from([2, 4]))
    @settings(max_examples=10, deadline=None)
    def test_banking_is_always_conflict_free(self, kind, p):
        wl = kernels.conv2d(1, 4, 4, 8, 8, 3, 3)
        df = kernels.conv2d_dataflow(kind, wl, p, p)
        adg = build_adg([df])
        for tensor, layout in adg.memory.items():
            nodes = [n.fu for n in adg.data_nodes_for(tensor, df.name)]
            assert verify_conflict_free(layout, df, tensor, nodes), tensor

    @given(st.integers(min_value=1, max_value=4),
           st.integers(min_value=1, max_value=4))
    @settings(max_examples=15, deadline=None)
    def test_bank_bound_matches_eq9(self, p0, p1):
        """B_i computed by the analysis must equal max|delta|/gcd + 1 over
        the data-node index deltas (Eq. 9), checked by brute force."""
        wl = kernels.gemm(8, 8, 8)
        df = Dataflow.build(wl, spatial=[("i", p0), ("j", p1)],
                            control=(0, 0), name="t")
        nodes = df.fu_coords()
        layout = analyze_banks(df, "X", nodes)
        _mdt, mds, bias = df.tensor_ts_map("X")
        idxs = [mds @ np.array(fu) + bias for fu in nodes]
        for dim in range(len(layout.bank_shape)):
            deltas = {abs(int(a[dim] - b[dim]))
                      for a in idxs for b in idxs} - {0}
            if not deltas:
                assert layout.bank_shape[dim] == 1
            else:
                g = np.gcd.reduce(sorted(deltas))
                assert layout.bank_shape[dim] == max(deltas) // g + 1
