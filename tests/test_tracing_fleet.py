"""Cross-process trace trees: the ``X-Repro-Trace`` header carried
client -> router -> backend -> pool worker, the ``GET /trace`` surfaces
(snapshot, drain, per-trace filter, router fan-and-merge), and the
parent/child links that stitch one request's spans into one tree.

These run the router and backend in-process (RouterThread/ServerThread
share one global tracer), so assertions are about span *presence and
linkage* filtered by trace id — never about buffer-wide counts, which
would double-count the shared buffer.  The two-real-process version of
the one-trace-id assertion lives in the CI fleet smoke; the
different-pid link is covered here by the pool-worker test.
"""

import os
import re

import pytest

from repro.obs import get_tracer, new_trace_id, trace_context
from repro.service import (BatchEngine, DesignCache, DesignRequest,
                           ServerThread, ServiceClient)
from repro.service.router import RouterThread

TINY = {"kernel": "gemm", "dataflows": ["KJ"], "array": [2, 2]}
_ID = re.compile(r"^[0-9a-f]{16}$")


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    cache = DesignCache(root=tmp_path_factory.mktemp("fleet-cache"))
    backend = ServerThread(BatchEngine(cache=cache)).start()
    router = RouterThread([backend.url]).start()
    yield backend, router
    router.stop()
    backend.stop()


def _spans_of(trace_id: str) -> list[dict]:
    return [e for e in get_tracer().events()
            if e.get("args", {}).get("trace_id") == trace_id]


class TestHeaderPropagation:
    def test_client_bound_trace_id_reaches_backend(self, fleet):
        """Regression: the client must *send* its bound trace id, and
        the server must adopt it instead of minting a fresh one."""
        backend, _router = fleet
        tid = new_trace_id()
        with ServiceClient.from_url(backend.url) as client:
            with trace_context(tid):
                out = client.generate(TINY)
        assert out["trace_id"] == tid
        names = {e["name"] for e in _spans_of(tid)}
        assert "request" in names

    def test_server_mints_fresh_id_without_header(self, fleet):
        backend, _router = fleet
        with ServiceClient.from_url(backend.url) as client:
            a = client.generate(TINY)["trace_id"]
            b = client.generate(TINY)["trace_id"]
        assert _ID.match(a) and _ID.match(b) and a != b

    def test_one_trace_id_through_router_with_linked_hops(self, fleet):
        """One /generate via the router: the client's id survives both
        hops, the router records a proxy span, and the backend's spans
        parent under the proxy span's id."""
        _backend, router = fleet
        tid = new_trace_id()
        with ServiceClient.from_url(router.url) as client:
            with trace_context(tid):
                out = client.generate(dict(TINY, array=[3, 3]))
        assert out["trace_id"] == tid

        spans = _spans_of(tid)
        proxies = [e for e in spans if e["name"] == "proxy:/generate"]
        assert proxies, "router recorded no proxy span"
        proxy_ids = {e["args"]["span_id"] for e in proxies}
        backend_roots = [e for e in spans
                         if e["args"].get("parent_id") in proxy_ids]
        assert backend_roots, "no backend span parents under the proxy"
        # and the tree bottoms out in real pipeline phases
        assert {"request", "schedule", "emit"} <= {e["name"]
                                                  for e in spans}

    def test_batch_job_joins_callers_trace(self, fleet):
        backend, _router = fleet
        tid = new_trace_id()
        with ServiceClient.from_url(backend.url) as client:
            with trace_context(tid):
                job_id = client.batch([dict(TINY, array=[5, 5])])
            job = client.wait(job_id)
        assert job["trace_id"] == tid


class TestPoolWorkerSpans:
    def test_worker_spans_link_under_batch_span(self, tmp_path):
        """Pool workers run in other processes; their spans must come
        home carrying the batch's trace id AND a parent_id pointing at
        the executor-side batch span."""
        engine = BatchEngine(cache=DesignCache(root=tmp_path / "c"),
                             workers=2)
        requests = [DesignRequest(kernel="gemm", dataflows=(df,),
                                  array=(2, 2))
                    for df in ("KJ", "IJ", "IK")]
        tid = new_trace_id()
        with trace_context(tid):
            results = engine.generate_many(requests, workers=2)
        assert all(r.ok for r in results)
        spans = _spans_of(tid)
        batch = [e for e in spans if e["name"] == "batch"]
        assert len(batch) == 1
        batch_id = batch[0]["args"]["span_id"]
        worker_roots = [e for e in spans
                        if e["name"] == "request"
                        and e["pid"] != os.getpid()]
        assert worker_roots, "no worker-process spans came home"
        assert all(e["args"].get("parent_id") == batch_id
                   for e in worker_roots)


class TestTraceEndpoint:
    def test_snapshot_filter_and_drain(self, tmp_path):
        backend = ServerThread(
            BatchEngine(cache=DesignCache(root=tmp_path / "c"))).start()
        try:
            with ServiceClient.from_url(backend.url) as client:
                tid = client.generate(TINY)["trace_id"]
                other = client.generate(
                    dict(TINY, array=[4, 4]))["trace_id"]

                payload = client.trace(trace_id=tid)
                assert payload["displayTimeUnit"] == "ms"
                assert payload["pid"] == os.getpid()
                got = {e["args"]["trace_id"]
                       for e in payload["traceEvents"]}
                assert got == {tid}

                drained = client.trace(drain=True)
                ids = {e["args"].get("trace_id")
                       for e in drained["traceEvents"]}
                assert {tid, other} <= ids
                # the drain emptied the buffer
                assert client.trace()["traceEvents"] == []
        finally:
            backend.stop()

    def test_router_merges_backend_and_own_spans(self, tmp_path):
        backend = ServerThread(
            BatchEngine(cache=DesignCache(root=tmp_path / "c"))).start()
        router = RouterThread([backend.url]).start()
        try:
            with ServiceClient.from_url(router.url) as client:
                tid = client.generate(TINY)["trace_id"]
                payload = client.trace(trace_id=tid)
            assert payload["merged_from"] == 2
            names = {e["name"] for e in payload["traceEvents"]}
            assert "proxy:/generate" in names  # the router's own span
            assert "request" in names          # the backend's
        finally:
            router.stop()
            backend.stop()
