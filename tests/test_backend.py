"""Tests for the backend: DAG structure, codegen, and every §V pass."""

import math

import pytest

from repro.backend import BackendOptions, generate, run_backend
from repro.backend.codegen import AddrGenConfig, compute_liveness
from repro.backend.dag import DAG
from repro.backend.delay_matching import broadcast_sources, delay_match
from repro.backend.passes import infer_bitwidths, power_gate
from repro.backend.pin_reuse import solve_pin_mapping
from repro.backend.reduction import extract_reduction_trees, find_chains
from repro.core import kernels
from repro.core.frontend import build_adg


def _design(workload=None, kind="KJ", p=4, systolic=True, optimize=False):
    wl = workload or kernels.gemm(8, 8, 8)
    df = kernels.gemm_dataflow(kind, wl, p, p, systolic=systolic)
    design = generate(build_adg([df]))
    if optimize:
        run_backend(design)
    return design, df


class TestDAG:
    def test_add_and_query(self):
        dag = DAG()
        a = dag.add_node("const", params={"value": 3})
        b = dag.add_node("add", pins=("a", "b"))
        e = dag.add_edge(a, b, 0)
        assert e.uid == 0
        assert dag.in_edges(b) == [e]
        assert dag.out_edges(a) == [e]

    def test_unknown_kind(self):
        dag = DAG()
        with pytest.raises(ValueError, match="unknown primitive"):
            dag.add_node("frobnicator")

    def test_edge_to_missing_node(self):
        dag = DAG()
        a = dag.add_node("const")
        with pytest.raises(KeyError):
            dag.add_edge(a, 999)

    def test_cycle_detection(self):
        dag = DAG()
        a = dag.add_node("add", pins=("a", "b"))
        b = dag.add_node("add", pins=("a", "b"))
        dag.add_edge(a, b)
        dag.add_edge(b, a)
        with pytest.raises(ValueError, match="cycle"):
            dag.topo_order()

    def test_fifo_breaks_cycle(self):
        dag = DAG()
        a = dag.add_node("add", pins=("a", "b"))
        f = dag.add_node("fifo")
        dag.add_edge(a, f)
        dag.add_edge(f, a, 1)
        order = dag.topo_order(sequential_break=True)
        assert set(order) == {a, f}

    def test_register_accounting(self):
        dag = DAG()
        a = dag.add_node("const", width=8)
        b = dag.add_node("add", width=8, pins=("a", "b"))
        e = dag.add_edge(a, b)
        e.el = 3
        assert dag.pipeline_register_bits() == 24


class TestAddrGen:
    def test_gemm_addresses(self):
        wl = kernels.gemm(8, 8, 8)
        df = kernels.gemm_dataflow("KJ", wl, 4, 4)
        agc = AddrGenConfig.build(df, "Y", (0, 0))
        # At FU (0,0): y = [i, j] with j = t_j*4, i = t_i.
        assert agc.index_of(0) == (0, 0)
        total = df.total_timestamps
        assert agc.flat_address(total) is None  # out of temporal range

    def test_padding_returns_minus_one(self):
        wl = kernels.conv2d(1, 2, 2, 4, 4, 3, 3)
        df = kernels.conv2d_dataflow("OHOW", wl, 2, 2)
        agc = AddrGenConfig.build(df, "X", (0, 0))
        # t = 0 means kh = kw = 0, so ih = iw = -1: padding.
        assert agc.flat_address(0) == -1

    def test_commit_gate(self):
        wl = kernels.gemm(8, 8, 8)
        df = kernels.gemm_dataflow("KJ", wl, 4, 4)
        gated = AddrGenConfig.build(df, "Y", (0, 0), gate_dt=(0, 0, 1))
        # Timestamps whose k-step successor exists are suppressed.
        assert gated.flat_address(0) is None
        # The last k step commits (t = (0, 0, rt_k - 1)).
        last_k = df.rt[2] - 1
        scalar = last_k  # innermost position
        assert gated.flat_address(scalar) is not None


class TestCodegen:
    def test_gemm_structure(self):
        design, df = _design()
        stats = design.dag.stats()
        assert stats["mul"] == 16          # one multiplier per FU
        assert stats["ctrl"] == 1          # single shared control unit
        assert stats["ctrl_tap"] == 16
        assert stats["mem_write"] >= 4     # Y commit nodes

    def test_share_control_off(self):
        wl = kernels.gemm(8, 8, 8)
        df = kernels.gemm_dataflow("KJ", wl, 4, 4)
        adg = build_adg([df])
        shared = generate(adg, share_control=True)
        per_fu = generate(build_adg([df]), share_control=False)
        assert per_fu.dag.count("ctrl") == 16
        assert shared.dag.count("ctrl") == 1

    def test_liveness_covers_writes_to_ctrl(self):
        design, df = _design()
        cfg = design.configs[df.name]
        kinds = {design.dag.nodes[n].kind for n in cfg.active_nodes}
        assert "ctrl" in kinds and "mem_write" in kinds and "mul" in kinds

    def test_fused_configs_have_distinct_selects(self):
        wl = kernels.gemm(8, 8, 8)
        dfa = kernels.gemm_dataflow("IJ", wl, 4, 4)
        dfb = kernels.gemm_dataflow("KJ", wl, 4, 4)
        design = generate(build_adg([dfa, dfb]))
        assert set(design.configs) == {"GEMM-IJ", "GEMM-KJ"}
        # W is per-FU in KJ but flows spatially in IJ: some mux differs.
        sel_a = design.configs["GEMM-IJ"].mux_select
        sel_b = design.configs["GEMM-KJ"].mux_select
        common = set(sel_a) & set(sel_b)
        assert any(sel_a[m] != sel_b[m] for m in common)

    def test_dynamic_mux_has_tap_input(self):
        wl = kernels.conv2d(1, 2, 2, 4, 4, 3, 3)
        df = kernels.conv2d_dataflow("OHOW", wl, 2, 2)
        design = generate(build_adg([df]))
        cfg = design.configs[df.name]
        assert cfg.mux_policy, "delay connections require dynamic muxes"
        for mux in cfg.mux_policy:
            pins = {e.dst_pin for e in design.dag.in_edges(mux)}
            assert 0 in pins  # timestamp input


class TestDelayMatching:
    def test_alignment_invariant(self):
        """After the LP, every multi-input node's input paths must have
        equal accumulated delay along the per-dataflow active subgraph."""
        design, df = _design()
        delay_match(design)
        cfg = design.configs[df.name]
        dag = design.dag
        # Recompute arrival phases by propagation and check consistency.
        arrival: dict[int, float] = {}
        order = dag.topo_order(sequential_break=False,
                               edge_filter=lambda e: e.uid in cfg.active_edges)
        for nid in order:
            node = dag.nodes[nid]
            if node.is_source:
                arrival[nid] = 0.0
            ins = [e for e in dag.edges if e.dst == nid
                   and e.uid in cfg.active_edges]
            if node.kind == "mux":
                sel_pins = {cfg.mux_select.get(nid)}
                if nid in cfg.mux_policy:
                    sel_pins = {0} | {p for p, _ in cfg.mux_policy[nid]}
                ins = [e for e in ins if e.dst_pin in sel_pins]
            vals = []
            unknown = False
            for e in ins:
                src = dag.nodes[e.src]
                if src.kind == "fifo" or arrival.get(e.src) is None:
                    # FIFO outputs (and anything downstream of one) have
                    # their phase fixed by the LP's programmable depths;
                    # alignment there is proven by the bit-exact functional
                    # simulation instead.
                    unknown = True
                    continue
                vals.append(arrival[e.src] + e.el + node.latency)
            if not unknown and len(vals) > 1:
                assert max(vals) - min(vals) < 1e-6, \
                    f"misaligned inputs at {dag.nodes[nid]}"
            if nid not in arrival:
                arrival[nid] = None if (unknown or not vals) else vals[0]

    def test_nonnegative_els_and_depths(self):
        design, df = _design(kind="IJ")
        delay_match(design)
        assert all(e.el >= 0 for e in design.dag.edges)
        for cfg in design.configs.values():
            assert all(d >= 0 for d in cfg.fifo_phys.values())

    def test_optimized_cheaper_than_baseline(self):
        wl = kernels.gemm(8, 8, 8)
        df = kernels.gemm_dataflow("KJ", wl, 4, 4, systolic=False)
        base = run_backend(generate(build_adg([df])), BackendOptions.baseline())
        opt = run_backend(generate(build_adg([df])), BackendOptions())
        assert opt.report["register_bits"] <= base.report["register_bits"]

    def test_broadcast_sources_found(self):
        design, _df = _design(systolic=False)
        assert broadcast_sources(design)


class TestReduction:
    def test_extraction_on_broadcast_gemm(self):
        design, df = _design(systolic=False)
        infer_bitwidths(design)
        chains = find_chains(design)
        assert chains, "non-systolic GEMM-KJ must have combinational chains"
        stats = extract_reduction_trees(design)
        assert stats["chains_extracted"] >= 4
        reducers = [n for n in design.dag.nodes.values()
                    if n.kind == "reducer"]
        assert reducers
        for r in reducers:
            assert r.latency == max(1, math.ceil(
                math.log2(max(r.params["n_inputs"], 2))))

    def test_no_extraction_on_systolic(self):
        design, _df = _design(systolic=True)
        stats = extract_reduction_trees(design)
        assert stats["chains_extracted"] == 0


class TestPinReuse:
    def test_fig9_example(self):
        """Fig. 9: pins {A,B}, {A,C}, {B,C} over three dataflows fit in
        two physical pins."""
        live = {"df1": {0, 1}, "df2": {0, 2}, "df3": {1, 2}}
        assignment, n_phys = solve_pin_mapping(live, 3)
        assert n_phys == 2
        for k, pins in live.items():
            used = {assignment[(i, k)] for i in pins}
            assert len(used) == len(pins)  # no physical pin double-booked

    def test_single_dataflow_identity(self):
        live = {"only": {0, 1, 2}}
        assignment, n_phys = solve_pin_mapping(live, 3)
        assert n_phys == 3

    def test_empty(self):
        assignment, n_phys = solve_pin_mapping({}, 4)
        assert n_phys == 0 and assignment == {}


class TestPasses:
    def test_bitwidth_growth(self):
        design, _df = _design()
        infer_bitwidths(design)
        dag = design.dag
        for nid, node in dag.nodes.items():
            if node.kind == "mul":
                ins = [dag.nodes[e.src].width for e in dag.in_edges(nid)]
                assert node.width == min(sum(ins[:2]), 48)

    def test_power_gate_marks_partial_nodes(self):
        wl = kernels.gemm(8, 8, 8)
        dfa = kernels.gemm_dataflow("IJ", wl, 4, 4)
        dfb = kernels.gemm_dataflow("KJ", wl, 4, 4)
        design = generate(build_adg([dfa, dfb]))
        stats = power_gate(design)
        assert stats["gated_nodes"] > 0

    def test_full_pipeline_report(self):
        design, _df = _design(systolic=False)
        run_backend(design)
        assert "register_bits" in design.report
        assert "reduction" in design.report
        assert "pin_reuse" in design.report
        assert design.report["register_bits"] >= 0

    def test_baseline_options(self):
        opts = BackendOptions.baseline()
        assert not (opts.reduction_tree or opts.rewiring or opts.pin_reuse
                    or opts.power_gating)
