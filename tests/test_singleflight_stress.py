"""Single-flight dedup under concurrency: the in-flight registry that
makes concurrent ``execute_request`` calls for the same phase key wait
on one computation instead of each recomputing.

Three layers of hammering:

* :class:`SingleFlight` unit semantics — leader/waiter accounting,
  failure propagation (``BaseException`` included: a leader killed
  mid-flight must release its waiters, not deadlock them), slot release
  on both success and failure, waiter-timeout reclaim;
* ``execute_request`` — N threads against one cold spec run the
  pipeline exactly once and all share one :class:`DesignResult`;
* a live :class:`DesignServer` — concurrent HTTP clients requesting
  the same cold spec pay one schedule phase between them.
"""

import threading
import time

import pytest

from repro.obs import get_registry
from repro.service import (BatchEngine, DesignCache, ServerThread,
                           ServiceClient)
from repro.service.cache import SingleFlight
from repro.service.spec import DesignRequest, execute_request

TINY = dict(kernel="gemm", dataflows=("KJ",), array=(2, 2))


def schedule_count() -> float:
    return get_registry().value("repro_phase_seconds", phase="schedule")


def run_threads(n: int, target) -> list:
    """Run *target(i)* in n threads; returns [(value|exception), ...]."""
    out: list = [None] * n
    def wrap(i):
        try:
            out[i] = target(i)
        except BaseException as exc:  # noqa: BLE001 — collected on purpose
            out[i] = exc
    threads = [threading.Thread(target=wrap, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not any(t.is_alive() for t in threads), "deadlocked threads"
    return out


class TestSingleFlightUnit:
    def test_one_leader_many_waiters(self):
        flights = SingleFlight()
        calls = []
        gate = threading.Event()
        started = threading.Barrier(9)

        def compute():
            calls.append(1)
            gate.wait(10)
            return "value"

        def caller(_i):
            started.wait(10)
            return flights.run("p", "k", compute)

        # Hold the leader inside fn until everyone has had a chance to
        # join its flight.
        release = threading.Timer(0.2, gate.set)
        release.start()
        try:
            results = run_threads(9, caller)
        finally:
            release.cancel()
            gate.set()
        assert len(calls) == 1
        assert all(value == "value" for value, _ in results)
        assert sum(1 for _, lead in results if lead) == 1
        assert len(flights) == 0  # slot released

    def test_leader_failure_propagates_and_releases_slot(self):
        flights = SingleFlight()
        attempts = []
        gate = threading.Event()

        def explode():
            attempts.append(1)
            gate.wait(10)
            raise ValueError("boom")

        def caller(_i):
            return flights.run("p", "k", explode)

        threading.Timer(0.2, gate.set).start()
        results = run_threads(4, caller)
        assert len(attempts) == 1
        assert all(isinstance(r, ValueError) for r in results)
        # the failed flight is gone: a retry recomputes (and can heal)
        assert len(flights) == 0
        value, lead = flights.run("p", "k", lambda: "healed")
        assert value == "healed" and lead

    def test_killed_leader_releases_waiters(self):
        """A leader dying on a non-Exception BaseException (the
        killed-mid-flight scenario) must still wake its waiters and
        surface the kill — never leave them blocked forever."""
        flights = SingleFlight()
        gate = threading.Event()

        def die():
            gate.wait(10)
            raise KeyboardInterrupt

        def caller(_i):
            return flights.run("p", "k", die)

        threading.Timer(0.2, gate.set).start()
        results = run_threads(3, caller)
        assert all(isinstance(r, KeyboardInterrupt) for r in results)
        assert len(flights) == 0

    def test_waiter_timeout_reclaims(self):
        """A waiter that stops trusting a hung leader recomputes for
        itself instead of deadlocking."""
        flights = SingleFlight()
        hang = threading.Event()
        leader_in = threading.Event()

        def hung_leader():
            leader_in.set()
            hang.wait(30)
            return "stale"

        leader = threading.Thread(
            target=lambda: flights.run("p", "k", hung_leader))
        leader.start()
        assert leader_in.wait(10)
        value, lead = flights.run("p", "k", lambda: "fresh",
                                  timeout=0.05)
        assert value == "fresh" and lead
        hang.set()
        leader.join(timeout=10)
        assert not leader.is_alive()

    def test_distinct_keys_do_not_serialize(self):
        flights = SingleFlight()
        barrier = threading.Barrier(4, timeout=10)

        def compute(i):
            def fn():
                # All four computations must be in flight at once for
                # the barrier to open — same phase, distinct keys.
                barrier.wait()
                return i
            return flights.run("p", f"k{i}", fn)

        results = run_threads(4, compute)
        assert sorted(value for value, _ in results) == [0, 1, 2, 3]
        assert all(lead for _, lead in results)


class TestExecuteRequestDedup:
    def test_n_threads_one_pipeline_run(self, tmp_path):
        cache = DesignCache(root=tmp_path / "cache")
        request = DesignRequest(**TINY)
        before = schedule_count()
        results = run_threads(
            8, lambda _i: execute_request(request, cache=cache))
        assert schedule_count() - before == 1
        assert not any(isinstance(r, BaseException) for r in results)
        assert all(r.ok for r in results)
        # every caller shares the leader's DesignResult object
        assert all(r is results[0] for r in results)

    def test_backend_variants_share_one_schedule(self, tmp_path):
        """Concurrent requests for *different* backends of one design
        single-flight the schedule through the design_key slot."""
        cache = DesignCache(root=tmp_path / "cache")
        backends = ["verilog", "hls_c"] * 3
        before = schedule_count()
        results = run_threads(
            len(backends),
            lambda i: execute_request(
                DesignRequest(backend=backends[i], **TINY), cache=cache))
        assert schedule_count() - before == 1
        assert all(r.ok for r in results)
        assert len({r.spec_hash for r in results}) == 2


class TestServerDedup:
    @pytest.fixture()
    def server(self, tmp_path):
        cache = DesignCache(root=tmp_path / "serve-cache")
        handle = ServerThread(BatchEngine(cache=cache)).start()
        yield handle
        handle.stop()

    def test_concurrent_clients_one_schedule(self, server):
        spec = {"kernel": "gemm", "dataflows": ["KJ"], "array": [3, 3]}
        before = schedule_count()

        def hit(_i):
            with ServiceClient.from_url(server.url) as client:
                return client.generate(spec)

        results = run_threads(8, hit)
        assert not any(isinstance(r, BaseException) for r in results)
        assert all(r["ok"] for r in results)
        assert len({r["spec_hash"] for r in results}) == 1
        assert schedule_count() - before == 1
