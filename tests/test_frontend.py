"""Integration tests for the LEGO front end (§IV): ADG construction,
fusion heuristics, and memory banking."""

import pytest

from repro.core import kernels
from repro.core.adg import MemoryLayout
from repro.core.frontend import FrontendConfig, build_adg
from repro.core.fusion import naive_merge_links
from repro.core.interconnect import ReuseKind
from repro.core.memory_analysis import (analyze_banks, distribution_switch_size,
                                        fuse_layouts, verify_conflict_free)


class TestSingleDataflowADG:
    def test_gemm_kj_systolic(self):
        wl = kernels.gemm(16, 16, 16)
        df = kernels.gemm_dataflow("KJ", wl, 4, 4)
        adg = build_adg([df])
        stats = adg.stats()
        assert stats["n_fus"] == 16
        # X flows along rows (4 roots), Y drains along columns (4 commit
        # points), W is loaded per-FU (16 data nodes).
        assert len(adg.data_nodes_for("X")) == 4
        assert len(adg.data_nodes_for("Y")) == 4
        assert len(adg.data_nodes_for("W")) == 16
        # Each FU has exactly one X source (either memory or one link).
        for fu in df.fu_coords():
            n_in = len(adg.inputs_of(fu, "X"))
            is_root = any(n.fu == fu for n in adg.data_nodes_for("X"))
            assert n_in + (1 if is_root else 0) == 1

    def test_output_tree_drains(self):
        """Every FU's partial Y must reach a committing data node."""
        wl = kernels.gemm(16, 16, 16)
        df = kernels.gemm_dataflow("KJ", wl, 4, 4)
        adg = build_adg([df])
        nexthop = {c.src: c.dst for c in adg.connections_for("Y")}
        commits = {n.fu for n in adg.data_nodes_for("Y")}
        for fu in df.fu_coords():
            cur, seen = fu, set()
            while cur not in commits:
                assert cur in nexthop and cur not in seen
                seen.add(cur)
                cur = nexthop[cur]

    def test_stationary_recorded(self):
        wl = kernels.gemm(16, 16, 16)
        df = kernels.gemm_dataflow("KJ", wl, 4, 4)
        adg = build_adg([df])
        assert (df.name, "W") in adg.stationary

    def test_conv_ohow_broadcast_weights(self):
        wl = kernels.conv2d(1, 8, 8, 8, 8, 3, 3)
        df = kernels.conv2d_dataflow("OHOW", wl, 4, 4)
        adg = build_adg([df])
        # Broadcast chains make W a single data node.
        assert len(adg.data_nodes_for("W")) == 1
        # All W links are zero-depth wires.
        assert all(c.depth == 0 for c in adg.connections_for("W"))

    def test_memory_fetch_cost_controls_reuse(self):
        wl = kernels.conv2d(1, 8, 8, 8, 8, 3, 3)
        df = kernels.conv2d_dataflow("OHOW", wl, 4, 4)
        cheap_mem = build_adg([df], FrontendConfig(memory_fetch_cost=0))
        # With free memory ports nothing should bother with delay FIFOs.
        assert not [c for c in cheap_mem.connections if c.depth > 0]

    def test_3d_array(self):
        """LEGO does not limit the number of spatial dims (§IV-A-c)."""
        wl = kernels.conv2d(1, 4, 4, 8, 8, 3, 3)
        from repro.core.dataflow import Dataflow
        df = Dataflow.build(wl, spatial=[("oh", 2), ("ow", 2), ("oc", 2)],
                            control=(0, 0, 0), name="OHOWOC")
        adg = build_adg([df])
        assert adg.n_fus == 8
        assert adg.stats()["n_connections"] > 0


class TestFusion:
    def test_fused_shares_links(self):
        wl = kernels.gemm(16, 16, 16)
        dfi = kernels.gemm_dataflow("IJ", wl, 4, 4)
        dfk = kernels.gemm_dataflow("KJ", wl, 4, 4)
        fused = build_adg([dfi, dfk])
        naive = build_adg([dfi, dfk], FrontendConfig(fuse_heuristic=False))
        assert fused.stats()["n_connections"] <= naive.stats()["n_connections"]
        assert fused.stats()["mux_inputs"] <= naive.stats()["mux_inputs"]
        # Fused links carry both dataflow tags where shared.
        shared = [c for c in fused.connections if len(c.dataflows) == 2]
        assert shared, "IJ and KJ share X movement along j"

    def test_fused_covers_both_dataflows(self):
        wl = kernels.conv2d(1, 8, 8, 8, 8, 3, 3)
        dfa = kernels.conv2d_dataflow("OHOW", wl, 4, 4)
        dfb = kernels.conv2d_dataflow("ICOC", wl, 4, 4)
        adg = build_adg([dfa, dfb])
        for df in (dfa, dfb):
            for tensor in ("X", "W", "Y"):
                # Under each dataflow every FU is spanned: it either has an
                # incoming link, is a data node, or (for outputs) an
                # outgoing link toward a commit point.
                nodes = {n.fu for n in adg.data_nodes_for(tensor, df.name)}
                conns = adg.connections_for(tensor, df.name)
                covered = set(nodes)
                for c in conns:
                    covered.add(c.dst)
                    covered.add(c.src)
                assert covered == set(df.fu_coords()), (df.name, tensor)

    def test_mismatched_shapes_rejected(self):
        wl = kernels.gemm(16, 16, 16)
        dfa = kernels.gemm_dataflow("IJ", wl, 4, 4)
        dfb = kernels.gemm_dataflow("KJ", wl, 2, 8)
        with pytest.raises(ValueError, match="share the FU array shape"):
            build_adg([dfa, dfb])

    def test_duplicate_dataflow_names_rejected(self):
        wl = kernels.gemm(16, 16, 16)
        dfa = kernels.gemm_dataflow("IJ", wl, 4, 4)
        with pytest.raises(ValueError, match="unique"):
            build_adg([dfa, dfa])

    def test_naive_merge_links_helper(self):
        merged = naive_merge_links({
            "a": [((0, 0), (0, 1))],
            "b": [((0, 0), (0, 1)), ((1, 0), (1, 1))],
        })
        assert merged[((0, 0), (0, 1))] == {"a", "b"}
        assert len(merged) == 2


class TestMemoryAnalysis:
    def test_fig6a_banking(self):
        """Fig. 6(a): 3 data nodes accessing X[0,0], X[1,0], X[2,0] at t=0
        need 3 banks along IH and 1 along IW."""
        wl = kernels.conv2d(1, 4, 4, 8, 8, 3, 3)
        from repro.core.dataflow import Dataflow
        df = Dataflow.build(wl, spatial=[("kh", 3), ("oh", 1)],
                            control=(0, 0), name="KHOH")
        layout = analyze_banks(df, "X", [(0, 0), (1, 0), (2, 0)])
        # X rank is 4: (n, ic, ih, iw); deltas appear along ih.
        assert layout.bank_shape[2] == 3
        assert layout.bank_shape[3] == 1
        assert verify_conflict_free(layout, df, "X", [(0, 0), (1, 0), (2, 0)])

    def test_gcd_reduction(self):
        """Fig. 6 note: deltas {2, 4} have gcd 2 -> 3 banks, stride 2."""
        layout = MemoryLayout("X", (3,), (2,), 3)
        assert layout.bank_of((0,)) == (0,)
        assert layout.bank_of((2,)) == (1,)
        assert layout.bank_of((4,)) == (2,)
        assert layout.bank_of((6,)) == (0,)

    def test_conflict_freedom_full_frontend(self):
        wl = kernels.conv2d(1, 8, 8, 8, 8, 3, 3)
        df = kernels.conv2d_dataflow("OHOW", wl, 4, 4)
        adg = build_adg([df])
        for tensor, layout in adg.memory.items():
            nodes = [n.fu for n in adg.data_nodes_for(tensor, df.name)]
            assert verify_conflict_free(layout, df, tensor, nodes), tensor

    def test_fused_layout_takes_max(self):
        a = MemoryLayout("X", (3, 1), (1, 1), 3)
        b = MemoryLayout("X", (2, 2), (1, 1), 4)
        fused = fuse_layouts([a, b])
        assert fused.n_banks == 4
        assert fused.n_data_nodes == 4

    def test_fuse_rejects_mixed_tensors(self):
        a = MemoryLayout("X", (1,), (1,), 1)
        b = MemoryLayout("Y", (1,), (1,), 1)
        with pytest.raises(ValueError):
            fuse_layouts([a, b])

    def test_switch_size(self):
        layout = MemoryLayout("X", (2, 2), (1, 1), 3)
        assert distribution_switch_size(layout) == 12

    def test_empty_data_nodes(self):
        wl = kernels.gemm(8, 8, 8)
        df = kernels.gemm_dataflow("KJ", wl, 2, 2)
        layout = analyze_banks(df, "X", [])
        assert layout.n_banks == 1
