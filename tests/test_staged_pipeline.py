"""Staged compilation with content-addressed intermediate caching.

The cold path of ``execute_request`` is split into hashed phases
(dataflows→ADG, ADG→scheduled design, design→golden vectors,
design→artifacts); these tests pin down the phase-key algebra, the
cross-backend reuse of the scheduled design and simulation vectors, and
— most importantly — that a staged run produces **byte-identical**
``DesignResult`` records to a fully uncached run (timing fields aside,
which are the only nondeterministic part of a record).
"""

import dataclasses

import pytest

from repro.backend import BackendOptions
from repro.serialize import canonical_dumps
from repro.service import BatchEngine, DesignCache
from repro.service.spec import DesignRequest, execute_request

TINY = dict(kernel="gemm", dataflows=("KJ",), array=(2, 2))


def record_identity(record: dict) -> str:
    """Canonical bytes of a result record minus its timing fields."""
    out = {k: v for k, v in record.items()
           if k not in ("elapsed_s", "phases")}
    return canonical_dumps(out)


@pytest.fixture()
def engine(tmp_path):
    return BatchEngine(cache=DesignCache(root=tmp_path / "cache"))


class TestPhaseKeys:
    def test_design_key_ignores_backend_and_module(self):
        base = DesignRequest(**TINY)
        assert base.design_key() == \
            DesignRequest(backend="hls_c", **TINY).design_key()
        assert base.design_key() == \
            DesignRequest(module="other", **TINY).design_key()

    def test_design_key_tracks_scheduling_inputs(self):
        base = DesignRequest(**TINY)
        assert base.design_key() != \
            DesignRequest(**dict(TINY, array=(4, 4))).design_key()
        assert base.design_key() != DesignRequest(
            options=BackendOptions.baseline(), **TINY).design_key()

    def test_adg_key_ignores_backend_pass_options(self):
        base = DesignRequest(**TINY)
        tuned = DesignRequest(options=BackendOptions.baseline(), **TINY)
        assert base.adg_key() == tuned.adg_key()
        assert base.design_key() != tuned.design_key()

    def test_emit_testbench_is_emission_only(self):
        base = DesignRequest(backend="hls_c", **TINY)
        lean = DesignRequest(
            backend="hls_c",
            options=BackendOptions(emit_testbench=False), **TINY)
        # different artifacts -> different spec hash, same design phase
        assert base.spec_hash() != lean.spec_hash()
        assert base.design_key() == lean.design_key()

    def test_spec_hash_backward_compatible(self):
        """Adding emit_testbench must not move any pre-existing cache
        address: the default value is omitted from the canonical form."""
        request = DesignRequest(**TINY)
        assert "emit_testbench" not in request.canonical_json()
        lean = DesignRequest(
            options=BackendOptions(emit_testbench=False), **TINY)
        assert "emit_testbench" in lean.canonical_json()

    def test_sim_key_tracks_dataflow(self):
        request = DesignRequest(**TINY)
        assert request.sim_key("GEMM-KJ") != request.sim_key("GEMM-IJ")
        assert request.sim_key("GEMM-KJ") == \
            DesignRequest(backend="hls_c", **TINY).sim_key("GEMM-KJ")


class TestStagedReuse:
    def test_second_backend_reuses_scheduled_design(self, engine):
        cache = engine.cache
        first = engine.submit(DesignRequest(**TINY))
        assert first.ok and not first.from_cache
        assert "schedule" in first.phases and "adg" in first.phases
        before = cache.stats.as_dict()
        second = engine.submit(DesignRequest(backend="hls_c", **TINY))
        assert second.ok and not second.from_cache
        # the scheduled design came from the intermediate cache: no
        # front-end or pass phase ran again
        assert "schedule" not in second.phases
        assert "adg" not in second.phases
        after = cache.stats.as_dict()
        assert (after["phase_hits"] + after["live_hits"]
                > before["phase_hits"] + before["live_hits"])

    def test_disk_phase_record_survives_processes(self, engine):
        """A fresh cache object on the same root (a new process, a pool
        worker) loads the scheduled design from disk."""
        engine.submit(DesignRequest(**TINY))
        sibling = BatchEngine(cache=DesignCache(root=engine.cache.root))
        result = sibling.submit(DesignRequest(backend="hls_c", **TINY))
        assert result.ok and not result.from_cache
        assert "design_load" in result.phases
        assert "schedule" not in result.phases
        assert sibling.cache.stats.phase_hits >= 1

    def test_staged_record_byte_identical_to_uncached(self, engine):
        request = DesignRequest(backend="hls_c", **TINY)
        uncached = execute_request(request)  # no cache at all
        engine.submit(DesignRequest(**TINY))  # primes the design phase
        staged = engine.submit(request)
        assert staged.ok and not staged.from_cache
        assert record_identity(staged.to_record()) == \
            record_identity(uncached.to_record())

    def test_warm_hit_byte_identical(self, engine):
        request = DesignRequest(**TINY)
        cold = engine.submit(request)
        warm = engine.submit(request)
        assert warm.from_cache
        assert record_identity(warm.to_record()) == \
            record_identity(cold.to_record())

    def test_module_variant_reuses_golden_vectors(self, engine):
        engine.submit(DesignRequest(backend="hls_c", **TINY))
        sim_hits = engine.cache.stats.phase_hits
        other = engine.submit(DesignRequest(backend="hls_c",
                                            module="variant", **TINY))
        assert other.ok and not other.from_cache
        assert set(other.artifacts) == {"variant.c", "variant_tb.c"}
        assert engine.cache.stats.phase_hits > sim_hits

    def test_parallel_workers_share_phase_records(self, engine):
        """Pool workers rebuild the cache from its spec and hit the
        same on-disk phase records."""
        engine.submit(DesignRequest(**TINY))  # prime the design phase
        results = engine.generate_many(
            [DesignRequest(backend="hls_c", **TINY),
             DesignRequest(backend="hls_c", module="m2", **TINY)],
            workers=2)
        assert all(r.ok for r in results)
        assert all("schedule" not in r.phases for r in results)


class TestTestbenchOnDemand:
    def test_lean_emit_skips_testbench(self, engine):
        lean = engine.submit(DesignRequest(
            backend="hls_c",
            options=BackendOptions(emit_testbench=False), **TINY))
        assert lean.ok
        assert set(lean.artifacts) == {"lego_top.c"}
        full = engine.submit(DesignRequest(backend="hls_c", **TINY))
        assert set(full.artifacts) == {"lego_top.c", "lego_top_tb.c"}
        # the kernel translation unit is identical either way
        assert lean.artifacts["lego_top.c"] == \
            full.artifacts["lego_top.c"]

    def test_cli_no_testbench_flag(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "lean.c"
        code = main(["generate", "--kernel", "gemm", "--dataflows", "KJ",
                     "--array", "2", "2", "--backend", "hls_c",
                     "--no-testbench", "--no-cache", "-o", str(out)])
        assert code == 0
        assert out.is_file()
        assert not (tmp_path / "lean_tb.c").exists()


class TestJobExecutor:
    def test_dedicated_pool_sized_with_max_jobs(self):
        from repro.service.server import DesignServer

        server = DesignServer(max_jobs=7)
        try:
            assert server._job_executor._max_workers == 7
        finally:
            server._job_executor.shutdown(wait=False)
        big = DesignServer(max_jobs=4096)
        try:
            assert big._job_executor._max_workers == 32
        finally:
            big._job_executor.shutdown(wait=False)

    def test_generate_not_starved_by_saturated_job_pool(self):
        """With every dedicated job thread busy, synchronous /generate
        still answers on the default executor."""
        import threading

        from repro.service import ServiceClient
        from repro.service.server import ServerThread

        release = threading.Event()
        thread = ServerThread(BatchEngine(cache=None), max_jobs=2)

        def stuck_job(job, requests):
            job.start()
            release.wait(30)
            job.finish({"results": [], "ok": 0, "from_cache": 0,
                        "failed": []})

        thread.server._run_batch_job = stuck_job
        try:
            with thread as url, ServiceClient.from_url(url) as client:
                for _ in range(2):  # saturate the dedicated pool
                    client.batch([dict(TINY, dataflows=["KJ"],
                                       array=[2, 2])])
                result = client.generate(**dict(
                    TINY, dataflows=["KJ"], array=[2, 2]))
                assert result["ok"]
        finally:
            release.set()
