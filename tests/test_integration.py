"""End-to-end functional verification: generated designs must compute
bit-exact results against numpy references, through the complete flow —
interconnect solving, MST planning, fusion, memory banking, codegen, and
every backend pass.  This is the reproduction's substitute for the
paper's RTL-simulation validation."""

import numpy as np
import pytest

from repro.backend import BackendOptions, generate, run_backend
from repro.core import kernels
from repro.core.frontend import FrontendConfig, build_adg
from repro.sim.dag_sim import Simulator, make_input

RNG = np.random.default_rng(7)


def _conv_ref(x, w, oh, ow):
    """Reference for the workload's semantics: ih = oh + kh - 1 with
    index -1 reading zero (one implicit top/left padding row)."""
    n, ic, ih, iw = x.shape
    oc, _, kh_n, kw_n = w.shape
    xp = np.zeros((n, ic, ih + 1, iw + 1), dtype=np.int64)
    xp[:, :, 1:, 1:] = x
    y = np.zeros((n, oc, oh, ow), dtype=np.int64)
    for kh in range(kh_n):
        for kw in range(kw_n):
            y += np.einsum("nchw,oc->nohw", xp[:, :, kh:kh + oh, kw:kw + ow],
                           w[:, :, kh, kw])
    return y


def _run_gemm(design, name):
    x = make_input(design, name, "X", RNG)
    w = make_input(design, name, "W", RNG)
    y = Simulator(design, name).run({"X": x, "W": w}).outputs["Y"]
    return np.array_equal(y, x @ w)


class TestGemmAllDataflows:
    @pytest.mark.parametrize("kind", ["IJ", "IK", "KJ"])
    @pytest.mark.parametrize("systolic", [True, False])
    def test_gemm(self, kind, systolic):
        wl = kernels.gemm(8, 8, 8)
        df = kernels.gemm_dataflow(kind, wl, 4, 4, systolic=systolic)
        design = run_backend(generate(build_adg([df])))
        assert _run_gemm(design, df.name)

    def test_gemm_nonsquare_array(self):
        wl = kernels.gemm(8, 8, 8)
        df = kernels.gemm_dataflow("KJ", wl, 2, 8)
        design = run_backend(generate(build_adg([df])))
        assert _run_gemm(design, df.name)

    def test_gemm_without_optimizations(self):
        """The baseline (delay matching only) must also be correct."""
        wl = kernels.gemm(8, 8, 8)
        df = kernels.gemm_dataflow("KJ", wl, 4, 4, systolic=False)
        design = run_backend(generate(build_adg([df])),
                             BackendOptions.baseline())
        assert _run_gemm(design, df.name)

    def test_gemm_per_fu_control(self):
        wl = kernels.gemm(8, 8, 8)
        df = kernels.gemm_dataflow("KJ", wl, 4, 4)
        design = run_backend(generate(build_adg([df]), share_control=False))
        assert _run_gemm(design, df.name)

    def test_fused_mj_both_configs(self):
        wl = kernels.gemm(8, 8, 8)
        dfi = kernels.gemm_dataflow("IJ", wl, 4, 4)
        dfk = kernels.gemm_dataflow("KJ", wl, 4, 4)
        design = run_backend(generate(build_adg([dfi, dfk])))
        assert _run_gemm(design, dfi.name)
        assert _run_gemm(design, dfk.name)


class TestConvAllDataflows:
    @pytest.mark.parametrize("kind", ["OHOW", "ICOC", "KHOH", "OCOH"])
    def test_conv(self, kind):
        wl = kernels.conv2d(1, 4, 4, 4, 4, 3, 3)
        df = kernels.conv2d_dataflow(kind, wl, 2, 2)
        design = run_backend(generate(build_adg([df])))
        x = make_input(design, df.name, "X", RNG)
        w = make_input(design, df.name, "W", RNG)
        y = Simulator(design, df.name).run({"X": x, "W": w}).outputs["Y"]
        assert np.array_equal(y, _conv_ref(x, w, 4, 4))

    def test_fused_conv_both_configs(self):
        wl = kernels.conv2d(1, 4, 4, 4, 4, 3, 3)
        dfa = kernels.conv2d_dataflow("OHOW", wl, 4, 4)
        dfb = kernels.conv2d_dataflow("ICOC", wl, 4, 4)
        design = run_backend(generate(build_adg([dfa, dfb])))
        for name in (dfa.name, dfb.name):
            x = make_input(design, name, "X", RNG)
            w = make_input(design, name, "W", RNG)
            y = Simulator(design, name).run({"X": x, "W": w}).outputs["Y"]
            assert np.array_equal(y, _conv_ref(x, w, 4, 4)), name

    def test_naive_merge_also_correct(self):
        """Table V's naive-mux baseline is worse hardware, not wrong
        hardware."""
        wl = kernels.conv2d(1, 4, 4, 4, 4, 3, 3)
        dfa = kernels.conv2d_dataflow("OHOW", wl, 2, 2)
        dfb = kernels.conv2d_dataflow("ICOC", wl, 2, 2)
        design = run_backend(generate(build_adg(
            [dfa, dfb], FrontendConfig(fuse_heuristic=False))))
        for name in (dfa.name, dfb.name):
            x = make_input(design, name, "X", RNG)
            w = make_input(design, name, "W", RNG)
            y = Simulator(design, name).run({"X": x, "W": w}).outputs["Y"]
            assert np.array_equal(y, _conv_ref(x, w, 4, 4)), name


class TestOtherKernels:
    @pytest.mark.parametrize("kind", ["IJ", "KJ"])
    def test_mttkrp(self, kind):
        wl = kernels.mttkrp(4, 4, 4, 4)
        df = kernels.mttkrp_dataflow(kind, wl, 4, 4)
        design = run_backend(generate(build_adg([df])))
        a = make_input(design, df.name, "A", RNG)
        b = make_input(design, df.name, "B", RNG)
        c = make_input(design, df.name, "C", RNG)
        y = Simulator(design, df.name).run({"A": a, "B": b, "C": c}).outputs["Y"]
        assert np.array_equal(y, np.einsum("ikl,kj,lj->ij", a, b, c))

    def test_attention_contractions(self):
        qk = kernels.attention_qk(2, 4, 4, 8)
        from repro.core.dataflow import Dataflow
        df = Dataflow.build(qk, spatial=[("q", 4), ("k", 4)],
                            control=(1, 1), name="Attn-QK")
        design = run_backend(generate(build_adg([df])))
        q = make_input(design, df.name, "Q", RNG)
        k = make_input(design, df.name, "K", RNG)
        s = Simulator(design, df.name).run({"Q": q, "K": k}).outputs["S"]
        assert np.array_equal(s, np.einsum("hqd,hkd->hqk", q, k))

    def test_bitfusion_gemm(self):
        wl = kernels.bitfusion_gemm(4, 4, 4)
        from repro.core.dataflow import Dataflow
        df = Dataflow.build(wl, spatial=[("i", 2), ("j", 2)],
                            control=(1, 1), name="BitFusion")
        design = run_backend(generate(build_adg([df])))
        rng = np.random.default_rng(3)
        a = make_input(design, df.name, "A", rng, 0, 4)
        b = make_input(design, df.name, "B", rng, 0, 4)
        c = make_input(design, df.name, "C", rng, 0, 3)
        y = Simulator(design, df.name).run({"A": a, "B": b, "C": c}).outputs["Y"]
        ref = np.einsum("ik,kj->ijk", a, b)  # per-k partial products
        ref = (ref * (1 << c)[None, None, :]).sum(axis=2)
        assert np.array_equal(y, ref)

    def test_3d_fu_array(self):
        from repro.core.dataflow import Dataflow
        wl = kernels.gemm(4, 4, 4)
        df = Dataflow.build(wl, spatial=[("i", 2), ("j", 2), ("k", 2)],
                            control=(0, 0, 0), name="GEMM-3D")
        design = run_backend(generate(build_adg([df])))
        assert _run_gemm(design, df.name)


class TestSimulatorDetails:
    def test_activity_counters(self):
        wl = kernels.gemm(8, 8, 8)
        df = kernels.gemm_dataflow("KJ", wl, 4, 4)
        design = run_backend(generate(build_adg([df])))
        sim = Simulator(design, df.name)
        res = sim.run({"X": make_input(design, df.name, "X", RNG),
                       "W": make_input(design, df.name, "W", RNG)})
        assert res.mem_writes["Y"] > 0
        assert res.mem_reads["X"] > 0
        assert any(v > 0 for v in res.toggles.values())

    def test_wrong_shape_rejected(self):
        wl = kernels.gemm(8, 8, 8)
        df = kernels.gemm_dataflow("KJ", wl, 4, 4)
        design = run_backend(generate(build_adg([df])))
        sim = Simulator(design, df.name)
        with pytest.raises(ValueError, match="shape"):
            sim.run({"X": np.zeros((3, 3)), "W": np.zeros((8, 8))})

    def test_missing_input_defaults_to_zero(self):
        wl = kernels.gemm(8, 8, 8)
        df = kernels.gemm_dataflow("KJ", wl, 4, 4)
        design = run_backend(generate(build_adg([df])))
        res = Simulator(design, df.name).run(
            {"X": make_input(design, df.name, "X", RNG)})
        assert not res.outputs["Y"].any()

    def test_make_input_unknown_tensor(self):
        wl = kernels.gemm(8, 8, 8)
        df = kernels.gemm_dataflow("KJ", wl, 4, 4)
        design = run_backend(generate(build_adg([df])))
        with pytest.raises(KeyError):
            make_input(design, df.name, "Z", RNG)
