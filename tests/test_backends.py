"""Multi-backend emitter subsystem: registry semantics, the HLS-C
family (including compile-and-run validation against the Python
cycle-accurate simulator), hash/cache isolation across families, and
the serving/CLI surface."""

import json
import os
import pathlib
import shutil
import subprocess
import sys

import pytest

from repro.backends import (BackendFamily, backend_names, backends_info,
                            get_backend, register_backend)
from repro.backends.hls_c import emit_hls_c, emit_hls_testbench
from repro.service import BatchEngine, DesignCache
from repro.service.spec import DesignRequest, DesignResult, execute_request

TINY = dict(kernel="gemm", dataflows=("KJ",), array=(2, 2))
#: Golden content hashes of the TINY request per family.  These pin the
#: canonical form: the verilog hash must equal the pre-multi-backend
#: hash (warm caches survive the upgrade), and the hls_c hash must
#: differ (cache entries never collide across families).
GOLDEN_VERILOG = ("dab32cbdb4efb6fa0bc714e96a71de9b"
                  "b0e33143f4df5ccbbd4e16dfb64decaa")
GOLDEN_HLS_C = ("3fe83fd6e9cb26ac42e43f888dacab0d"
                "dcbf38777a153b5e6e18e8aa2cb67e17")


def _compiler():
    return shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")


@pytest.fixture(scope="module")
def tiny_design():
    from repro.backend import generate, run_backend
    from repro.core.frontend import build_adg

    request = DesignRequest(**TINY)
    return run_backend(generate(build_adg(request.build_dataflows(),
                                          request.frontend)),
                       request.options)


class TestRegistry:
    def test_builtin_families_registered(self):
        assert backend_names() == ("hls_c", "verilog")

    def test_lookup_reports_vocabulary(self):
        with pytest.raises(ValueError, match=r"hls_c.*verilog"):
            get_backend("firrtl")

    def test_families_implement_protocol(self):
        for name in backend_names():
            family = get_backend(name)
            assert isinstance(family, BackendFamily)
            assert family.name == name
            assert family.suffix.startswith(".")

    def test_double_registration_rejected(self):
        family = get_backend("verilog")
        with pytest.raises(ValueError, match="already registered"):
            register_backend(family)
        register_backend(family, replace=True)  # explicit override ok

    def test_non_family_rejected(self):
        with pytest.raises(TypeError):
            register_backend(object())

    def test_backends_info_shape(self):
        info = backends_info()
        assert [b["name"] for b in info] == list(backend_names())
        for entry in info:
            assert entry["artifacts"]
            assert "reduction_tree" in entry["options"]
            assert entry["options"]["reduction_tree"]["default"] is True


class TestRequestValidation:
    def test_unknown_backend_lists_supported(self):
        with pytest.raises(ValueError, match=r"hls_c.*verilog"):
            DesignRequest(backend="chisel", **TINY)

    def test_unknown_kernel_lists_supported(self):
        with pytest.raises(ValueError, match=r"gemm.*conv2d.*mttkrp"):
            DesignRequest(kernel="winograd")

    def test_bad_options_rejected_at_construction(self):
        with pytest.raises(ValueError, match="BackendOptions"):
            DesignRequest(options="fast", **TINY)


class TestHashIsolation:
    def test_golden_hashes_per_family(self):
        assert DesignRequest(**TINY).spec_hash() == GOLDEN_VERILOG
        assert DesignRequest(backend="hls_c",
                             **TINY).spec_hash() == GOLDEN_HLS_C

    def test_default_backend_hashes_like_legacy(self):
        """A verilog request's canonical form carries no backend key, so
        its address equals the pre-multi-backend one."""
        request = DesignRequest(**TINY)
        canonical = json.loads(request.canonical_json())
        assert "backend" not in canonical
        assert "backend" in request.to_dict()

    def test_canonical_json_round_trips(self):
        request = DesignRequest(backend="hls_c", **TINY)
        clone = DesignRequest.from_dict(json.loads(
            request.canonical_json()))
        assert clone == request
        assert clone.spec_hash() == request.spec_hash()

    def test_legacy_record_loads_as_verilog(self):
        """Pre-existing cache records (no backend, no artifacts) must
        load as the verilog family with the RTL as sole artifact."""
        legacy_request = DesignRequest(**TINY).to_dict()
        del legacy_request["backend"]
        record = {"request": legacy_request, "design": {}, "rtl": "module x;",
                  "summary": "s", "elapsed_s": 0.1}
        result = DesignResult.from_record("somehash", record)
        assert result.request.backend == "verilog"
        assert result.artifacts == {"lego_top.v": "module x;"}
        assert result.request.spec_hash() == GOLDEN_VERILOG

    def test_warm_hit_never_crosses_families(self, tmp_path):
        engine = BatchEngine(cache=DesignCache(root=tmp_path / "cache"))
        first = engine.submit(DesignRequest(**TINY))
        assert first.ok and not first.from_cache
        again = engine.submit(DesignRequest(**TINY))
        assert again.from_cache
        crossed = engine.submit(DesignRequest(backend="hls_c", **TINY))
        assert crossed.ok
        assert not crossed.from_cache, \
            "hls_c must not be served the verilog family's cache entry"
        assert set(crossed.artifacts) == {"lego_top.c", "lego_top_tb.c"}
        assert set(again.artifacts) == {"lego_top.v"}


class TestVerilogFamily:
    def test_emit_matches_legacy_path(self, tiny_design):
        from repro.backend.verilog import emit_verilog

        artifacts = get_backend("verilog").emit(tiny_design,
                                                module_name="m")
        assert artifacts == {"m.v": emit_verilog(tiny_design,
                                                 module_name="m")}

    def test_execute_request_primary_is_rtl(self):
        result = execute_request(DesignRequest(**TINY))
        assert result.ok
        assert result.artifacts == {"lego_top.v": result.rtl}
        assert "module lego_top" in result.rtl


class TestHlsCFamily:
    def test_emission_is_deterministic(self, tiny_design):
        assert emit_hls_c(tiny_design) == emit_hls_c(tiny_design)

    def test_structure(self, tiny_design):
        source = emit_hls_c(tiny_design, module_name="tiny")
        assert "int tiny(int cfg_dataflow" in source
        assert "#pragma HLS PIPELINE II=1" in source
        assert "#pragma HLS UNROLL" in source
        assert "static int df0_run(" in source
        assert source.count("{") == source.count("}")

    def test_testbench_references_top(self, tiny_design):
        bench = emit_hls_testbench(tiny_design, "GEMM-KJ",
                                   module_name="tiny")
        assert "extern int tiny(int cfg_dataflow" in bench
        assert "TESTBENCH PASSED" in bench

    def test_execute_request_emits_both_artifacts(self):
        result = execute_request(DesignRequest(backend="hls_c", **TINY))
        assert result.ok
        assert list(result.artifacts) == ["lego_top.c", "lego_top_tb.c"]
        assert result.rtl == result.artifacts["lego_top.c"]

    @pytest.mark.skipif(_compiler() is None,
                        reason="no system C compiler available")
    def test_compiles_and_reproduces_simulator(self, tiny_design,
                                               tmp_path):
        """The acceptance bar: the lowered C compiles with the system C
        compiler and its baked testbench (golden vectors from the Python
        cycle-accurate simulator) passes bit for bit."""
        (tmp_path / "top.c").write_text(emit_hls_c(tiny_design))
        (tmp_path / "tb.c").write_text(
            emit_hls_testbench(tiny_design, "GEMM-KJ"))
        compile_run = subprocess.run(
            [_compiler(), "-O1", "-o", str(tmp_path / "tb"),
             str(tmp_path / "top.c"), str(tmp_path / "tb.c")],
            capture_output=True, text=True)
        assert compile_run.returncode == 0, compile_run.stderr
        bench = subprocess.run([str(tmp_path / "tb")],
                               capture_output=True, text=True)
        assert bench.returncode == 0, bench.stdout + bench.stderr
        assert "TESTBENCH PASSED" in bench.stdout

    @pytest.mark.skipif(_compiler() is None,
                        reason="no system C compiler available")
    def test_fused_design_every_dataflow_passes(self, tmp_path):
        """A fused multi-dataflow design exercises the config-selected
        operand muxes: every cfg_dataflow ordinal must validate."""
        from repro.backend import generate, run_backend
        from repro.core.frontend import build_adg

        request = DesignRequest(kernel="gemm", dataflows=("KJ", "IJ"),
                                array=(2, 2))
        design = run_backend(generate(build_adg(
            request.build_dataflows(), request.frontend)),
            request.options)
        (tmp_path / "top.c").write_text(emit_hls_c(design))
        for dataflow in sorted(design.configs):
            (tmp_path / "tb.c").write_text(
                emit_hls_testbench(design, dataflow))
            compile_run = subprocess.run(
                [_compiler(), "-O1", "-o", str(tmp_path / "tb"),
                 str(tmp_path / "top.c"), str(tmp_path / "tb.c")],
                capture_output=True, text=True)
            assert compile_run.returncode == 0, compile_run.stderr
            bench = subprocess.run([str(tmp_path / "tb")],
                                   capture_output=True, text=True)
            assert "TESTBENCH PASSED" in bench.stdout, \
                (dataflow, bench.stdout)


class TestEngineRouting:
    def test_requests_from_space_backend(self):
        from repro.dse.explorer import DesignSpace
        from repro.service.engine import requests_from_space

        space = DesignSpace(arrays=((2, 2),), buffer_kb=(128.0,),
                            dram_gbps=(16.0,), dataflow_sets=(("MN",),))
        default = requests_from_space(space)
        retargeted = requests_from_space(space, backend="hls_c")
        assert {r.backend for r in default} == {"verilog"}
        assert {r.backend for r in retargeted} == {"hls_c"}
        assert ({r.spec_hash() for r in default}
                & {r.spec_hash() for r in retargeted} == set())

    def test_batch_mixes_families(self, tmp_path):
        engine = BatchEngine(cache=DesignCache(root=tmp_path / "cache"))
        results = engine.generate_many([
            DesignRequest(**TINY),
            DesignRequest(backend="hls_c", **TINY),
            DesignRequest(**TINY),  # in-batch duplicate of the first
        ])
        assert all(r.ok for r in results)
        assert results[0].spec_hash == results[2].spec_hash
        assert results[0].spec_hash != results[1].spec_hash
        assert "module lego_top" in results[0].rtl
        assert "#pragma HLS" in results[1].rtl


class TestServingSurface:
    @pytest.fixture(scope="class")
    def server_url(self, tmp_path_factory):
        from repro.service import ServerThread

        root = tmp_path_factory.mktemp("serve-cache")
        engine = BatchEngine(cache=DesignCache(root=root))
        with ServerThread(engine) as url:
            yield url

    def test_get_backends_endpoint(self, server_url):
        from repro.service import ServiceClient

        with ServiceClient.from_url(server_url) as client:
            families = client.backends()
            assert [b["name"] for b in families] == ["hls_c", "verilog"]
            assert all("options" in b and "description" in b
                       for b in families)
            assert client.health()["backends"] == ["hls_c", "verilog"]

    def test_backends_endpoint_is_get_only(self, server_url):
        from repro.service import ServiceClient, ServiceError

        with ServiceClient.from_url(server_url) as client:
            with pytest.raises(ServiceError, match="use GET"):
                client.request("POST", "/backends", {})

    def test_generate_routes_backend(self, server_url):
        from repro.service import ServiceClient

        with ServiceClient.from_url(server_url) as client:
            result = client.generate(dict(TINY, dataflows=["KJ"],
                                          array=[2, 2],
                                          backend="hls_c"),
                                     include_rtl=True)
            assert result["ok"], result
            assert result["backend"] == "hls_c"
            assert set(result["artifacts"]) == {"lego_top.c",
                                                "lego_top_tb.c"}
            # The same design, other family: must be a cold miss.
            other = client.generate(dict(TINY, dataflows=["KJ"],
                                         array=[2, 2]))
            assert other["backend"] == "verilog"
            assert not other["from_cache"]

    def test_unknown_backend_is_client_error(self, server_url):
        from repro.service import ServiceClient, ServiceError

        with ServiceClient.from_url(server_url) as client:
            with pytest.raises(ServiceError) as err:
                client.generate(dict(TINY, dataflows=["KJ"],
                                     array=[2, 2], backend="mlir"))
            assert err.value.status == 400
            assert "verilog" in str(err.value)


SRC_DIR = str(pathlib.Path(__file__).resolve().parent.parent / "src")


class TestCliSurface:
    def _run(self, *argv):
        env = dict(os.environ)
        env["PYTHONPATH"] = (SRC_DIR + os.pathsep
                             + env.get("PYTHONPATH", ""))
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            capture_output=True, text=True, env=env)

    def test_backends_listing(self):
        out = self._run("backends")
        assert out.returncode == 0
        assert "verilog" in out.stdout and "hls_c" in out.stdout
        names = self._run("backends", "--names")
        assert names.stdout.split() == ["hls_c", "verilog"]

    def test_generate_backend_writes_c_artifacts(self, tmp_path):
        out_file = tmp_path / "design.c"
        run = self._run("generate", "--kernel", "gemm", "--dataflows",
                        "KJ", "--array", "2", "2", "--backend", "hls_c",
                        "--no-cache", "-o", str(out_file))
        assert run.returncode == 0, run.stderr
        assert "#pragma HLS" in out_file.read_text()
        companion = tmp_path / "design_tb.c"
        assert companion.exists()
        assert "TESTBENCH" in companion.read_text()

    def test_generate_unknown_backend_fails_with_vocabulary(self):
        run = self._run("generate", "--kernel", "gemm", "--backend",
                        "firrtl", "--no-cache")
        assert run.returncode != 0
        assert "verilog" in run.stderr

    def test_batch_output_dir_uses_family_suffixes(self, tmp_path):
        out_dir = tmp_path / "designs"
        run = self._run("batch", "--kernel", "gemm", "--dataflows", "KJ",
                        "--arrays", "2x2", "--backend", "hls_c",
                        "--no-cache", "--output-dir", str(out_dir))
        assert run.returncode == 0, run.stderr
        suffixes = sorted(p.name[16:] for p in out_dir.iterdir())
        assert suffixes == [".c", ".json", "_tb.c"]
