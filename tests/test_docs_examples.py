"""The documentation cannot rot: run the docstring doctests of the
``dse``/``service`` packages and execute every ``python`` code fence in
README.md and docs/*.md against the live library.

CI runs the same doctests standalone via
``pytest --doctest-modules src/repro/dse src/repro/service`` and
``pytest --doctest-glob='*.md' README.md docs``; this module keeps them
in the tier-1 suite as well.
"""

import doctest
import importlib
import pathlib
import pkgutil
import re

import pytest

import repro.dse
import repro.service

ROOT = pathlib.Path(__file__).resolve().parent.parent
DOC_FILES = [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]


def _package_modules(*packages):
    names = []
    for pkg in packages:
        names.append(pkg.__name__)
        for info in pkgutil.iter_modules(pkg.__path__,
                                         prefix=pkg.__name__ + "."):
            names.append(info.name)
    return names


MODULES = _package_modules(repro.dse, repro.service)


@pytest.mark.parametrize("module_name", MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, optionflags=doctest.ELLIPSIS,
                              verbose=False)
    assert results.failed == 0, \
        f"{module_name}: {results.failed} doctest failure(s)"


def test_doctest_coverage_exists():
    """At least the strategy/explorer modules must carry doctests, so
    the doctest jobs are actually exercising something."""
    attempted = sum(
        doctest.testmod(importlib.import_module(m)).attempted
        for m in MODULES)
    assert attempted >= 5


@pytest.mark.parametrize("path", DOC_FILES, ids=[p.name for p in DOC_FILES])
def test_markdown_doctests(path):
    """Any ``>>>`` examples inside the markdown files must pass (the
    same thing CI's ``--doctest-glob='*.md'`` run checks)."""
    results = doctest.testfile(str(path), module_relative=False,
                               optionflags=doctest.ELLIPSIS)
    assert results.failed == 0


FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _python_fences():
    cases = []
    for path in DOC_FILES:
        for i, code in enumerate(FENCE.findall(path.read_text())):
            cases.append(pytest.param(code, id=f"{path.name}-{i}"))
    return cases


def test_readme_has_python_examples():
    assert any("README" in str(p.id) for p in _python_fences()) or \
        FENCE.findall((ROOT / "README.md").read_text())


@pytest.mark.parametrize("code", _python_fences())
def test_python_fences_execute(code, tmp_path, capsys):
    """Every ```python fence in README/docs runs against the library
    exactly as written (output redirected to a throwaway cache)."""
    from repro.service import api

    api.get_engine(cache_dir=tmp_path / "cache", reset=True)
    try:
        exec(compile(code, "<doc-fence>", "exec"), {"__name__": "__docs__"})
    finally:
        api.get_engine(reset=True)
