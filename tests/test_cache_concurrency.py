"""Concurrency stress tests for the design cache: multiple processes
writing, reading, and evicting the same root must never corrupt an
entry or crash, and multiple threads sharing one ``DesignCache`` (the
serving front end's executor pool) must never race the memory LRU."""

import hashlib
import json
import multiprocessing
import random
import threading

from repro.serialize import canonical_dumps
from repro.service.cache import DesignCache


def _key_for(tag: str) -> str:
    return hashlib.sha256(tag.encode()).hexdigest()


def _record_for(tag: str) -> dict:
    # Content-addressed integrity witness: the record names its own key.
    return {"kind": "stress-v1", "echo": _key_for(tag), "tag": tag,
            "payload": "x" * 256}


def _hammer_process(root, worker, n_ops, failures):
    """One writer/reader process: puts, gets, and (via the small
    disk_entries bound) constant eviction scans."""
    try:
        cache = DesignCache(root=root, memory_entries=8, disk_entries=24)
        rng = random.Random(worker)
        for i in range(n_ops):
            tag = f"w{worker}-{i}"
            cache.put(_key_for(tag), _record_for(tag))
            # Read back a random earlier entry — possibly evicted
            # (None) but never corrupt.
            probe = f"w{worker}-{rng.randrange(i + 1)}"
            record = cache.get(_key_for(probe))
            if record is not None and record["echo"] != _key_for(probe):
                failures.put(f"{probe}: wrong record {record['echo']}")
        if cache.stats.corrupt:
            failures.put(f"worker {worker} saw "
                         f"{cache.stats.corrupt} corrupt entries")
    except Exception as exc:  # noqa: BLE001 — reported to the parent
        failures.put(f"worker {worker} crashed: {type(exc).__name__}: "
                     f"{exc}")


class TestCrossProcess:
    def test_concurrent_writers_and_eviction(self, tmp_path):
        """4 processes x 60 puts against a 24-entry bound: constant
        eviction pressure, zero corruption."""
        ctx = multiprocessing.get_context()
        failures = ctx.Queue()
        procs = [ctx.Process(target=_hammer_process,
                             args=(str(tmp_path), w, 60, failures))
                 for w in range(4)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        problems = []
        while not failures.empty():
            problems.append(failures.get())
        assert not problems, problems

        # Every surviving on-disk entry must still be a fully valid,
        # self-consistent wrapper (atomic writes: no torn files).
        survivor_cache = DesignCache(root=tmp_path)
        keys = survivor_cache.keys()
        assert keys, "eviction removed everything"
        for key in keys:
            payload = json.loads(survivor_cache.path_for(key).read_text())
            assert payload["format"] == "lego-cache-v1"
            assert payload["key"] == key
            assert payload["record"]["echo"] == key
        # And the final count respects (roughly) the configured bound:
        # concurrent scans of stale snapshots must not have evicted the
        # store to nothing — the flock serializes them.
        assert len(keys) <= 24

    def test_eviction_lock_skips_when_held(self, tmp_path):
        """While one cache holds the eviction lock, another's scan is a
        no-op instead of a double eviction."""
        a = DesignCache(root=tmp_path, disk_entries=4)
        b = DesignCache(root=tmp_path, disk_entries=4)
        for i in range(8):
            a.put(_key_for(f"seed-{i}"), _record_for(f"seed-{i}"))
        with a._eviction_lock() as held:
            assert held
            before = len(b.keys())
            b._evict_disk()  # must bail out: lock is taken
            assert len(b.keys()) == before
        b._evict_disk()
        assert len(b.keys()) <= 4


class TestThreadSafety:
    def test_shared_cache_many_threads(self, tmp_path):
        """The serving executor shares one cache across threads; the
        memory-LRU lock must prevent membership/move_to_end races (this
        crashed with KeyError before the lock)."""
        cache = DesignCache(root=tmp_path, memory_entries=4,
                            disk_entries=256)
        tags = [f"t{i}" for i in range(16)]
        for tag in tags:
            cache.put(_key_for(tag), _record_for(tag))
        errors: list = []

        def churn(seed):
            rng = random.Random(seed)
            try:
                for _ in range(300):
                    tag = rng.choice(tags)
                    if rng.random() < 0.3:
                        cache.put(_key_for(tag), _record_for(tag))
                    else:
                        record = cache.get(_key_for(tag))
                        assert (record is None
                                or record["echo"] == _key_for(tag))
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=churn, args=(s,))
                   for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors
        assert cache.stats.corrupt == 0

    def test_atomic_put_never_partially_visible(self, tmp_path):
        """A reader polling while a writer overwrites the same key must
        only ever see complete versions (os.replace atomicity)."""
        cache_w = DesignCache(root=tmp_path)
        cache_r = DesignCache(root=tmp_path, memory_entries=0)
        key = _key_for("contended")
        stop = threading.Event()
        errors: list = []

        def write():
            i = 0
            while not stop.is_set():
                record = dict(_record_for("contended"), version=i)
                record_json = canonical_dumps(record)
                cache_w.put(key, json.loads(record_json))
                i += 1

        def read():
            try:
                while not stop.is_set():
                    record = cache_r.get(key)
                    if record is not None:
                        assert record["echo"] == key
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        writer = threading.Thread(target=write)
        readers = [threading.Thread(target=read) for _ in range(3)]
        writer.start()
        for t in readers:
            t.start()
        writer.join(timeout=0.5)  # let them contend for half a second
        stop.set()
        for t in [writer, *readers]:
            t.join(timeout=30)
        assert not errors, errors
        assert cache_r.stats.corrupt == 0


class TestShardedRoots:
    """The cache's disk tier fanned across N shard roots by hash
    prefix — the layout ``repro serve --cache-shards`` and the fleet
    router key on."""

    def _sharded(self, tmp_path, n=4, **kwargs):
        from repro.service.cache import shard_roots
        return DesignCache(root=shard_roots(tmp_path, n), **kwargs)

    def test_shard_roots_helper(self, tmp_path):
        from repro.service.cache import shard_roots
        assert shard_roots(tmp_path, 1) == [tmp_path]
        roots = shard_roots(tmp_path, 3)
        assert [r.name for r in roots] == ["shard-00", "shard-01",
                                           "shard-02"]

    def test_entries_land_on_prefix_shard(self, tmp_path):
        cache = self._sharded(tmp_path, n=4)
        for i in range(32):
            key = _key_for(f"spread-{i}")
            cache.put(key, _record_for(f"spread-{i}"))
            expected = cache.roots[int(key[:2], 16) % 4]
            assert cache.path_for(key).parent.parent == expected
            assert cache.path_for(key).is_file()

    def test_keys_unions_all_shards(self, tmp_path):
        cache = self._sharded(tmp_path, n=4)
        keys = {_key_for(f"u-{i}") for i in range(24)}
        for key in keys:
            cache.put(key, {"k": key})
        assert set(cache.keys()) == keys
        # and every shard actually holds something (24 keys over 4
        # shards going all to one bucket would be a routing bug)
        per_shard = [len(list(cache._shard_keys(i))) for i in range(4)]
        assert sum(per_shard) == 24 and max(per_shard) < 24

    def test_reads_work_across_instances(self, tmp_path):
        writer = self._sharded(tmp_path, n=2)
        reader = self._sharded(tmp_path, n=2, memory_entries=0)
        key = _key_for("cross")
        writer.put(key, _record_for("cross"))
        assert reader.get(key)["echo"] == key

    def test_eviction_bounds_each_shard(self, tmp_path):
        cache = self._sharded(tmp_path, n=2, memory_entries=4,
                              disk_entries=10)
        for i in range(60):
            cache.put(_key_for(f"evict-{i}"), _record_for(f"evict-{i}"))
        for index in range(2):
            assert len(list(cache._shard_keys(index))) <= 5 + 1
        assert len(cache.keys()) <= 11

    def test_sharded_thread_stress(self, tmp_path):
        cache = self._sharded(tmp_path, n=4, memory_entries=8,
                              disk_entries=32)
        errors: list = []

        def worker(w):
            try:
                rng = random.Random(w)
                for i in range(40):
                    tag = f"s{w}-{i}"
                    cache.put(_key_for(tag), _record_for(tag))
                    probe = f"s{w}-{rng.randrange(i + 1)}"
                    record = cache.get(_key_for(probe))
                    if record is not None:
                        assert record["echo"] == _key_for(probe)
            except Exception as exc:  # noqa: BLE001
                errors.append(f"worker {w}: {exc}")

        threads = [threading.Thread(target=worker, args=(w,))
                   for w in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors
        assert cache.stats.corrupt == 0


class TestDiskCountAccounting:
    """Regression: the corrupt-entry path in ``get()`` decremented the
    approximate disk count even when the unlink failed, so the eviction
    trigger undercounted and the disk tier crept past its bound."""

    def _corrupt(self, cache, key):
        path = cache.path_for(key)
        path.write_text("{ not json")

    def test_failed_unlink_does_not_decrement(self, tmp_path,
                                              monkeypatch):
        import pathlib

        cache = DesignCache(root=tmp_path, memory_entries=0)
        for i in range(4):
            cache.put(_key_for(f"d-{i}"), _record_for(f"d-{i}"))
        cache._evict_disk()  # seed the count via the first-time scan
        assert cache._disk_count == 4
        self._corrupt(cache, _key_for("d-0"))

        real_unlink = pathlib.Path.unlink

        def deny(self, *args, **kwargs):
            raise OSError("unlink denied")

        monkeypatch.setattr(pathlib.Path, "unlink", deny)
        try:
            assert cache.get(_key_for("d-0")) is None
        finally:
            monkeypatch.setattr(pathlib.Path, "unlink", real_unlink)
        # entry is corrupt but still on disk: the count must not move
        assert cache.stats.corrupt == 1
        assert cache._disk_count == 4
        assert len(cache.keys()) == 4
        # with unlink working again the entry goes and the count follows
        assert cache.get(_key_for("d-0")) is None
        assert cache._disk_count == 3
        assert len(cache.keys()) == 3

    def test_count_tracks_glob_through_corruption_churn(self, tmp_path):
        cache = DesignCache(root=tmp_path, memory_entries=0,
                            disk_entries=10_000)
        rng = random.Random(7)
        live = set()
        for i in range(120):
            tag = f"churn-{i}"
            cache.put(_key_for(tag), _record_for(tag))
            live.add(tag)
            if rng.random() < 0.3:
                victim = rng.choice(sorted(live))
                self._corrupt(cache, _key_for(victim))
                assert cache.get(_key_for(victim)) is None
                live.discard(victim)
            if cache._disk_count is not None:
                assert cache._disk_count == len(cache.keys()), \
                    f"count drifted at step {i}"
        cache._evict_disk()
        assert cache._disk_count == len(cache.keys()) == len(live)

    def test_count_tracks_glob_under_threads(self, tmp_path):
        """Concurrent puts (distinct keys) and corrupt-entry drops must
        leave the counted total equal to the globbed truth."""
        cache = DesignCache(root=tmp_path, memory_entries=0,
                            disk_entries=10_000)
        cache.put(_key_for("seed"), _record_for("seed"))
        cache._evict_disk()
        errors: list = []

        def worker(w):
            try:
                for i in range(30):
                    tag = f"t{w}-{i}"
                    cache.put(_key_for(tag), _record_for(tag))
                    if i % 3 == 0:
                        self._corrupt(cache, _key_for(tag))
                        assert cache.get(_key_for(tag)) is None
            except Exception as exc:  # noqa: BLE001
                errors.append(f"worker {w}: {exc}")

        threads = [threading.Thread(target=worker, args=(w,))
                   for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors
        assert cache._disk_count == len(cache.keys())

    def test_sharded_eviction_keeps_count_exact(self, tmp_path):
        from repro.service.cache import shard_roots

        cache = DesignCache(root=shard_roots(tmp_path, 2),
                            memory_entries=4, disk_entries=12)
        for i in range(80):
            cache.put(_key_for(f"se-{i}"), _record_for(f"se-{i}"))
        assert cache._disk_count == len(cache.keys())
