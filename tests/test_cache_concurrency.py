"""Concurrency stress tests for the design cache: multiple processes
writing, reading, and evicting the same root must never corrupt an
entry or crash, and multiple threads sharing one ``DesignCache`` (the
serving front end's executor pool) must never race the memory LRU."""

import hashlib
import json
import multiprocessing
import random
import threading

from repro.serialize import canonical_dumps
from repro.service.cache import DesignCache


def _key_for(tag: str) -> str:
    return hashlib.sha256(tag.encode()).hexdigest()


def _record_for(tag: str) -> dict:
    # Content-addressed integrity witness: the record names its own key.
    return {"kind": "stress-v1", "echo": _key_for(tag), "tag": tag,
            "payload": "x" * 256}


def _hammer_process(root, worker, n_ops, failures):
    """One writer/reader process: puts, gets, and (via the small
    disk_entries bound) constant eviction scans."""
    try:
        cache = DesignCache(root=root, memory_entries=8, disk_entries=24)
        rng = random.Random(worker)
        for i in range(n_ops):
            tag = f"w{worker}-{i}"
            cache.put(_key_for(tag), _record_for(tag))
            # Read back a random earlier entry — possibly evicted
            # (None) but never corrupt.
            probe = f"w{worker}-{rng.randrange(i + 1)}"
            record = cache.get(_key_for(probe))
            if record is not None and record["echo"] != _key_for(probe):
                failures.put(f"{probe}: wrong record {record['echo']}")
        if cache.stats.corrupt:
            failures.put(f"worker {worker} saw "
                         f"{cache.stats.corrupt} corrupt entries")
    except Exception as exc:  # noqa: BLE001 — reported to the parent
        failures.put(f"worker {worker} crashed: {type(exc).__name__}: "
                     f"{exc}")


class TestCrossProcess:
    def test_concurrent_writers_and_eviction(self, tmp_path):
        """4 processes x 60 puts against a 24-entry bound: constant
        eviction pressure, zero corruption."""
        ctx = multiprocessing.get_context()
        failures = ctx.Queue()
        procs = [ctx.Process(target=_hammer_process,
                             args=(str(tmp_path), w, 60, failures))
                 for w in range(4)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        problems = []
        while not failures.empty():
            problems.append(failures.get())
        assert not problems, problems

        # Every surviving on-disk entry must still be a fully valid,
        # self-consistent wrapper (atomic writes: no torn files).
        survivor_cache = DesignCache(root=tmp_path)
        keys = survivor_cache.keys()
        assert keys, "eviction removed everything"
        for key in keys:
            payload = json.loads(survivor_cache.path_for(key).read_text())
            assert payload["format"] == "lego-cache-v1"
            assert payload["key"] == key
            assert payload["record"]["echo"] == key
        # And the final count respects (roughly) the configured bound:
        # concurrent scans of stale snapshots must not have evicted the
        # store to nothing — the flock serializes them.
        assert len(keys) <= 24

    def test_eviction_lock_skips_when_held(self, tmp_path):
        """While one cache holds the eviction lock, another's scan is a
        no-op instead of a double eviction."""
        a = DesignCache(root=tmp_path, disk_entries=4)
        b = DesignCache(root=tmp_path, disk_entries=4)
        for i in range(8):
            a.put(_key_for(f"seed-{i}"), _record_for(f"seed-{i}"))
        with a._eviction_lock() as held:
            assert held
            before = len(b.keys())
            b._evict_disk()  # must bail out: lock is taken
            assert len(b.keys()) == before
        b._evict_disk()
        assert len(b.keys()) <= 4


class TestThreadSafety:
    def test_shared_cache_many_threads(self, tmp_path):
        """The serving executor shares one cache across threads; the
        memory-LRU lock must prevent membership/move_to_end races (this
        crashed with KeyError before the lock)."""
        cache = DesignCache(root=tmp_path, memory_entries=4,
                            disk_entries=256)
        tags = [f"t{i}" for i in range(16)]
        for tag in tags:
            cache.put(_key_for(tag), _record_for(tag))
        errors: list = []

        def churn(seed):
            rng = random.Random(seed)
            try:
                for _ in range(300):
                    tag = rng.choice(tags)
                    if rng.random() < 0.3:
                        cache.put(_key_for(tag), _record_for(tag))
                    else:
                        record = cache.get(_key_for(tag))
                        assert (record is None
                                or record["echo"] == _key_for(tag))
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=churn, args=(s,))
                   for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors
        assert cache.stats.corrupt == 0

    def test_atomic_put_never_partially_visible(self, tmp_path):
        """A reader polling while a writer overwrites the same key must
        only ever see complete versions (os.replace atomicity)."""
        cache_w = DesignCache(root=tmp_path)
        cache_r = DesignCache(root=tmp_path, memory_entries=0)
        key = _key_for("contended")
        stop = threading.Event()
        errors: list = []

        def write():
            i = 0
            while not stop.is_set():
                record = dict(_record_for("contended"), version=i)
                record_json = canonical_dumps(record)
                cache_w.put(key, json.loads(record_json))
                i += 1

        def read():
            try:
                while not stop.is_set():
                    record = cache_r.get(key)
                    if record is not None:
                        assert record["echo"] == key
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        writer = threading.Thread(target=write)
        readers = [threading.Thread(target=read) for _ in range(3)]
        writer.start()
        for t in readers:
            t.start()
        writer.join(timeout=0.5)  # let them contend for half a second
        stop.set()
        for t in [writer, *readers]:
            t.join(timeout=30)
        assert not errors, errors
        assert cache_r.stats.corrupt == 0
