"""Restart safety of the serving tier: the per-job journal, registry
recovery (``restore``) and shutdown sweeping (``sweep_shutdown``), plus
the end-to-end scenarios from the issue — kill a server mid-``/explore``
and reboot on the same cache root (resumable, bit-for-bit), kill it
mid-``/batch`` (failed with a clear explanation).  Also holds the
regression tests for the shutdown/accounting bugfix sweep: queued jobs
orphaned at shutdown, torn ``JobRegistry.counts()`` reads, and the
``ServiceClient.wait`` deadline overshoot."""

import json
import threading
import time

import pytest

from repro.dse import run_search
from repro.dse.explorer import DesignSpace
from repro.models import zoo
from repro.service import (BatchEngine, DesignCache, JobJournal,
                           ServerThread, ServiceClient, ServiceError)
from repro.service.jobs import JobRegistry
from repro.service.persist import JOURNAL_FORMAT

SMALL_SPACE = {
    "arrays": [[8, 8], [16, 16]],
    "buffer_kb": [128.0, 256.0],
    "dram_gbps": [16.0],
    "dataflow_sets": [["ICOC"], ["MN", "ICOC"]],
}

DIRECT_SPACE = DesignSpace(arrays=((8, 8), (16, 16)),
                           buffer_kb=(128.0, 256.0),
                           dataflow_sets=(("ICOC",), ("MN", "ICOC")))


class TestJournal:
    def test_record_load_roundtrip(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs")
        journal.record("explore-1-abc", {"id": "explore-1-abc",
                                         "status": "running"})
        assert journal.load("explore-1-abc") == {"id": "explore-1-abc",
                                                 "status": "running"}
        assert len(journal) == 1

    def test_last_writer_wins(self, tmp_path):
        journal = JobJournal(tmp_path)
        for status in ("queued", "running", "done"):
            journal.record("batch-1-f00", {"id": "batch-1-f00",
                                           "status": status})
        assert journal.load("batch-1-f00")["status"] == "done"
        assert len(journal) == 1

    def test_forget(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.record("explore-2-abc", {"id": "explore-2-abc"})
        journal.forget("explore-2-abc")
        assert journal.load("explore-2-abc") is None
        journal.forget("explore-2-abc")  # idempotent
        journal.forget("../../etc/passwd")  # unsafe ids swallowed too

    def test_unsafe_job_id_refused(self, tmp_path):
        journal = JobJournal(tmp_path)
        with pytest.raises(ValueError):
            journal.path_for("../evil")
        with pytest.raises(ValueError):
            journal.record("a/b", {"id": "a/b"})

    def test_corrupt_and_foreign_files_skipped(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.record("explore-1-aaa", {"id": "explore-1-aaa"})
        (tmp_path / "torn.json").write_text('{"format": "lego-job')
        (tmp_path / "foreign.json").write_text(json.dumps(
            {"format": "something-else", "job": {"id": "foreign"}}))
        # id mismatch between filename and payload is refused too
        (tmp_path / "explore-9-zzz.json").write_text(json.dumps(
            {"format": JOURNAL_FORMAT, "job": {"id": "other"}}))
        records = journal.load_all()
        assert [r["id"] for r in records] == ["explore-1-aaa"]

    def test_no_temp_file_droppings(self, tmp_path):
        journal = JobJournal(tmp_path)
        for i in range(20):
            journal.record("explore-1-aaa", {"id": "explore-1-aaa",
                                             "step": i})
        assert [p.name for p in tmp_path.glob("*.tmp")] == []


class TestRegistryRecovery:
    def _registry(self, tmp_path):
        return JobRegistry(journal=JobJournal(tmp_path / "jobs"))

    def test_settled_jobs_restore_verbatim(self, tmp_path):
        first = self._registry(tmp_path)
        job = first.create("explore", {"seed": 3})
        job.start()
        job.finish({"best": "x"})
        second = self._registry(tmp_path)
        stats = second.restore()
        assert stats == {"jobs": 1, "resumable": 0, "failed": 0}
        restored = second.get(job.id)
        assert restored.status == "done"
        assert restored.result == {"best": "x"}
        assert restored.recovered is False  # settled, not interrupted

    def test_interrupted_explore_restores_paused(self, tmp_path):
        first = self._registry(tmp_path)
        job = first.create("explore", {"seed": 3})
        job.start()
        job.set_checkpoint({"completed": False, "rows": [1, 2]})
        # no clean shutdown: simulate the crash by just re-reading disk
        second = self._registry(tmp_path)
        stats = second.restore()
        assert stats["resumable"] == 1
        restored = second.get(job.id)
        assert restored.status == "paused"
        assert restored.recovered is True
        assert restored.checkpoint == {"completed": False, "rows": [1, 2]}

    def test_interrupted_batch_restores_failed(self, tmp_path):
        first = self._registry(tmp_path)
        job = first.create("batch", {"requests": 3})
        job.start()
        second = self._registry(tmp_path)
        stats = second.restore()
        assert stats["failed"] == 1
        restored = second.get(job.id)
        assert restored.status == "failed"
        assert restored.recovered is True
        assert "resubmit" in restored.error

    def test_id_sequence_continues_after_restore(self, tmp_path):
        first = self._registry(tmp_path)
        ids = {first.create("batch", {}).id for _ in range(3)}
        second = self._registry(tmp_path)
        second.restore()
        new = second.create("batch", {}).id
        assert new not in ids
        assert int(new.split("-")[-2]) > 3 - 1

    def test_restore_without_journal_is_noop(self):
        registry = JobRegistry()
        assert registry.restore() == {"jobs": 0, "resumable": 0,
                                      "failed": 0}


class TestShutdownSweep:
    """Regression: ``stop()`` used to cancel queued futures and leave
    their jobs "queued" forever — a client polling such a job would hang
    until its timeout.  Shutdown now sweeps them to paused/failed."""

    def test_sweep_parks_queued_jobs(self, tmp_path):
        registry = JobRegistry(journal=JobJournal(tmp_path))
        explore = registry.create("explore", {})
        batch = registry.create("batch", {})
        running = registry.create("explore", {})
        running.start()
        swept = registry.sweep_shutdown()
        assert swept == {"paused": 1, "failed": 1}
        assert explore.status == "paused"
        assert batch.status == "failed"
        assert "resubmit" in batch.error
        assert running.status == "running"  # live work is not swept
        # and the swept states are what a poller now sees immediately
        assert explore.settled() and batch.settled()

    def test_server_stop_settles_queued_jobs(self, tmp_path):
        """End to end: one job worker, a long exploration occupying it,
        and a queued batch behind it.  stop() must leave neither
        'queued' — the batch fails with an explanation, the exploration
        is parked or settled, never left live."""
        handle = ServerThread(
            BatchEngine(cache=DesignCache(root=tmp_path / "cache")),
            job_workers=1).start()
        server = handle.server
        try:
            with ServiceClient.from_url(handle.url) as c:
                blocker = c.explore(models=["LeNet"], strategy="anneal",
                                    max_evals=200, seed=1,
                                    space=SMALL_SPACE, step_evals=1)
                queued = c.batch([{"kernel": "gemm", "array": [2, 2]}])
                deadline = time.monotonic() + 10
                while (server.jobs.get(queued).status != "queued"
                       and time.monotonic() < deadline):
                    time.sleep(0.01)
        finally:
            handle.stop()
        assert server.jobs.get(queued).status == "failed"
        assert "resubmit" in server.jobs.get(queued).error
        assert server.jobs.get(blocker).status not in ("queued",
                                                       "running")


class TestCountsLocking:
    """Regression: ``counts()`` read ``job.status`` without the job's
    lock — a torn read could see a transition half-applied.  It now
    snapshots each status under that job's own lock."""

    def test_counts_waits_for_in_flight_transition(self):
        registry = JobRegistry()
        job = registry.create("explore", {})
        job._lock.acquire()  # a transition is mid-flight
        result = {}

        def read():
            result["counts"] = registry.counts()

        reader = threading.Thread(target=read)
        reader.start()
        reader.join(timeout=0.3)
        assert reader.is_alive(), \
            "counts() read a status without taking the job lock"
        job._lock.release()
        reader.join(timeout=5)
        assert result["counts"]["queued"] == 1

    def test_counts_totals_consistent_under_churn(self):
        registry = JobRegistry(max_jobs=64)
        stop = threading.Event()

        def churn():
            while not stop.is_set():
                job = registry.create("explore", {})
                job.start()
                job.finish({})

        worker = threading.Thread(target=churn)
        worker.start()
        try:
            for _ in range(200):
                counts = registry.counts()
                assert all(v >= 0 for v in counts.values())
        finally:
            stop.set()
            worker.join()


class TestWaitDeadline:
    """Regression: the final poll sleep ignored the remaining budget,
    overshooting ``timeout=1.0, poll_s=0.5`` to ~1.5s."""

    def test_wait_timeout_not_overshot(self, monkeypatch):
        client = ServiceClient(port=1)  # never actually connected
        monkeypatch.setattr(
            ServiceClient, "job",
            lambda self, job_id, checkpoint=True: {"status": "running"})
        begun = time.monotonic()
        with pytest.raises(TimeoutError):
            client.wait("explore-1-abc", timeout=1.0, poll_s=0.5)
        elapsed = time.monotonic() - begun
        assert elapsed < 1.45, f"wait overshot its deadline: {elapsed:.2f}s"


class TestServerRestartRecovery:
    """The issue's headline scenario: kill the server process, reboot
    on the same cache root, and the job table comes back."""

    def _boot(self, root, **kwargs):
        return ServerThread(
            BatchEngine(cache=DesignCache(root=root)), **kwargs).start()

    def test_explore_killed_midway_resumes_bit_for_bit(self, tmp_path):
        root = tmp_path / "cache"
        uninterrupted = run_search([zoo.lenet()], DIRECT_SPACE,
                                   strategy="anneal", max_evals=8,
                                   seed=11)
        first = self._boot(root)
        try:
            with ServiceClient.from_url(first.url) as c:
                job_id = c.explore(models=["LeNet"], strategy="anneal",
                                   max_evals=8, seed=11,
                                   space=SMALL_SPACE, step_evals=1)
                # wait until at least one checkpoint hit the journal
                for event in c.stream(job_id):
                    if event.get("event") in ("checkpoint", "end"):
                        break
        finally:
            first.stop()  # the kill: journal survives on disk

        second = self._boot(root)
        try:
            assert second.server.recovered["jobs"] >= 1
            with ServiceClient.from_url(second.url) as c:
                state = c.job(job_id)
                if state["status"] == "done":
                    final = state  # finished before the kill landed
                else:
                    assert state["status"] == "paused"
                    assert state["recovered"] is True
                    assert not state["checkpoint"]["completed"]
                    c.resume(job_id)
                    final = c.wait(job_id, timeout=180)
                    assert final["status"] == "done"
        finally:
            second.stop()
        assert (final["result"]["best"]["arch"]["name"]
                == uninterrupted.best.arch.name)
        assert final["result"]["evals_used"] == uninterrupted.evals_used

    def test_batch_killed_midway_fails_with_explanation(self, tmp_path):
        root = tmp_path / "cache"
        first = self._boot(root, job_workers=1)
        try:
            with ServiceClient.from_url(first.url) as c:
                # occupy the single worker so the batch stays queued —
                # "mid-flight" in its journaled state
                c.explore(models=["LeNet"], strategy="anneal",
                          max_evals=200, seed=1, space=SMALL_SPACE,
                          step_evals=1)
                job_id = c.batch([{"kernel": "gemm", "array": [2, 2]}])
            # simulate a hard kill: bypass stop()'s sweep so the journal
            # still says "queued", exactly as after SIGKILL
            first.server.jobs._journal = None
            for job in first.server.jobs._jobs.values():
                job._journal = None
        finally:
            first.stop()

        second = self._boot(root)
        try:
            assert second.server.recovered["failed"] >= 1
            with ServiceClient.from_url(second.url) as c:
                state = c.job(job_id)
                assert state["status"] == "failed"
                assert state["recovered"] is True
                assert "resubmit" in state["error"]
                # cache-backed work is not lost: the same spec is warm
                # (or freshly computable) on the rebooted server
                result = c.generate(kernel="gemm", array=[2, 2])
                assert result["ok"]
        finally:
            second.stop()

    def test_no_persist_opt_out(self, tmp_path):
        root = tmp_path / "cache"
        first = ServerThread(
            BatchEngine(cache=DesignCache(root=root)),
            persist_jobs=False).start()
        try:
            with ServiceClient.from_url(first.url) as c:
                job_id = c.explore(models=["LeNet"],
                                   strategy="exhaustive",
                                   space=SMALL_SPACE)
                c.wait(job_id, timeout=180)
        finally:
            first.stop()
        assert not (root / "jobs").exists()
        second = self._boot(root)
        try:
            with ServiceClient.from_url(second.url) as c:
                with pytest.raises(ServiceError) as err:
                    c.job(job_id)
                assert err.value.status == 404
        finally:
            second.stop()
