"""Fault injection against the batch planner.

A design that fails *during scheduling* must poison exactly its own
plan group: every request that shares the broken ``design_key`` fails
with the original traceback attached, sibling groups complete
untouched, nothing broken lands in the cache, and the single-flight
slot is released so a retry recomputes (and can heal).  A leader that
fails only at *emission* must not drag its variants down — the shared
scheduled design exists, so each variant emits for itself.
"""

import pytest

import repro.service.spec as spec_mod
from repro.service import BatchEngine, DesignCache
from repro.service.spec import DesignRequest

POISONED_ARRAY = (3, 3)
BACKENDS = ["verilog", "hls_c"]


def batch_of(*arrays) -> list[DesignRequest]:
    """One request per (array, backend) pair — every array is a
    distinct plan group of one leader + one variant."""
    return [DesignRequest(kernel="gemm", dataflows=("KJ",),
                          array=array, backend=backend)
            for array in arrays for backend in BACKENDS]


@pytest.fixture()
def poisoned_schedule(monkeypatch):
    """Make the scheduled-design build blow up for POISONED_ARRAY;
    yields the list of poisoned build attempts."""
    real = spec_mod._build_scheduled_design
    attempts: list[DesignRequest] = []

    def build(request, cache, phases):
        if tuple(request.array) == POISONED_ARRAY:
            attempts.append(request)
            raise RuntimeError("injected schedule fault")
        return real(request, cache, phases)

    monkeypatch.setattr(spec_mod, "_build_scheduled_design", build)
    return attempts


class TestScheduleFault:
    def test_poison_stays_in_its_group(self, tmp_path,
                                       poisoned_schedule):
        engine = BatchEngine(cache=DesignCache(root=tmp_path / "c"))
        batch = batch_of((2, 2), POISONED_ARRAY, (2, 3))
        results = engine.generate_many(batch)
        by_array = {}
        for req, res in zip(batch, results):
            by_array.setdefault(tuple(req.array), []).append(res)

        # the poisoned group: every member failed, each carrying the
        # injected fault's full traceback
        for res in by_array[POISONED_ARRAY]:
            assert not res.ok
            assert "injected schedule fault" in res.error
            assert res.traceback and "RuntimeError" in res.traceback
        # sibling groups: untouched
        for array in ((2, 2), (2, 3)):
            assert all(res.ok for res in by_array[array])
        # the leader's one failed build was *propagated* to the
        # variant, not retried once per group member
        assert len(poisoned_schedule) == 1

    def test_failures_are_not_cached(self, tmp_path, poisoned_schedule):
        engine = BatchEngine(cache=DesignCache(root=tmp_path / "c"))
        batch = batch_of(POISONED_ARRAY)
        engine.generate_many(batch)
        for req in batch:
            assert req.spec_hash() not in engine.cache

    def test_retry_recomputes_and_heals(self, tmp_path, monkeypatch):
        """The single-flight slot and the cache hold nothing from a
        failed run: un-poisoning the schedule and resubmitting the same
        batch succeeds end to end."""
        real = spec_mod._build_scheduled_design
        poisoned = {"active": True}

        def build(request, cache, phases):
            if (poisoned["active"]
                    and tuple(request.array) == POISONED_ARRAY):
                raise RuntimeError("injected schedule fault")
            return real(request, cache, phases)

        monkeypatch.setattr(spec_mod, "_build_scheduled_design", build)
        engine = BatchEngine(cache=DesignCache(root=tmp_path / "c"))
        batch = batch_of(POISONED_ARRAY)
        first = engine.generate_many(batch)
        assert not any(r.ok for r in first)
        assert len(engine.cache.flights) == 0  # slots released

        poisoned["active"] = False
        second = engine.generate_many(batch)
        assert all(r.ok for r in second)
        assert all(not r.from_cache for r in second)

    def test_unplanned_path_fails_identically(self, tmp_path,
                                              poisoned_schedule):
        """plan=False reaches the same per-request failure capture —
        the planner changes who pays for the failure, not its shape."""
        engine = BatchEngine(cache=DesignCache(root=tmp_path / "c"))
        results = engine.generate_many(batch_of(POISONED_ARRAY),
                                       plan=False)
        for res in results:
            assert not res.ok
            assert "injected schedule fault" in res.error
            assert res.traceback


class TestEmitFault:
    def test_leader_emit_failure_spares_variants(self, tmp_path,
                                                 monkeypatch):
        """The leader fails *after* the design phase (emission only):
        the scheduled design is in the cache, so its variants emit for
        themselves instead of inheriting the leader's failure."""
        from repro import backends as backends_mod

        real = backends_mod.emit_artifacts

        def emit(family, design, module_name="lego_top", context=None):
            if family.name == "verilog":
                raise RuntimeError("injected emit fault")
            return real(family, design, module_name=module_name,
                        context=context)

        monkeypatch.setattr(backends_mod, "emit_artifacts", emit)
        engine = BatchEngine(cache=DesignCache(root=tmp_path / "c"))
        batch = batch_of((2, 2))  # leader verilog, variant hls_c
        results = engine.generate_many(batch)
        by_backend = {r.request.backend: r for r in results}
        assert not by_backend["verilog"].ok
        assert "injected emit fault" in by_backend["verilog"].error
        assert by_backend["hls_c"].ok
        assert by_backend["hls_c"].rtl


class TestPooledFault:
    def test_pooled_leaders_report_faults(self, tmp_path):
        """Worker processes capture failures the same way: a kernel
        whose dataflow name is invalid fails in the worker, and the
        traceback crosses the pool boundary intact."""
        engine = BatchEngine(cache=DesignCache(root=tmp_path / "c"))
        good = [DesignRequest(kernel="gemm", dataflows=("KJ",),
                              array=a) for a in ((2, 2), (2, 3))]
        bad = [DesignRequest(kernel="gemm", dataflows=("XX",),
                             array=(3, 2))]
        results = engine.generate_many(good + bad, workers=2)
        assert [r.ok for r in results] == [True, True, False]
        assert results[2].traceback
