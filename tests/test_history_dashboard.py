"""Metrics-history recorder, snapshot readers, quantile estimation, the
``repro top`` dashboard renderer, and the CLI surfaces that glue them to
a running server (``repro top --iterations``, ``repro profile``,
``repro trace --url``)."""

import re

import pytest

from repro.cli import main
from repro.obs import (MetricsHistory, MetricsRegistry, histogram_quantile,
                       histogram_totals, render_dashboard,
                       snapshot_children, snapshot_value)
from repro.service import BatchEngine, ServerThread, ServiceClient
from repro.service.router import RouterThread

TINY = {"kernel": "gemm", "dataflows": ["KJ"], "array": [2, 2]}


def _two_snapshots():
    """Synthetic (prev, curr) registry snapshots 2s apart: 10 requests
    then 30, with latencies filling two buckets."""
    reg = MetricsRegistry()
    req = reg.counter("repro_http_requests_total", "",
                      ("route", "method", "status"))
    lat = reg.histogram("repro_http_request_seconds", "", ("route",),
                        buckets=(0.01, 0.1, 1.0))
    child = req.labels(route="/generate", method="POST", status="200")
    child.inc(10)
    for _ in range(10):
        lat.labels(route="/generate").observe(0.05)
    prev = reg.snapshot()
    child.inc(20)
    for _ in range(18):
        lat.labels(route="/generate").observe(0.05)
    for _ in range(2):
        lat.labels(route="/generate").observe(0.5)
    curr = reg.snapshot()
    return prev, curr


class TestHistory:
    def test_ring_is_bounded_and_ordered(self):
        reg = MetricsRegistry()
        counter = reg.counter("ticks_total")
        history = MetricsHistory(registry=reg, interval_s=60,
                                 max_samples=3)
        for i in range(5):
            counter.inc()
            history.sample_now()
        samples = history.samples()
        assert len(samples) == 3  # ring dropped the oldest two
        values = [snapshot_value(s["metrics"], "ticks_total")
                  for s in samples]
        assert values == [3.0, 4.0, 5.0]
        assert [s["ts"] for s in samples] == sorted(s["ts"]
                                                    for s in samples)

    def test_refresh_hook_runs_and_exceptions_are_swallowed(self):
        calls = []

        def refresh():
            calls.append(1)
            raise RuntimeError("broken gauge hook")

        history = MetricsHistory(registry=MetricsRegistry(),
                                 interval_s=60, refresh=refresh)
        history.sample_now()
        assert calls == [1]

    def test_series_and_to_dict_limit(self):
        reg = MetricsRegistry()
        counter = reg.counter("n_total")
        history = MetricsHistory(registry=reg, interval_s=60)
        for i in range(4):
            counter.inc(2)
            history.sample_now()
        series = history.series("n_total", limit=2)
        assert [v for _ts, v in series] == [6.0, 8.0]
        payload = history.to_dict(limit=1)
        assert payload["count"] == 1 and len(payload["samples"]) == 1
        assert payload["max_samples"] == 600

    def test_thread_samples_on_interval(self):
        import time

        history = MetricsHistory(registry=MetricsRegistry(),
                                 interval_s=0.05)
        history.start()
        try:
            time.sleep(0.3)
        finally:
            history.stop()
        assert len(history.samples()) >= 3  # immediate + periodic


class TestSnapshotReaders:
    def test_children_and_value(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "", ("k",)).labels(k="a").inc(2)
        reg.counter("x_total", "", ("k",)).labels(k="b").inc(5)
        snap = reg.snapshot()
        children = dict((labels["k"], value) for labels, value
                        in snapshot_children(snap, "x_total"))
        assert children == {"a": 2.0, "b": 5.0}
        assert snapshot_value(snap, "x_total", k="b") == 5.0
        assert snapshot_value(snap, "x_total", k="zzz") is None
        assert snapshot_value(snap, "missing_total") is None

    def test_histogram_totals_shape(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h_seconds", "", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        bounds, counts, total, count = histogram_totals(
            reg.snapshot(), "h_seconds")
        assert bounds == [0.1, 1.0]
        assert counts == [1, 1, 1]  # per-bucket, +Inf last
        assert count == 3 and total == pytest.approx(5.55)


class TestHistogramQuantile:
    def test_linear_interpolation_inside_bucket(self):
        # 10 obs in (0, 0.1]: p50 sits in the middle of that bucket
        assert histogram_quantile([0.1, 1.0], [10, 0, 0], 0.5) \
            == pytest.approx(0.05)
        # across buckets: 5 fast + 5 slow, p99 lands in the second
        q99 = histogram_quantile([0.1, 1.0], [5, 5, 0], 0.99)
        assert 0.1 < q99 <= 1.0

    def test_overflow_bucket_clamps_to_top_bound(self):
        assert histogram_quantile([0.1, 1.0], [0, 0, 7], 0.5) == 1.0

    def test_empty_returns_none(self):
        assert histogram_quantile([0.1], [0, 0], 0.5) is None
        assert histogram_quantile([], [], 0.9) is None


class TestDashboard:
    def test_rates_from_deltas(self):
        prev, curr = _two_snapshots()
        frame = render_dashboard("http://fleet", {"ok": True}, prev,
                                 curr, dt=2.0, interval=2.0)
        assert "repro top — http://fleet" in frame
        # 20 new requests over 2s = 10.0/s, lifetime total 30
        row = next(line for line in frame.splitlines()
                   if line.startswith("/generate"))
        assert "10.0" in row and row.rstrip().endswith("30")
        # 18 of 20 new obs at 50ms: p50 interpolates inside the first
        # bucket (<=10ms excluded, so between 10 and 100 ms)
        p50 = float(row.split()[2])
        assert 10.0 < p50 <= 100.0

    def test_first_frame_without_prev(self):
        _prev, curr = _two_snapshots()
        frame = render_dashboard("http://x", None, None, curr, dt=2.0)
        assert "(unreachable)" in frame
        assert "/generate" in frame

    def test_router_health_marks_down_backends(self):
        health = {"ok": False, "router": True, "shards": 2,
                  "jobs": {"running": 1},
                  "backends": [{"url": "http://a", "ok": True},
                               {"url": "http://b", "ok": False,
                                "error": "unreachable"}],
                  "trace": {"buffered": 4, "dropped": 1}}
        _prev, curr = _two_snapshots()
        frame = render_dashboard("http://r", health, None, curr, dt=2.0)
        assert "1/2 backends ok" in frame
        assert "DOWN:http://b" in frame and "up:http://a" in frame
        assert "jobs: running=1" in frame
        assert "trace: 4 spans buffered / 1 dropped" in frame

    def test_fleet_health_states_and_verdict(self):
        health = {"ok": False, "status": "degraded", "router": True,
                  "shards": 2, "jobs": {},
                  "backends": [{"url": "http://a", "ok": True,
                                "state": "up"},
                               {"url": "http://b", "ok": False,
                                "state": "degraded"}]}
        _prev, curr = _two_snapshots()
        frame = render_dashboard("http://r", health, None, curr, dt=2.0)
        assert "[degraded]" in frame
        assert "DEGRADED:http://b" in frame and "up:http://a" in frame

    def test_fleet_section_failover_and_chaos(self):
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        retries = reg.counter("repro_router_retries_total", "",
                              ("reason",))
        retries.labels(reason="refused").inc(6)
        retries.labels(reason="degraded_reroute").inc(2)
        flips = reg.counter("repro_breaker_transitions_total", "",
                            ("backend", "to"))
        flips.labels(backend="http://b", to="open").inc(2)
        flips.labels(backend="http://b", to="closed").inc(1)
        reg.counter("repro_faults_injected_total", "",
                    ("site", "kind")).labels(
            site="router:forward", kind="drop").inc(3)
        frame = render_dashboard("http://r", {"ok": True}, None,
                                 reg.snapshot(), dt=2.0)
        assert "failover: retries=8" in frame
        assert "refused=6" in frame and "degraded_reroute=2" in frame
        assert "transitions=3 (opened 2)" in frame
        assert "chaos faults fired=3" in frame

    def test_fleet_section_absent_without_fleet_metrics(self):
        _prev, curr = _two_snapshots()
        frame = render_dashboard("http://x", {"ok": True}, None, curr,
                                 dt=2.0)
        assert "failover:" not in frame


class TestHistoryEndpoint:
    def test_server_history_window(self):
        server = ServerThread(BatchEngine(cache=None),
                              history_interval_s=0.1).start()
        try:
            import time

            time.sleep(0.35)
            with ServiceClient.from_url(server.url) as client:
                client.generate(TINY)
                payload = client.metrics_history()
                assert payload["count"] >= 2
                assert payload["interval_s"] == pytest.approx(0.1)
                last = payload["samples"][-1]["metrics"]
                assert snapshot_value(
                    last, "repro_jobs", status="running") is not None
                trimmed = client.metrics_history(samples=1)
                assert trimmed["count"] == 1
        finally:
            server.stop()

    def test_bad_samples_param_is_400(self):
        from repro.service import ServiceError

        server = ServerThread(BatchEngine(cache=None)).start()
        try:
            with ServiceClient.from_url(server.url) as client:
                with pytest.raises(ServiceError) as err:
                    client.request("GET", "/metrics/history?samples=x")
            assert err.value.status == 400
        finally:
            server.stop()

    def test_router_serves_own_history(self):
        backend = ServerThread(BatchEngine(cache=None)).start()
        router = RouterThread([backend.url],
                              history_interval_s=0.1).start()
        try:
            with ServiceClient.from_url(router.url) as client:
                payload = client.metrics_history()
            assert payload["count"] >= 1
        finally:
            router.stop()
            backend.stop()


class TestCliSurfaces:
    def test_repro_top_iterations(self, tmp_path, capsys):
        from repro.service import DesignCache

        server = ServerThread(
            BatchEngine(cache=DesignCache(root=tmp_path / "c"))).start()
        try:
            with ServiceClient.from_url(server.url) as client:
                client.generate(TINY)
                client.generate(TINY)
            code = main(["top", "--url", server.url, "--iterations", "2",
                         "--interval", "0.1", "--no-clear"])
        finally:
            server.stop()
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("repro top —") == 2
        assert "/generate" in out
        assert re.search(r"CACHE TIER", out)

    def test_repro_top_unreachable_is_error(self, capsys):
        code = main(["top", "--url", "http://127.0.0.1:9",
                     "--iterations", "1"])
        assert code == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_repro_profile_against_server(self, tmp_path, capsys):
        server = ServerThread(BatchEngine(cache=None)).start()
        try:
            collapsed = tmp_path / "p.collapsed"
            code = main(["profile", "--url", server.url, "--seconds",
                         "0.2", "--hz", "100", "--include-idle",
                         "--collapsed-out", str(collapsed)])
        finally:
            server.stop()
        assert code == 0
        out = capsys.readouterr().out
        assert "samples over" in out
        assert collapsed.exists()
        for line in collapsed.read_text().splitlines():
            assert re.match(r"^\S.* \d+$", line)

    def test_repro_trace_url_pull(self, tmp_path, capsys):
        from repro.service import DesignCache

        server = ServerThread(
            BatchEngine(cache=DesignCache(root=tmp_path / "c"))).start()
        try:
            with ServiceClient.from_url(server.url) as client:
                tid = client.generate(TINY)["trace_id"]
            out_file = tmp_path / "pulled.json"
            code = main(["trace", "--url", server.url, "--trace-id", tid,
                         "--out", str(out_file)])
        finally:
            server.stop()
        assert code == 0
        out = capsys.readouterr().out
        assert "complete spans" in out
        from repro.obs import load_chrome_trace

        events = load_chrome_trace(out_file)
        assert events and all(e["args"]["trace_id"] == tid
                              for e in events)

    def test_repro_trace_needs_file_xor_url(self, capsys):
        assert main(["trace"]) == 2
        assert main(["trace", "x.json", "--url", "http://y"]) == 2
