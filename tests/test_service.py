"""Tests for the design service: canonical specs, the content-addressed
cache, the parallel batch engine, and the façade/CLI integration."""

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.cli import main as cli_main
from repro.dse.explorer import DesignSpace, explore
from repro.models import zoo
from repro.service import (BatchEngine, DesignCache, DesignRequest,
                           execute_request, requests_from_space)
from repro.service.spec import SUPPORTED_KERNELS

SRC_DIR = str(pathlib.Path(__file__).resolve().parents[1] / "src")


def tiny_requests() -> list[DesignRequest]:
    """16 distinct, fast-to-build requests (the acceptance batch)."""
    reqs = [DesignRequest(kernel="gemm", dataflows=(d,), array=a)
            for d in ("KJ", "IJ", "IK")
            for a in ((2, 2), (3, 3), (2, 3))]
    reqs += [DesignRequest(kernel="mttkrp", dataflows=(d,), array=a)
             for d in ("IJ", "KJ") for a in ((2, 2), (3, 2))]
    reqs += [DesignRequest(kernel="conv2d", dataflows=(d,), array=(2, 2),
                           systolic=False) for d in ("OHOW", "ICOC")]
    reqs += [DesignRequest(kernel="attention", array=(2, 2))]
    assert len(reqs) == 16
    return reqs


class TestDesignRequest:
    def test_canonical_roundtrip(self):
        req = DesignRequest(kernel="conv2d", dataflows=["ICOC", "OHOW"],
                            array=[4, 4], bounds={"kh": 5, "kw": 5})
        clone = DesignRequest.from_dict(json.loads(req.canonical_json()))
        assert clone == req
        assert clone.spec_hash() == req.spec_hash()

    def test_bounds_order_irrelevant(self):
        a = DesignRequest(bounds=(("m", 8), ("k", 16)))
        b = DesignRequest(bounds=(("k", 16), ("m", 8)))
        assert a.spec_hash() == b.spec_hash()

    def test_distinct_requests_distinct_hashes(self):
        hashes = {r.spec_hash() for r in tiny_requests()}
        assert len(hashes) == 16

    def test_rejects_unknown_kernel(self):
        with pytest.raises(ValueError, match="kernel"):
            DesignRequest(kernel="fft")

    def test_rejects_bad_array(self):
        with pytest.raises(ValueError, match="array"):
            DesignRequest(array=(0, 4))

    def test_hash_stable_across_processes(self):
        """The content address must not depend on interpreter state
        (hash randomization, import order, dict order)."""
        req = DesignRequest(kernel="gemm", dataflows=("KJ", "IJ"),
                            array=(4, 4), bounds={"k": 32})
        script = ("import json,sys\n"
                  "from repro.service.spec import DesignRequest\n"
                  "r = DesignRequest.from_dict(json.loads(sys.argv[1]))\n"
                  "print(r.spec_hash())\n")
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = "random"
        out = subprocess.run(
            [sys.executable, "-c", script, req.canonical_json()],
            capture_output=True, text=True, env=env, check=True)
        assert out.stdout.strip() == req.spec_hash()

    def test_attention_dataflows_normalized(self):
        """The attention pair is fixed; whatever the caller passes must
        hash to the same (single) cache entry."""
        a = DesignRequest(kernel="attention", dataflows=("KJ",))
        b = DesignRequest(kernel="attention", dataflows=("IJ", "IK"))
        assert a.dataflows == b.dataflows == ("QK", "PV")
        assert a.spec_hash() == b.spec_hash()

    def test_builds_every_kernel(self):
        for kernel in SUPPORTED_KERNELS:
            req = DesignRequest(kernel=kernel, dataflows=(
                {"gemm": "KJ", "conv2d": "OHOW",
                 "mttkrp": "IJ", "attention": "QKPV"}[kernel],),
                array=(2, 2))
            dfs = req.build_dataflows()
            assert dfs and all(df.rs == (2, 2) for df in dfs)


class TestCache:
    def test_roundtrip_byte_identity(self, tmp_path):
        cache = DesignCache(root=tmp_path)
        engine = BatchEngine(cache=cache)
        req = DesignRequest(array=(2, 2))
        first = engine.submit(req)
        assert first.ok and not first.from_cache
        second = engine.submit(req)
        assert second.from_cache
        assert second.design_bytes() == first.design_bytes()
        assert second.rtl == first.rtl
        assert second.summary == first.summary
        # the cold run stores the finished record plus the staged
        # pipeline's scheduled-design intermediate
        assert cache.stats.hits == 1 and cache.stats.puts == 2

    def test_cold_memory_warm_disk(self, tmp_path):
        """A fresh process (fresh engine) must hit the on-disk tier."""
        req = DesignRequest(array=(2, 2))
        first = BatchEngine(cache=DesignCache(root=tmp_path)).submit(req)
        cache = DesignCache(root=tmp_path)
        second = BatchEngine(cache=cache).submit(req)
        assert second.from_cache and cache.stats.memory_hits == 0
        assert second.design_bytes() == first.design_bytes()

    def test_corrupted_entry_recovery(self, tmp_path):
        cache = DesignCache(root=tmp_path)
        engine = BatchEngine(cache=cache)
        req = DesignRequest(array=(2, 2))
        first = engine.submit(req)
        path = cache.path_for(req.spec_hash())
        path.write_text("{not json")
        cache._memory.clear()  # force the disk read
        redone = engine.submit(req)
        assert redone.ok and not redone.from_cache
        assert cache.stats.corrupt == 1
        assert redone.design_bytes() == first.design_bytes()
        assert not path.with_suffix(".tmp").exists()

    def test_non_object_json_treated_as_corrupt(self, tmp_path):
        cache = DesignCache(root=tmp_path)
        key = "cd" + "0" * 62
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text("[1, 2, 3]")  # valid JSON, wrong shape
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1
        assert not path.exists()

    def test_wrong_format_treated_as_corrupt(self, tmp_path):
        cache = DesignCache(root=tmp_path)
        key = "ab" + "0" * 62
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"format": "something-else"}))
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1
        assert not path.exists()

    def test_memory_lru_bounded(self, tmp_path):
        cache = DesignCache(root=tmp_path, memory_entries=2)
        for i in range(5):
            cache.put(f"{i:02d}" + "0" * 62, {"i": i})
        assert len(cache._memory) == 2
        assert len(cache) == 5  # disk keeps everything

    def test_disk_eviction_oldest_first(self, tmp_path):
        cache = DesignCache(root=tmp_path, disk_entries=3)
        keys = [f"{i:02d}" + "0" * 62 for i in range(5)]
        for i, key in enumerate(keys):
            cache.put(key, {"i": i})
            os.utime(cache.path_for(key), (i, i))
        cache.put("ff" + "0" * 62, {"i": 99})
        assert len(cache) == 3
        assert cache.stats.evictions >= 3
        remaining = set(cache.keys())
        assert keys[0] not in remaining and keys[1] not in remaining

    def test_peek_is_read_only(self, tmp_path):
        cache = DesignCache(root=tmp_path)
        key = "ee" + "0" * 62
        cache.put(key, {"x": 1})
        cache._memory.clear()
        assert cache.peek(key) == {"x": 1}
        assert cache.stats.hits == 0 and not cache._memory
        assert cache.peek("ff" + "0" * 62) is None  # miss: no stats

    def test_clear(self, tmp_path):
        cache = DesignCache(root=tmp_path)
        cache.put("aa" + "0" * 62, {"x": 1})
        assert cache.clear() == 1
        assert len(cache) == 0 and cache.get("aa" + "0" * 62) is None


class TestBatchEngine:
    @pytest.fixture(scope="class")
    def serial_results(self):
        return BatchEngine(cache=None).generate_many(tiny_requests())

    def test_serial_all_ok(self, serial_results):
        assert all(r.ok for r in serial_results)

    def test_parallel_equals_serial(self, serial_results):
        parallel = BatchEngine(cache=None).generate_many(
            tiny_requests(), workers=4)
        assert len(parallel) == len(serial_results)
        for a, b in zip(serial_results, parallel):
            assert a.spec_hash == b.spec_hash
            assert a.design_bytes() == b.design_bytes()
            assert a.rtl == b.rtl

    def test_second_run_hits_cache_fully(self, tmp_path, serial_results):
        """Acceptance: a repeated batch over 16 requests is a 100% cache
        hit and byte-identical to the cold run."""
        cache = DesignCache(root=tmp_path)
        engine = BatchEngine(cache=cache)
        cold = engine.generate_many(tiny_requests(), workers=4)
        warm = engine.generate_many(tiny_requests())
        assert all(not r.from_cache for r in cold)
        assert all(r.from_cache for r in warm)
        assert cache.stats.hits >= 16
        for a, b, c in zip(cold, warm, serial_results):
            assert a.design_bytes() == b.design_bytes() == c.design_bytes()

    def test_in_batch_dedup(self, tmp_path):
        cache = DesignCache(root=tmp_path)
        engine = BatchEngine(cache=cache)
        req = DesignRequest(array=(2, 2))
        results = engine.generate_many([req, req, req])
        assert len(results) == 3
        # computed once: one finished record + one phase intermediate
        assert cache.stats.puts == 2
        assert len({id(r) for r in results}) == 1

    def test_error_capture_does_not_poison_batch(self, tmp_path):
        cache = DesignCache(root=tmp_path)
        engine = BatchEngine(cache=cache)
        bad = DesignRequest(kernel="gemm", dataflows=("XX",), array=(2, 2))
        good = DesignRequest(array=(2, 2))
        results = engine.generate_many([bad, good])
        assert not results[0].ok and "XX" in results[0].error
        assert results[1].ok
        # failures are never cached: a retry recomputes
        assert cache.get(bad.spec_hash()) is None

    def test_error_capture_preserves_traceback(self):
        """The captured failure must carry the original traceback (file
        and line of the raise site), not just the exception's last
        line — and it must survive the record round-trip."""
        from repro.service import DesignResult

        bad = DesignRequest(kernel="gemm", dataflows=("XX",), array=(2, 2))
        result = BatchEngine(cache=None).submit(bad)
        assert not result.ok
        assert result.traceback is not None
        assert "Traceback (most recent call last)" in result.traceback
        assert "File " in result.traceback  # the original raise site
        assert result.traceback.rstrip().endswith(result.error)
        clone = DesignResult.from_record(result.spec_hash,
                                         result.to_record())
        assert clone.traceback == result.traceback
        # Pre-traceback cache records still load (missing key -> None).
        legacy = result.to_record()
        del legacy["traceback"]
        assert DesignResult.from_record(result.spec_hash,
                                        legacy).traceback is None

    def test_progress_reports_cold_work(self):
        seen = []
        BatchEngine(cache=None).generate_many(
            [DesignRequest(array=(2, 2)),
             DesignRequest(array=(2, 3))],
            progress=lambda done, total, r: seen.append((done, total)))
        assert seen == [(1, 2), (2, 2)]

    def test_progress_reaches_total_on_hits_and_dups(self, tmp_path):
        engine = BatchEngine(cache=DesignCache(root=tmp_path))
        a = DesignRequest(array=(2, 2))
        b = DesignRequest(array=(2, 3))
        engine.submit(a)  # warm the cache for `a`
        seen = []
        engine.generate_many(
            [a, b, b], progress=lambda d, t, r: seen.append((d, t)))
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_accepts_design_space(self):
        space = DesignSpace(arrays=((2, 2),), buffer_kb=(128.0,),
                            dataflow_sets=(("MN",), ("MN", "ICOC")))
        reqs = requests_from_space(space)
        kernels = sorted(r.kernel for r in reqs)
        assert kernels == ["conv2d", "gemm"]  # deduplicated across points
        results = BatchEngine(cache=None).generate_many(space)
        assert [r.ok for r in results] == [True, True]


class TestExplorerIntegration:
    SPACE = DesignSpace(arrays=((8, 8), (16, 16)), buffer_kb=(128.0,),
                        dataflow_sets=(("ICOC",), ("MN", "ICOC")))

    def test_parallel_explore_matches_serial(self):
        serial = explore([zoo.lenet()], self.SPACE)
        parallel = explore([zoo.lenet()], self.SPACE, workers=2)
        assert [(p.arch.name, p.cycles, p.energy_pj) for p in serial] == \
               [(p.arch.name, p.cycles, p.energy_pj) for p in parallel]

    def test_cached_explore_matches_and_hits(self, tmp_path):
        cache = DesignCache(root=tmp_path)
        baseline = explore([zoo.lenet()], self.SPACE)
        first = explore([zoo.lenet()], self.SPACE, cache=cache)
        again = explore([zoo.lenet()], self.SPACE, cache=cache)
        n = self.SPACE.size()
        assert cache.stats.puts == n and cache.stats.hits == n
        for a, b, c in zip(baseline, first, again):
            assert a.cycles == b.cycles == c.cycles
            assert a.energy_pj == b.energy_pj == c.energy_pj

    def test_eval_key_distinguishes_models(self, tmp_path):
        cache = DesignCache(root=tmp_path)
        explore([zoo.lenet()], self.SPACE, cache=cache)
        explore([zoo.alexnet()], self.SPACE, cache=cache)
        assert cache.stats.puts == 2 * self.SPACE.size()


class TestServiceCLI:
    def test_batch_then_warm(self, tmp_path, capsys):
        argv = ["batch", "--kernel", "gemm", "--dataflows", "KJ", "IJ",
                "--arrays", "2x2", "3x3", "--workers", "2",
                "--cache-dir", str(tmp_path / "cache"),
                "--output-dir", str(tmp_path / "out")]
        assert cli_main(argv) == 0
        out = capsys.readouterr().out
        assert "4/4 designs ok (0 from cache)" in out
        assert len(list((tmp_path / "out").glob("*.v"))) == 4
        assert cli_main(argv) == 0
        assert "4/4 designs ok (4 from cache)" in capsys.readouterr().out

    def test_batch_spec_file(self, tmp_path, capsys):
        spec = tmp_path / "batch.json"
        spec.write_text(json.dumps([
            DesignRequest(array=(2, 2)).to_dict(),
            DesignRequest(kernel="mttkrp", dataflows=("IJ",),
                          array=(2, 2)).to_dict(),
        ]))
        rc = cli_main(["batch", "--spec-file", str(spec), "--no-cache"])
        assert rc == 0
        assert "2/2 designs ok" in capsys.readouterr().out

    def test_batch_reports_failure(self, tmp_path, capsys):
        spec = tmp_path / "batch.json"
        spec.write_text(json.dumps(
            [DesignRequest(dataflows=("XX",), array=(2, 2)).to_dict()]))
        rc = cli_main(["batch", "--spec-file", str(spec), "--no-cache"])
        assert rc == 1
        assert "failed" in capsys.readouterr().err

    def test_batch_rejects_zero_array(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["batch", "--arrays", "0x4", "--no-cache"])
        assert "positive" in capsys.readouterr().err

    def test_batch_rejects_bad_spec_values(self, tmp_path, capsys):
        spec = tmp_path / "batch.json"
        spec.write_text(json.dumps(
            [{"kernel": "fft", "dataflows": ["KJ"], "array": [2, 2]}]))
        rc = cli_main(["batch", "--spec-file", str(spec), "--no-cache"])
        assert rc == 2
        assert "invalid design request" in capsys.readouterr().err

    def test_cache_stats_list_clear(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        cli_main(["generate", "--array", "2", "2",
                  "--cache-dir", cache_dir])
        capsys.readouterr()
        # two entries: the finished design plus the staged pipeline's
        # scheduled-design phase intermediate
        assert cli_main(["cache", "stats", "--dir", cache_dir]) == 0
        assert "entries    : 2" in capsys.readouterr().out
        assert cli_main(["cache", "list", "--dir", cache_dir]) == 0
        listing = capsys.readouterr().out
        assert "design  gemm-KJ @2x2" in listing
        assert "phase   design" in listing
        assert cli_main(["cache", "clear", "--dir", cache_dir]) == 0
        assert "removed 2" in capsys.readouterr().out

    def test_generate_cache_hit_note(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        argv = ["generate", "--array", "2", "2", "--cache-dir", cache_dir]
        cli_main(argv)
        capsys.readouterr()
        assert cli_main(argv) == 0
        assert "cache hit" in capsys.readouterr().out

    def test_explore_flags(self, capsys):
        rc = cli_main(["explore", "--models", "LeNet", "--workers", "2",
                       "--area-budget", "20.0", "--no-cache"])
        assert rc == 0
        assert "Pareto frontier" in capsys.readouterr().out


class TestFacade:
    def test_submit_and_stats(self, tmp_path):
        from repro.service import api
        engine = api.get_engine(cache_dir=tmp_path / "cache")
        result = api.submit(DesignRequest(array=(2, 2)))
        assert result.ok
        stats = api.cache_stats()
        # finished record + scheduled-design phase intermediate
        assert stats["disk_entries"] == 2 and stats["puts"] == 2
        assert api.clear_cache() == 2
        # Re-passing the same cache_dir keeps the warm engine ...
        assert api.get_engine(cache_dir=tmp_path / "cache") is engine
        api.get_engine(reset=True)  # detach from tmp_path
        # ... a different one rebuilds it.
        assert engine is not api.get_engine(cache_dir=tmp_path / "c2")

    def test_explore_cached_facade(self, tmp_path):
        from repro.service import api
        api.get_engine(cache_dir=tmp_path / "cache")
        space = DesignSpace(arrays=((8, 8),), buffer_kb=(128.0,),
                            dataflow_sets=(("ICOC",),))
        result = api.explore_cached([zoo.lenet()], space, workers=1)
        assert len(result.points) == 1
        assert result.strategy == "exhaustive"
        assert result.evals_used == 1.0
        # A warm re-run under a guided strategy is answered by the cache.
        warm = api.explore_cached([zoo.lenet()], space, strategy="anneal",
                                  max_evals=1)
        assert warm.best.arch == result.best.arch
        api.get_engine(reset=True)

    def test_execute_request_direct(self):
        result = execute_request(DesignRequest(array=(2, 2)))
        assert result.ok and "LEGO design" in result.summary
