"""Telemetry subsystem tests: registry semantics under concurrency,
snapshot merging (the pool-worker protocol), trace-id propagation across
process boundaries, Prometheus exposition validity end to end over HTTP,
and the killed-server-restart scenario."""

import json
import os
import pickle
import re
import threading

import pytest

from repro.obs import (CACHE_PHASE_TIERS, PHASE_ADG, PHASE_DESIGN,
                       PHASE_DESIGN_LOAD, PHASE_EMIT, PHASE_FLIGHT_WAIT,
                       PHASE_SCHEDULE, PHASE_SIM, PIPELINE_PHASES,
                       MetricsRegistry, current_span_id,
                       current_trace_id, export_chrome_trace,
                       format_trace_header, get_registry, get_tracer,
                       load_chrome_trace, new_trace_id,
                       parse_trace_header, refresh_trace_metrics,
                       timed_phase, trace_context, trace_span)
from repro.obs.tracing import Tracer
from repro.service import (BatchEngine, DesignCache, DesignRequest,
                           ServerThread, ServiceClient)

TINY = {"kernel": "gemm", "dataflows": ["KJ"], "array": [2, 2]}

# One non-comment exposition line: name, optional {labels}, value.
# Label values are quoted strings with escapes ("}" is legal inside).
_LABEL_PAIR = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    rf"(\{{{_LABEL_PAIR}(,{_LABEL_PAIR})*\}})? "
    r"(-?\d+(\.\d+)?([eE][+-]?\d+)?|[+-]Inf|NaN)$")


def assert_valid_exposition(text: str) -> dict:
    """Validate Prometheus text format; return {sample name: value}."""
    samples = {}
    typed = set()
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            name, kind = line.split()[2:4]
            assert kind in ("counter", "gauge", "histogram"), line
            assert name not in typed, f"duplicate TYPE for {name}"
            typed.add(name)
            continue
        if line.startswith("#"):
            assert line.startswith("# HELP "), line
            continue
        assert _SAMPLE_RE.match(line), f"bad sample line: {line!r}"
        name_and_labels, value = line.rsplit(" ", 1)
        samples[name_and_labels] = float(value)
    return samples


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_counter_gauge_histogram_basics(self):
        r = MetricsRegistry()
        c = r.counter("c_total", "a counter", ("k",))
        c.labels(k="x").inc()
        c.labels(k="x").inc(2.5)
        assert c.labels(k="x").value == 3.5
        with pytest.raises(ValueError):
            c.labels(k="x").inc(-1)
        g = r.gauge("g", "a gauge")
        g.set(7)
        g.dec(2)
        assert g.labels().value == 5.0
        h = r.histogram("h_seconds", "a histogram", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        child = h.labels()
        assert child.bucket_counts == [1, 1, 1]
        assert child.count == 3

    def test_label_validation(self):
        r = MetricsRegistry()
        with pytest.raises(ValueError):
            r.counter("bad name")
        c = r.counter("ok_total", "", ("a",))
        with pytest.raises(ValueError):
            c.labels(b="nope")
        # redeclaring with a different shape is an error, same shape is
        # a fetch
        assert r.counter("ok_total", "", ("a",)) is c
        with pytest.raises(ValueError):
            r.gauge("ok_total")

    def test_thread_safety_under_concurrent_increments(self):
        r = MetricsRegistry()
        c = r.counter("threads_total", "", ("worker",))
        h = r.histogram("threads_seconds", "", buckets=(1.0,))
        n_threads, per_thread = 8, 2000

        def hammer(i):
            for _ in range(per_thread):
                c.labels(worker=str(i % 2)).inc()
                h.observe(0.5)

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = sum(child.value
                    for child in [c.labels(worker="0"), c.labels(worker="1")])
        assert total == n_threads * per_thread
        assert h.labels().count == n_threads * per_thread

    def test_snapshot_merge_correctness(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for r, amount in ((a, 2), (b, 3)):
            r.counter("m_total", "", ("k",)).labels(k="x").inc(amount)
            r.gauge("depth").set(amount)
            r.histogram("lat_seconds", "", buckets=(1.0,)).observe(amount)
        snap = b.snapshot()
        snap = pickle.loads(pickle.dumps(snap))  # must survive the pool
        a.merge(snap)
        assert a.counter("m_total", "", ("k",)).labels(k="x").value == 5
        assert a.gauge("depth").labels().value == 3  # gauges overwrite
        hist = a.histogram("lat_seconds", "", buckets=(1.0,)).labels()
        assert hist.count == 2 and hist.sum == 5.0

    def test_merge_declares_unknown_families(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("worker_only_total").inc(4)
        a.merge(b.snapshot())
        assert a.counter("worker_only_total").labels().value == 4

    def test_reset_keeps_family_handles_valid(self):
        r = MetricsRegistry()
        c = r.counter("persistent_total")
        c.inc(9)
        r.reset()
        assert c.labels().value == 0
        c.inc()  # the module-level-handle pattern: still registered
        assert "persistent_total 1" in r.render()

    def test_render_is_valid_exposition(self):
        r = MetricsRegistry()
        r.counter("x_total", "help text", ("k",)).labels(k='a"b\\c').inc()
        r.histogram("y_seconds", "lat", ("route",),
                    buckets=(0.1, 1.0)).labels(route="/z").observe(0.5)
        samples = assert_valid_exposition(r.render())
        assert any(s.startswith("x_total{") for s in samples)
        # histogram renders cumulative buckets plus _sum/_count
        inf = 'y_seconds_bucket{route="/z",le="+Inf"}'
        assert samples[inf] == 1
        assert samples['y_seconds_count{route="/z"}'] == 1


# ---------------------------------------------------------------------------
# tracing
# ---------------------------------------------------------------------------

class TestTracing:
    def test_span_records_complete_event(self):
        before = len(get_tracer().events())
        with trace_span("unit", kind="test") as span:
            span.set(extra=1)
        events = get_tracer().events()
        assert len(events) == before + 1
        event = events[-1]
        assert event["ph"] == "X" and event["name"] == "unit"
        assert event["args"]["kind"] == "test"
        assert event["args"]["extra"] == 1
        assert event["pid"] == os.getpid()
        assert event["dur"] >= 0

    def test_trace_context_binds_and_restores(self):
        assert current_trace_id() is None
        tid = new_trace_id()
        with trace_context(tid):
            assert current_trace_id() == tid
            with trace_span("inner"):
                pass
        assert current_trace_id() is None
        assert get_tracer().events()[-1]["args"]["trace_id"] == tid

    def test_export_load_roundtrip(self, tmp_path):
        with trace_context("feedc0dedeadbeef"), trace_span("roundtrip"):
            pass
        out = tmp_path / "trace.json"
        count = export_chrome_trace(out)
        assert count >= 1
        data = json.loads(out.read_text())
        assert data["displayTimeUnit"] == "ms"
        events = load_chrome_trace(out)
        assert len(events) == count
        names = {e["name"] for e in events}
        assert "roundtrip" in names

    def test_timed_phase_fills_sink_and_histogram(self):
        reg = get_registry()
        hist = reg.histogram("repro_phase_seconds", "", ("phase",))
        child = hist.labels(phase="unit_phase")
        before = child.count
        sink = {}
        with timed_phase("unit_phase", sink):
            pass
        assert "unit_phase" in sink and sink["unit_phase"] >= 0
        assert child.count == before + 1

    def test_span_ids_link_parent_child(self):
        with trace_span("outer") as outer:
            assert current_span_id() == outer.span_id
            with trace_span("inner") as inner:
                assert current_span_id() == inner.span_id
            assert current_span_id() == outer.span_id
        assert current_span_id() is None
        events = get_tracer().events()
        by_name = {e["name"]: e["args"] for e in events[-2:]}
        assert re.match(r"^[0-9a-f]{16}$", by_name["outer"]["span_id"])
        assert "parent_id" not in by_name["outer"]
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]

    def test_trace_context_parent_seeds_first_span(self):
        # the server-side binding: (trace_id, parent from the incoming
        # X-Repro-Trace header) -> the first local span parents upstream
        upstream = new_trace_id()
        with trace_context("feedc0dedeadbeef", upstream):
            with trace_span("child"):
                pass
        args = get_tracer().events()[-1]["args"]
        assert args["trace_id"] == "feedc0dedeadbeef"
        assert args["parent_id"] == upstream

    def test_header_format_parse_roundtrip(self):
        tid = new_trace_id()
        assert format_trace_header() is None  # unbound context: no header
        with trace_context(tid):
            assert format_trace_header() == tid
            assert parse_trace_header(format_trace_header()) == (tid, None)
            with trace_span("hop") as span:
                header = format_trace_header()
                assert header == f"{tid}-{span.span_id}"
                assert parse_trace_header(header) == (tid, span.span_id)

    def test_malformed_headers_parse_to_none(self):
        for garbage in (None, "", "xyz", "short-abc", "0" * 15,
                        "g" * 16, f"{new_trace_id()}-nothex",
                        f"{new_trace_id()}-{new_trace_id()}-extra"):
            assert parse_trace_header(garbage) == (None, None), garbage

    def test_dropped_spans_counted(self):
        dropped = get_registry().counter(
            "repro_trace_dropped_total",
            "trace events dropped because the ring buffer was full")
        before = dropped.labels().value
        small = Tracer(max_events=4)
        for i in range(7):
            small.record({"name": f"e{i}", "ph": "X"})
        assert small.dropped == 3
        assert small.buffer_stats() == {"buffered": 4, "capacity": 4,
                                        "dropped": 3}
        assert dropped.labels().value == before + 3

    def test_refresh_trace_metrics_sets_gauge(self):
        with trace_span("occupancy"):
            pass
        stats = refresh_trace_metrics()
        assert stats["buffered"] >= 1
        gauge = get_registry().gauge(
            "repro_trace_buffer_events",
            "trace events currently buffered in the ring")
        assert gauge.labels().value == stats["buffered"]

    def test_phase_vocabulary_is_hash_stable(self):
        # These literals participate in content-addressed cache keys
        # and on-disk record kinds; changing them silently invalidates
        # every warm cache.
        assert (PHASE_ADG, PHASE_SCHEDULE, PHASE_EMIT,
                PHASE_DESIGN_LOAD, PHASE_FLIGHT_WAIT) == PIPELINE_PHASES
        assert PIPELINE_PHASES == ("adg", "schedule", "emit",
                                   "design_load", "flight_wait")
        assert (PHASE_ADG, PHASE_DESIGN, PHASE_SIM) == CACHE_PHASE_TIERS
        assert CACHE_PHASE_TIERS == ("adg", "design", "sim")


# ---------------------------------------------------------------------------
# trace export / load / drain
# ---------------------------------------------------------------------------

class TestTraceExportLoad:
    def test_bare_array_form_loads(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text(json.dumps([{"name": "a", "ph": "X"},
                                    {"name": "b", "ph": "X"}]))
        events = load_chrome_trace(path)
        assert [e["name"] for e in events] == ["a", "b"]

    def test_non_dict_entries_filtered(self, tmp_path):
        path = tmp_path / "mixed.json"
        path.write_text(json.dumps(
            {"traceEvents": [{"name": "keep", "ph": "X"}, 42, "junk",
                             None, ["list"], {"name": "keep2"}]}))
        assert [e["name"] for e in load_chrome_trace(path)] \
            == ["keep", "keep2"]

    def test_explicit_events_roundtrip(self, tmp_path):
        events = [{"name": f"e{i}", "ph": "X", "ts": i, "dur": 1,
                   "args": {"span_id": "ab" * 8}} for i in range(5)]
        path = tmp_path / "explicit.json"
        assert export_chrome_trace(path, events) == 5
        assert load_chrome_trace(path) == events

    def test_take_drains_once_under_concurrent_recorders(self):
        tracer = Tracer(max_events=100_000)
        n_threads, per_thread = 6, 500
        start = threading.Barrier(n_threads + 1)
        taken: list[dict] = []

        def record(i):
            start.wait()
            for j in range(per_thread):
                tracer.record({"name": f"t{i}.{j}", "ph": "X"})

        threads = [threading.Thread(target=record, args=(i,))
                   for i in range(n_threads)]
        for t in threads:
            t.start()
        start.wait()
        for _ in range(50):  # drain concurrently with the recorders
            taken.extend(tracer.take())
        for t in threads:
            t.join()
        taken.extend(tracer.take())
        # every event drained exactly once: no loss, no duplication
        assert len(taken) == n_threads * per_thread
        assert len({e["name"] for e in taken}) == len(taken)
        assert tracer.events() == [] and tracer.dropped == 0


# ---------------------------------------------------------------------------
# batch engine integration: pool workers ship telemetry home
# ---------------------------------------------------------------------------

class TestPoolTelemetry:
    def test_trace_id_propagates_across_pool_batch(self, tmp_path):
        engine = BatchEngine(cache=DesignCache(root=tmp_path / "c"),
                             workers=2)
        requests = [DesignRequest(kernel="gemm", dataflows=(df,),
                                  array=(2, 2))
                    for df in ("KJ", "IJ", "IK")]
        tid = new_trace_id()
        phase_hist = get_registry().histogram(
            "repro_phase_seconds", "", ("phase",))
        adg_before = phase_hist.labels(phase=PHASE_ADG).count
        with trace_context(tid):
            results = engine.generate_many(requests, workers=2)
        assert all(r.ok for r in results)

        own_pid = os.getpid()
        tagged = [e for e in get_tracer().events()
                  if e["args"].get("trace_id") == tid]
        worker_pids = {e["pid"] for e in tagged} - {own_pid}
        assert worker_pids, "no spans merged back from pool workers"
        # every pipeline phase of every cold request came home
        phase_names = [e["name"] for e in tagged]
        for phase in (PHASE_ADG, PHASE_SCHEDULE, PHASE_EMIT):
            assert phase_names.count(phase) == len(requests)
        assert "batch" in phase_names
        # worker metrics merged too (each cold request runs the ADG
        # phase exactly once, in a worker process)
        assert (phase_hist.labels(phase=PHASE_ADG).count
                == adg_before + len(requests))

    def test_worker_snapshots_are_deltas_not_doubles(self, tmp_path):
        """Two pooled batches over the same fork-inherited parent state
        must add exactly their own work (no re-merge of inherited
        counts)."""
        engine = BatchEngine(cache=None, workers=2)
        designs = get_registry().counter(
            "repro_designs_total", "", ("source", "outcome"))
        cold_ok = designs.labels(source="cold", outcome="ok")
        phase_hist = get_registry().histogram(
            "repro_phase_seconds", "", ("phase",))
        emit = phase_hist.labels(phase=PHASE_EMIT)
        for batch_round in range(2):
            before = emit.count
            requests = [DesignRequest(kernel="gemm", dataflows=(df,),
                                      array=(2, 2))
                        for df in ("KJ", "IJ")]
            results = engine.generate_many(requests, workers=2)
            assert all(r.ok for r in results)
            assert emit.count == before + len(requests)


# ---------------------------------------------------------------------------
# HTTP surfaces: /metrics, /healthz tiers, trace ids in responses
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def obs_server(tmp_path_factory):
    cache = DesignCache(root=tmp_path_factory.mktemp("obs-cache"))
    handle = ServerThread(BatchEngine(cache=cache)).start()
    yield handle
    handle.stop()


@pytest.fixture()
def obs_client(obs_server):
    with ServiceClient.from_url(obs_server.url) as c:
        yield c


class TestMetricsEndpoint:
    def test_exposition_valid_after_warm_and_cold_mix(self, obs_client):
        cold = obs_client.generate(TINY)        # cold
        warm = obs_client.generate(TINY)        # memory-tier warm hit
        assert cold["ok"] and warm["from_cache"]
        text = obs_client.metrics()
        samples = assert_valid_exposition(text)
        assert samples[
            'repro_cache_lookups_total{tier="memory",outcome="hit"}'] >= 1
        assert samples[
            'repro_cache_lookups_total{tier="disk",outcome="miss"}'] >= 1
        assert samples[
            'repro_generate_path_total{path="event_loop"}'] >= 1
        assert samples[
            'repro_generate_path_total{path="executor"}'] >= 1
        route_count = 'repro_http_request_seconds_count{route="/generate"}'
        assert samples[route_count] >= 2
        for phase in (PHASE_ADG, PHASE_SCHEDULE, PHASE_EMIT):
            key = f'repro_phase_seconds_count{{phase="{phase}"}}'
            assert samples[key] >= 1
        assert 'repro_jobs{status="running"}' in samples

    def test_trace_ids_in_responses(self, obs_client):
        r1 = obs_client.generate(TINY)
        r2 = obs_client.generate(TINY)
        assert re.match(r"^[0-9a-f]{16}$", r1["trace_id"])
        assert r1["trace_id"] != r2["trace_id"]
        job_id = obs_client.batch([TINY])
        job = obs_client.wait(job_id)
        assert re.match(r"^[0-9a-f]{16}$", job["trace_id"])
        summaries = obs_client.jobs()
        assert any(s["trace_id"] == job["trace_id"] for s in summaries)

    def test_healthz_reports_cache_tiers(self, obs_client):
        obs_client.generate(TINY)
        obs_client.generate(TINY)
        tiers = obs_client.health()["cache"]["tiers"]
        assert set(tiers) == {"memory", "disk", "phase", "live"}
        assert tiers["memory"]["hits"] >= 1
        assert {"hits", "misses", "puts", "evictions",
                "corrupt"} <= set(tiers["disk"])
        assert "hits" in tiers["phase"] and "misses" in tiers["phase"]
        assert "hits" in tiers["live"]

    def test_metrics_is_get_only(self, obs_client):
        from repro.service import ServiceError

        with pytest.raises(ServiceError) as err:
            obs_client.request("POST", "/metrics")
        assert err.value.status == 405

    def test_killed_server_restart_keeps_counters_sane(self, tmp_path):
        """A server dying and a new one starting (same process, same
        registry — the single-process restart scenario) must keep the
        exposition valid and counters monotone, not corrupt or reset
        them."""
        cache_root = tmp_path / "restart-cache"
        first = ServerThread(
            BatchEngine(cache=DesignCache(root=cache_root))).start()
        with ServiceClient.from_url(first.url) as client:
            assert client.generate(TINY)["ok"]
            before = assert_valid_exposition(client.metrics())
        first.stop()  # the kill

        second = ServerThread(
            BatchEngine(cache=DesignCache(root=cache_root))).start()
        try:
            with ServiceClient.from_url(second.url) as client:
                assert client.generate(TINY)["ok"]
                after = assert_valid_exposition(client.metrics())
        finally:
            second.stop()
        key = 'repro_http_request_seconds_count{route="/generate"}'
        assert after[key] > before[key]
        lookups = 'repro_cache_lookups_total{tier="disk",outcome="miss"}'
        assert after[lookups] >= before[lookups]


# ---------------------------------------------------------------------------
# CLI surfaces
# ---------------------------------------------------------------------------

class TestCli:
    def test_repro_metrics_local(self, capsys):
        from repro.cli import main

        get_registry().counter("repro_cli_smoke_total").inc()
        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert_valid_exposition(out)
        assert "repro_cli_smoke_total 1" in out

    def test_repro_trace_summarizes(self, tmp_path, capsys):
        from repro.cli import main

        with trace_context(new_trace_id()):
            with trace_span("outer"):
                with trace_span("inner"):
                    pass
        trace_file = tmp_path / "t.json"
        export_chrome_trace(trace_file)
        assert main(["trace", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "outer" in out and "inner" in out
        assert "wall span" in out

    def test_repro_trace_bad_file(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "nope.json"
        assert main(["trace", str(bad)]) == 2
        bad.write_text('{"traceEvents": 5}')
        assert main(["trace", str(bad)]) == 2

    def test_batch_trace_out_flag(self, tmp_path, capsys):
        from repro.cli import main

        trace_file = tmp_path / "batch.json"
        code = main(["batch", "--kernel", "gemm", "--dataflows", "KJ",
                     "--arrays", "2x2", "--cache-dir",
                     str(tmp_path / "cache"), "--trace-out",
                     str(trace_file)])
        assert code == 0
        events = load_chrome_trace(trace_file)
        names = {e["name"] for e in events}
        assert "batch" in names and PHASE_ADG in names
