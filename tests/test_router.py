"""Fleet router tests: spec-hash shard routing (and its raw-body LRU),
multi-shard batch fan-out with in-order merge, explore round-robin,
namespaced job forwarding (poll/pause/resume/stream through the
router), merged /jobs, /healthz and /metrics, and backend-failure
surfacing (502 with the backend named)."""

import socket
import threading

import pytest

from repro.service import (BatchEngine, DesignCache, RouterThread,
                           ServerThread, ServiceClient, ServiceError)
from repro.service.router import DesignRouter
from repro.service.server import _request_from_body

SMALL_SPACE = {
    "arrays": [[8, 8], [16, 16]],
    "buffer_kb": [128.0, 256.0],
    "dram_gbps": [16.0],
    "dataflow_sets": [["ICOC"], ["MN", "ICOC"]],
}

TINY = {"kernel": "gemm", "dataflows": ["KJ"], "array": [2, 2]}


def _shard_of(spec: dict, n: int = 2) -> int:
    return int(_request_from_body(spec).spec_hash()[:2], 16) % n


def _specs_for_shard(index: int, count: int, n: int = 2) -> list[dict]:
    """Distinct specs that all route to backend *index*."""
    out = []
    for a in range(2, 40):
        for b in range(2, 40):
            spec = {"kernel": "gemm", "array": [a, b]}
            if _shard_of(spec, n) == index:
                out.append(spec)
                if len(out) == count:
                    return out
    raise AssertionError("design space too small for shard sampling")


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    root = tmp_path_factory.mktemp("fleet")
    backends = [
        ServerThread(BatchEngine(
            cache=DesignCache(root=root / f"shard-{i}"))).start()
        for i in range(2)]
    router = RouterThread([b.url for b in backends]).start()
    yield router, backends
    router.stop()
    for backend in backends:
        backend.stop()


@pytest.fixture()
def client(fleet):
    router, _backends = fleet
    with ServiceClient.from_url(router.url) as c:
        yield c


class TestShardRouting:
    def test_shard_for_matches_cache_prefix_rule(self, fleet):
        router, _ = fleet
        assert router.server.shard_for("00" + "0" * 62) == 0
        assert router.server.shard_for("01" + "0" * 62) == 1
        assert router.server.shard_for("ff" + "0" * 62) == 1

    def test_generate_lands_on_owning_shard(self, fleet, client):
        _, backends = fleet
        spec = _specs_for_shard(1, 1)[0]
        result = client.generate(spec)
        assert result["ok"]
        # only the owning backend's cache holds the design
        owner = backends[1].server.engine.cache
        other = backends[0].server.engine.cache
        assert result["spec_hash"] in owner.keys()
        assert result["spec_hash"] not in other.keys()

    def test_repeat_generate_is_warm_and_cached_route(self, fleet,
                                                      client):
        router, _ = fleet
        spec = _specs_for_shard(0, 1)[0]
        first = client.generate(spec)
        before = len(router.server._route_cache)
        second = client.generate(spec)
        assert second["from_cache"]
        assert second["spec_hash"] == first["spec_hash"]
        # the repeat body was answered from the routing LRU, not parsed
        assert len(router.server._route_cache) == before

    def test_route_cache_is_bounded(self):
        router = DesignRouter(["http://127.0.0.1:1"])
        router.route_cache_entries = 4
        for i in range(10):
            with router._route_lock:
                router._route_cache[b"body-%d" % i] = 0
                while (len(router._route_cache)
                       > router.route_cache_entries):
                    router._route_cache.popitem(last=False)
        assert len(router._route_cache) == 4
        assert b"body-9" in router._route_cache

    def test_bad_generate_body_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.request("POST", "/generate", {"request":
                                                 {"kernel": "nope"}})
        assert err.value.status == 400


class TestBatchFanOut:
    def test_single_shard_batch_forwards_wholesale(self, fleet, client):
        specs = _specs_for_shard(0, 3)
        job_id = client.batch(specs)
        assert job_id.startswith("s0.")
        final = client.wait(job_id, timeout=180)
        assert final["status"] == "done"
        assert final["result"]["ok"] == 3

    def test_multi_shard_batch_merges_in_order(self, fleet, client):
        specs = (_specs_for_shard(0, 2) + _specs_for_shard(1, 2)
                 + _specs_for_shard(0, 1))
        job_id = client.batch(specs)
        assert job_id.startswith("fan-")
        final = client.wait(job_id, timeout=180)
        assert final["status"] == "done"
        result = final["result"]
        assert result["ok"] == len(specs)
        assert len(result["results"]) == len(specs)
        for record, spec in zip(result["results"], specs):
            assert record["spec_hash"] == \
                _request_from_body(spec).spec_hash()
        assert [p["status"] for p in final["parts"]] == ["done", "done"]

    def test_fanned_job_rejects_actions(self, fleet, client):
        specs = _specs_for_shard(0, 1) + _specs_for_shard(1, 1)
        job_id = client.batch(specs)
        with pytest.raises(ServiceError) as err:
            client.pause(job_id)
        assert err.value.status == 400
        client.wait(job_id, timeout=180)

    def test_fanned_job_listed(self, fleet, client):
        specs = _specs_for_shard(0, 1) + _specs_for_shard(1, 1)
        job_id = client.batch(specs)
        client.wait(job_id, timeout=180)
        fans = [j for j in client.jobs() if j.get("fanned")]
        assert job_id in {j["id"] for j in fans}
        assert all(len(j["parts"]) == 2 for j in fans
                   if j["id"] == job_id)


class TestJobForwarding:
    def test_explore_round_robin_tags_backend(self, fleet, client):
        first = client.request("POST", "/explore",
                               {"models": ["LeNet"],
                                "strategy": "exhaustive",
                                "space": SMALL_SPACE})
        second = client.request("POST", "/explore",
                                {"models": ["LeNet"],
                                 "strategy": "exhaustive",
                                 "space": SMALL_SPACE})
        shards = {first["job"].split(".")[0], second["job"].split(".")[0]}
        assert shards == {"s0", "s1"}
        for job in (first["job"], second["job"]):
            final = client.wait(job, timeout=180)
            assert final["status"] == "done"
            assert final["id"] == job  # re-tagged with the router name

    def test_pause_resume_through_router(self, fleet, client):
        job_id = client.explore(models=["LeNet"], strategy="anneal",
                                max_evals=10, seed=5, space=SMALL_SPACE,
                                step_evals=1)
        client.pause(job_id)
        state = client.wait(job_id)
        if state["status"] == "paused":
            client.resume(job_id)
            state = client.wait(job_id, timeout=180)
        assert state["status"] == "done"

    def test_stream_proxied_through_router(self, fleet, client):
        job_id = client.explore(models=["LeNet"], strategy="exhaustive",
                                space=SMALL_SPACE, step_evals=1)
        events = list(client.stream(job_id))
        kinds = [e.get("event") for e in events]
        assert kinds[-1] == "end"
        assert "checkpoint" in kinds[:-1]
        assert events[-1]["job"]["id"] == job_id  # re-tagged
        assert events[-1]["job"]["status"] == "done"

    def test_unknown_job_id_shapes_404(self, client):
        for job_id in ("nope", "s0.nope", "s9.explore-1-abc"):
            with pytest.raises(ServiceError) as err:
                client.job(job_id)
            assert err.value.status == 404


class TestMergedReads:
    def test_health_merges_backends(self, fleet, client):
        health = client.health()
        assert health["ok"] and health["router"]
        assert health["shards"] == 2
        assert [b["ok"] for b in health["backends"]] == [True, True]
        assert set(health["jobs"]) >= {"queued", "running", "done"}

    def test_jobs_merged_and_namespaced(self, fleet, client):
        job_id = client.explore(models=["LeNet"], strategy="exhaustive",
                                space=SMALL_SPACE)
        client.wait(job_id, timeout=180)
        jobs = client.jobs()
        mine = [j for j in jobs if j.get("id") == job_id]
        assert len(mine) == 1
        assert mine[0]["backend"] in {b["url"] for b in
                                      client.health()["backends"]}

    def test_metrics_merged_exposition(self, fleet, client):
        client.generate(TINY)
        text = client.metrics()
        assert "repro_cache_get_total" in text or "cache" in text
        assert "# TYPE" in text

    def test_backends_forwarded(self, client):
        families = client.backends()
        assert any(f["name"] == "verilog" for f in families)


class _FakeBackend(threading.Thread):
    """A raw socket server answering every connection with fixed bytes
    — a backend that speaks malformed JSON, or not HTTP at all."""

    def __init__(self, response: bytes):
        super().__init__(daemon=True)
        self.response = response
        self.sock = socket.socket()
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(8)
        self.url = f"http://127.0.0.1:{self.sock.getsockname()[1]}"
        self._halt = threading.Event()

    def run(self):
        self.sock.settimeout(0.1)
        while not self._halt.is_set():
            try:
                conn, _ = self.sock.accept()
            except TimeoutError:
                continue
            except OSError:
                return
            with conn:
                try:
                    # drain the request first: closing with unread data
                    # in the buffer would RST instead of FIN
                    conn.settimeout(0.2)
                    try:
                        while conn.recv(65536):
                            pass
                    except TimeoutError:
                        pass
                    conn.sendall(self.response)
                except OSError:
                    pass

    def stop(self):
        self._halt.set()
        self.sock.close()
        self.join(timeout=5)


class TestBackendFailure:
    def test_dead_shard_reroutes_to_live_backend(self, tmp_path):
        backend = ServerThread(BatchEngine(
            cache=DesignCache(root=tmp_path / "cache"))).start()
        dead_url = "http://127.0.0.1:9"  # discard port — nothing there
        router = RouterThread([backend.url, dead_url],
                              probe_interval_s=0,
                              retry_budget_s=2.0).start()
        try:
            with ServiceClient.from_url(router.url) as c:
                # shard 1's whole replica group is down: graceful
                # degradation reroutes to the live backend (a cache
                # miss, not an outage) instead of 502ing
                spec = _specs_for_shard(1, 1)[0]
                assert c.generate(spec)["ok"]
                live = _specs_for_shard(0, 1)[0]
                assert c.generate(live)["ok"]
                health = c.health()
                assert health["ok"] is False           # strict verdict
                assert health["status"] == "degraded"  # graded verdict
                assert [b["ok"] for b in health["backends"]] == [True,
                                                                 False]
                assert health["backends"][1]["state"] in {"degraded",
                                                          "down"}
        finally:
            router.stop()
            backend.stop()

    def test_all_backends_dead_structured_502(self):
        dead_url = "http://127.0.0.1:9"
        router = RouterThread([dead_url], probe_interval_s=0,
                              retry_budget_s=0.3).start()
        try:
            with ServiceClient.from_url(router.url) as c:
                with pytest.raises(ServiceError) as err:
                    c.generate(TINY)
                assert err.value.status == 502
                payload = err.value.payload
                assert payload["backend"] == dead_url
                assert payload["backend_index"] == 0
                assert payload["reason"] == "refused"
                assert "127.0.0.1:9" in str(err.value)
                assert c.health()["status"] == "down"
        finally:
            router.stop()

    def test_backend_malformed_json_passes_through(self):
        fake = _FakeBackend(
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
            b"Content-Length: 17\r\nConnection: close\r\n\r\n"
            b"{this is not json")
        fake.start()
        router = RouterThread([fake.url], probe_interval_s=0,
                              retry_budget_s=0.5).start()
        try:
            with ServiceClient.from_url(router.url) as c:
                # a 200 is forwarded byte-for-byte, garbage or not: the
                # router doesn't re-validate backend payloads
                result = c.generate(TINY)
                assert result == {"error": "{this is not json"}
        finally:
            router.stop()
            fake.stop()

    def test_backend_non_http_bytes_502_protocol(self):
        fake = _FakeBackend(b"I AM NOT HTTP\r\n\r\n")
        fake.start()
        router = RouterThread([fake.url], probe_interval_s=0,
                              retry_budget_s=0.3).start()
        try:
            with ServiceClient.from_url(router.url) as c:
                with pytest.raises(ServiceError) as err:
                    c.generate(TINY)
                assert err.value.status == 502
                payload = err.value.payload
                assert payload["reason"] == "protocol"
                assert payload["backend"] == fake.url
        finally:
            router.stop()
            fake.stop()

    def test_router_requires_backends(self):
        with pytest.raises(ValueError):
            DesignRouter([])


class TestRouterConcurrency:
    def test_warm_fanout_many_threads(self, fleet, client):
        router, _ = fleet
        specs = _specs_for_shard(0, 4) + _specs_for_shard(1, 4)
        for spec in specs:
            client.generate(spec)  # prime both shards
        failures = []

        def hammer(worker):
            try:
                with ServiceClient.from_url(router.url) as c:
                    for i in range(12):
                        result = c.generate(specs[(worker + i)
                                                  % len(specs)])
                        assert result["from_cache"], "expected warm hit"
            except Exception as exc:  # noqa: BLE001
                failures.append(f"worker {worker}: {exc}")

        threads = [threading.Thread(target=hammer, args=(w,))
                   for w in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures, failures
