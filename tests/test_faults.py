"""Chaos fault-injection harness: spec parsing, registry semantics
(rate, count, clear), and end-to-end injection through a live server —
armed via ``POST /debug/faults``, observed as 500s, added latency, and
dropped connections survived by the client's transport retries."""

import pytest

from repro.service import (BatchEngine, DesignCache, ServerThread,
                           ServiceClient, ServiceError, get_faults,
                           parse_fault_spec, reset_faults)
from repro.service.faults import (FAULT_KINDS, Fault, FaultDrop,
                                  FaultError, FaultRegistry)

TINY = {"kernel": "gemm", "dataflows": ["KJ"], "array": [2, 2]}


@pytest.fixture(autouse=True)
def _clean_faults():
    reset_faults()
    yield
    reset_faults()


class TestParseFaultSpec:
    def test_site_kind(self):
        assert parse_fault_spec("router:forward:drop") == {
            "site": "router:forward", "kind": "drop"}

    def test_latency_param_is_seconds(self):
        assert parse_fault_spec("server:/generate:latency:0.25") == {
            "site": "server:/generate", "kind": "latency", "param": 0.25}

    def test_non_latency_param_is_rate(self):
        assert parse_fault_spec("server:/batch:error:0.5") == {
            "site": "server:/batch", "kind": "error", "rate": 0.5}

    def test_site_may_contain_colons(self):
        parsed = parse_fault_spec("server:/jobs/{id}/stream:drop")
        assert parsed["site"] == "server:/jobs/{id}/stream"
        assert parsed["kind"] == "drop"

    @pytest.mark.parametrize("bad", ["", "drop", "site:nope",
                                     "site:latency:abc", ":drop"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_fault_spec(bad)


class TestFaultRegistry:
    def test_arm_fire_error(self):
        registry = FaultRegistry()
        registry.arm("a:b", "error")
        with pytest.raises(FaultError):
            registry.fire("a:b")

    def test_fire_unarmed_site_is_free(self):
        assert FaultRegistry().fire("nothing:here") == 0.0

    def test_latency_returns_delay(self):
        registry = FaultRegistry()
        registry.arm("a:b", "latency", param=0.125)
        assert registry.fire("a:b") == 0.125
        registry.arm("a:b", "latency")  # default delay
        assert registry.fire("a:b") == pytest.approx(0.05)

    def test_drop_raises_base_exception(self):
        registry = FaultRegistry()
        registry.arm("a:b", "drop")
        with pytest.raises(FaultDrop):
            registry.fire("a:b")
        assert not isinstance(FaultDrop("x"), Exception)

    def test_count_self_disarms(self):
        registry = FaultRegistry()
        registry.arm("a:b", "error", count=2)
        for _ in range(2):
            with pytest.raises(FaultError):
                registry.fire("a:b")
        assert registry.fire("a:b") == 0.0
        assert registry.active() == []

    def test_rate_zero_never_fires(self):
        registry = FaultRegistry()
        registry.arm("a:b", "error", rate=0.0)
        for _ in range(20):
            assert registry.fire("a:b") == 0.0

    def test_clear_one_and_all(self):
        registry = FaultRegistry()
        registry.arm("a:b", "error")
        registry.arm("c:d", "drop")
        assert registry.clear("a:b") == 1
        assert registry.clear("a:b") == 0
        assert registry.clear() == 1
        assert registry.active() == []

    @pytest.mark.parametrize("kwargs", [
        {"site": "", "kind": "error"},
        {"site": "a:b", "kind": "explode"},
        {"site": "a:b", "kind": "error", "rate": 1.5},
        {"site": "a:b", "kind": "latency", "param": -1},
        {"site": "a:b", "kind": "error", "count": 0},
        {"site": "a:b", "kind": "error", "count": True},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            Fault(**kwargs)

    def test_kind_table_is_closed(self):
        assert FAULT_KINDS == ("latency", "error", "drop", "crash")


@pytest.fixture()
def server(tmp_path):
    thread = ServerThread(BatchEngine(
        cache=DesignCache(root=tmp_path / "cache"))).start()
    yield thread
    thread.stop()


class TestInjectionEndToEnd:
    def test_error_fault_answers_500_injected(self, server):
        with ServiceClient.from_url(server.url) as c:
            c.request("POST", "/debug/faults",
                      {"site": "server:/generate", "kind": "error"})
            with pytest.raises(ServiceError) as err:
                c.generate(TINY)
            assert err.value.status == 500
            assert err.value.payload.get("injected") is True
            # other routes are unaffected
            assert c.health()["ok"]

    def test_latency_fault_delays_route(self, server):
        import time
        with ServiceClient.from_url(server.url) as c:
            c.generate(TINY)  # warm
            c.request("POST", "/debug/faults",
                      {"site": "server:/generate", "kind": "latency",
                       "param": 0.2})
            t0 = time.monotonic()
            assert c.generate(TINY)["from_cache"]
            assert time.monotonic() - t0 >= 0.2

    def test_drop_fault_resets_connection(self, server):
        with ServiceClient.from_url(server.url) as c:
            c.request("POST", "/debug/faults",
                      {"site": "server:/healthz", "kind": "drop",
                       "count": 1})
            # one drop, then the client's idempotent-GET retry lands
            assert c.health()["ok"]

    def test_debug_faults_lists_and_clears(self, server):
        with ServiceClient.from_url(server.url) as c:
            c.request("POST", "/debug/faults",
                      {"site": "server:/generate", "kind": "error"})
            listed = c.request("GET", "/debug/faults")["faults"]
            assert [f["site"] for f in listed] == ["server:/generate"]
            out = c.request("POST", "/debug/faults", {"clear": True})
            assert out["cleared"] == 1
            assert c.request("GET", "/debug/faults")["faults"] == []
            assert c.generate(TINY)["ok"]

    def test_debug_faults_is_fault_exempt(self, server):
        with ServiceClient.from_url(server.url) as c:
            # even a drop-everything fault can't sever the control
            # surface: /debug/faults never fires faults
            c.request("POST", "/debug/faults",
                      {"site": "server:/debug/faults", "kind": "drop"})
            assert c.request("POST", "/debug/faults",
                             {"clear": True})["cleared"] == 1

    def test_bad_arm_body_400(self, server):
        with ServiceClient.from_url(server.url) as c:
            with pytest.raises(ServiceError) as err:
                c.request("POST", "/debug/faults",
                          {"site": "a:b", "kind": "explode"})
            assert err.value.status == 400

    def test_faults_metric_counts_fires(self, server):
        with ServiceClient.from_url(server.url) as c:
            c.request("POST", "/debug/faults",
                      {"site": "server:/generate", "kind": "error",
                       "count": 1})
            with pytest.raises(ServiceError):
                c.generate(TINY)
            text = c.metrics()
            assert "repro_faults_injected_total" in text
