"""Cross-validation of the analytic performance model against the
cycle-accurate DAG simulator (the paper verifies its performance
simulator against RTL simulation; here the DAG simulator plays the RTL's
role)."""

import numpy as np
import pytest

from repro.backend import generate, run_backend
from repro.core import kernels
from repro.core.frontend import build_adg
from repro.models.layers import LinearLayer
from repro.sim.dag_sim import Simulator, make_input
from repro.sim.perf_model import ArchPerf, evaluate_layer


@pytest.mark.parametrize("m,n,k,p", [(8, 8, 8, 4), (16, 8, 8, 4),
                                     (8, 16, 16, 4)])
def test_compute_cycles_match_simulator(m, n, k, p):
    """Analytic compute cycles = temporal steps + pipeline fill; the
    simulator's measured makespan must agree within the fill margin."""
    wl = kernels.gemm(m, n, k)
    df = kernels.gemm_dataflow("KJ", wl, p, p)
    design = run_backend(generate(build_adg([df])))
    sim = Simulator(design, df.name)

    # Simulator's busy window: temporal range + pipeline depth.
    sim_cycles = df.total_timestamps + sim.pipeline_bound

    arch = ArchPerf(name="x", array=(p, p), buffer_kb=1024,
                    dataflows=("ICOC",))
    perf = evaluate_layer(LinearLayer("l", m, n, k), arch, "ICOC")

    assert perf.compute_cycles <= sim_cycles
    # The two agree within the pipeline-fill allowance on both sides.
    assert sim_cycles <= perf.compute_cycles + sim.pipeline_bound
    # And the steady-state throughput matches exactly: temporal steps.
    assert df.total_timestamps == m * -(-n // p) * -(-k // p)


def test_simulator_work_matches_mac_count():
    """Activity cross-check: the number of Y elements written with
    accumulation equals the temporal commit count of the schedule."""
    wl = kernels.gemm(8, 8, 8)
    df = kernels.gemm_dataflow("KJ", wl, 4, 4)
    design = run_backend(generate(build_adg([df])))
    rng = np.random.default_rng(0)
    res = Simulator(design, df.name).run(
        {"X": make_input(design, df.name, "X", rng),
         "W": make_input(design, df.name, "W", rng)})
    # Each of the 4 commit FUs writes once per valid timestamp.
    assert res.mem_writes["Y"] == 4 * df.total_timestamps


def test_sram_reads_reflect_interconnect_reuse():
    """X is fetched once per chain (4 data nodes), not once per FU: the
    simulator's measured read count must show the 4x interconnect reuse
    the front end discovered."""
    wl = kernels.gemm(8, 8, 8)
    df = kernels.gemm_dataflow("KJ", wl, 4, 4)
    design = run_backend(generate(build_adg([df])))
    rng = np.random.default_rng(0)
    res = Simulator(design, df.name).run(
        {"X": make_input(design, df.name, "X", rng),
         "W": make_input(design, df.name, "W", rng)})
    n_x_nodes = len(design.adg.data_nodes_for("X", df.name))
    assert n_x_nodes == 4
    # 16 FUs consume X every valid cycle, but only 4 ports read.
    assert res.mem_reads["X"] <= n_x_nodes * (df.total_timestamps + 4)
