"""Tests for the workload and dataflow representations (paper §III)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import kernels
from repro.core.dataflow import (Dataflow, scalar_to_timestamp,
                                 timestamp_to_scalar)
from repro.core.workload import BodyOp, TensorAccess, Workload
from repro.core.affine import AffineMap


class TestWorkloadValidation:
    def test_gemm_builds(self):
        wl = kernels.gemm(4, 5, 6)
        assert wl.bounds == {"i": 4, "j": 5, "k": 6}
        assert [t.name for t in wl.tensors] == ["X", "W", "Y"]

    def test_reduction_dims(self):
        assert kernels.gemm().reduction_dims() == ("k",)
        conv = kernels.conv2d()
        assert set(conv.reduction_dims()) == {"ic", "kh", "kw"}
        assert set(kernels.mttkrp().reduction_dims()) == {"k", "l"}

    def test_needs_output(self):
        with pytest.raises(ValueError, match="output"):
            Workload("bad", ("i",), {"i": 4},
                     (TensorAccess("X", AffineMap.identity(1)),),
                     (BodyOp("pass", "t", ("X",)),))

    def test_body_reads_undefined(self):
        with pytest.raises(ValueError, match="undefined"):
            Workload("bad", ("i",), {"i": 4},
                     (TensorAccess("Y", AffineMap.identity(1), is_output=True),),
                     (BodyOp("add_acc", "Y", ("nope",)),))

    def test_acc_must_target_output(self):
        wl_tensors = (
            TensorAccess("X", AffineMap.identity(1)),
            TensorAccess("Y", AffineMap.identity(1), is_output=True),
        )
        with pytest.raises(ValueError, match="accumulation target"):
            Workload("bad", ("i",), {"i": 4}, wl_tensors,
                     (BodyOp("add_acc", "X", ("X",)),
                      BodyOp("add_acc", "Y", ("X",))))

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown body op"):
            BodyOp("frobnicate", "a", ("b",))

    def test_output_never_written(self):
        tensors = (
            TensorAccess("X", AffineMap.identity(1)),
            TensorAccess("Y", AffineMap.identity(1), is_output=True),
            TensorAccess("Z", AffineMap.identity(1), is_output=True),
        )
        with pytest.raises(ValueError, match="never written"):
            Workload("bad", ("i",), {"i": 2}, tensors,
                     (BodyOp("add_acc", "Y", ("X",)),))

    def test_total_ops(self):
        wl = kernels.gemm(4, 4, 4)
        assert wl.total_ops() == 2 * 4 * 4 * 4
        # MTTKRP has two multiplies per iteration point.
        mt = kernels.mttkrp(2, 2, 2, 2)
        assert mt.total_ops() == 2 * 2 * 16

    def test_tensor_footprint(self):
        wl = kernels.gemm(4, 5, 6)
        assert wl.tensor_footprint("X") == 4 * 6
        assert wl.tensor_footprint("W") == 6 * 5
        assert wl.tensor_footprint("Y") == 4 * 5
        conv = kernels.conv2d(1, 8, 8, 8, 8, 3, 3)
        assert conv.tensor_footprint("X") == 1 * 8 * 10 * 10


class TestTimestamps:
    def test_paper_eq3(self):
        # t = ((t0*R1 + t1)*R2 + t2) ...
        sizes = (3, 4, 5)
        assert timestamp_to_scalar([1, 2, 3], sizes) == (1 * 4 + 2) * 5 + 3

    @given(st.lists(st.integers(min_value=1, max_value=6), min_size=1,
                    max_size=5), st.data())
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, sizes, data):
        total = int(np.prod(sizes))
        scalar = data.draw(st.integers(min_value=0, max_value=total - 1))
        t = scalar_to_timestamp(scalar, sizes)
        assert timestamp_to_scalar(t, sizes) == scalar

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            scalar_to_timestamp(100, (2, 2))


class TestDataflowBuild:
    def test_fig3_gemm_kj(self):
        """The TPU-like schedule of Fig. 3: s = (k, j), c = (1, 1)."""
        wl = kernels.gemm(8, 8, 8)
        df = kernels.gemm_dataflow("KJ", wl, 2, 2)
        assert df.s_names == ("s_k", "s_j")
        assert df.control == (1, 1)
        assert df.n_fus == 4
        # i = M_T t + M_S s must cover the domain and be correct:
        i = df.iteration([3, 1, 2], [1, 0])
        # temporal dims are (i, j, k) with spatial least significant
        assert i[0] == 3            # i = t0_i
        assert i[1] == 1 * 2 + 0    # j = t0_j * P_j + s_j
        assert i[2] == 2 * 2 + 1    # k = t0_k * P_k + s_k

    def test_t_bias(self):
        wl = kernels.gemm(8, 8, 8)
        df = kernels.gemm_dataflow("KJ", wl, 4, 4)
        assert df.t_bias([0, 0]) == 0
        assert df.t_bias([2, 3]) == 5
        assert df.delta_t_bias([1, -1]) == 0

    def test_data_index_matches_loop_nest(self):
        """Exhaustively check the affine semantics against a reference
        loop-nest interpretation for GEMM-KJ."""
        wl = kernels.gemm(4, 4, 4)
        df = kernels.gemm_dataflow("KJ", wl, 2, 2)
        for t0 in range(4):
            for t1 in range(2):
                for t2 in range(2):
                    for sk in range(2):
                        for sj in range(2):
                            i = df.iteration([t0, t1, t2], [sk, sj])
                            x = df.data_index("X", [t0, t1, t2], [sk, sj])
                            y = df.data_index("Y", [t0, t1, t2], [sk, sj])
                            w = df.data_index("W", [t0, t1, t2], [sk, sj])
                            assert list(x) == [i[0], i[2]]
                            assert list(w) == [i[2], i[1]]
                            assert list(y) == [i[0], i[1]]

    def test_conv_bias_propagates(self):
        wl = kernels.conv2d(1, 4, 4, 4, 4, 3, 3)
        df = kernels.conv2d_dataflow("OHOW", wl, 2, 2)
        x = df.data_index("X", [0] * df.n_temporal, [0, 0])
        assert list(x[2:]) == [-1, -1]  # padding origin bias

    def test_multi_level_tiling(self):
        wl = kernels.gemm(16, 4, 4)
        df = Dataflow.build(wl, spatial=[("j", 2), ("k", 2)],
                            temporal=[("i", 4), ("j", 2), ("k", 2), ("i", 4)],
                            control=(1, 1))
        assert df.rt == (4, 2, 2, 4)
        # i = t0_i1 * 4 + t0_i0 (outer level multiplies inner size)
        i = df.iteration([2, 0, 0, 3], [0, 0])
        assert i[0] == 2 * 4 + 3

    def test_coverage_validation(self):
        wl = kernels.gemm(16, 16, 16)
        with pytest.raises(ValueError, match="cover"):
            Dataflow.build(wl, spatial=[("i", 2), ("j", 2)],
                           temporal=[("i", 2), ("j", 2), ("k", 16)])

    def test_duplicate_spatial_rejected(self):
        wl = kernels.gemm()
        with pytest.raises(ValueError, match="once"):
            Dataflow.build(wl, spatial=[("i", 2), ("i", 2)])

    def test_strides_match_scalarization(self):
        wl = kernels.gemm(8, 8, 8)
        df = kernels.gemm_dataflow("IJ", wl, 2, 2)
        t = [1, 2, 1]
        assert df.scalar_delay(t) == timestamp_to_scalar(t, df.rt)

    def test_fu_coords(self):
        wl = kernels.gemm(8, 8, 8)
        df = kernels.gemm_dataflow("IJ", wl, 2, 3)
        coords = df.fu_coords()
        assert len(coords) == 6
        assert coords[0] == (0, 0) and coords[-1] == (1, 2)


class TestKernelBuilders:
    def test_all_kernels_valid(self):
        for wl in (kernels.gemm(), kernels.conv2d(), kernels.depthwise_conv2d(),
                   kernels.attention_qk(), kernels.attention_pv(),
                   kernels.mttkrp(), kernels.bitfusion_gemm()):
            assert wl.total_ops() > 0
            assert len(wl.outputs) == 1

    def test_unknown_dataflow_names(self):
        with pytest.raises(ValueError):
            kernels.gemm_dataflow("ZZ", kernels.gemm())
        with pytest.raises(ValueError):
            kernels.conv2d_dataflow("ZZ", kernels.conv2d())
        with pytest.raises(ValueError):
            kernels.mttkrp_dataflow("ZZ", kernels.mttkrp())

    def test_bitfusion_body(self):
        wl = kernels.bitfusion_gemm()
        assert [op.op for op in wl.body] == ["mul", "shl", "add_acc"]
