"""Tests for the simulation substrates: NoC, memories, PPUs, energy."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adg import MemoryLayout
from repro.sim.energy_model import (FREEPDK45, TSMC28, evaluate_design,
                                    sram_model)
from repro.sim.memory import BankedMemory, Buffet
from repro.sim.noc import ButterflyNetwork, WormholeMesh, xy_route
from repro.sim.ppu import LookupTable, PostProcessingUnit, ppu_latency_cycles


class TestButterfly:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            ButterflyNetwork(6)

    def test_stage_count(self):
        assert ButterflyNetwork(16).n_stages == 4
        assert ButterflyNetwork(16).latency() == 4

    @given(st.integers(min_value=1, max_value=5), st.data())
    @settings(max_examples=50, deadline=None)
    def test_route_reaches_destination(self, log_n, data):
        n = 1 << log_n
        net = ButterflyNetwork(n)
        src = data.draw(st.integers(min_value=0, max_value=n - 1))
        dst = data.draw(st.integers(min_value=0, max_value=n - 1))
        path = net.route(src, dst)
        assert path[0] == src and path[-1] == dst
        assert len(path) == net.n_stages + 1
        for a, b in zip(path, path[1:]):
            # Each stage flips at most one (stage-specific) bit.
            assert bin(a ^ b).count("1") <= 1

    def test_transfer_energy_scales_with_stages(self):
        small, big = ButterflyNetwork(4), ButterflyNetwork(64)
        assert big.transfer_energy_pj(64, 0.1) > small.transfer_energy_pj(64, 0.1)


class TestWormhole:
    def test_xy_route_is_dimension_ordered(self):
        path = xy_route((0, 0), (2, 3))
        assert path[0] == (0, 0) and path[-1] == (2, 3)
        # X moves first, then Y — no interleaving (deadlock freedom).
        xs = [p[0] for p in path]
        assert xs == sorted(xs)
        y_started = False
        for (x1, y1), (x2, y2) in zip(path, path[1:]):
            if y1 != y2:
                y_started = True
            if y_started:
                assert x1 == x2

    def test_zero_load_latency(self):
        mesh = WormholeMesh(4, 4, flit_bytes=16)
        lat = mesh.packet_latency((0, 0), (3, 3), 64)
        # 6 hops + local, 1 head + 4 body flits
        assert lat == 7 * 1 + 5 - 1

    def test_simulation_matches_analytic_for_single_packet(self):
        mesh = WormholeMesh(4, 4)
        arrivals = mesh.simulate([((0, 0), (3, 2), 64, 0)])
        analytic = mesh.packet_latency((0, 0), (3, 2), 64)
        assert abs(arrivals[0] - analytic) <= len(xy_route((0, 0), (3, 2)))

    def test_contention_delays_second_packet(self):
        mesh = WormholeMesh(4, 1)
        solo = mesh.simulate([((0, 0), (3, 0), 256, 0)])
        pair = mesh.simulate([((0, 0), (3, 0), 256, 0),
                              ((1, 0), (3, 0), 256, 0)])
        assert pair[1] >= solo[0] - 5  # the second worm waits for links

    def test_mesh_area_scales(self):
        assert WormholeMesh(4, 5).area_um2(100) > WormholeMesh(2, 3).area_um2(100)


class TestBankedMemory:
    def _layout(self):
        return MemoryLayout("X", (2, 2), (1, 1), 4)

    def test_conflict_free_access(self):
        mem = BankedMemory(self._layout(), (4, 4))
        cycles = mem.access_cycle([(0, 0), (0, 1), (1, 0), (1, 1)])
        assert cycles == 1
        assert mem.conflict_stalls == 0

    def test_conflicting_access_stalls(self):
        mem = BankedMemory(self._layout(), (4, 4))
        cycles = mem.access_cycle([(0, 0), (2, 0)])  # same bank (stride 2)
        assert cycles == 2
        assert mem.conflict_stalls == 1

    def test_read_write(self):
        mem = BankedMemory(self._layout(), (4, 4))
        mem.write((1, 2), 42)
        assert mem.read((1, 2)) == 42

    def test_rank_mismatch(self):
        with pytest.raises(ValueError):
            BankedMemory(self._layout(), (4, 4, 4))


class TestBuffet:
    def test_fill_read_shrink(self):
        b = Buffet(capacity=4)
        assert b.fill([1, 2, 3]) == 3
        assert b.read(0) == 1
        assert b.read(2) == 3
        b.shrink(2)
        assert b.occupancy == 1
        assert b.read(0) == 3

    def test_backpressure(self):
        b = Buffet(capacity=2)
        assert b.fill([1, 2, 3]) == 2

    def test_read_beyond_fill_blocks(self):
        b = Buffet(capacity=4)
        b.fill([1])
        assert b.read(5) is None
        assert b.blocked_reads == 1

    def test_shrink_underflow(self):
        b = Buffet(capacity=2)
        with pytest.raises(ValueError):
            b.shrink(1)

    def test_credit_cycle(self):
        b = Buffet(capacity=2)
        for batch in range(10):
            assert b.fill([batch]) == 1
            assert b.read(0) == batch
            b.shrink(1)
        assert b.occupancy == 0


class TestPPU:
    def test_lut_monotone(self):
        lut = LookupTable(math.exp, -8, 0, 128)
        xs = np.linspace(-8, 0, 50)
        ys = lut(xs)
        assert (np.diff(ys) >= -1e-12).all()

    def test_softmax_normalizes(self):
        ppu = PostProcessingUnit()
        x = np.random.default_rng(0).normal(size=(4, 16)) * 3
        y = ppu.softmax(x)
        assert np.allclose(y.sum(axis=-1), 1.0, atol=1e-6)
        ref = np.exp(x - x.max(-1, keepdims=True))
        ref /= ref.sum(-1, keepdims=True)
        assert np.abs(y - ref).max() < 2e-2  # bounded by LUT resolution

    def test_layernorm_statistics(self):
        ppu = PostProcessingUnit()
        x = np.random.default_rng(1).normal(size=(8, 64)) * 2 + 3
        y = ppu.layernorm(x)
        assert np.abs(y.mean(-1)).max() < 1e-6
        assert np.abs(y.std(-1) - 1).max() < 5e-2

    def test_relu_gelu(self):
        ppu = PostProcessingUnit()
        x = np.array([-2.0, 0.0, 2.0])
        assert (ppu.relu(x) == [0, 0, 2]).all()
        g = ppu.gelu(x)
        assert g[0] < 0.0 < g[2] and abs(g[1]) < 1e-2  # LUT grid error

    def test_latency_model(self):
        assert ppu_latency_cycles(1000, 8, 2, 2) == math.ceil(125 * 2 / 2)
        with pytest.raises(ValueError):
            ppu_latency_cycles(10, 0)

    def test_two_pass_functions(self):
        from repro.models.layers import PPULayer
        assert PPULayer("s", "softmax", 10).n_passes == 2
        assert PPULayer("r", "relu", 10).n_passes == 1


class TestEnergyModel:
    def test_sram_model_monotone(self):
        small = sram_model(TSMC28, 64, 64)
        big = sram_model(TSMC28, 512, 64)
        assert big["area_um2"] > small["area_um2"]
        assert big["read_pj"] > small["read_pj"]

    def test_tech_scaling(self):
        assert FREEPDK45.reg_area_per_bit > TSMC28.reg_area_per_bit
        assert FREEPDK45.adder_energy_per_bit > TSMC28.adder_energy_per_bit
        # Area scales quadratically, energy linearly.
        assert (FREEPDK45.reg_area_per_bit / TSMC28.reg_area_per_bit
                == pytest.approx((45 / 28) ** 2))

    def test_design_evaluation_breakdown(self):
        from repro.backend import generate, run_backend
        from repro.core import kernels
        from repro.core.frontend import build_adg
        df = kernels.gemm_dataflow("KJ", kernels.gemm(8, 8, 8), 4, 4)
        design = run_backend(generate(build_adg([df])))
        report = evaluate_design(design)
        assert report.total_area_um2 > 0
        assert report.total_power_mw > 0
        assert "fu_array" in report.area_um2

    def test_active_dataflow_reduces_power(self):
        from repro.backend import generate, run_backend
        from repro.core import kernels
        from repro.core.frontend import build_adg
        wl = kernels.gemm(8, 8, 8)
        dfa = kernels.gemm_dataflow("IJ", wl, 4, 4)
        dfb = kernels.gemm_dataflow("KJ", wl, 4, 4)
        design = run_backend(generate(build_adg([dfa, dfb])))
        full = evaluate_design(design)
        single = evaluate_design(design, active_dataflow="GEMM-IJ")
        assert single.total_power_mw <= full.total_power_mw

    def test_report_merge(self):
        from repro.sim.energy_model import AreaPowerReport
        a = AreaPowerReport({"x": 1.0}, {"x": 2.0})
        b = AreaPowerReport({"x": 1.0, "y": 3.0}, {"y": 1.0})
        m = a.merge(b)
        assert m.area_um2 == {"x": 2.0, "y": 3.0}
        assert m.total_power_mw == 3.0
