"""Fleet health machinery: transport-error classification, the
circuit-breaker state machine (threshold, half-open trial, cooldown
doubling), per-backend state folding, and the background prober's
up/degraded/down verdicts against live and dead endpoints."""

import http.client
import time

import pytest

from repro.service import (BackendHealth, BatchEngine, CircuitBreaker,
                           DesignCache, FleetHealth, ServerThread)
from repro.service.health import (STATE_VALUES, backoff_delays,
                                  classify_error)


class TestClassifyError:
    @pytest.mark.parametrize("exc, expected", [
        (ConnectionRefusedError(), "refused"),
        (ConnectionResetError(), "reset"),
        (BrokenPipeError(), "reset"),
        (ConnectionAbortedError(), "reset"),
        (http.client.RemoteDisconnected("gone"), "reset"),
        (TimeoutError(), "timeout"),
        (http.client.BadStatusLine("I AM NOT HTTP"), "protocol"),
        (OSError("no route"), "os_error"),
        (RuntimeError("misc"), "error"),
    ])
    def test_classes(self, exc, expected):
        assert classify_error(exc) == expected


class TestBackoffDelays:
    def test_jittered_exponential_capped(self):
        delays = backoff_delays(base_s=0.1, max_s=0.4, factor=2.0)
        first = next(delays)
        assert 0.05 <= first <= 0.15
        for expected in (0.2, 0.4, 0.4, 0.4):
            value = next(delays)
            assert expected * 0.5 <= value <= expected * 1.5


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker("b0", threshold=3, cooldown_s=60)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allows()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allows()

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker("b0", threshold=3, cooldown_s=60)
        for _ in range(10):
            breaker.record_failure()
            breaker.record_failure()
            breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_admits_one_trial(self):
        breaker = CircuitBreaker("b0", threshold=1, cooldown_s=0.01,
                                 max_cooldown_s=0.01)
        breaker.record_failure()
        assert breaker.state == "open"
        time.sleep(0.02)
        assert breaker.allows()          # open -> half_open, one trial
        assert breaker.state == "half_open"
        assert not breaker.allows()      # no second trial
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allows()

    def test_failed_trial_reopens(self):
        breaker = CircuitBreaker("b0", threshold=1, cooldown_s=0.01,
                                 max_cooldown_s=0.01)
        breaker.record_failure()
        time.sleep(0.02)
        assert breaker.allows()
        breaker.record_failure()
        assert breaker.state == "open"

    def test_cooldown_doubles_per_trip_up_to_cap(self):
        breaker = CircuitBreaker("b0", threshold=1, cooldown_s=0.05,
                                 max_cooldown_s=0.2)
        for expected in (0.05, 0.1, 0.2, 0.2):
            before = time.monotonic()
            breaker.record_failure()
            assert breaker.state == "open"
            cooldown = breaker._retry_at - before
            assert cooldown == pytest.approx(expected, rel=0.1)
            # expire the cooldown so the next round starts half_open
            breaker._retry_at = time.monotonic()
            assert breaker.allows()

    def test_transitions_metric_counts(self):
        from repro.obs import get_registry
        breaker = CircuitBreaker("metric-test", threshold=1,
                                 cooldown_s=60)
        breaker.record_failure()
        snapshot = get_registry().snapshot()
        from repro.obs.history import snapshot_value
        assert snapshot_value(snapshot, "repro_breaker_transitions_total",
                              backend="metric-test", to="open") == 1.0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)


class TestBackendHealth:
    def test_state_folds_breaker_and_probe(self):
        backend = BackendHealth("http://x", threshold=2, cooldown_s=60)
        assert backend.state == "up"  # optimistic start
        backend.record_failure("probe: refused")
        assert backend.state == "degraded"  # failing but not tripped
        backend.record_failure()
        assert backend.state == "down"      # breaker open
        assert backend.to_dict()["breaker"]["state"] == "open"
        assert backend.to_dict()["last_error"] == "probe: refused"
        backend.breaker._retry_at = 0.0
        backend.allows()                    # half_open trial
        assert backend.state == "degraded"  # mid-recovery
        backend.record_success()
        assert backend.state == "up"
        assert "last_error" not in backend.to_dict()

    def test_state_gauge_values(self):
        assert STATE_VALUES == {"up": 2.0, "degraded": 1.0, "down": 0.0}


class TestFleetHealth:
    def test_overall_verdicts(self):
        fleet = FleetHealth(["http://a", "http://b"], probe_interval_s=0,
                            threshold=1)
        assert fleet.overall() == "up"
        fleet.record(1, False, "refused")
        assert fleet.overall() == "degraded"
        fleet.record(0, False)
        assert fleet.overall() == "down"
        fleet.record(0, True)
        fleet.record(1, True)
        assert fleet.overall() == "up"

    def test_prober_marks_dead_backend_down(self, tmp_path):
        live = ServerThread(BatchEngine(
            cache=DesignCache(root=tmp_path / "cache"))).start()
        try:
            fleet = FleetHealth([live.url, "http://127.0.0.1:9"],
                                probe_interval_s=0.1, threshold=2)
            fleet.start()
            try:
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    if (fleet.state(0) == "up"
                            and fleet.state(1) == "down"):
                        break
                    time.sleep(0.02)
                assert fleet.state(0) == "up"
                assert fleet.state(1) == "down"
                assert fleet.overall() == "degraded"
                assert "refused" in fleet.describe(1)["last_error"] \
                    or "Connection" in fleet.describe(1)["last_error"]
            finally:
                fleet.stop()
        finally:
            live.stop()

    def test_probe_interval_zero_disables_thread(self):
        fleet = FleetHealth(["http://127.0.0.1:9"], probe_interval_s=0)
        fleet.start()
        assert fleet._thread is None
        fleet.stop()

    def test_manual_probe_records_verdict(self, tmp_path):
        live = ServerThread(BatchEngine(
            cache=DesignCache(root=tmp_path / "cache"))).start()
        try:
            fleet = FleetHealth([live.url, "http://127.0.0.1:9"],
                                probe_interval_s=0, threshold=1)
            assert fleet.probe(0) is True
            assert fleet.probe(1) is False
            assert fleet.state(0) == "up"
            assert fleet.state(1) == "down"
        finally:
            live.stop()
