"""Tests for the pluggable DSE search strategies (`repro.dse.strategies`)."""

import pytest

from repro.cli import main as cli_main
from repro.dse import (STRATEGIES, DesignSpace, Exhaustive, PointEvaluator,
                       SimulatedAnnealing, SuccessiveHalving, explore,
                       get_strategy, run_search)
from repro.models import zoo
from repro.models.layers import Model
from repro.service.cache import DesignCache

SMALL = DesignSpace(arrays=((8, 8), (16, 16)), buffer_kb=(128.0, 256.0),
                    dataflow_sets=(("ICOC",), ("MN", "ICOC")))


class TestRegistry:
    def test_lookup_by_name(self):
        assert isinstance(get_strategy("exhaustive"), Exhaustive)
        assert isinstance(get_strategy("anneal"), SimulatedAnnealing)
        assert isinstance(get_strategy("annealing"), SimulatedAnnealing)
        assert isinstance(get_strategy("halving"), SuccessiveHalving)
        assert isinstance(get_strategy("sh"), SuccessiveHalving)

    def test_instance_passthrough(self):
        strat = SimulatedAnnealing(restarts=3)
        assert get_strategy(strat) is strat

    def test_constructor_kwargs(self):
        assert get_strategy("halving", eta=4).eta == 4

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            get_strategy("gradient-descent")
        with pytest.raises(ValueError, match="strategy"):
            get_strategy(None)

    def test_bad_eta_rejected(self):
        with pytest.raises(ValueError, match="eta"):
            SuccessiveHalving(eta=1)


class TestExhaustive:
    def test_covers_space(self):
        result = run_search([zoo.lenet()], SMALL)
        assert result.strategy == "exhaustive"
        assert result.points_evaluated == SMALL.size() == 8
        assert result.evals_used == float(SMALL.size())
        assert len(result.points) == 8

    def test_points_sorted_best_first(self):
        result = run_search([zoo.lenet()], SMALL, objective="edp")
        edps = [p.edp for p in result.points]
        assert edps == sorted(edps)
        assert result.best is result.points[0]

    def test_explore_wrapper_unchanged(self):
        points = explore([zoo.lenet()], SMALL)
        assert len(points) == 8
        assert [p.arch for p in points] == \
            [p.arch for p in run_search([zoo.lenet()], SMALL).points]


class TestSimulatedAnnealing:
    def test_budget_respected(self):
        result = run_search([zoo.lenet()], SMALL, strategy="anneal",
                            max_evals=3, seed=0)
        assert 1 <= result.points_evaluated <= 3
        assert len(result.points) <= 3

    def test_deterministic_per_seed(self):
        a = run_search([zoo.lenet()], SMALL, strategy="anneal",
                       max_evals=5, seed=7)
        b = run_search([zoo.lenet()], SMALL, strategy="anneal",
                       max_evals=5, seed=7)
        assert [p.arch for p in a.points] == [p.arch for p in b.points]
        assert a.evals_used == b.evals_used

    def test_finds_best_with_partial_budget(self):
        exhaustive = run_search([zoo.lenet()], SMALL)
        anneal = run_search([zoo.lenet()], SMALL, strategy="anneal",
                            max_evals=6, seed=0)
        assert anneal.points_evaluated < exhaustive.points_evaluated
        assert anneal.best.edp <= 1.05 * exhaustive.best.edp

    def test_single_point_space(self):
        space = DesignSpace(arrays=((8, 8),), buffer_kb=(128.0,),
                            dataflow_sets=(("ICOC",),))
        result = run_search([zoo.lenet()], space, strategy="anneal",
                            max_evals=4)
        assert result.points_evaluated == 1


class TestSuccessiveHalving:
    def test_costs_less_than_exhaustive(self):
        exhaustive = run_search([zoo.lenet()], SMALL)
        halving = run_search([zoo.lenet()], SMALL,
                             strategy=SuccessiveHalving(eta=4))
        assert halving.evals_used < exhaustive.evals_used
        assert halving.points_evaluated < exhaustive.points_evaluated
        assert halving.best.edp <= 1.05 * exhaustive.best.edp

    def test_max_evals_caps_promotions(self):
        result = run_search([zoo.lenet()], SMALL,
                            strategy=SuccessiveHalving(eta=2), max_evals=4)
        assert result.evals_used <= 4.0

    def test_tiny_budget_subsamples_proxy_sweep(self):
        # A budget smaller than the full proxy sweep must shrink rung 0
        # instead of silently overspending (evals_used > max_evals).
        result = run_search([zoo.lenet()], SMALL, strategy="halving",
                            max_evals=2, seed=0)
        assert result.evals_used <= 2.0
        assert result.best is not None

    def test_proxy_models_stride(self):
        evaluator = PointEvaluator([zoo.lenet()])
        (proxy,) = evaluator.proxy_models(0.25)
        assert 1 <= len(proxy.layers) < len(zoo.lenet().layers)
        assert proxy.name.startswith("LeNet#proxy")


class TestDegeneratePoints:
    def test_empty_model_yields_no_points(self):
        result = run_search([Model("empty", ())], SMALL)
        assert result.points == []
        assert result.best is None
        assert result.degenerate_skipped == SMALL.size()

    def test_no_one_watt_fallback(self):
        # The old explorer reported degenerate points as 1 W / 0 GOPS
        # "designs" that won every EDP sort; they must be skipped now.
        points = explore([Model("empty", ())], SMALL)
        assert points == []


class TestAreaBudget:
    def test_screen_applies_to_strategies(self):
        space = DesignSpace(arrays=((8, 8), (32, 32)), buffer_kb=(256.0,),
                            dataflow_sets=(("ICOC",),))
        for strategy in ("exhaustive", "anneal", "halving"):
            result = run_search([zoo.lenet()], space, strategy=strategy,
                                area_budget_mm2=0.5, max_evals=4)
            assert result.points_evaluated < space.size()
            assert all(p.arch.array == (8, 8) for p in result.points)


class TestCacheInterplay:
    def test_warm_revisit_hits_cache(self, tmp_path):
        cache = DesignCache(root=tmp_path / "dse")
        cold = run_search([zoo.lenet()], SMALL, strategy="anneal",
                          max_evals=4, seed=1, cache=cache)
        warm_cache = DesignCache(root=tmp_path / "dse")
        warm = run_search([zoo.lenet()], SMALL, strategy="anneal",
                          max_evals=4, seed=1, cache=warm_cache)
        assert warm_cache.stats.hits == warm.points_evaluated
        assert warm_cache.stats.puts == 0
        assert [p.arch for p in warm.points] == \
            [p.arch for p in cold.points]


class TestEvaluatorAccounting:
    def test_objective_validated(self):
        with pytest.raises(ValueError, match="objective"):
            PointEvaluator([zoo.lenet()], objective="vibes")

    def test_proxy_charged_fractionally(self):
        evaluator = PointEvaluator([zoo.lenet()])
        archs = list(SMALL.points())[:2]
        evaluator.evaluate(archs, models=evaluator.proxy_models(0.25))
        assert 0.0 < evaluator.evals_used < 1.0
        assert evaluator.points_evaluated == 0
        evaluator.evaluate(archs)
        assert evaluator.points_evaluated == 2

    def test_revisits_are_free(self):
        evaluator = PointEvaluator([zoo.lenet()])
        archs = list(SMALL.points())[:3]
        evaluator.evaluate(archs)
        used = evaluator.evals_used
        evaluator.evaluate(archs)
        assert evaluator.evals_used == used


class TestCLIStrategies:
    def test_explore_anneal(self, capsys):
        rc = cli_main(["explore", "--models", "LeNet", "--strategy",
                       "anneal", "--max-evals", "5", "--seed", "0",
                       "--no-cache"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "strategy anneal" in out and "Pareto frontier" in out

    def test_explore_halving(self, capsys):
        rc = cli_main(["explore", "--models", "LeNet", "--strategy",
                       "halving", "--no-cache"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "strategy halving" in out

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["explore", "--strategy", "bogosort"])
