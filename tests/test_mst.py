"""Tests for the Chu-Liu/Edmonds arborescence solver, cross-checked
against networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mst import Arc, min_arborescence, spanning_forest_with_memory_root


def _nx_cost(n, arcs, root):
    g = nx.DiGraph()
    g.add_nodes_from(range(n))
    for a in arcs:
        if a.src == a.dst:
            continue
        if a.dst == root:
            # networkx optimizes over all roots; dropping arcs into the
            # root pins its choice to ours.
            continue
        # Keep the cheapest parallel arc (networkx DiGraph overwrites).
        if g.has_edge(a.src, a.dst):
            if g[a.src][a.dst]["weight"] <= a.weight:
                continue
        g.add_edge(a.src, a.dst, weight=a.weight)
    try:
        arb = nx.minimum_spanning_arborescence(g)
    except nx.NetworkXException:
        return None
    return sum(d["weight"] for _u, _v, d in arb.edges(data=True))


class TestMinArborescence:
    def test_simple_chain(self):
        arcs = [Arc(0, 1, 1.0), Arc(1, 2, 1.0), Arc(0, 2, 5.0)]
        chosen = min_arborescence(3, arcs, root=0)
        assert chosen is not None
        assert sum(a.weight for a in chosen) == 2.0

    def test_cycle_contraction(self):
        # 1 <-> 2 cheap cycle; root must break in.
        arcs = [Arc(1, 2, 0.1), Arc(2, 1, 0.1), Arc(0, 1, 10.0), Arc(0, 2, 9.0)]
        chosen = min_arborescence(3, arcs, root=0)
        assert chosen is not None
        assert sum(a.weight for a in chosen) == pytest.approx(9.1)

    def test_unreachable(self):
        assert min_arborescence(3, [Arc(0, 1, 1.0)], root=0) is None

    def test_structure_is_arborescence(self):
        arcs = [Arc(0, 1, 1.0), Arc(1, 2, 1.0), Arc(2, 3, 1.0), Arc(3, 1, 0.1),
                Arc(0, 3, 2.0)]
        chosen = min_arborescence(4, arcs, root=0)
        assert chosen is not None
        parents = {}
        for a in chosen:
            assert a.dst not in parents, "each node must have one parent"
            parents[a.dst] = a.src
        assert set(parents) == {1, 2, 3}
        # Acyclic / rooted: walking up always reaches the root.
        for v in (1, 2, 3):
            seen = set()
            while v != 0:
                assert v not in seen
                seen.add(v)
                v = parents[v]

    @given(st.integers(min_value=2, max_value=7), st.data())
    @settings(max_examples=150, deadline=None)
    def test_matches_networkx_cost(self, n, data):
        n_arcs = data.draw(st.integers(min_value=n - 1, max_value=3 * n))
        arcs = []
        for _ in range(n_arcs):
            u = data.draw(st.integers(min_value=0, max_value=n - 1))
            v = data.draw(st.integers(min_value=0, max_value=n - 1))
            w = data.draw(st.integers(min_value=0, max_value=20))
            arcs.append(Arc(u, v, float(w)))
        ours = min_arborescence(n, arcs, root=0)
        if ours is None:
            # Must be genuinely infeasible: some node unreachable from root.
            reach = {0}
            frontier = [0]
            adj = {}
            for a in arcs:
                adj.setdefault(a.src, []).append(a.dst)
            while frontier:
                u = frontier.pop()
                for v in adj.get(u, []):
                    if v not in reach:
                        reach.add(v)
                        frontier.append(v)
            assert reach != set(range(n))
            return
        # Structural validity: one parent per non-root node, acyclic.
        parents = {}
        for a in ours:
            assert a.dst != 0 and a.dst not in parents
            parents[a.dst] = a.src
        assert set(parents) == set(range(1, n))
        for v in range(1, n):
            seen = set()
            while v != 0:
                assert v not in seen
                seen.add(v)
                v = parents[v]
        # Optimality: equals networkx whenever networkx succeeds (its
        # Edmonds occasionally raises on feasible instances; skip those).
        theirs = _nx_cost(n, arcs, 0)
        if theirs is not None:
            assert sum(a.weight for a in ours) == pytest.approx(theirs)

    def test_payload_preserved(self):
        arcs = [Arc(0, 1, 1.0, payload="hello")]
        chosen = min_arborescence(2, arcs, root=0)
        assert chosen[0].payload == "hello"

    def test_root_out_of_range(self):
        with pytest.raises(ValueError):
            min_arborescence(2, [], root=5)


class TestSpanningForest:
    def test_memory_root_fallback(self):
        nodes = ["a", "b"]
        tree, data_nodes = spanning_forest_with_memory_root(nodes, [], 10.0)
        assert tree == []
        assert sorted(data_nodes) == ["a", "b"]

    def test_reuse_preferred_over_memory(self):
        nodes = ["a", "b"]
        arcs = [("a", "b", 1.0, "edge")]
        tree, data_nodes = spanning_forest_with_memory_root(nodes, arcs, 10.0)
        assert tree == [("a", "b", "edge")]
        assert data_nodes == ["a"]

    def test_expensive_reuse_loses_to_memory(self):
        nodes = ["a", "b"]
        arcs = [("a", "b", 100.0, "edge")]
        tree, data_nodes = spanning_forest_with_memory_root(nodes, arcs, 10.0)
        assert tree == []
        assert sorted(data_nodes) == ["a", "b"]
