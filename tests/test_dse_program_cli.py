"""Tests for the DSE explorer, the configuration-stream compiler, the
reporting utilities, and the command-line interface."""

import numpy as np
import pytest

from repro.backend import generate, run_backend
from repro.backend.program import (compile_config, config_bytes,
                                   decode_config)
from repro.cli import main as cli_main
from repro.core import kernels
from repro.core.frontend import build_adg
from repro.dse.explorer import (DesignSpace, explore, generate_winner,
                                pareto_front)
from repro.models import zoo
from repro.report import dag_summary, design_summary, render_topology


@pytest.fixture(scope="module")
def gemm_design():
    wl = kernels.gemm(8, 8, 8)
    df = kernels.gemm_dataflow("KJ", wl, 4, 4)
    return run_backend(generate(build_adg([df]))), df


@pytest.fixture(scope="module")
def fused_design():
    wl = kernels.gemm(8, 8, 8)
    dfa = kernels.gemm_dataflow("IJ", wl, 4, 4)
    dfb = kernels.gemm_dataflow("KJ", wl, 4, 4)
    return run_backend(generate(build_adg([dfa, dfb])))


class TestDSE:
    @pytest.fixture(scope="class")
    def points(self):
        space = DesignSpace(arrays=((8, 8), (16, 16)),
                            buffer_kb=(128.0, 256.0),
                            dataflow_sets=(("ICOC",), ("MN", "ICOC")))
        return explore([zoo.lenet()], space)

    def test_explores_full_space(self, points):
        assert len(points) == 2 * 2 * 2

    def test_sorted_by_objective(self, points):
        edps = [p.edp for p in points]
        assert edps == sorted(edps)

    def test_objectives(self):
        space = DesignSpace(arrays=((8, 8),), buffer_kb=(128.0,),
                            dataflow_sets=(("ICOC",),))
        for objective in ("edp", "latency", "energy", "throughput"):
            pts = explore([zoo.lenet()], space, objective=objective)
            assert len(pts) == 1
        with pytest.raises(ValueError, match="objective"):
            explore([zoo.lenet()], space, objective="vibes")

    def test_area_budget_screens(self):
        space = DesignSpace(arrays=((8, 8), (32, 32)), buffer_kb=(256.0,),
                            dataflow_sets=(("ICOC",),))
        all_pts = explore([zoo.lenet()], space)
        tight = explore([zoo.lenet()], space, area_budget_mm2=0.5)
        assert len(tight) < len(all_pts)

    def test_pareto_front_dominance(self, points):
        front = pareto_front(points)
        assert front
        for p in points:
            assert any(f.cycles <= p.cycles and f.energy_pj <= p.energy_pj
                       for f in front)
        # Front itself is mutually non-dominated.
        for a in front:
            for b in front:
                if a is b:
                    continue
                assert not (a.cycles <= b.cycles
                            and a.energy_pj < b.energy_pj - 1e-9
                            and a.cycles < b.cycles - 1e-9)

    def test_generate_winner_produces_hardware(self, points):
        acc = generate_winner(points[0], workload_scale=1)
        assert len(acc.design.dag.nodes) > 0


class TestConfigCompiler:
    def test_roundtrip(self, gemm_design):
        design, df = gemm_design
        blob = compile_config(design, df.name)
        ordinal, words = decode_config(blob)
        assert ordinal == 0
        kinds = {w.kind for w in words}
        assert "addrgen" in kinds and "meta" in kinds

    def test_mux_selects_preserved(self, fused_design):
        design = fused_design
        for idx, name in enumerate(sorted(design.configs)):
            blob = compile_config(design, name)
            ordinal, words = decode_config(blob)
            assert ordinal == idx
            muxes = {w.node: w.payload[0] for w in words if w.kind == "mux"}
            for nid, sel in design.configs[name].mux_select.items():
                assert muxes[nid] == sel

    def test_magic_validation(self):
        with pytest.raises(ValueError, match="not a LEGO"):
            decode_config(b"\x00" * 16)

    def test_truncation_detected(self, gemm_design):
        design, df = gemm_design
        blob = compile_config(design, df.name)
        with pytest.raises(ValueError, match="truncated"):
            decode_config(blob[:-4])

    def test_config_size_is_small(self, fused_design):
        """The per-dataflow configuration is a few KB — consistent with
        the paper's <1%-of-DRAM-bandwidth instruction overhead claim."""
        sizes = config_bytes(fused_design)
        assert all(size < 64 * 1024 for size in sizes.values())
        assert all(size > 0 for size in sizes.values())


class TestReport:
    def test_topology_marks_data_nodes(self, gemm_design):
        design, df = gemm_design
        art = render_topology(design.adg, "X", df.name)
        assert "*" in art and "tensor X" in art

    def test_topology_rejects_3d(self):
        from repro.core.dataflow import Dataflow
        wl = kernels.gemm(4, 4, 4)
        df = Dataflow.build(wl, spatial=[("i", 2), ("j", 2), ("k", 2)],
                            control=(0, 0, 0), name="3d")
        design = generate(build_adg([df]))
        with pytest.raises(ValueError, match="2-D"):
            render_topology(design.adg, "X")

    def test_dag_summary_counts(self, gemm_design):
        design, _df = gemm_design
        text = dag_summary(design)
        assert "mul" in text and "pipeline register bits" in text

    def test_design_summary_sections(self, gemm_design):
        design, _df = gemm_design
        text = design_summary(design)
        for token in ("front end", "memory layouts", "back end",
                      "pass report"):
            assert token in text


class TestCLI:
    def test_generate(self, tmp_path, capsys):
        out = tmp_path / "top.v"
        rc = cli_main(["generate", "--kernel", "gemm", "--dataflows", "KJ",
                       "--array", "2", "2", "--output", str(out)])
        assert rc == 0
        assert out.exists() and "module lego_top" in out.read_text()
        assert "LEGO design" in capsys.readouterr().out

    def test_generate_unknown_kernel(self):
        with pytest.raises(SystemExit):
            cli_main(["generate", "--kernel", "fft"])

    def test_evaluate(self, capsys):
        rc = cli_main(["evaluate", "AlexNet"])
        assert rc == 0
        assert "GOP/s" in capsys.readouterr().out

    def test_evaluate_unknown_model(self):
        assert cli_main(["evaluate", "SkyNet"]) == 2

    def test_evaluate_gemmini(self, capsys):
        rc = cli_main(["evaluate", "AlexNet", "--arch", "gemmini"])
        assert rc == 0
        assert "Gemmini" in capsys.readouterr().out

    def test_topology_flag(self, capsys):
        rc = cli_main(["generate", "--kernel", "conv2d",
                       "--dataflows", "OHOW", "--array", "2", "2",
                       "--topology"])
        assert rc == 0
        assert "data node" in capsys.readouterr().out
