"""Property-based functional verification: random GEMM/conv shapes, array
sizes, and schedule styles through the complete flow, all bit-exact
against numpy.  Complements `test_integration.py`'s fixed cases."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import BackendOptions, generate, run_backend
from repro.core import kernels
from repro.core.dataflow import Dataflow
from repro.core.frontend import FrontendConfig, build_adg
from repro.sim.dag_sim import Simulator, make_input

RNG = np.random.default_rng(23)


class TestRandomGemm:
    @given(
        st.integers(min_value=1, max_value=3),   # tiles of p0 in m
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=3),
        st.sampled_from([(2, 2), (2, 4), (4, 2)]),
        st.sampled_from(["IJ", "IK", "KJ"]),
        st.booleans(),
    )
    @settings(max_examples=12, deadline=None)
    def test_gemm_shapes(self, tm, tn, tk, array, kind, systolic):
        p0, p1 = array
        m, n, k = 4 * tm, 4 * tn, 4 * tk
        wl = kernels.gemm(m, n, k)
        df = kernels.gemm_dataflow(kind, wl, p0, p1, systolic=systolic)
        design = run_backend(generate(build_adg([df])))
        x = make_input(design, df.name, "X", RNG)
        w = make_input(design, df.name, "W", RNG)
        y = Simulator(design, df.name).run({"X": x, "W": w}).outputs["Y"]
        assert np.array_equal(y, x @ w), (m, n, k, array, kind, systolic)

    @given(st.integers(min_value=0, max_value=3),
           st.integers(min_value=0, max_value=3))
    @settings(max_examples=8, deadline=None)
    def test_gemm_multilevel_tiling(self, extra_i, extra_j):
        """Multi-level loop tiling (a dim split across several temporal
        levels) must not change results."""
        wl = kernels.gemm(16, 16, 8)
        temporal = [("i", 2), ("j", 2), ("k", 8), ("i", 2 + extra_i),
                    ("j", 2 + extra_j)]
        df = Dataflow.build(wl, spatial=[("i", 4), ("j", 4)],
                            temporal=temporal, control=(1, 1), name="ml")
        design = run_backend(generate(build_adg([df])))
        x = make_input(design, "ml", "X", RNG)
        w = make_input(design, "ml", "W", RNG)
        y = Simulator(design, "ml").run({"X": x, "W": w}).outputs["Y"]
        assert np.array_equal(y, x @ w)


class TestBackendVariantsAgree:
    """Every combination of backend options must produce the same
    results — optimizations change cost, never semantics."""

    @pytest.mark.parametrize("options", [
        BackendOptions.baseline(),
        BackendOptions(True, False, False, False),
        BackendOptions(False, True, False, False),
        BackendOptions(True, True, True, True),
    ])
    def test_nonsystolic_gemm(self, options):
        wl = kernels.gemm(8, 8, 8)
        df = kernels.gemm_dataflow("KJ", wl, 4, 4, systolic=False)
        design = run_backend(generate(build_adg([df])), options)
        rng = np.random.default_rng(0)  # same data across variants
        x = make_input(design, df.name, "X", rng)
        w = make_input(design, df.name, "W", rng)
        y = Simulator(design, df.name).run({"X": x, "W": w}).outputs["Y"]
        assert np.array_equal(y, x @ w)

    @pytest.mark.parametrize("fuse", [True, False])
    def test_fused_broadcast_mj(self, fuse):
        """Regression for the extraction bug found by hypothesis: fused
        broadcast designs where one dataflow uses the chain adders
        standalone."""
        wl = kernels.gemm(16, 16, 16)
        dfs = [kernels.gemm_dataflow("IJ", wl, 8, 8, systolic=False),
               kernels.gemm_dataflow("KJ", wl, 8, 8, systolic=False)]
        design = run_backend(generate(build_adg(
            dfs, FrontendConfig(fuse_heuristic=fuse))))
        rng = np.random.default_rng(4)
        for name in ("GEMM-IJ", "GEMM-KJ"):
            x = make_input(design, name, "X", rng)
            w = make_input(design, name, "W", rng)
            y = Simulator(design, name).run({"X": x, "W": w}).outputs["Y"]
            assert np.array_equal(y, x @ w), (name, fuse)


class TestDoubleSpatialReduction:
    def test_two_axis_reduction_combines_partials(self):
        """Regression for the combine-tree bug found by hypothesis: a
        dataflow reducing along both spatial dims forms an in-tree where
        interior FUs receive two partials simultaneously."""
        from repro.core.contraction import contraction
        spec = "ij,ijk->i"
        wl = contraction(spec, {"i": 4, "j": 4, "k": 4})
        df = Dataflow.build(wl, spatial=[("j", 4), ("k", 4)],
                            control=(0, 0), name="red2d")
        design = run_backend(generate(build_adg([df])))
        t0 = make_input(design, "red2d", "T0", RNG)
        t1 = make_input(design, "red2d", "T1", RNG)
        y = Simulator(design, "red2d").run({"T0": t0, "T1": t1}).outputs["Y"]
        assert np.array_equal(y, np.einsum(spec, t0, t1))

    def test_combine_adders_created(self):
        from repro.core.contraction import contraction
        wl = contraction("ij,ijk->i", {"i": 4, "j": 4, "k": 4})
        df = Dataflow.build(wl, spatial=[("j", 4), ("k", 4)],
                            control=(0, 0), name="red2d")
        design = generate(build_adg([df]))
        combines = [n for n in design.dag.nodes.values()
                    if n.kind == "add" and n.params.get("role") == "combine"]
        assert combines, "2-D reduction needs combine adders"
