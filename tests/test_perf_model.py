"""Tests for the performance model, mapper, model zoo, and accelerator
assembly — including cross-validation of the analytic model against the
cycle-accurate DAG simulator."""

import numpy as np
import pytest

from repro.arch import AcceleratorSpec, build
from repro.arch.references import AUTOSA_FPGA, EYERISS, NVDLA, SODA_45NM
from repro.mapper import choose_mapping, divisors, factor_pairs, map_model
from repro.mapper.tiling import n_tiles, tile_candidates, working_set_bytes
from repro.models import zoo
from repro.models.layers import (AttentionLayer, ConvLayer, LinearLayer,
                                 PPULayer)
from repro.sim.perf_model import (GEMMINI_LIKE, ArchPerf, evaluate_layer,
                                  evaluate_model, spatial_options)

LEGO = ArchPerf(name="LEGO", dataflows=("MN", "ICOC", "OCOH"))


class TestLayers:
    def test_conv_macs(self):
        c = ConvLayer("c", 1, 16, 32, 8, 8, 3, 3)
        assert c.macs() == 32 * 8 * 8 * 16 * 9

    def test_depthwise(self):
        c = ConvLayer("dw", 1, 32, 32, 8, 8, 3, 3, groups=32)
        assert c.is_depthwise
        assert c.macs() == 32 * 8 * 8 * 9

    def test_stride_shrinks_output(self):
        c = ConvLayer("s", 1, 3, 8, 16, 16, 3, 3, stride=2)
        assert c.oh == 8

    def test_attention_macs(self):
        a = AttentionLayer("a", 2, 4, 8, 16)
        assert a.macs() == 2 * 2 * 4 * 8 * 16


class TestZoo:
    @pytest.mark.parametrize("name", sorted(zoo.MODEL_BUILDERS))
    def test_models_build(self, name):
        model = zoo.MODEL_BUILDERS[name]()
        assert model.layers
        assert model.total_ops() > 0

    def test_gop_counts_plausible(self):
        # Published MAC counts (within 2x: shapes are simplified).
        assert 0.5e9 < zoo.alexnet().total_macs() < 1.5e9
        assert 0.2e9 < zoo.mobilenet_v2().total_macs() < 0.7e9
        assert 2e9 < zoo.resnet50().total_macs() < 6e9

    def test_gpt2_is_gemv_shaped(self):
        model = zoo.gpt2_decode()
        linears = [l for l in model.layers if isinstance(l, LinearLayer)]
        assert all(l.m == 1 for l in linears)

    def test_llama_batch(self):
        m1 = zoo.llama7b_decode(1)
        m32 = zoo.llama7b_decode(32)
        assert m32.total_macs() > m1.total_macs()


class TestTiling:
    def test_divisors(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]

    def test_factor_pairs(self):
        assert (3, 4) in factor_pairs(12)

    def test_tile_candidates_include_bound_and_floor(self):
        cands = tile_candidates(56, floor=4)
        assert 56 in cands
        assert all(c >= 4 or c == 56 for c in cands)

    def test_divisor_validation(self):
        with pytest.raises(ValueError):
            divisors(0)

    def test_working_set(self):
        ws = working_set_bytes({"m": 4, "k": 8}, {"X": ("m", "k")}, {"X": 1})
        assert ws == 32

    def test_n_tiles(self):
        assert n_tiles({"m": 10}, {"m": 4}) == 3


class TestPerfModel:
    def test_spatial_options(self):
        conv = ConvLayer("c", 1, 64, 64, 16, 16, 3, 3)
        assert spatial_options(conv, "ICOC", (16, 16)) == {"ic": 16, "oc": 16}
        assert spatial_options(conv, "MN", (16, 16)) == {"oh": 16, "ow": 16}
        lin = LinearLayer("l", 64, 64, 64)
        assert spatial_options(lin, "KHOH", (16, 16)) is None

    def test_perfect_layer_high_utilization(self):
        lin = LinearLayer("l", 256, 256, 256)
        perf = evaluate_layer(lin, LEGO, "MN")
        assert perf.utilization > 0.9

    def test_misaligned_layer_low_utilization(self):
        lin = LinearLayer("l", 17, 17, 64)
        perf = evaluate_layer(lin, LEGO, "MN")
        assert perf.utilization < 0.6

    def test_memory_bound_gemv(self):
        gemv = LinearLayer("v", 1, 4096, 4096)
        perf = evaluate_layer(gemv, LEGO, "ICOC")
        assert perf.dram_cycles > perf.compute_cycles

    def test_depthwise_avoids_channel_parallelism(self):
        dw = ConvLayer("dw", 1, 64, 64, 32, 32, 3, 3, groups=64)
        mapping, _perf = choose_mapping(dw, LEGO)
        # ic = 1 per group: channel-parallel dataflows waste the array.
        assert mapping.dataflow != "ICOC"

    def test_tiling_respects_buffer(self):
        big = LinearLayer("big", 4096, 4096, 4096)
        perf = evaluate_layer(big, LEGO, "MN")
        # Cannot be all-resident: DRAM traffic must exceed the footprints.
        min_bytes = sum(big.tensor_bytes().values())
        assert perf.dram_bytes > min_bytes

    def test_dram_efficiency_hurts(self):
        slow = ArchPerf(name="slow", dataflows=("MN",), dram_efficiency=0.4)
        fast = ArchPerf(name="fast", dataflows=("MN",), dram_efficiency=0.9)
        gemv = LinearLayer("v", 1, 4096, 4096)
        assert evaluate_layer(gemv, slow, "MN").cycles > \
            evaluate_layer(gemv, fast, "MN").cycles

    def test_model_evaluation(self):
        perf = evaluate_model(zoo.alexnet(), LEGO)
        assert 0 < perf.gops <= LEGO.peak_gops
        assert perf.gops_per_watt > 0
        assert 0 < perf.utilization <= 1

    def test_instruction_overhead_small(self):
        """§VI-B(e): instruction bandwidth must stay below 1% of DRAM BW."""
        perf = evaluate_model(zoo.resnet50(), LEGO)
        stats = perf.instruction_stats()
        assert stats["instruction_bw_gbs"] < 0.16  # 1% of 16 GB/s
        assert stats["cycles_per_instruction"] > 100


class TestGemminiBaseline:
    def test_lego_beats_gemmini_everywhere(self):
        for name in ("AlexNet", "MobileNetV2", "ResNet50", "BERT", "GPT2"):
            model = zoo.MODEL_BUILDERS[name]()
            lego = evaluate_model(model, LEGO)
            gem = evaluate_model(model, GEMMINI_LIKE)
            assert lego.gops > gem.gops, name
            assert lego.gops_per_watt > gem.gops_per_watt, name

    def test_depthwise_dominates_gemmini_gap(self):
        """The MobileNetV2 speedup must exceed the ResNet50 speedup — the
        dataflow-switching advantage the paper highlights."""
        def speedup(name):
            model = zoo.MODEL_BUILDERS[name]()
            return (evaluate_model(model, LEGO).gops
                    / evaluate_model(model, GEMMINI_LIKE).gops)
        assert speedup("MobileNetV2") > 2 * speedup("ResNet50")

    def test_gpt2_memory_bound_for_both(self):
        model = zoo.gpt2_decode()
        for arch in (LEGO, GEMMINI_LIKE):
            perf = evaluate_model(model, arch)
            assert perf.utilization < 0.1, arch.name


class TestMapper:
    def test_map_model_covers_all_layers(self):
        model = zoo.alexnet()
        mapped = map_model(model, LEGO)
        assert len(mapped) == len(model.layers)
        for layer, mapping in mapped:
            if isinstance(layer, PPULayer):
                assert mapping is None
            else:
                assert mapping.dataflow in LEGO.dataflows

    def test_energy_objective_differs(self):
        conv = ConvLayer("c", 1, 64, 64, 56, 56, 3, 3)
        lat, _p1 = choose_mapping(conv, LEGO, "latency")
        eng, _p2 = choose_mapping(conv, LEGO, "energy")
        assert eng.energy_pj <= lat.energy_pj

    def test_infeasible_arch(self):
        arch = ArchPerf(name="none", dataflows=("KHOH",))
        with pytest.raises(ValueError):
            choose_mapping(LinearLayer("l", 8, 8, 8), arch)


class TestAcceleratorAssembly:
    @pytest.fixture(scope="class")
    def acc(self):
        return build(AcceleratorSpec(name="LEGO-small", array=(4, 4),
                                     buffer_kb=64, n_ppus=2))

    def test_generation_succeeds(self, acc):
        assert acc.generation_seconds > 0
        assert len(acc.design.dag.nodes) > 50

    def test_area_power_report(self, acc):
        report = acc.area_power()
        assert report.total_area_mm2 > 0
        assert {"buffers", "noc", "ppus"} <= set(report.area_um2)

    def test_model_evaluation(self, acc):
        perf = acc.evaluate(zoo.lenet())
        assert perf.gops > 0

    def test_verilog_emission(self, acc):
        rtl = acc.verilog()
        assert "module lego_small" in rtl

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError):
            build(AcceleratorSpec(conv_dataflows=(), gemm_dataflows=()))

    def test_perf_arch_derivation(self):
        spec = AcceleratorSpec(conv_dataflows=("ICOC", "OHOW"),
                               gemm_dataflows=("IJ",))
        arch = spec.perf_arch()
        assert "MN" in arch.dataflows and "ICOC" in arch.dataflows


class TestReferences:
    def test_published_constants(self):
        assert EYERISS.n_fus == 168 and EYERISS.power_mw == 278.0
        assert NVDLA.technology_nm == 28.0
        assert AUTOSA_FPGA["GEMM-IJ"]["FF"] == 25_400
        assert SODA_45NM["LeNet"]["gflops"] == 0.90
