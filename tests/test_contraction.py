"""Tests for the einsum-style contraction builder and strided conv —
including property-based functional verification of *randomly generated*
contractions through the complete generation flow."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import generate, run_backend
from repro.core import kernels
from repro.core.contraction import contraction, parse_subscripts
from repro.core.dataflow import Dataflow
from repro.core.frontend import build_adg
from repro.sim.dag_sim import Simulator, make_input


class TestParser:
    def test_basic(self):
        assert parse_subscripts("ik,kj->ij") == (["ik", "kj"], "ij")

    def test_missing_arrow(self):
        with pytest.raises(ValueError, match="->"):
            parse_subscripts("ik,kj")

    def test_repeated_index_in_term(self):
        with pytest.raises(ValueError, match="repeated"):
            parse_subscripts("ii->i")

    def test_output_index_must_exist(self):
        with pytest.raises(ValueError, match="never appears"):
            parse_subscripts("ij->ik")

    def test_non_letter(self):
        with pytest.raises(ValueError, match="letters"):
            parse_subscripts("i1->i")


class TestBuilder:
    def test_gemm_equivalent(self):
        wl = contraction("ik,kj->ij", {"i": 8, "j": 8, "k": 8})
        assert wl.dims == ("i", "k", "j")
        assert wl.reduction_dims() == ("k",)
        assert [t.name for t in wl.tensors] == ["T0", "T1", "Y"]

    def test_three_input_body_chains_multipliers(self):
        wl = contraction("ikl,kj,lj->ij", {"i": 4, "j": 4, "k": 4, "l": 4})
        muls = [op for op in wl.body if op.op == "mul"]
        assert len(muls) == 2

    def test_missing_size(self):
        with pytest.raises(ValueError, match="sizes missing"):
            contraction("ik,kj->ij", {"i": 4, "k": 4})

    def test_total_ops(self):
        wl = contraction("ik,kj->ij", {"i": 2, "j": 3, "k": 5})
        assert wl.total_ops() == 2 * 2 * 3 * 5


def _verify(wl, spec, spatial, control=(1, 1)):
    """Generate, simulate, and compare against numpy einsum."""
    df = Dataflow.build(wl, spatial=spatial, control=control, name="test")
    design = run_backend(generate(build_adg([df])))
    rng = np.random.default_rng(11)
    inputs = {t.name: make_input(design, "test", t.name, rng)
              for t in wl.inputs}
    got = Simulator(design, "test").run(inputs).outputs["Y"]
    terms, out = spec.split("->")
    ref = np.einsum(spec, *[inputs[f"T{i}"]
                            for i in range(len(terms.split(",")))])
    return np.array_equal(got, ref)


class TestGeneratedContractionsAreCorrect:
    def test_batched_gemm(self):
        spec = "bik,bkj->bij"
        wl = contraction(spec, {"b": 2, "i": 4, "j": 4, "k": 4})
        assert _verify(wl, spec, [("i", 4), ("j", 4)])

    def test_4d_contraction(self):
        spec = "abij,ijc->abc"
        wl = contraction(spec, {"a": 2, "b": 2, "c": 4, "i": 2, "j": 2})
        assert _verify(wl, spec, [("a", 2), ("c", 4)])

    def test_outer_product(self):
        spec = "i,j->ij"
        wl = contraction(spec, {"i": 4, "j": 4})
        assert _verify(wl, spec, [("i", 4), ("j", 4)])

    def test_inner_product_spatial_reduction(self):
        spec = "ik,jk->ij"
        wl = contraction(spec, {"i": 4, "j": 4, "k": 8})
        assert _verify(wl, spec, [("k", 4), ("i", 4)])

    @given(st.data())
    @settings(max_examples=8, deadline=None)
    def test_random_contractions(self, data):
        """Property: any random 2-input contraction over <=4 indices,
        scheduled on a random 2-D spatial pair, is generated into hardware
        that matches numpy.einsum bit-exactly."""
        indices = data.draw(st.sampled_from(
            ["ijk", "ijkl"]))
        n = len(indices)
        t0 = "".join(data.draw(st.permutations(indices))[:data.draw(
            st.integers(min_value=2, max_value=n))])
        rest = [c for c in indices if c not in t0] or [t0[0]]
        t1_pool = sorted(set(rest + list(t0[:2])))
        t1 = "".join(data.draw(st.permutations(t1_pool)))
        out_pool = sorted(set(t0 + t1))
        out_len = data.draw(st.integers(min_value=1, max_value=len(out_pool)))
        out = "".join(data.draw(st.permutations(out_pool))[:out_len])
        spec = f"{t0},{t1}->{out}"
        sizes = {c: 4 for c in indices}
        wl = contraction(spec, sizes)
        # Spatial dims: two distinct workload dims.
        dims = data.draw(st.permutations(wl.dims))[:2]
        spatial = [(d, min(4, wl.bounds[d])) for d in dims]
        systolic = data.draw(st.booleans())
        control = (1, 1) if systolic else (0, 0)
        assert _verify(wl, spec, spatial, control), spec


class TestStridedConv:
    def test_stride_validation(self):
        with pytest.raises(ValueError, match="stride"):
            kernels.conv2d(stride=0)

    def test_stride2_affine_coefficient(self):
        wl = kernels.conv2d(1, 2, 2, 4, 4, 3, 3, stride=2)
        x = wl.tensor("X")
        # ih = 2*oh + kh - 1
        ih_row = x.mapping.m[2]
        assert ih_row[wl.dim_index("oh")] == 2
        assert ih_row[wl.dim_index("kh")] == 1

    def test_stride2_functional(self):
        wl = kernels.conv2d(1, 2, 2, 4, 4, 3, 3, stride=2)
        df = kernels.conv2d_dataflow("OHOW", wl, 2, 2)
        design = run_backend(generate(build_adg([df])))
        rng = np.random.default_rng(5)
        x = make_input(design, df.name, "X", rng)
        w = make_input(design, df.name, "W", rng)
        y = Simulator(design, df.name).run({"X": x, "W": w}).outputs["Y"]
        # Reference with ih = 2*oh + kh - 1 and zero padding at -1.
        n, ic, ih, iw = x.shape
        oc = w.shape[0]
        xp = np.zeros((n, ic, ih + 1, iw + 1), dtype=np.int64)
        xp[:, :, 1:, 1:] = x
        ref = np.zeros((1, oc, 4, 4), dtype=np.int64)
        for kh in range(3):
            for kw in range(3):
                patch = xp[:, :, kh:kh + 8:2, kw:kw + 8:2]
                ref += np.einsum("nchw,oc->nohw", patch, w[:, :, kh, kw])
        assert np.array_equal(y, ref)
