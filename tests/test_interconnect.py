"""Tests for the relation-based interconnection analysis (paper §IV-A).

The key correctness property, checked exhaustively and by hypothesis, is
the *semantic* one: a reuse solution (ds, dt) must mean that FU ``s + ds``
at local timestamp ``t + dt`` reads exactly the same tensor element as FU
``s`` at ``t``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import kernels
from repro.core.dataflow import Dataflow
from repro.core.interconnect import (ReuseKind, build_reuse_edges,
                                     find_reuse_solutions)


def _check_semantics(df: Dataflow, sols):
    """Every solution must preserve the accessed data element."""
    rng = np.random.default_rng(0)
    for sol in sols:
        mdt, mds, _ = df.tensor_ts_map(sol.tensor)
        ds = np.array(sol.ds)
        dt = np.array(sol.dt)
        for _ in range(10):
            t = np.array([rng.integers(0, r) for r in df.rt])
            s = np.array([rng.integers(0, r) for r in df.rs])
            lhs = mdt @ (t + dt) + mds @ (s + ds)
            rhs = mdt @ t + mds @ s
            assert (lhs == rhs).all(), (sol, t, s)


class TestGemmFig3:
    """Fig. 3: GEMM with s = (k, j), systolic control c = (1, 1)."""

    @pytest.fixture()
    def df(self):
        return kernels.gemm_dataflow("KJ", kernels.gemm(8, 8, 8), 2, 2)

    def test_x_forward_along_j(self, df):
        sols = find_reuse_solutions(df, "X")
        direct = [s for s in sols if s.kind == ReuseKind.DIRECT]
        assert any(s.ds == (0, 1) and s.depth == 1 for s in direct), \
            "X must flow systolically along s_j with one register (Fig. 3)"
        # The reverse direction violates dt_bias >= 0 as a direct link.
        assert not any(s.ds == (0, -1) for s in direct)

    def test_y_forward_along_k(self, df):
        sols = find_reuse_solutions(df, "Y")
        assert any(s.ds == (1, 0) and s.kind == ReuseKind.DIRECT and
                   s.depth == 1 for s in sols)

    def test_w_is_stationary(self, df):
        sols = find_reuse_solutions(df, "W")
        kinds = {s.kind for s in sols}
        assert kinds == {ReuseKind.STATIONARY}, \
            "W depends on both spatial dims: only temporal reuse remains"

    def test_semantics(self, df):
        for tensor in ("X", "W", "Y"):
            _check_semantics(df, find_reuse_solutions(df, tensor))


class TestConvFig4:
    """Fig. 4: Conv2D with s = (oh, ow)... the paper uses (ow, oh); we use
    the OHOW helper with s = (oh, ow) and broadcast control c = (0, 0)."""

    @pytest.fixture()
    def df(self):
        return kernels.conv2d_dataflow("OHOW", kernels.conv2d(1, 4, 4, 8, 8, 3, 3),
                                       2, 2)

    def test_w_broadcast(self, df):
        sols = find_reuse_solutions(df, "W")
        direct = [s for s in sols if s.kind == ReuseKind.DIRECT]
        # W is independent of both spatial dims -> broadcast wires (depth 0)
        # in every direction.
        assert any(s.ds == (0, 1) and s.depth == 0 for s in direct)
        assert any(s.ds == (1, 0) and s.depth == 0 for s in direct)

    def test_x_neighbor_delay(self, df):
        sols = find_reuse_solutions(df, "X")
        delay = [s for s in sols if s.kind == ReuseKind.DELAY]
        # Fig. 4: X is shared with neighbours via delay FIFOs; the kh/kw
        # loops compensate the spatial shift.
        assert any(s.ds == (0, -1) and s.depth == 1 for s in delay)
        assert any(s.ds == (-1, 0) for s in delay)

    def test_y_no_spatial_reuse(self, df):
        sols = find_reuse_solutions(df, "Y")
        assert all(s.kind == ReuseKind.STATIONARY for s in sols)

    def test_semantics(self, df):
        for tensor in ("X", "W", "Y"):
            _check_semantics(df, find_reuse_solutions(df, tensor))


class TestGeneralProperties:
    @pytest.mark.parametrize("kind,p", [("IJ", 4), ("IK", 2), ("KJ", 4)])
    def test_gemm_dataflows_semantics(self, kind, p):
        df = kernels.gemm_dataflow(kind, kernels.gemm(8, 8, 8), p, p)
        for tensor in ("X", "W", "Y"):
            _check_semantics(df, find_reuse_solutions(df, tensor))

    @pytest.mark.parametrize("kind", ["OHOW", "ICOC", "KHOH", "OCOH"])
    def test_conv_dataflows_semantics(self, kind):
        df = kernels.conv2d_dataflow(kind, kernels.conv2d(1, 4, 4, 8, 8, 3, 3),
                                     2, 2)
        for tensor in ("X", "W", "Y"):
            _check_semantics(df, find_reuse_solutions(df, tensor))

    def test_mttkrp_semantics(self):
        df = kernels.mttkrp_dataflow("IJ", kernels.mttkrp(8, 8, 4, 4), 2, 2)
        for tensor in ("A", "B", "C", "Y"):
            _check_semantics(df, find_reuse_solutions(df, tensor))

    def test_depth_nonnegative_and_delay_positive(self):
        df = kernels.conv2d_dataflow("OHOW", kernels.conv2d(1, 4, 4, 8, 8, 3, 3),
                                     4, 4)
        for tensor in ("X", "W", "Y"):
            for sol in find_reuse_solutions(df, tensor):
                assert sol.depth >= 0
                if sol.kind == ReuseKind.DELAY:
                    assert sol.depth >= 1

    @given(st.sampled_from(["IJ", "IK", "KJ"]),
           st.integers(min_value=2, max_value=4),
           st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_gemm_property(self, kind, p, systolic):
        df = kernels.gemm_dataflow(kind, kernels.gemm(8, 8, 8), p, p,
                                   systolic=systolic)
        for tensor in ("X", "W", "Y"):
            sols = find_reuse_solutions(df, tensor)
            _check_semantics(df, sols)
            for sol in sols:
                if sol.kind == ReuseKind.DIRECT:
                    assert df.delta_t_bias(sol.ds) >= 0


class TestReuseEdges:
    def test_edge_instantiation(self):
        df = kernels.gemm_dataflow("KJ", kernels.gemm(8, 8, 8), 2, 2)
        sols = find_reuse_solutions(df, "X")
        edges = build_reuse_edges(df, sols)
        # direct (0,1) at s_j = 0 only: 2 FUs; delay (0,-1) at s_j = 1: 2 FUs
        pairs = {(e.src, e.dst) for e in edges}
        assert ((0, 0), (0, 1)) in pairs
        for e in edges:
            assert all(0 <= c < r for c, r in zip(e.dst, df.rs))

    def test_delay_edges_cost_more_than_direct_at_equal_depth(self):
        df = kernels.conv2d_dataflow("OHOW", kernels.conv2d(1, 4, 4, 8, 8, 3, 3),
                                     2, 2)
        x_edges = build_reuse_edges(df, find_reuse_solutions(df, "X"))
        w_edges = build_reuse_edges(df, find_reuse_solutions(df, "W"))
        assert min(e.cost for e in x_edges) > min(e.cost for e in w_edges)
