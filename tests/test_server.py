"""End-to-end tests of the asyncio serving front end: real sockets on
ephemeral ports, the stdlib client, concurrent traffic against the warm
cache, malformed-input status codes, and pause/resume of exploration
jobs (including resuming on a brand-new server from a polled
checkpoint, the killed-server scenario)."""

import http.client
import json
import socket
import threading

import pytest

from repro.dse import run_search
from repro.dse.explorer import DesignSpace
from repro.models import zoo
from repro.service import (BatchEngine, DesignCache, ServerThread,
                           ServiceClient, ServiceError)

SMALL_SPACE = {
    "arrays": [[8, 8], [16, 16]],
    "buffer_kb": [128.0, 256.0],
    "dram_gbps": [16.0],
    "dataflow_sets": [["ICOC"], ["MN", "ICOC"]],
}

TINY = {"kernel": "gemm", "dataflows": ["KJ"], "array": [2, 2]}


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    cache = DesignCache(root=tmp_path_factory.mktemp("serve-cache"))
    handle = ServerThread(BatchEngine(cache=cache)).start()
    yield handle
    handle.stop()


@pytest.fixture()
def client(server):
    with ServiceClient.from_url(server.url) as c:
        yield c


class TestGenerate:
    def test_roundtrip_and_cache_hit(self, client):
        first = client.generate(TINY)
        assert first["ok"] and first["summary"]
        assert first["kernel"] == "gemm"
        second = client.generate(TINY)
        assert second["from_cache"]
        assert second["spec_hash"] == first["spec_hash"]

    def test_include_rtl(self, client):
        result = client.generate(TINY, include_rtl=True)
        assert "module" in result["rtl"]
        assert "rtl" not in client.generate(TINY)

    def test_flat_body_without_request_wrapper(self, client):
        result = client.request("POST", "/generate", dict(TINY))
        assert result["ok"]

    def test_failed_generation_preserves_traceback(self, client):
        bad = {"kernel": "gemm", "dataflows": ["XX"], "array": [2, 2]}
        result = client.generate(bad)
        assert not result["ok"] and result["error"]
        assert "Traceback" in result["traceback"]

    def test_unknown_kernel_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.generate(kernel="fft")
        assert err.value.status == 400

    def test_unknown_field_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.generate(kernal="gemm")
        assert err.value.status == 400
        assert "kernal" in str(err.value)

    def test_health(self, client):
        health = client.health()
        assert health["ok"] and health["cache"]["root"]


class TestHttpEdges:
    def _raw(self, server, payload: bytes) -> tuple[int, dict]:
        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=10) as sock:
            sock.sendall(payload)
            sock.settimeout(10)
            data = b""
            while b"\r\n\r\n" not in data:
                data += sock.recv(65536)
            head, _, rest = data.partition(b"\r\n\r\n")
            status = int(head.split()[1])
            length = 0
            for line in head.split(b"\r\n"):
                if line.lower().startswith(b"content-length:"):
                    length = int(line.split(b":")[1])
            while len(rest) < length:
                rest += sock.recv(65536)
            return status, json.loads(rest.decode())

    def test_malformed_json_400(self, server):
        body = b"{this is not json"
        status, payload = self._raw(
            server,
            b"POST /generate HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: %d\r\nConnection: close\r\n\r\n%s"
            % (len(body), body))
        assert status == 400
        assert "JSON" in payload["error"]

    def test_unknown_route_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.request("GET", "/designs")
        assert err.value.status == 404

    def test_wrong_method_405(self, client):
        with pytest.raises(ServiceError) as err:
            client.request("GET", "/generate")
        assert err.value.status == 405

    def test_unknown_job_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.job("explore-999-deadbe")
        assert err.value.status == 404

    def test_batch_requires_requests_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.request("POST", "/batch", {"workers": 2})
        assert err.value.status == 400

    def test_explore_unknown_model_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.explore(models=["NotAModel"])
        assert err.value.status == 400

    def test_explore_unknown_strategy_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.explore(models=["LeNet"], strategy="gradient")
        assert err.value.status == 400

    def test_explore_nonpositive_step_400(self, client):
        """step_evals <= 0 would be a zero-progress infinite loop."""
        for bad in (0, -1, "fast", True):
            with pytest.raises(ServiceError) as err:
                client.explore(models=["LeNet"], step_evals=bad)
            assert err.value.status == 400

    def test_bad_numeric_params_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.request("POST", "/batch",
                           {"requests": [dict(TINY)], "workers": "4"})
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            client.explore(models=["LeNet"], max_evals="20")
        assert err.value.status == 400

    def test_explore_non_object_space_400(self, client):
        for bad_space in ("grid", [1, 2], 7):
            with pytest.raises(ServiceError) as err:
                client.explore(models=["LeNet"], space=bad_space)
            assert err.value.status == 400

    def test_registry_backpressure_503(self):
        """Live jobs beyond max_jobs are refused (503), not accumulated
        without bound; finishing a job frees a slot."""
        from repro.service.jobs import JobRegistry, RegistryFull

        registry = JobRegistry(max_jobs=2)
        first = registry.create("explore", {})
        registry.create("explore", {})
        with pytest.raises(RegistryFull):
            registry.create("explore", {})
        first.finish({})
        registry.create("explore", {})  # slot freed

    def test_pause_rejected_without_step_budget(self, client):
        """A job submitted with step_evals=null never reaches a pause
        point; accepting the pause would leave the client waiting."""
        job_id = client.explore(models=["LeNet"], strategy="exhaustive",
                                space=SMALL_SPACE, step_evals=None)
        with pytest.raises(ServiceError) as err:
            client.pause(job_id)
        assert err.value.status == 400
        assert "step_evals" in str(err.value)
        client.wait(job_id, timeout=180)


class TestBatchJobs:
    def test_batch_job_roundtrip(self, client):
        requests = [dict(TINY, dataflows=[d]) for d in ("KJ", "IJ", "IK")]
        job_id = client.batch(requests)
        final = client.wait(job_id)
        assert final["status"] == "done"
        result = final["result"]
        assert result["ok"] == 3 and len(result["results"]) == 3
        assert final["progress"]["done"] == 3
        assert any(j["id"] == job_id for j in client.jobs())

    def test_batch_captures_per_request_traceback(self, client):
        requests = [dict(TINY),
                    {"kernel": "gemm", "dataflows": ["XX"], "array": [2, 2]}]
        final = client.wait(client.batch(requests))
        assert final["status"] == "done"
        assert final["result"]["ok"] == 1
        (failed,) = final["result"]["failed"]
        assert "Traceback" in failed["traceback"]

    def test_pause_rejected_for_batch_jobs(self, client):
        job_id = client.batch([dict(TINY)])
        with pytest.raises(ServiceError) as err:
            client.pause(job_id)
        assert err.value.status == 400
        client.wait(job_id)


class TestConcurrentClients:
    def test_warm_cache_under_concurrency(self, server, client):
        client.generate(TINY)  # warm the entry
        errors: list = []

        def hammer():
            try:
                with ServiceClient.from_url(server.url) as own:
                    for _ in range(5):
                        result = own.generate(TINY)
                        assert result["ok"] and result["from_cache"]
            except Exception as exc:  # noqa: BLE001 — collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        assert client.health()["ok"]

    def test_interleaved_jobs_and_requests(self, server, client):
        job_id = client.explore(models=["LeNet"], strategy="halving",
                                space=SMALL_SPACE, step_evals=1)
        # The event loop must keep answering while the job computes.
        assert client.generate(TINY)["ok"]
        final = client.wait(job_id, timeout=180)
        assert final["status"] == "done"
        assert final["result"]["best"] is not None


class TestExploreJobs:
    def test_explore_completes_and_matches_library(self, server, client):
        job_id = client.explore(models=["LeNet"], strategy="exhaustive",
                                space=SMALL_SPACE, seed=7)
        final = client.wait(job_id, timeout=180)
        assert final["status"] == "done"
        served = final["result"]
        direct = run_search(
            [zoo.lenet()],
            DesignSpace(arrays=((8, 8), (16, 16)),
                        buffer_kb=(128.0, 256.0),
                        dataflow_sets=(("ICOC",), ("MN", "ICOC"))),
            strategy="exhaustive", seed=7)
        assert served["best"]["arch"]["name"] == direct.best.arch.name
        assert served["evals_used"] == direct.evals_used
        assert served["points_evaluated"] == direct.points_evaluated

    def test_pause_then_resume_same_server(self, server, client):
        job_id = client.explore(models=["LeNet"], strategy="anneal",
                                max_evals=10, seed=5, space=SMALL_SPACE,
                                step_evals=1)
        client.pause(job_id)
        state = client.wait(job_id)
        if state["status"] == "paused":  # job may already have finished
            assert state["checkpoint"] is not None
            assert not state["checkpoint"]["completed"]
            client.resume(job_id)
            state = client.wait(job_id, timeout=180)
        assert state["status"] == "done"
        uninterrupted = run_search(
            [zoo.lenet()],
            DesignSpace(arrays=((8, 8), (16, 16)),
                        buffer_kb=(128.0, 256.0),
                        dataflow_sets=(("ICOC",), ("MN", "ICOC"))),
            strategy="anneal", max_evals=10, seed=5)
        assert (state["result"]["best"]["arch"]["name"]
                == uninterrupted.best.arch.name)
        assert state["result"]["evals_used"] == uninterrupted.evals_used

    def test_killed_server_resumes_from_checkpoint(self, tmp_path):
        """Start an exploration, kill the whole server mid-run, resume
        the polled checkpoint on a brand-new server (fresh cache too):
        the final best point must match an uninterrupted run."""
        space = DesignSpace(arrays=((8, 8), (16, 16)),
                            buffer_kb=(128.0, 256.0),
                            dataflow_sets=(("ICOC",), ("MN", "ICOC")))
        uninterrupted = run_search([zoo.lenet()], space, strategy="anneal",
                                   max_evals=8, seed=11)

        first = ServerThread(
            BatchEngine(cache=DesignCache(root=tmp_path / "a"))).start()
        try:
            with ServiceClient.from_url(first.url) as c:
                job_id = c.explore(models=["LeNet"], strategy="anneal",
                                   max_evals=8, seed=11,
                                   space=SMALL_SPACE, step_evals=1)
                c.pause(job_id)  # deterministic "mid-run" stop
                state = c.wait(job_id)
                checkpoint = state["checkpoint"]
        finally:
            first.stop()  # the kill

        if state["status"] == "done":  # finished before the pause landed
            final_result = state["result"]
        else:
            assert checkpoint is not None and not checkpoint["completed"]
            second = ServerThread(
                BatchEngine(cache=DesignCache(root=tmp_path / "b"))).start()
            try:
                with ServiceClient.from_url(second.url) as c:
                    resumed = c.explore(checkpoint=checkpoint,
                                        step_evals=1)
                    final = c.wait(resumed, timeout=180)
                    assert final["status"] == "done"
                    final_result = final["result"]
            finally:
                second.stop()
        assert (final_result["best"]["arch"]["name"]
                == uninterrupted.best.arch.name)
        assert final_result["evals_used"] == uninterrupted.evals_used

    def test_checkpoint_excluded_on_request(self, client):
        job_id = client.explore(models=["LeNet"], strategy="exhaustive",
                                space=SMALL_SPACE, step_evals=1)
        client.wait(job_id, timeout=180)
        assert "checkpoint" not in client.job(job_id, checkpoint=False)

    def test_resume_of_running_job_400(self, client):
        job_id = client.explore(models=["LeNet"], strategy="exhaustive",
                                space=SMALL_SPACE)
        with pytest.raises(ServiceError) as err:
            client.resume(job_id)
        assert err.value.status == 400
        client.wait(job_id, timeout=180)


class TestStreaming:
    def test_explore_stream_checkpoints_then_end(self, client):
        job_id = client.explore(models=["LeNet"], strategy="exhaustive",
                                space=SMALL_SPACE, step_evals=1)
        events = list(client.stream(job_id))
        kinds = [e.get("event") for e in events]
        assert kinds[-1] == "end"
        assert set(kinds[:-1]) == {"checkpoint"}
        assert len(kinds) >= 2  # at least one step before the end
        for event in events[:-1]:
            assert event["progress"]["points_evaluated"] >= 0
            assert event["checkpoint"]["rows"] is not None
        final = events[-1]["job"]
        assert final["status"] == "done"
        assert final["id"] == job_id
        # the stream's terminal snapshot matches a regular poll
        assert client.job(job_id)["result"] == final["result"]

    def test_batch_stream_yields_per_request_results(self, client):
        requests = [{"kernel": "gemm", "array": [n, n]}
                    for n in (2, 3, 4)]
        job_id = client.batch(requests)
        events = list(client.stream(job_id))
        results = [e for e in events if e.get("event") == "result"]
        assert len(results) == len(requests)
        assert {r["result"]["spec_hash"] for r in results} \
            == {r["spec_hash"]
                for r in events[-1]["job"]["result"]["results"]}
        assert [e.get("event") for e in events][-1] == "end"
        assert sorted(r["done"] for r in results) == [1, 2, 3]

    def test_stream_of_finished_job_replays_and_ends(self, client):
        job_id = client.batch([dict(TINY)])
        client.wait(job_id, timeout=180)
        events = list(client.stream(job_id))
        assert events[-1]["event"] == "end"
        assert events[-1]["job"]["status"] == "done"

    def test_stream_checkpoint_opt_out(self, client):
        job_id = client.explore(models=["LeNet"], strategy="exhaustive",
                                space=SMALL_SPACE, step_evals=1)
        events = list(client.stream(job_id, checkpoint=False))
        for event in events[:-1]:
            assert "checkpoint" not in event
        assert "checkpoint" not in events[-1]["job"]

    def test_stream_unknown_job_404(self, client):
        with pytest.raises(ServiceError) as err:
            list(client.stream("explore-999-nope"))
        assert err.value.status == 404

    def test_stream_is_chunked_ndjson(self, server, client):
        job_id = client.batch([dict(TINY)])
        client.wait(job_id, timeout=180)
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=30)
        try:
            conn.request("GET", f"/jobs/{job_id}/stream")
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Transfer-Encoding") == "chunked"
            assert response.getheader("Content-Type") \
                == "application/x-ndjson"
            assert response.getheader("Connection") == "close"
            for line in response:
                if line.strip():
                    json.loads(line.decode())
        finally:
            conn.close()

    def test_abandoned_stream_frees_the_server(self, server, client):
        """Closing a stream early must not wedge the server or the
        job."""
        job_id = client.explore(models=["LeNet"], strategy="anneal",
                                max_evals=6, seed=2, space=SMALL_SPACE,
                                step_evals=1)
        stream = client.stream(job_id)
        next(stream)
        stream.close()  # abandon mid-stream
        final = client.wait(job_id, timeout=180)
        assert final["status"] == "done"
        assert client.health()["ok"]


class TestKeepAlive:
    def test_connection_reuse(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=10)
        try:
            for _ in range(3):
                conn.request("GET", "/healthz")
                response = conn.getresponse()
                assert response.status == 200
                json.loads(response.read().decode())
        finally:
            conn.close()
