"""Docs cannot drift: the CLI reference must cover the live argparse
tree, and the markdown files must not contain dangling local links."""

import argparse
import pathlib
import re

import pytest

from repro.cli import build_parser

ROOT = pathlib.Path(__file__).resolve().parent.parent
CLI_DOC = ROOT / "docs" / "cli.md"
DOC_FILES = [ROOT / "README.md",
             *sorted((ROOT / "docs").glob("*.md"))]


def _subparsers(parser: argparse.ArgumentParser):
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            yield from action.choices.items()


def _collect_cli_surface():
    """(subcommand, option-or-positional) pairs of the whole tree."""
    surface = []
    for name, sub in _subparsers(build_parser()):
        surface.append((name, None))
        for action in sub._actions:
            if isinstance(action, argparse._HelpAction):
                continue
            if action.option_strings:
                longest = max(action.option_strings, key=len)
                surface.append((name, longest))
            else:
                surface.append((name, action.dest))
    return surface


class TestCliDocSync:
    def test_doc_exists(self):
        assert CLI_DOC.is_file()

    @pytest.mark.parametrize(
        "command,token", _collect_cli_surface(),
        ids=[f"{c}:{t or '<command>'}" for c, t in _collect_cli_surface()])
    def test_every_command_and_flag_documented(self, command, token):
        text = CLI_DOC.read_text()
        assert f"repro {command}" in text, \
            f"subcommand {command!r} missing from docs/cli.md"
        if token is not None:
            needle = token if token.startswith("-") else f"`{token}`"
            assert needle in text, \
                f"{command}: {token!r} missing from docs/cli.md"

    def test_no_phantom_flags_documented(self):
        """Every `--flag` mentioned in the doc exists somewhere in the
        argparse tree (catches docs for removed options)."""
        real = {opt for _, sub in _subparsers(build_parser())
                for action in sub._actions
                for opt in action.option_strings}
        documented = set(re.findall(r"(?<![-\w])--[a-z][a-z-]+",
                                    CLI_DOC.read_text()))
        assert documented <= real, \
            f"docs/cli.md documents unknown flags: {documented - real}"


LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


class TestMarkdownLinks:
    @pytest.mark.parametrize("path", DOC_FILES,
                             ids=[p.name for p in DOC_FILES])
    def test_local_links_resolve(self, path):
        assert path.is_file()
        broken = []
        for target in LINK.findall(path.read_text()):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            local = target.split("#", 1)[0]
            if not local:
                continue  # pure in-page anchor
            if not (path.parent / local).exists():
                broken.append(target)
        assert not broken, f"{path.name}: broken local links {broken}"

    def test_readme_links_docs(self):
        text = (ROOT / "README.md").read_text()
        assert "docs/architecture.md" in text
        assert "docs/cli.md" in text
