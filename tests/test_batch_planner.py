"""The phase-aware batch planner.

``BatchEngine.generate_many`` plans each batch as a DAG over phase
keys: requests group by ``design_key``, one leader per distinct
scheduled design fans out, and backend/module variants are emitted
in-process from the leader's shared phase records.  These tests pin
down the planner's core contract with randomized batches:

* exactly **one schedule phase per distinct design_key** — counted
  through the process-global metrics registry, not inferred from
  timings;
* planned results are **byte-identical** to the unplanned baseline
  (``plan=False``), timing fields aside;
* :meth:`BatchEngine.plan` is a faithful dry run of what
  ``generate_many`` then executes, and never perturbs cache stats.
"""

import random

from repro.obs import get_registry
from repro.serialize import canonical_dumps
from repro.service import (BatchEngine, BatchPlan, DesignCache,
                           ServerThread, ServiceClient)
from repro.service.spec import DesignRequest

# Small scheduling-distinct designs (design_key varies with the array)
# crossed with emission-only variations (design_key does not vary).
ARRAYS = [(2, 2), (2, 3), (3, 2), (3, 3)]
BACKENDS = ["verilog", "hls_c"]
MODULES = ["lego_top", "alt_top"]


def record_identity(record: dict) -> str:
    """Canonical bytes of a result record minus its timing fields."""
    out = {k: v for k, v in record.items()
           if k not in ("elapsed_s", "phases")}
    return canonical_dumps(out)


def schedule_count() -> float:
    """Schedule-phase executions so far, process-wide (pool workers
    merge their deltas into the same registry)."""
    return get_registry().value("repro_phase_seconds", phase="schedule")


def random_batch(rng: random.Random, n: int) -> list[DesignRequest]:
    """A batch mixing exact duplicates with backend/module-only
    variants of a handful of scheduled designs."""
    return [DesignRequest(kernel="gemm", dataflows=("KJ",),
                          array=rng.choice(ARRAYS),
                          backend=rng.choice(BACKENDS),
                          module=rng.choice(MODULES))
            for _ in range(n)]


class TestOneSchedulePerDesign:
    def test_randomized_batches(self, tmp_path):
        rng = random.Random(20250807)
        for trial in range(3):
            engine = BatchEngine(
                cache=DesignCache(root=tmp_path / f"c{trial}"))
            batch = random_batch(rng, rng.randrange(6, 18))
            distinct_designs = {r.design_key() for r in batch}
            before = schedule_count()
            results = engine.generate_many(batch)
            assert schedule_count() - before == len(distinct_designs)
            assert all(r.ok for r in results)
            assert len(results) == len(batch)
            # results come back in input order
            for req, res in zip(batch, results):
                assert res.spec_hash == req.spec_hash()

    def test_planner_counters(self, tmp_path):
        engine = BatchEngine(cache=DesignCache(root=tmp_path / "c"))
        batch = [DesignRequest(kernel="gemm", dataflows=("KJ",),
                               array=(2, 2), backend=b)
                 for b in BACKENDS]
        reg = get_registry()
        groups0 = reg.value("repro_planner_groups_total")
        lead0 = reg.value("repro_planner_requests_total", role="leader")
        var0 = reg.value("repro_planner_requests_total", role="variant")
        engine.generate_many(batch)
        assert reg.value("repro_planner_groups_total") - groups0 == 1
        assert reg.value("repro_planner_requests_total",
                         role="leader") - lead0 == 1
        assert reg.value("repro_planner_requests_total",
                         role="variant") - var0 == 1

    def test_warm_batch_plans_nothing(self, tmp_path):
        engine = BatchEngine(cache=DesignCache(root=tmp_path / "c"))
        batch = random_batch(random.Random(7), 8)
        engine.generate_many(batch)
        before = schedule_count()
        again = engine.generate_many(batch)
        assert schedule_count() == before
        assert all(r.from_cache for r in again)


class TestByteIdentity:
    def test_planned_equals_unplanned(self, tmp_path):
        rng = random.Random(99)
        batch = random_batch(rng, 12)
        planned = BatchEngine(
            cache=DesignCache(root=tmp_path / "planned"))
        baseline = BatchEngine(
            cache=DesignCache(root=tmp_path / "baseline"))
        a = planned.generate_many(batch, plan=True)
        b = baseline.generate_many(batch, plan=False)
        for ra, rb in zip(a, b):
            assert record_identity(ra.to_record()) == \
                record_identity(rb.to_record())

    def test_unplanned_schedules_once_per_cold_spec(self, tmp_path):
        """The baseline the planner beats: plan=False pays one pipeline
        run per unique cold spec (the serial live tier still shares the
        ADG/design within the run, but every spec runs end to end)."""
        engine = BatchEngine(cache=DesignCache(root=tmp_path / "c"))
        batch = [DesignRequest(kernel="gemm", dataflows=("KJ",),
                               array=(2, 2), backend=b)
                 for b in BACKENDS]
        results = engine.generate_many(batch, plan=False)
        assert all(r.ok for r in results)
        assert len({r.spec_hash for r in results}) == 2


class TestDryRunPlan:
    def test_plan_matches_execution(self, tmp_path):
        rng = random.Random(4242)
        engine = BatchEngine(cache=DesignCache(root=tmp_path / "c"))
        batch = random_batch(rng, 15)
        plan = engine.plan(batch)
        assert isinstance(plan, BatchPlan)
        hashes = {r.spec_hash() for r in batch}
        designs = {r.design_key() for r in batch}
        assert plan.n_requests == len(batch)
        assert plan.n_unique == len(hashes)
        assert plan.n_duplicates == len(batch) - len(hashes)
        assert plan.n_cached == 0
        assert plan.n_schedules == len(designs)
        assert plan.n_cold == len(hashes)
        before = schedule_count()
        engine.generate_many(batch)
        assert schedule_count() - before == plan.n_schedules

    def test_plan_sees_cache_hits_without_touching_stats(self, tmp_path):
        engine = BatchEngine(cache=DesignCache(root=tmp_path / "c"))
        batch = random_batch(random.Random(5), 10)
        engine.generate_many(batch)
        stats = engine.cache.stats.as_dict()
        plan = engine.plan(batch)
        assert plan.n_cached == plan.n_unique
        assert plan.n_cold == 0 and plan.n_schedules == 0
        assert engine.cache.stats.as_dict() == stats

    def test_group_membership(self):
        engine = BatchEngine(cache=None)
        reqs = [DesignRequest(kernel="gemm", dataflows=("KJ",),
                              array=(2, 2), backend=b) for b in BACKENDS]
        # cacheless: nothing to share phase records through, so every
        # request leads a group of one
        plan = engine.plan(reqs)
        assert plan.n_schedules == 2 and plan.n_variants == 0

    def test_summary_and_dict(self, tmp_path):
        engine = BatchEngine(cache=DesignCache(root=tmp_path / "c"))
        batch = [DesignRequest(kernel="gemm", dataflows=("KJ",),
                               array=(2, 2), backend=b)
                 for b in BACKENDS] * 2
        plan = engine.plan(batch)
        d = plan.to_dict()
        assert d == {"n_requests": 4, "n_unique": 2, "n_duplicates": 2,
                     "n_cached": 0, "n_cold": 2, "n_schedules": 1,
                     "n_variants": 1}
        text = plan.summary()
        assert "4 requests" in text and "1 design groups" in text


class TestServedPlan:
    def test_batch_job_carries_plan(self, tmp_path):
        handle = ServerThread(BatchEngine(
            cache=DesignCache(root=tmp_path / "cache"))).start()
        try:
            with ServiceClient.from_url(handle.url) as client:
                specs = [{"kernel": "gemm", "dataflows": ["KJ"],
                          "array": [2, 2], "backend": b}
                         for b in BACKENDS]
                job_id = client.batch(specs)
                job = client.wait(job_id)
                assert job["status"] == "done"
                assert job["plan"]["n_requests"] == 2
                assert job["plan"]["n_schedules"] == 1
                assert job["plan"]["n_variants"] == 1
                assert job["result"]["plan"] == job["plan"]
                summaries = {j["id"]: j for j in client.jobs()}
                assert summaries[job_id]["plan"] == job["plan"]
        finally:
            handle.stop()
