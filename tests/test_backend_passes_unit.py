"""Focused unit tests for delay matching, rewiring, and schedule-coverage
utilities — exercising the passes on hand-built DAGs where the optimal
answer is known in closed form."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import generate, run_backend
from repro.backend.codegen import Design, DataflowConfig
from repro.backend.dag import DAG
from repro.backend.delay_matching import broadcast_sources, delay_match
from repro.backend.rewiring import rewire_broadcasts
from repro.core import kernels
from repro.core.dataflow import Dataflow
from repro.core.frontend import build_adg


def _toy_design(dag: DAG, write_nodes, read_nodes=(), dataflow=None):
    """Wrap a hand-built DAG in a Design with one trivial dataflow."""
    df = dataflow or kernels.gemm_dataflow("KJ", kernels.gemm(4, 4, 4), 2, 2)
    cfg = DataflowConfig(dataflow=df)
    cfg.write_enable = set(write_nodes)
    cfg.read_enable = set(read_nodes)
    from repro.core.frontend import build_adg as _b
    adg = _b([df])
    return Design(adg=adg, dag=dag, configs={df.name: cfg})


class TestDelayMatchingClosedForm:
    def test_unbalanced_diamond(self):
        """Classic diamond: a 2-cycle branch and a 0-cycle branch joining
        at an adder need exactly 2 registers on the short branch."""
        dag = DAG()
        src = dag.add_node("ctrl", width=8)
        slow1 = dag.add_node("add", width=8, pins=("a", "b"))
        slow2 = dag.add_node("add", width=8, pins=("a", "b"))
        join = dag.add_node("add", width=8, pins=("a", "b"))
        sink = dag.add_node("mem_write", width=8, pins=("addr", "data"))
        dag.add_edge(src, slow1)
        dag.add_edge(slow1, slow2)
        dag.add_edge(slow2, join, 0)
        fast = dag.add_edge(src, join, 1)
        dag.add_edge(join, sink, 0)
        dag.add_edge(join, sink, 1)
        design = _toy_design(dag, [sink])
        delay_match(design)
        assert fast.el == 2
        assert sum(e.el for e in dag.edges) == 2

    def test_width_steers_register_placement(self):
        """With a fan-out before the imbalance, registers go on the
        *narrow* signal (Eq. 11 weighs EL by bit-width)."""
        dag = DAG()
        src = dag.add_node("ctrl", width=8)
        wide = dag.add_node("mul", width=32, pins=("a", "b"))
        narrow = dag.add_node("wire", width=4)
        join = dag.add_node("add", width=32, pins=("a", "b"))
        sink = dag.add_node("mem_write", width=32, pins=("addr", "data"))
        dag.add_edge(src, wide, 0)
        dag.add_edge(src, wide, 1)
        dag.add_edge(src, narrow)
        e_wide = dag.add_edge(wide, join, 0)
        e_narrow = dag.add_edge(narrow, join, 1)
        e_narrow.width = 4
        dag.add_edge(join, sink, 0)
        dag.add_edge(join, sink, 1)
        design = _toy_design(dag, [sink])
        delay_match(design)
        # mul has latency 1, wire latency 0: one register needed, and it
        # must land on the 4-bit edge, not the 32-bit one.
        assert e_narrow.el == 1 and e_wide.el == 0

    def test_fifo_absorbs_slack_for_free(self):
        """An imbalance behind a programmable FIFO costs no EL registers:
        the FIFO's physical depth absorbs it."""
        dag = DAG()
        src = dag.add_node("ctrl", width=8)
        stage = dag.add_node("add", width=8, pins=("a", "b"))
        fifo = dag.add_node("fifo", width=8)
        join = dag.add_node("add", width=8, pins=("a", "b"))
        sink = dag.add_node("mem_write", width=8, pins=("addr", "data"))
        dag.add_edge(src, stage)
        dag.add_edge(stage, join, 0)
        dag.add_edge(src, fifo)
        dag.add_edge(fifo, join, 1)
        dag.add_edge(join, sink, 0)
        dag.add_edge(join, sink, 1)
        df = kernels.gemm_dataflow("KJ", kernels.gemm(4, 4, 4), 2, 2)
        design = _toy_design(dag, [sink], dataflow=df)
        design.configs[df.name].fifo_depth[fifo] = 0
        delay_match(design)
        assert sum(e.el for e in dag.edges) == 0
        assert design.configs[df.name].fifo_phys[fifo] == 1


class TestRewiring:
    def test_broadcast_chain_conversion(self):
        wl = kernels.gemm(8, 8, 8)
        df = kernels.gemm_dataflow("KJ", wl, 4, 4, systolic=False)
        design = generate(build_adg([df]))
        delay_match(design, broadcast_virtual_cost=True)
        before = len(broadcast_sources(design))
        n = rewire_broadcasts(design, min_fanout=3)
        assert n > 0, "broadcast designs must yield rewiring opportunities"
        relays = [x for x in design.dag.nodes.values()
                  if x.params.get("role") == "bcast_relay"]
        assert len(relays) >= n

    def test_rewired_design_still_aligns(self):
        wl = kernels.gemm(8, 8, 8)
        df = kernels.gemm_dataflow("KJ", wl, 4, 4, systolic=False)
        design = generate(build_adg([df]))
        delay_match(design, broadcast_virtual_cost=True)
        rewire_broadcasts(design)
        stats = delay_match(design)  # stage 3 must stay feasible
        assert stats["status"] == 0.0


class TestScheduleCoverage:
    def test_exact_cover_gemm(self):
        wl = kernels.gemm(8, 8, 8)
        df = kernels.gemm_dataflow("KJ", wl, 4, 4)
        counts = df.iteration_multiplicity()
        assert df.visits_every_point()
        assert set(counts.values()) == {1}, "no redundant recomputation"

    def test_padded_schedule_overcounts(self):
        """Non-divisible parallelization pads the array; padded lanes
        re-visit in-bounds points or fall outside — multiplicity exposes
        both."""
        wl = kernels.gemm(6, 6, 6)
        df = Dataflow.build(wl, spatial=[("i", 4), ("j", 4)],
                            control=(0, 0), name="padded")
        counts = df.iteration_multiplicity()
        assert len(counts) == 6 * 6 * 6  # still covers everything

    @given(st.sampled_from(["IJ", "IK", "KJ"]),
           st.sampled_from([2, 4]))
    @settings(max_examples=10, deadline=None)
    def test_divisible_schedules_are_exact(self, kind, p):
        wl = kernels.gemm(8, 8, 8)
        df = kernels.gemm_dataflow(kind, wl, p, p)
        counts = df.iteration_multiplicity()
        assert set(counts.values()) == {1}
        assert len(counts) == 512
