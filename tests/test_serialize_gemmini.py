"""Tests for design serialization and the Gemmini template estimate."""

import json

import pytest

from repro.arch.gemmini import GEMMINI_LIKE, gemmini_area_power
from repro.backend import generate, run_backend
from repro.core import kernels
from repro.core.frontend import build_adg
from repro.serialize import design_to_dict, dump_design, load_design_graph


@pytest.fixture(scope="module")
def design():
    wl = kernels.gemm(8, 8, 8)
    dfa = kernels.gemm_dataflow("IJ", wl, 4, 4)
    dfb = kernels.gemm_dataflow("KJ", wl, 4, 4)
    return run_backend(generate(build_adg([dfa, dfb])))


class TestSerialization:
    def test_dict_form_is_json_serializable(self, design):
        blob = json.dumps(design_to_dict(design))
        assert "lego-design-v1" in blob

    def test_roundtrip_graph(self, design, tmp_path):
        path = tmp_path / "design.json"
        dump_design(design, str(path))
        dag, configs = load_design_graph(str(path))
        assert len(dag.nodes) == len(design.dag.nodes)
        assert len(dag.edges) == len(design.dag.edges)
        # Delay-matching results survive.
        orig_el = {e.uid: e.el for e in design.dag.edges}
        assert {e.uid: e.el for e in dag.edges} == orig_el
        assert set(configs) == set(design.configs)

    def test_loaded_graph_emits_same_register_bits(self, design, tmp_path):
        path = tmp_path / "design.json"
        dump_design(design, str(path))
        dag, _configs = load_design_graph(str(path))
        assert dag.pipeline_register_bits() == \
            design.dag.pipeline_register_bits()

    def test_format_validation(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError, match="not a LEGO design"):
            load_design_graph(str(path))

    def test_configs_capture_addrgens(self, design):
        data = design_to_dict(design)
        for name, cfg in data["configs"].items():
            assert cfg["addrgen"], name
            any_ag = next(iter(cfg["addrgen"].values()))
            assert {"rt", "mdt", "offset", "dims"} <= set(any_ag)


class TestGemminiEstimate:
    def test_matched_resources(self):
        est = gemmini_area_power()
        # Same ballpark as the LEGO design with matched resources
        # (Fig. 11's premise: equal resources, different flexibility).
        assert 0.5 < est.area_mm2 < 5.0
        assert 50 < est.power_mw < 1000

    def test_scales_with_macs(self):
        small = gemmini_area_power(n_macs=64)
        big = gemmini_area_power(n_macs=1024)
        assert big.area_mm2 > small.area_mm2
        assert big.power_mw > small.power_mw

    def test_perf_view_is_restricted(self):
        assert GEMMINI_LIKE.dataflows == ("ICOC",)
        assert GEMMINI_LIKE.im2col_conv
        assert not GEMMINI_LIKE.has_ppu
