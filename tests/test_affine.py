"""Unit and property tests for the exact integer affine algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.affine import (AffineMap, box_iter, hermite_normal_form,
                               integer_nullspace, solve_integer)


class TestAffineMap:
    def test_apply(self):
        f = AffineMap.from_arrays([[1, 0], [0, 2]], [1, -1])
        assert list(f([3, 4])) == [4, 7]

    def test_identity(self):
        f = AffineMap.identity(3)
        assert list(f([5, 6, 7])) == [5, 6, 7]

    def test_apply_linear_ignores_bias(self):
        f = AffineMap.from_arrays([[1, 1]], [10])
        assert list(f.apply_linear([2, 3])) == [5]
        assert list(f([2, 3])) == [15]

    def test_compose(self):
        f = AffineMap.from_arrays([[2, 0], [0, 3]], [1, 1])
        g = AffineMap.from_arrays([[1, 1], [1, -1]], [0, 2])
        h = f.compose(g)
        x = np.array([4, 5])
        assert list(h(x)) == list(f(g(x)))

    def test_compose_shape_mismatch(self):
        f = AffineMap.identity(2)
        g = AffineMap.identity(3)
        with pytest.raises(ValueError):
            f.compose(g)

    def test_hstack(self):
        f = AffineMap.from_arrays([[1, 0]], [2])
        g = AffineMap.from_arrays([[0, 5]], [0])
        h = f.hstack(g)
        assert list(h([1, 2, 3, 4])) == [1 + 20 + 2]

    def test_hashable(self):
        a = AffineMap.identity(2)
        b = AffineMap.identity(2)
        assert a == b and hash(a) == hash(b)

    def test_rejects_non_integer(self):
        with pytest.raises(ValueError):
            AffineMap.from_arrays([[0.5, 1.0]])

    def test_accepts_float_integers(self):
        f = AffineMap.from_arrays(np.array([[1.0, 2.0]]))
        assert list(f([1, 1])) == [3]

    def test_is_linear(self):
        assert AffineMap.from_arrays([[1]]).is_linear()
        assert not AffineMap.from_arrays([[1]], [3]).is_linear()


int_matrices = st.integers(min_value=1, max_value=4).flatmap(
    lambda m: st.integers(min_value=1, max_value=4).flatmap(
        lambda n: st.lists(
            st.lists(st.integers(min_value=-6, max_value=6),
                     min_size=n, max_size=n),
            min_size=m, max_size=m)))


class TestHermiteNormalForm:
    @given(int_matrices)
    @settings(max_examples=150, deadline=None)
    def test_hnf_invariants(self, rows):
        a = np.array(rows, dtype=np.int64)
        h, u = hermite_normal_form(a)
        # A @ U == H
        prod = a.astype(object) @ u
        assert (prod == h).all()
        # U unimodular
        det = round(float(np.linalg.det(u.astype(np.float64))))
        assert det in (1, -1)

    def test_simple(self):
        h, u = hermite_normal_form([[2, 4], [4, 8]])
        assert h[0][0] > 0
        assert all(h[r][1] == 0 for r in range(2))


class TestNullspace:
    @given(int_matrices)
    @settings(max_examples=100, deadline=None)
    def test_nullspace_vectors_are_in_kernel(self, rows):
        a = np.array(rows, dtype=np.int64)
        basis = integer_nullspace(a)
        for col in range(basis.shape[1]):
            vec = basis[:, col]
            assert all(v == 0 for v in a.astype(object) @ vec)

    def test_rank_nullity(self):
        a = np.array([[1, 2, 3], [2, 4, 6]], dtype=np.int64)  # rank 1
        basis = integer_nullspace(a)
        assert basis.shape == (3, 2)

    def test_full_rank_has_trivial_nullspace(self):
        assert integer_nullspace(np.eye(3, dtype=np.int64)).shape[1] == 0


class TestSolveInteger:
    def test_unique_solution(self):
        sol = solve_integer([[2, 0], [0, 3]], [4, 9])
        assert sol is not None
        assert list(sol.x0) == [2, 3]

    def test_no_integer_solution(self):
        assert solve_integer([[2]], [3]) is None

    def test_inconsistent(self):
        assert solve_integer([[1, 1], [1, 1]], [0, 1]) is None

    def test_underdetermined_general_solution(self):
        sol = solve_integer([[1, 1]], [5])
        assert sol is not None
        x = sol.sample([7])
        assert x[0] + x[1] == 5

    @given(int_matrices,
           st.lists(st.integers(min_value=-4, max_value=4), min_size=1,
                    max_size=4))
    @settings(max_examples=150, deadline=None)
    def test_solution_satisfies_system(self, rows, xs):
        a = np.array(rows, dtype=np.int64)
        x = np.array((xs * 4)[:a.shape[1]], dtype=np.int64)
        b = a @ x  # guaranteed solvable
        sol = solve_integer(a, b)
        assert sol is not None
        assert all(v == w for v, w in zip(a.astype(object) @ sol.x0, b))

    @given(int_matrices)
    @settings(max_examples=60, deadline=None)
    def test_none_only_when_truly_unsolvable(self, rows):
        a = np.array(rows, dtype=np.int64)
        b = np.zeros(a.shape[0], dtype=np.int64)
        sol = solve_integer(a, b)  # homogeneous always solvable
        assert sol is not None
        assert all(v == 0 for v in a.astype(object) @ sol.x0)


class TestBoxIter:
    def test_counts(self):
        pts = list(box_iter([(-1, 1), (0, 2)]))
        assert len(pts) == 9

    def test_empty_box(self):
        pts = list(box_iter([]))
        assert len(pts) == 1 and pts[0].size == 0
