"""Self-healing fleet behavior end to end: replica failover with zero
client-visible errors, breaker re-close after a backend revives on the
same port, and mid-stream resume (replay-then-follow) — against both a
deterministic truncating fake server and a real server with an
injected ``stream-event`` connection drop."""

import contextlib
import json
import socket
import threading
import time

import pytest

from repro.obs import get_registry
from repro.obs.history import snapshot_children
from repro.service import (BatchEngine, DesignCache, RouterThread,
                           ServerThread, ServiceClient, ServiceError,
                           reset_faults)
from repro.service.server import _request_from_body

TINY = {"kernel": "gemm", "dataflows": ["KJ"], "array": [2, 2]}
TINY2 = {"kernel": "gemm", "dataflows": ["KJ"], "array": [3, 3]}


@pytest.fixture(autouse=True)
def _clean_faults():
    reset_faults()
    yield
    reset_faults()


def _shard_of(spec: dict, n: int = 2) -> int:
    return int(_request_from_body(spec).spec_hash()[:2], 16) % n


def _specs_for_shard(index: int, count: int, n: int = 2) -> list[dict]:
    out = []
    for a in range(2, 40):
        for b in range(2, 40):
            spec = {"kernel": "gemm", "array": [a, b]}
            if _shard_of(spec, n) == index:
                out.append(spec)
                if len(out) == count:
                    return out
    raise AssertionError("design space too small for shard sampling")


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _retries_total() -> float:
    snapshot = get_registry().snapshot()
    return sum(value for _labels, value in snapshot_children(
        snapshot, "repro_router_retries_total"))


class TestReplicaFailover:
    def test_dead_primary_fails_over_to_replica(self, tmp_path):
        backends = [
            ServerThread(BatchEngine(
                cache=DesignCache(root=tmp_path / f"s{i}"))).start()
            for i in range(2)]
        # prober off: the request path alone must fail over
        router = RouterThread([b.url for b in backends], replicas=2,
                              probe_interval_s=0,
                              retry_budget_s=5.0).start()
        try:
            with ServiceClient.from_url(router.url) as c:
                spec0 = _specs_for_shard(0, 1)[0]
                spec1 = _specs_for_shard(1, 1)[0]
                assert c.generate(spec0)["ok"]
                assert c.generate(spec1)["ok"]
                before = _retries_total()
                backends[0].stop()
                # shard 0's primary is gone: its replica answers (cache
                # miss there — regenerated, not 502)
                assert c.generate(spec0)["ok"]
                assert c.generate(spec1)["ok"]
                assert _retries_total() > before
                health = c.health()
                assert health["ok"] is False
                assert health["status"] == "degraded"
                assert health["replicas"] == 2
        finally:
            router.stop()
            for backend in backends:
                with contextlib.suppress(Exception):
                    backend.stop()

    def test_replica_owns_consecutive_range(self, tmp_path):
        backends = [
            ServerThread(BatchEngine(
                cache=DesignCache(root=tmp_path / f"s{i}"))).start()
            for i in range(3)]
        router = RouterThread([b.url for b in backends], replicas=2,
                              probe_interval_s=0).start()
        try:
            assert router.server.owners_of(0) == [0, 1]
            assert router.server.owners_of(2) == [2, 0]
        finally:
            router.stop()
            for backend in backends:
                backend.stop()


class TestBreakerRecovery:
    def test_backend_revival_recloses_breaker(self, tmp_path):
        port = _free_port()
        root = tmp_path / "cache"
        backend = ServerThread(BatchEngine(
            cache=DesignCache(root=root)), port=port).start()
        router = RouterThread([f"http://127.0.0.1:{port}"],
                              probe_interval_s=0.2,
                              retry_budget_s=0.4).start()
        try:
            with ServiceClient.from_url(router.url) as c:
                assert c.generate(TINY)["ok"]
                backend.stop()
                with pytest.raises(ServiceError) as err:
                    c.generate(TINY)
                assert err.value.status == 502
                deadline = time.monotonic() + 10
                while (time.monotonic() < deadline
                       and c.health()["status"] != "down"):
                    time.sleep(0.05)
                assert c.health()["status"] == "down"
                # revive on the same port, same cache: the prober's
                # next success closes the breaker (cooldowns are capped
                # at the probe interval)
                backend = ServerThread(BatchEngine(
                    cache=DesignCache(root=root)), port=port).start()
                deadline = time.monotonic() + 10
                while (time.monotonic() < deadline
                       and c.health()["status"] != "up"):
                    time.sleep(0.05)
                health = c.health()
                assert health["status"] == "up"
                assert health["backends"][0]["breaker"]["state"] == \
                    "closed"
                assert c.generate(TINY)["from_cache"]
        finally:
            router.stop()
            with contextlib.suppress(Exception):
                backend.stop()


class _TruncatingStreamServer(threading.Thread):
    """A fake stream endpoint honoring the server's replay contract:
    every connection replays the event list from the start; the first
    connection truncates after two events (mid-stream death)."""

    def __init__(self, events: list[dict]):
        super().__init__(daemon=True)
        self.events = events
        self.connections = 0
        self.sock = socket.socket()
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(8)
        self.url = f"http://127.0.0.1:{self.sock.getsockname()[1]}"
        self._halt = threading.Event()

    def run(self):
        self.sock.settimeout(0.1)
        while not self._halt.is_set():
            try:
                conn, _ = self.sock.accept()
            except TimeoutError:
                continue
            except OSError:
                return
            with conn:
                try:
                    conn.settimeout(1.0)
                    request = b""
                    while b"\r\n\r\n" not in request:
                        chunk = conn.recv(65536)
                        if not chunk:
                            break
                        request += chunk
                    self.connections += 1
                    conn.sendall(
                        b"HTTP/1.1 200 OK\r\n"
                        b"Content-Type: application/x-ndjson\r\n"
                        b"Transfer-Encoding: chunked\r\n"
                        b"Connection: close\r\n\r\n")
                    complete = self.connections > 1
                    count = len(self.events) if complete else 2
                    for event in self.events[:count]:
                        data = json.dumps(event).encode() + b"\n"
                        conn.sendall(b"%x\r\n" % len(data) + data
                                     + b"\r\n")
                    if complete:
                        conn.sendall(b"0\r\n\r\n")
                    # else: close without the terminal chunk — the
                    # client sees a truncated chunked stream
                except OSError:
                    pass

    def stop(self):
        self._halt.set()
        self.sock.close()
        self.join(timeout=5)


class TestStreamResume:
    def test_replay_then_follow_skips_seen_events(self):
        events = ([{"event": "result", "n": i} for i in range(4)]
                  + [{"event": "end"}])
        fake = _TruncatingStreamServer(events)
        fake.start()
        try:
            with ServiceClient.from_url(fake.url) as c:
                got = list(c.stream("whatever"))
            # exactly one resume, no duplicated or lost events
            assert fake.connections == 2
            assert got == events
        finally:
            fake.stop()

    def test_stream_survives_injected_drop(self, tmp_path):
        server = ServerThread(BatchEngine(
            cache=DesignCache(root=tmp_path / "cache"))).start()
        try:
            with ServiceClient.from_url(server.url) as c:
                job = c.batch([TINY, TINY2])
                c.wait(job, timeout=180)
                c.request("POST", "/debug/faults",
                          {"site": "server:stream-event", "kind": "drop",
                           "count": 1})
                got = list(c.stream(job))
                assert [e.get("event") for e in got].count("end") == 1
                assert got[-1]["event"] == "end"
                hashes = [e["result"]["spec_hash"] for e in got
                          if e.get("event") == "result"]
                assert len(hashes) == len(set(hashes)) == 2
        finally:
            server.stop()
