"""LEGO front end: from dataflows to the Architecture Description Graph.

Orchestrates §IV end to end:

1. per (dataflow, tensor): enumerate reuse solutions (Eq. 6/7);
2. per tensor: minimum spanning arborescence over the reuse edges with a
   virtual memory root — FUs fed by the root become *data nodes*;
   output tensors are solved on the reversed graph (partial results flow
   toward the committing FU);
3. multi-dataflow fusion: re-plan direct interconnections with the BFS
   heuristic of Fig. 5 so dataflows share physical links;
4. memory analysis: conflict-free bank shapes per tensor, fused across
   dataflows.

The result is an :class:`~repro.core.adg.ADG`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .adg import ADG, ADGConnection, ADGDataNode, MemoryLayout
from .dataflow import Dataflow
from .fusion import (condensed_delay_tree, partition_chains,
                     plan_direct_interconnects)
from .interconnect import (ReuseEdge, ReuseKind, ReuseSolution,
                           build_reuse_edges, find_reuse_solutions)
from .memory_analysis import analyze_banks, fuse_layouts
from .mst import spanning_forest_with_memory_root

__all__ = ["FrontendConfig", "build_adg"]

Coord = tuple[int, ...]


@dataclass(frozen=True)
class FrontendConfig:
    """Tunables of the front-end analysis.

    ``max_dist`` is the spatial search window ``d_S`` of Eq. 6/7.
    ``memory_fetch_cost`` is the MST cost of feeding an FU directly from
    memory (address-generator + switch port, in register equivalents) —
    reuse edges cheaper than this win; absurdly deep FIFOs lose.
    ``fuse_heuristic`` toggles §IV-C planning (False = naive merge, the
    Table V baseline).
    """

    max_dist: int = 1
    memory_fetch_cost: int = 16
    fuse_heuristic: bool = True


def build_adg(dataflows: list[Dataflow],
              config: FrontendConfig | None = None) -> ADG:
    """Run the complete front end over one or more dataflows.

    All dataflows must share the FU array shape (they time-share the same
    physical array; §IV-C).
    """
    if not dataflows:
        raise ValueError("need at least one dataflow")
    config = config or FrontendConfig()
    fu_shape = dataflows[0].rs
    for df in dataflows[1:]:
        if df.rs != fu_shape:
            raise ValueError(
                f"fused dataflows must share the FU array shape; "
                f"got {df.rs} vs {fu_shape}")

    # ---- per-dataflow analysis + MST ------------------------------------------
    per_df_solutions: dict[tuple[str, str], list[ReuseSolution]] = {}
    per_df_tree: dict[tuple[str, str], list[tuple[Coord, Coord, ReuseEdge]]] = {}
    per_df_roots: dict[tuple[str, str], list[Coord]] = {}
    stationary: dict[tuple[str, str], ReuseSolution] = {}

    for df in dataflows:
        for acc in df.workload.tensors:
            tensor = acc.name
            sols = find_reuse_solutions(df, tensor, max_dist=config.max_dist)
            per_df_solutions[(df.name, tensor)] = sols
            for sol in sols:
                if sol.kind == ReuseKind.STATIONARY:
                    key = (df.name, tensor)
                    if key not in stationary or sol.depth < stationary[key].depth:
                        stationary[key] = sol
            edges = build_reuse_edges(df, sols)
            coords = df.fu_coords()

            def weight(e):
                # Partially-covering delay connections still need a memory
                # fallback for boundary timestamps; charge that fraction.
                uncovered = 1.0 - e.solution.coverage(df.rt)
                return float(e.cost) + uncovered * config.memory_fetch_cost

            if acc.is_output:
                # Partial results flow src -> dst; solve the arborescence on
                # the reversed graph so every FU drains to a committing FU.
                arcs = [(e.dst, e.src, weight(e), e) for e in edges]
            else:
                arcs = [(e.src, e.dst, weight(e), e) for e in edges]
            tree, roots = spanning_forest_with_memory_root(
                coords, arcs, memory_cost=float(config.memory_fetch_cost))
            if acc.is_output:
                tree = [(dst, src, payload) for (src, dst, payload) in tree]
            per_df_tree[(df.name, tensor)] = tree
            per_df_roots[(df.name, tensor)] = roots

    # ---- fusion of direct interconnections (§IV-C) ----------------------------
    connections: dict[tuple, ADGConnection] = {}
    data_nodes: dict[tuple[str, Coord], ADGDataNode] = {}

    tensor_accs = {}
    for df in dataflows:
        for acc in df.workload.tensors:
            tensor_accs.setdefault(acc.name, acc)

    for tensor, acc in tensor_accs.items():
        using = [df for df in dataflows
                 if any(t.name == tensor for t in df.workload.tensors)]
        multi = len(using) > 1 and config.fuse_heuristic
        if multi:
            _fuse_tensor(tensor, acc.is_output, using, per_df_solutions,
                         per_df_tree, per_df_roots, connections, data_nodes,
                         float(config.memory_fetch_cost))
        else:
            # Single dataflow, or the Table-V baseline: merge each
            # dataflow's MST links as-is.  Without the heuristic, links of
            # different dataflows stay physically separate (naive fusion
            # with multiplexers) — sharing is exactly what §IV-C adds.
            for df in using:
                _adopt_tree(tensor, acc.is_output, df,
                            per_df_tree[(df.name, tensor)],
                            per_df_roots[(df.name, tensor)],
                            connections, data_nodes,
                            share_links=len(using) == 1)

    # ---- boundary fallbacks -----------------------------------------------------
    # Delay connections do not cover loop-boundary timestamps (their data
    # would come from out-of-range source timestamps); those FU/timestamp
    # pairs are served by the memory system, so the affected FUs need a
    # gated memory port (input side: fetch fallback; output side: the
    # source commits partials that no future FU will extend).
    for conn in connections.values():
        acc = tensor_accs[conn.tensor]
        for name in list(conn.dataflows):
            dt = conn.dt_for(name)
            if dt is None:
                continue
            fu = conn.src if acc.is_output else conn.dst
            key = (conn.tensor, fu)
            node = data_nodes.get(key)
            if node is None:
                node = ADGDataNode(conn.tensor, fu, acc.is_output)
                data_nodes[key] = node
            if name not in node.dataflows:
                node.dataflows.add(name)
                node.fallback_of.add(name)

    # ---- memory analysis (§IV-D) ----------------------------------------------
    memory: dict[str, MemoryLayout] = {}
    for tensor in tensor_accs:
        layouts = []
        for df in dataflows:
            if not any(t.name == tensor for t in df.workload.tensors):
                continue
            nodes = [n.fu for n in data_nodes.values()
                     if n.tensor == tensor and df.name in n.dataflows]
            layouts.append(analyze_banks(df, tensor, nodes))
        memory[tensor] = fuse_layouts(layouts)

    workloads = []
    for df in dataflows:
        if df.workload not in workloads:
            workloads.append(df.workload)
    return ADG(
        fu_shape=fu_shape,
        dataflows=list(dataflows),
        connections=list(connections.values()),
        data_nodes=list(data_nodes.values()),
        memory=memory,
        stationary=stationary,
        workloads=workloads,
    )


def _adopt_tree(tensor: str, is_output: bool, df: Dataflow,
                tree: list[tuple[Coord, Coord, ReuseEdge]],
                roots: list[Coord],
                connections: dict[tuple, ADGConnection],
                data_nodes: dict[tuple[str, Coord], ADGDataNode],
                share_links: bool = True) -> None:
    """Merge one dataflow's MST result into the fused connection set.

    With ``share_links=False`` each dataflow instantiates its own physical
    links — and its own memory ports/address generators — even for
    identical endpoints (the naive glue-two-designs-with-muxes baseline
    the paper's §IV-C improves on).
    """
    for src, dst, edge in tree:
        key = (tensor, src, dst) if share_links else (tensor, src, dst, df.name)
        conn = connections.get(key)
        depth = edge.solution.depth
        if conn is None:
            conn = ADGConnection(tensor, src, dst, depth, edge.solution.kind)
            connections[key] = conn
        else:
            conn.depth = max(conn.depth, depth)
            if edge.solution.kind == ReuseKind.DELAY:
                conn.kind = ReuseKind.DELAY
        conn.dataflows.add(df.name)
        conn.depth_by_dataflow[df.name] = depth
        conn.dt_by_dataflow[df.name] = edge.solution.dt
    for fu in roots:
        key = (tensor, fu) if share_links else (tensor, fu, df.name)
        node = data_nodes.get(key)
        if node is None:
            node = ADGDataNode(tensor, fu, is_output)
            data_nodes[key] = node
        node.dataflows.add(df.name)


def _fuse_tensor(tensor: str, is_output: bool, dataflows: list[Dataflow],
                 per_df_solutions, per_df_tree, per_df_roots,
                 connections, data_nodes,
                 memory_fetch_cost: float) -> None:
    """Fuse one tensor's interconnections across dataflows (Fig. 5)."""
    existing_nodes = {n.fu for n in data_nodes.values() if n.tensor == tensor}
    all_chains = []
    for df in dataflows:
        sols = per_df_solutions[(df.name, tensor)]
        delay_sinks = {dst if not is_output else src
                       for (src, dst, e) in per_df_tree[(df.name, tensor)]
                       if e.solution.kind == ReuseKind.DELAY}
        all_chains.extend(partition_chains(df, tensor, sols, delay_sinks))
    plan = plan_direct_interconnects(all_chains, existing_nodes,
                                     is_output=is_output)

    # Adopt planned direct links; depth under a dataflow = |control skew|.
    df_by_name = {df.name: df for df in dataflows}
    for (src, dst), users in plan.links.items():
        key = (tensor, src, dst)
        conn = connections.get(key)
        if conn is None:
            conn = ADGConnection(tensor, src, dst, 0, ReuseKind.DIRECT)
            connections[key] = conn
        for name in users:
            df = df_by_name[name]
            ds = tuple(d - s for s, d in zip(src, dst))
            skew = abs(df.delta_t_bias(ds))
            conn.depth = max(conn.depth, skew)
            conn.dataflows.add(name)
            conn.depth_by_dataflow[name] = skew
            conn.dt_by_dataflow[name] = (0,) * len(df.rt)

    # Re-add delay interconnections between chain roots, per dataflow, via
    # the condensed arborescence (§IV-C last paragraph).
    for df in dataflows:
        delay_edges, roots = condensed_delay_tree(
            df, tensor, is_output, all_chains, plan,
            per_df_solutions[(df.name, tensor)], memory_fetch_cost)
        for u, v, sol in delay_edges:
            key = (tensor, u, v)
            conn = connections.get(key)
            if conn is None:
                conn = ADGConnection(tensor, u, v, sol.depth, ReuseKind.DELAY)
                connections[key] = conn
            else:
                conn.depth = max(conn.depth, sol.depth)
                conn.kind = ReuseKind.DELAY
            conn.dataflows.add(df.name)
            conn.depth_by_dataflow[df.name] = sol.depth
            conn.dt_by_dataflow[df.name] = sol.dt
        for fu in roots:
            key = (tensor, fu)
            node = data_nodes.get(key)
            if node is None:
                node = ADGDataNode(tensor, fu, is_output)
                data_nodes[key] = node
            node.dataflows.add(df.name)
