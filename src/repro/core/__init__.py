"""LEGO core: relation-centric representation and front-end analyses."""

from .affine import AffineMap, integer_nullspace, solve_integer
from .dataflow import Dataflow, scalar_to_timestamp, timestamp_to_scalar
from .workload import BodyOp, TensorAccess, Workload

__all__ = [
    "AffineMap", "integer_nullspace", "solve_integer",
    "Dataflow", "timestamp_to_scalar", "scalar_to_timestamp",
    "Workload", "TensorAccess", "BodyOp",
]
