"""Workload representation: tensor operations as loop nests (paper §III-A).

A tensor workload is described *hardware-agnostically* by

* the computation iteration domain ``I`` (named dimensions with bounds),
* one affine *data mapping* per tensor  ``d = M_{I->D} @ i + b``
  (Definition 1 in the paper), and
* the computation in the loop body, expressed over a tiny op vocabulary
  that maps one-to-one onto backend primitives (``mul``, ``add``, ``shl``,
  ``mac`` …).

Example (GEMM ``Y[i,j] += X[i,k] * W[k,j]``)::

    wl = Workload(
        name="gemm",
        dims=("i", "j", "k"),
        bounds={"i": 64, "j": 64, "k": 64},
        tensors=(
            TensorAccess("X", AffineMap.from_arrays([[1,0,0],[0,0,1]])),
            TensorAccess("W", AffineMap.from_arrays([[0,0,1],[0,1,0]])),
            TensorAccess("Y", AffineMap.from_arrays([[1,0,0],[0,1,0]]),
                         is_output=True),
        ),
        body=(BodyOp("mul", "p", ("X", "W")), BodyOp("add_acc", "Y", ("p",))),
    )
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .affine import AffineMap

__all__ = ["TensorAccess", "BodyOp", "Workload"]

_VALID_OPS = {"mul", "add", "sub", "shl", "shr", "add_acc", "max_acc", "pass"}


@dataclass(frozen=True)
class TensorAccess:
    """A tensor operand and its affine data mapping from the iteration domain."""

    name: str
    mapping: AffineMap
    is_output: bool = False
    dtype_bits: int = 8

    @property
    def rank(self) -> int:
        return self.mapping.n_out


@dataclass(frozen=True)
class BodyOp:
    """One operation of the loop body.

    ``dst`` names either an intermediate value or an output tensor.
    ``srcs`` name tensors, intermediates, or previously-defined values.
    ``add_acc`` accumulates into an output tensor (``Y += src``);
    ``max_acc`` is the max-reduction analogue (used by pooling/softmax).
    """

    op: str
    dst: str
    srcs: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.op not in _VALID_OPS:
            raise ValueError(f"unknown body op {self.op!r}; valid: {sorted(_VALID_OPS)}")


@dataclass(frozen=True)
class Workload:
    """A tensor operation written as a (par)for-loop nest over domain ``I``."""

    name: str
    dims: tuple[str, ...]
    bounds: dict[str, int] = field(hash=False)
    tensors: tuple[TensorAccess, ...] = ()
    body: tuple[BodyOp, ...] = ()

    def __post_init__(self) -> None:
        if len(set(self.dims)) != len(self.dims):
            raise ValueError("iteration dims must be unique")
        missing = [d for d in self.dims if d not in self.bounds]
        if missing:
            raise ValueError(f"bounds missing for dims {missing}")
        for d, bound in self.bounds.items():
            if d not in self.dims:
                raise ValueError(f"bound given for unknown dim {d!r}")
            if bound <= 0:
                raise ValueError(f"bound for {d!r} must be positive, got {bound}")
        names = [t.name for t in self.tensors]
        if len(set(names)) != len(names):
            raise ValueError("tensor names must be unique")
        for t in self.tensors:
            if t.mapping.n_in != len(self.dims):
                raise ValueError(
                    f"tensor {t.name!r} mapping consumes {t.mapping.n_in} dims, "
                    f"workload has {len(self.dims)}")
        if not any(t.is_output for t in self.tensors):
            raise ValueError("workload needs at least one output tensor")
        defined = {t.name for t in self.tensors if not t.is_output}
        outputs = {t.name for t in self.tensors if t.is_output}
        for op in self.body:
            for src in op.srcs:
                if src not in defined and src not in outputs:
                    raise ValueError(f"body op reads undefined value {src!r}")
            if op.op in ("add_acc", "max_acc"):
                if op.dst not in outputs:
                    raise ValueError(
                        f"accumulation target {op.dst!r} must be an output tensor")
            defined.add(op.dst)
        for out in outputs:
            if not any(op.dst == out for op in self.body):
                raise ValueError(f"output tensor {out!r} is never written by the body")

    # -- convenience accessors -------------------------------------------------

    @property
    def n_dims(self) -> int:
        return len(self.dims)

    def dim_index(self, dim: str) -> int:
        return self.dims.index(dim)

    def tensor(self, name: str) -> TensorAccess:
        for t in self.tensors:
            if t.name == name:
                return t
        raise KeyError(name)

    @property
    def inputs(self) -> tuple[TensorAccess, ...]:
        return tuple(t for t in self.tensors if not t.is_output)

    @property
    def outputs(self) -> tuple[TensorAccess, ...]:
        return tuple(t for t in self.tensors if t.is_output)

    def reduction_dims(self) -> tuple[str, ...]:
        """Dims that do not index any output tensor (reduced away)."""
        reduced = []
        for idx, dim in enumerate(self.dims):
            if all(not out.mapping.m[:, idx].any() for out in self.outputs):
                reduced.append(dim)
        return tuple(reduced)

    def bound_vector(self) -> np.ndarray:
        return np.array([self.bounds[d] for d in self.dims], dtype=np.int64)

    def total_ops(self) -> int:
        """MAC-equivalent operation count: 2 ops (mul+add) per iteration point
        per multiply in the body — the GOP accounting the paper uses."""
        iters = int(np.prod(self.bound_vector()))
        muls = sum(1 for op in self.body if op.op == "mul") or 1
        return 2 * muls * iters

    def tensor_footprint(self, name: str) -> int:
        """Number of distinct elements of tensor *name* the workload touches.

        Computed from the affine image of the iteration domain; exact for
        the mappings used here (each tensor dim is an affine combination of
        iteration dims with non-negative coefficients).
        """
        t = self.tensor(name)
        m, b = t.mapping.m, t.mapping.b
        size = 1
        for row in m:
            lo = hi = 0
            for coeff, dim in zip(row, self.dims):
                extent = self.bounds[dim] - 1
                if coeff > 0:
                    hi += coeff * extent
                elif coeff < 0:
                    lo += coeff * extent
            size *= int(hi - lo + 1)
        return size
