"""Exact integer affine algebra used throughout the LEGO front end.

The LEGO representation (paper Section III) is built entirely on affine
transformations over integer vectors:

* data mappings  ``d = M_{I->D} @ i + b``   (Definition 1)
* dataflow mappings ``i = [M_{T->I} M_{S->I}] @ [t; s]`` (Definition 2)

Interconnection analysis (Section IV-A) reduces to solving integer linear
systems such as ``M_{I->D} M_{T->I} dt = -M_{I->D} M_{S->I} ds``.  This
module provides the exact integer machinery: Hermite normal form, integer
linear system solving, and integer nullspaces.  All arithmetic is performed
on Python ints (arbitrary precision) carried in object-free lists, so there
is no overflow and no floating point anywhere in the front end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "AffineMap",
    "hermite_normal_form",
    "integer_nullspace",
    "solve_integer",
    "IntegerSolution",
]


def _as_int_matrix(a: Sequence[Sequence[int]] | np.ndarray) -> np.ndarray:
    """Return a 2-D ``int64`` array copy of *a*, validating integrality."""
    arr = np.asarray(a)
    if arr.ndim != 2:
        raise ValueError(f"expected a matrix, got array of ndim {arr.ndim}")
    if not np.issubdtype(arr.dtype, np.integer):
        rounded = np.rint(arr)
        if not np.allclose(arr, rounded):
            raise ValueError("matrix entries must be integers")
        arr = rounded
    return arr.astype(np.int64)


def _as_int_vector(v: Sequence[int] | np.ndarray, size: int | None = None) -> np.ndarray:
    arr = np.asarray(v)
    if arr.ndim != 1:
        raise ValueError(f"expected a vector, got array of ndim {arr.ndim}")
    if not np.issubdtype(arr.dtype, np.integer):
        rounded = np.rint(arr)
        if not np.allclose(arr, rounded):
            raise ValueError("vector entries must be integers")
        arr = rounded
    arr = arr.astype(np.int64)
    if size is not None and arr.shape[0] != size:
        raise ValueError(f"expected vector of length {size}, got {arr.shape[0]}")
    return arr


@dataclass(frozen=True)
class AffineMap:
    """An integer affine map ``f(x) = M @ x + b``.

    ``AffineMap`` instances are immutable and hashable so they can key
    caches in the interconnect analysis.  ``matrix`` has shape
    ``(n_out, n_in)``; ``bias`` has shape ``(n_out,)``.
    """

    matrix: tuple[tuple[int, ...], ...]
    bias: tuple[int, ...]

    @staticmethod
    def from_arrays(matrix: Sequence[Sequence[int]] | np.ndarray,
                    bias: Sequence[int] | np.ndarray | None = None) -> "AffineMap":
        m = _as_int_matrix(matrix)
        if bias is None:
            b = np.zeros(m.shape[0], dtype=np.int64)
        else:
            b = _as_int_vector(bias, m.shape[0])
        return AffineMap(tuple(tuple(int(x) for x in row) for row in m),
                         tuple(int(x) for x in b))

    @staticmethod
    def identity(n: int) -> "AffineMap":
        return AffineMap.from_arrays(np.eye(n, dtype=np.int64))

    @staticmethod
    def zero(n_out: int, n_in: int) -> "AffineMap":
        return AffineMap.from_arrays(np.zeros((n_out, n_in), dtype=np.int64))

    @property
    def m(self) -> np.ndarray:
        """The linear part as an ``int64`` ndarray (copy-safe view)."""
        return np.array(self.matrix, dtype=np.int64).reshape(self.n_out, self.n_in)

    @property
    def b(self) -> np.ndarray:
        return np.array(self.bias, dtype=np.int64)

    @property
    def n_out(self) -> int:
        return len(self.matrix)

    @property
    def n_in(self) -> int:
        return len(self.matrix[0]) if self.matrix else 0

    def __call__(self, x: Sequence[int] | np.ndarray) -> np.ndarray:
        vec = _as_int_vector(x, self.n_in)
        return self.m @ vec + self.b

    def apply_linear(self, x: Sequence[int] | np.ndarray) -> np.ndarray:
        """Apply only the linear part (used for *delta* vectors)."""
        vec = _as_int_vector(x, self.n_in)
        return self.m @ vec

    def compose(self, inner: "AffineMap") -> "AffineMap":
        """Return ``self ∘ inner`` so that ``out(x) = self(inner(x))``."""
        if inner.n_out != self.n_in:
            raise ValueError(
                f"cannot compose: inner produces {inner.n_out} dims, "
                f"self consumes {self.n_in}")
        m = self.m @ inner.m
        b = self.m @ inner.b + self.b
        return AffineMap.from_arrays(m, b)

    def hstack(self, other: "AffineMap") -> "AffineMap":
        """Concatenate input dimensions: ``f([x; y]) = M1 x + M2 y + b1 + b2``."""
        if other.n_out != self.n_out:
            raise ValueError("hstack requires equal output dimensionality")
        m = np.hstack([self.m, other.m])
        return AffineMap.from_arrays(m, self.b + other.b)

    def is_linear(self) -> bool:
        return not any(self.bias)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AffineMap({self.n_out}x{self.n_in}, bias={list(self.bias)})"


def hermite_normal_form(a: Sequence[Sequence[int]] | np.ndarray
                        ) -> tuple[np.ndarray, np.ndarray]:
    """Column-style Hermite normal form.

    Returns ``(H, U)`` with ``A @ U == H``, ``U`` unimodular and ``H`` in
    column echelon form (each pivot positive, entries left of a pivot in
    its row reduced modulo the pivot, columns past the rank all zero).

    The computation is done with Python ints to avoid overflow.
    """
    a = _as_int_matrix(a)
    m, n = a.shape
    h = [[int(x) for x in row] for row in a]
    u = [[1 if i == j else 0 for j in range(n)] for i in range(n)]

    def col_addmul(dst: int, src: int, k: int) -> None:
        for i in range(m):
            h[i][dst] += k * h[i][src]
        for i in range(n):
            u[i][dst] += k * u[i][src]

    def col_swap(c1: int, c2: int) -> None:
        for i in range(m):
            h[i][c1], h[i][c2] = h[i][c2], h[i][c1]
        for i in range(n):
            u[i][c1], u[i][c2] = u[i][c2], u[i][c1]

    def col_negate(c: int) -> None:
        for i in range(m):
            h[i][c] = -h[i][c]
        for i in range(n):
            u[i][c] = -u[i][c]

    pivot_col = 0
    pivot_rows: list[int] = []
    for row in range(m):
        if pivot_col >= n:
            break
        # Reduce all columns >= pivot_col so only one has a nonzero in `row`.
        while True:
            nonzero = [c for c in range(pivot_col, n) if h[row][c] != 0]
            if len(nonzero) <= 1:
                break
            nonzero.sort(key=lambda c: abs(h[row][c]))
            c0 = nonzero[0]
            for c in nonzero[1:]:
                q = h[row][c] // h[row][c0]
                col_addmul(c, c0, -q)
        nonzero = [c for c in range(pivot_col, n) if h[row][c] != 0]
        if not nonzero:
            continue
        c = nonzero[0]
        if c != pivot_col:
            col_swap(c, pivot_col)
        if h[row][pivot_col] < 0:
            col_negate(pivot_col)
        # Reduce entries to the left of the pivot in this row.
        p = h[row][pivot_col]
        for c in range(pivot_col):
            q = h[row][c] // p
            if q:
                col_addmul(c, pivot_col, -q)
        pivot_rows.append(row)
        pivot_col += 1

    h_arr = np.array(h, dtype=object)
    u_arr = np.array(u, dtype=object)
    return h_arr, u_arr


def integer_nullspace(a: Sequence[Sequence[int]] | np.ndarray) -> np.ndarray:
    """Basis for the integer nullspace of *a*, as columns.

    Returns an ``(n, k)`` object array (Python ints) whose columns span
    ``{x : A x = 0}`` over the integers.  ``k`` may be zero.
    """
    a = _as_int_matrix(a)
    m, n = a.shape
    h, u = hermite_normal_form(a)
    null_cols = [c for c in range(n) if all(h[r][c] == 0 for r in range(m))]
    if not null_cols:
        return np.zeros((n, 0), dtype=object)
    basis = np.array([[u[r][c] for c in null_cols] for r in range(n)], dtype=object)
    return basis


@dataclass(frozen=True)
class IntegerSolution:
    """General solution ``x = particular + nullspace @ z`` of ``A x = b``."""

    particular: tuple[int, ...]
    nullspace: tuple[tuple[int, ...], ...]  # shape (n, k), columns are basis

    @property
    def x0(self) -> np.ndarray:
        return np.array(self.particular, dtype=object)

    @property
    def basis(self) -> np.ndarray:
        arr = np.array(self.nullspace, dtype=object)
        if arr.size == 0:
            return np.zeros((len(self.particular), 0), dtype=object)
        return arr

    def sample(self, z: Sequence[int]) -> np.ndarray:
        basis = self.basis
        zvec = np.array(list(z), dtype=object)
        if basis.shape[1] != len(zvec):
            raise ValueError("z length must match nullspace rank")
        if basis.shape[1] == 0:
            return self.x0
        return self.x0 + basis @ zvec


def solve_integer(a: Sequence[Sequence[int]] | np.ndarray,
                  b: Sequence[int] | np.ndarray) -> IntegerSolution | None:
    """Solve ``A x = b`` over the integers.

    Returns an :class:`IntegerSolution` (particular solution plus integer
    nullspace basis) or ``None`` when no integer solution exists.
    """
    a = _as_int_matrix(a)
    bvec = _as_int_vector(b, a.shape[0])
    m, n = a.shape
    h, u = hermite_normal_form(a)

    # Forward-solve H y = b where H is in column echelon form.
    y = [0] * n
    residual = [int(x) for x in bvec]
    col = 0
    for row in range(m):
        if col < n and h[row][col] != 0:
            if residual[row] % h[row][col] != 0:
                return None
            y[col] = residual[row] // h[row][col]
            for r in range(m):
                residual[r] -= h[r][col] * y[col]
            col += 1
        elif residual[row] != 0:
            # Row has no pivot among remaining columns but a nonzero rhs:
            # only consistent if an earlier pivot already cancelled it.
            return None
    if any(residual):
        return None

    x0 = [sum(u[i][j] * y[j] for j in range(n)) for i in range(n)]
    null = integer_nullspace(a)
    null_tuple = tuple(tuple(int(v) for v in row) for row in null) if null.size else tuple(
        tuple() for _ in range(n))
    return IntegerSolution(tuple(int(v) for v in x0), null_tuple)


def box_iter(bounds: Sequence[tuple[int, int]]) -> Iterable[np.ndarray]:
    """Iterate integer vectors in the axis-aligned box ``[lo, hi]`` per dim."""
    if not bounds:
        yield np.zeros(0, dtype=np.int64)
        return
    lo, hi = bounds[0]
    for v in range(lo, hi + 1):
        for rest in box_iter(bounds[1:]):
            yield np.concatenate([[v], rest]).astype(np.int64)
