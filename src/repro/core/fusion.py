"""Heuristic direct-interconnection planning for dataflow fusion (§IV-C).

A multi-kernel application wants several spatial dataflows on one FU array.
Naively merging each dataflow's minimum-spanning interconnections yields
redundant physical links and muxes.  The BFS-based heuristic of Fig. 5
re-plans all *direct* interconnections so different dataflows share links:

1. partition the FUs of each dataflow into *chains* (maximal subgraphs
   connectable by direct interconnections);
2. root candidates of a chain are the FUs that receive delay
   interconnections (they can pull data in), else every FU in the chain;
3. plan chains longest-first; pick as root the candidate with the fewest
   possible input direct interconnections, preferring FUs already labelled
   with a data node (reduces distribution-switch complexity);
4. grow the chain from the root by BFS, preferring physical links that
   earlier (longer) chains already created — those reuse wires instead of
   adding mux inputs;
5. finally, delay interconnections are re-added *between chain roots*
   (condensed arborescence per dataflow) — see
   :func:`condensed_delay_tree`.

Flow direction matters: for an input tensor, data enters at the chain root
and flows outward along the solution deltas (whose control skew is
non-negative by construction); for an output tensor, partial results drain
*toward* the root along the same deltas.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from .dataflow import Dataflow
from .interconnect import ReuseKind, ReuseSolution
from .mst import Arc, min_arborescence

__all__ = ["Chain", "partition_chains", "plan_direct_interconnects",
           "condensed_delay_tree", "FusionPlan", "naive_merge_links"]

Coord = tuple[int, ...]


@dataclass
class Chain:
    """A maximal set of FUs connectable by direct interconnections under one
    dataflow, for one tensor.

    ``deltas`` are the admissible *flow-direction* spatial steps: for an
    input, data moves ``u -> u + ds``; for an output, partial results move
    ``u -> u + ds`` as well (the solution's direction is the causal one).
    """

    dataflow: str
    tensor: str
    members: tuple[Coord, ...]
    root_candidates: tuple[Coord, ...]
    deltas: tuple[tuple[int, ...], ...]

    def __len__(self) -> int:
        return len(self.members)


def _shift(coord: Coord, ds: tuple[int, ...]) -> Coord:
    return tuple(c + d for c, d in zip(coord, ds))


def _span_from(root: Coord, members: set[Coord],
               deltas: tuple[tuple[int, ...], ...], forward: bool) -> bool:
    """Can the whole chain be reached from *root* along admissible flow
    steps?  ``forward=True`` walks with the deltas (inputs: root pushes
    out); ``forward=False`` walks against them (outputs: root pulls in)."""
    steps = [ds if forward else tuple(-x for x in ds) for ds in deltas]
    reached = {root}
    queue = deque([root])
    while queue:
        cur = queue.popleft()
        for ds in steps:
            nbr = _shift(cur, ds)
            if nbr in members and nbr not in reached:
                reached.add(nbr)
                queue.append(nbr)
    return reached == members


def partition_chains(dataflow: Dataflow, tensor: str,
                     solutions: list[ReuseSolution],
                     delay_sinks: set[Coord]) -> list[Chain]:
    """Split the FU array into direct-connectivity chains (Fig. 5 steps
    1-3).  ``delay_sinks`` are FUs receiving delay interconnections for
    this tensor under this dataflow (step 2's root candidates)."""
    deltas = tuple(sol.ds for sol in solutions
                   if sol.kind == ReuseKind.DIRECT and any(sol.ds))
    coords = dataflow.fu_coords()
    rs = dataflow.rs
    adjacency: dict[Coord, list[Coord]] = {c: [] for c in coords}
    for coord in coords:
        for ds in deltas:
            nbr = _shift(coord, ds)
            if all(0 <= x < r for x, r in zip(nbr, rs)):
                adjacency[coord].append(nbr)
                adjacency[nbr].append(coord)

    chains: list[Chain] = []
    seen: set[Coord] = set()
    for coord in coords:
        if coord in seen:
            continue
        queue, members = deque([coord]), []
        seen.add(coord)
        while queue:
            cur = queue.popleft()
            members.append(cur)
            for nbr in adjacency[cur]:
                if nbr not in seen:
                    seen.add(nbr)
                    queue.append(nbr)
        members.sort()
        candidates = tuple(m for m in members if m in delay_sinks)
        if not candidates:
            candidates = tuple(members)  # step 3 fallback
        chains.append(Chain(dataflow.name, tensor, tuple(members),
                            candidates, deltas))
    return chains


@dataclass
class FusionPlan:
    """Result of the heuristic planning for one tensor across dataflows."""

    tensor: str
    #: physical directed links (src, dst) -> dataflow names driving it;
    #: direction is the data-flow direction for this tensor.
    links: dict[tuple[Coord, Coord], set[str]] = field(default_factory=dict)
    #: chain roots per dataflow, in planning order
    roots: dict[str, list[Coord]] = field(default_factory=dict)
    #: root of each chain, keyed by (dataflow, chain members)
    chain_root: dict[tuple[str, tuple[Coord, ...]], Coord] = field(
        default_factory=dict)

    @property
    def n_physical_links(self) -> int:
        return len(self.links)

    @property
    def n_logical_links(self) -> int:
        return sum(len(v) for v in self.links.values())

    def mux_inputs(self) -> int:
        """FU input pins needing a mux (several physical sources feed the
        same FU for this tensor)."""
        fan_in: dict[Coord, int] = {}
        for (_src, dst) in self.links:
            fan_in[dst] = fan_in.get(dst, 0) + 1
        return sum(v for v in fan_in.values() if v > 1)


def plan_direct_interconnects(chains: list[Chain], data_nodes: set[Coord],
                              is_output: bool = False) -> FusionPlan:
    """Run the Fig. 5 BFS heuristic over all chains of one tensor."""
    if not chains:
        return FusionPlan(tensor="")
    plan = FusionPlan(tensor=chains[0].tensor)
    order = sorted(chains, key=lambda ch: (-len(ch), ch.dataflow, ch.members))
    link_owner_len: dict[tuple[Coord, Coord], int] = {}

    for chain in order:
        members = set(chain.members)
        # Root must be able to span its chain along causal flow steps.
        spanning = [fu for fu in chain.root_candidates
                    if _span_from(fu, members, chain.deltas, forward=not is_output)]
        if not spanning:
            spanning = [fu for fu in chain.members
                        if _span_from(fu, members, chain.deltas,
                                      forward=not is_output)]
        if not spanning:
            spanning = list(chain.members)

        def input_degree(fu: Coord) -> int:
            return sum(1 for (_s, d) in plan.links if d == fu)

        root = min(spanning,
                   key=lambda fu: (input_degree(fu), fu not in data_nodes, fu))
        plan.roots.setdefault(chain.dataflow, []).append(root)
        plan.chain_root[(chain.dataflow, chain.members)] = root
        data_nodes.add(root)
        if len(chain) == 1:
            continue

        # BFS outward (inputs) or inward (outputs) from the root, preferring
        # physical links already built by earlier (longer) chains.
        reached = {root}
        while reached != members:
            candidates: list[tuple[tuple[int, int, tuple], Coord, Coord]] = []
            for cur in reached:
                for ds in chain.deltas:
                    if is_output:
                        nbr = _shift(cur, tuple(-x for x in ds))
                        link = (nbr, cur)  # partials drain nbr -> cur
                    else:
                        nbr = _shift(cur, ds)
                        link = (cur, nbr)  # data pushes cur -> nbr
                    if nbr in members and nbr not in reached:
                        exists = link in plan.links
                        owner_len = link_owner_len.get(link, 0)
                        candidates.append(
                            ((0 if exists else 1, -owner_len, link), link[0],
                             link[1]))
            if not candidates:
                break  # defensive; spanning check should prevent this
            candidates.sort(key=lambda item: item[0])
            _key, src, dst = candidates[0]
            plan.links.setdefault((src, dst), set()).add(chain.dataflow)
            link_owner_len[(src, dst)] = max(link_owner_len.get((src, dst), 0),
                                             len(chain))
            reached.add(dst if not is_output else src)
    return plan


def condensed_delay_tree(dataflow: Dataflow, tensor: str, is_output: bool,
                         chains: list[Chain], plan: FusionPlan,
                         solutions: list[ReuseSolution],
                         memory_cost: float
                         ) -> tuple[list[tuple[Coord, Coord, ReuseSolution]],
                                    list[Coord]]:
    """Re-add delay interconnections *between chain roots* (§IV-C last
    paragraph) for one dataflow, choosing the cheapest spanning set.

    Chains are condensed to single nodes.  For an input tensor, a delay
    solution ``u -> u + ds`` whose target is the *root* of another chain is
    an admissible inter-chain arc (the root then pushes the data through
    its chain).  For an output tensor, the *root* of a chain drains it, so
    arcs start at roots.  A virtual memory node completes the arborescence;
    chains it feeds get a data node at their root.

    Returns ``(delay_edges, data_node_roots)`` with concrete FU-level delay
    edges in data-flow direction.
    """
    mine = [ch for ch in chains if ch.dataflow == dataflow.name]
    if not mine:
        return [], []
    chain_idx: dict[Coord, int] = {}
    for idx, chain in enumerate(mine):
        for fu in chain.members:
            chain_idx[fu] = idx
    roots = [plan.chain_root[(chain.dataflow, chain.members)] for chain in mine]

    rs = dataflow.rs
    delay_sols = [s for s in solutions if s.kind == ReuseKind.DELAY]
    # Best concrete arc per chain pair.
    best: dict[tuple[int, int], tuple[float, Coord, Coord, ReuseSolution]] = {}
    for sol in delay_sols:
        ds = sol.ds
        for src_idx, chain in enumerate(mine):
            candidates = chain.members if not is_output else (roots[src_idx],)
            for u in candidates:
                v = _shift(u, ds)
                if not all(0 <= x < r for x, r in zip(v, rs)):
                    continue
                dst_idx = chain_idx[v]
                if dst_idx == src_idx:
                    continue
                if not is_output and v != roots[dst_idx]:
                    continue
                key = (src_idx, dst_idx)
                cost = (float(sol.depth)
                        + (1.0 - sol.coverage(dataflow.rt)) * memory_cost)
                if key not in best or cost < best[key][0]:
                    best[key] = (cost, u, v, sol)

    n = len(mine) + 1  # node 0 is the virtual memory root
    arcs = [Arc(0, i + 1, memory_cost, payload=None) for i in range(len(mine))]
    for (src_idx, dst_idx), (cost, u, v, sol) in best.items():
        if is_output:
            arcs.append(Arc(dst_idx + 1, src_idx + 1, cost, payload=(u, v, sol)))
        else:
            arcs.append(Arc(src_idx + 1, dst_idx + 1, cost, payload=(u, v, sol)))
    chosen = min_arborescence(n, arcs, root=0)
    if chosen is None:  # pragma: no cover - memory arcs guarantee feasibility
        raise RuntimeError("condensed delay arborescence infeasible")

    delay_edges: list[tuple[Coord, Coord, ReuseSolution]] = []
    data_roots: list[Coord] = []
    for arc in chosen:
        if arc.src == 0:
            data_roots.append(roots[arc.dst - 1])
        else:
            u, v, sol = arc.payload  # type: ignore[misc]
            delay_edges.append((u, v, sol))
    return delay_edges, data_roots


def naive_merge_links(per_dataflow_links: dict[str, list[tuple[Coord, Coord]]]
                      ) -> dict[tuple[Coord, Coord], set[str]]:
    """The baseline §IV-C argues against: union per-dataflow MST links,
    multiplexing wherever they disagree."""
    merged: dict[tuple[Coord, Coord], set[str]] = {}
    for name, links in per_dataflow_links.items():
        for link in links:
            merged.setdefault(link, set()).add(name)
    return merged
