"""Builders for the tensor kernels evaluated in the paper (§VI-A).

GEMM, Conv2D (plus the depthwise variant), Attention (its two tensor
contractions; softmax runs on the PPU), MTTKRP, and the BitFusion-style
mixed-precision GEMM used to illustrate user-defined FUs (§II).

Each builder returns a :class:`~repro.core.workload.Workload`; the
``*_dataflow`` helpers construct the named spatial dataflows that appear in
the evaluation (e.g. ``GEMM-KJ`` is the TPU-like k/j-parallel systolic
schedule of Fig. 3, ``Conv2d-OHOW`` is the ShiDianNao schedule of Fig. 4).
"""

from __future__ import annotations

import numpy as np

from .affine import AffineMap
from .dataflow import Dataflow
from .workload import BodyOp, TensorAccess, Workload

__all__ = [
    "gemm", "conv2d", "depthwise_conv2d", "attention_qk", "attention_pv",
    "mttkrp", "bitfusion_gemm", "gemm_dataflow", "conv2d_dataflow",
    "mttkrp_dataflow", "KERNEL_DATAFLOW_NAMES",
]


def _mapping(dims: tuple[str, ...], rows: list[dict[str, int]],
             bias: list[int] | None = None) -> AffineMap:
    """Build an affine map from sparse per-row coefficient dicts."""
    m = np.zeros((len(rows), len(dims)), dtype=np.int64)
    for r, row in enumerate(rows):
        for dim, coeff in row.items():
            m[r, dims.index(dim)] = coeff
    return AffineMap.from_arrays(m, bias)


def gemm(m: int = 64, n: int = 64, k: int = 64, *,
         in_bits: int = 8, acc_bits: int = 32) -> Workload:
    """``Y[i, j] += X[i, k] * W[k, j]`` — the Fig. 3 running example."""
    dims = ("i", "j", "k")
    return Workload(
        name="gemm",
        dims=dims,
        bounds={"i": m, "j": n, "k": k},
        tensors=(
            TensorAccess("X", _mapping(dims, [{"i": 1}, {"k": 1}]), dtype_bits=in_bits),
            TensorAccess("W", _mapping(dims, [{"k": 1}, {"j": 1}]), dtype_bits=in_bits),
            TensorAccess("Y", _mapping(dims, [{"i": 1}, {"j": 1}]),
                         is_output=True, dtype_bits=acc_bits),
        ),
        body=(BodyOp("mul", "p", ("X", "W")), BodyOp("add_acc", "Y", ("p",))),
    )


def conv2d(n: int = 1, oc: int = 64, ic: int = 64, oh: int = 16, ow: int = 16,
           kh: int = 3, kw: int = 3, *, stride: int = 1, in_bits: int = 8,
           acc_bits: int = 32) -> Workload:
    """2-D convolution — the Fig. 4 running example (unit stride), plus
    strided variants (the affine representation absorbs the stride as a
    coefficient, no special casing anywhere downstream).

    ``Y[n,oc,oh,ow] += X[n,ic,s*oh+kh-1,s*ow+kw-1] * W[oc,ic,kh,kw]`` with
    the paper's (-1, -1) input bias ("same" padding origin).
    """
    if stride < 1:
        raise ValueError("stride must be >= 1")
    dims = ("n", "oc", "ic", "oh", "ow", "kh", "kw")
    return Workload(
        name="conv2d" if stride == 1 else f"conv2d_s{stride}",
        dims=dims,
        bounds={"n": n, "oc": oc, "ic": ic, "oh": oh, "ow": ow, "kh": kh, "kw": kw},
        tensors=(
            TensorAccess("X", _mapping(
                dims,
                [{"n": 1}, {"ic": 1}, {"oh": stride, "kh": 1},
                 {"ow": stride, "kw": 1}],
                bias=[0, 0, -1, -1]), dtype_bits=in_bits),
            TensorAccess("W", _mapping(
                dims, [{"oc": 1}, {"ic": 1}, {"kh": 1}, {"kw": 1}]),
                dtype_bits=in_bits),
            TensorAccess("Y", _mapping(
                dims, [{"n": 1}, {"oc": 1}, {"oh": 1}, {"ow": 1}]),
                is_output=True, dtype_bits=acc_bits),
        ),
        body=(BodyOp("mul", "p", ("X", "W")), BodyOp("add_acc", "Y", ("p",))),
    )


def depthwise_conv2d(n: int = 1, c: int = 64, oh: int = 16, ow: int = 16,
                     kh: int = 3, kw: int = 3) -> Workload:
    """Depthwise conv: each channel convolved independently (MobileNet)."""
    dims = ("n", "c", "oh", "ow", "kh", "kw")
    return Workload(
        name="dwconv2d",
        dims=dims,
        bounds={"n": n, "c": c, "oh": oh, "ow": ow, "kh": kh, "kw": kw},
        tensors=(
            TensorAccess("X", _mapping(
                dims, [{"n": 1}, {"c": 1}, {"oh": 1, "kh": 1}, {"ow": 1, "kw": 1}],
                bias=[0, 0, -1, -1])),
            TensorAccess("W", _mapping(dims, [{"c": 1}, {"kh": 1}, {"kw": 1}])),
            TensorAccess("Y", _mapping(
                dims, [{"n": 1}, {"c": 1}, {"oh": 1}, {"ow": 1}]),
                is_output=True, dtype_bits=32),
        ),
        body=(BodyOp("mul", "p", ("X", "W")), BodyOp("add_acc", "Y", ("p",))),
    )


def attention_qk(heads: int = 12, q_len: int = 16, k_len: int = 16,
                 d_head: int = 64) -> Workload:
    """Attention score contraction ``S[h,q,k] += Q[h,q,d] * K[h,k,d]``.

    The softmax over ``k`` runs on the post-processing unit (§II); the FU
    array sees two batched GEMM-like contractions (this one and
    :func:`attention_pv`).
    """
    dims = ("h", "q", "k", "d")
    return Workload(
        name="attention_qk",
        dims=dims,
        bounds={"h": heads, "q": q_len, "k": k_len, "d": d_head},
        tensors=(
            TensorAccess("Q", _mapping(dims, [{"h": 1}, {"q": 1}, {"d": 1}])),
            TensorAccess("K", _mapping(dims, [{"h": 1}, {"k": 1}, {"d": 1}])),
            TensorAccess("S", _mapping(dims, [{"h": 1}, {"q": 1}, {"k": 1}]),
                         is_output=True, dtype_bits=32),
        ),
        body=(BodyOp("mul", "p", ("Q", "K")), BodyOp("add_acc", "S", ("p",))),
    )


def attention_pv(heads: int = 12, q_len: int = 16, k_len: int = 16,
                 d_head: int = 64) -> Workload:
    """Attention output contraction ``O[h,q,d] += P[h,q,k] * V[h,k,d]``."""
    dims = ("h", "q", "k", "d")
    return Workload(
        name="attention_pv",
        dims=dims,
        bounds={"h": heads, "q": q_len, "k": k_len, "d": d_head},
        tensors=(
            TensorAccess("P", _mapping(dims, [{"h": 1}, {"q": 1}, {"k": 1}])),
            TensorAccess("V", _mapping(dims, [{"h": 1}, {"k": 1}, {"d": 1}])),
            TensorAccess("O", _mapping(dims, [{"h": 1}, {"q": 1}, {"d": 1}]),
                         is_output=True, dtype_bits=32),
        ),
        body=(BodyOp("mul", "p", ("P", "V")), BodyOp("add_acc", "O", ("p",))),
    )


def mttkrp(i: int = 32, j: int = 32, k: int = 16, l: int = 16) -> Workload:
    """Matricized tensor times Khatri-Rao product.

    ``Y[i,j] += A[i,k,l] * B[k,j] * C[l,j]`` — the bottleneck of ALS tensor
    factorization.  The loop body has two chained multiplies, exercising
    multi-multiplier FUs in the backend.
    """
    dims = ("i", "j", "k", "l")
    return Workload(
        name="mttkrp",
        dims=dims,
        bounds={"i": i, "j": j, "k": k, "l": l},
        tensors=(
            TensorAccess("A", _mapping(dims, [{"i": 1}, {"k": 1}, {"l": 1}])),
            TensorAccess("B", _mapping(dims, [{"k": 1}, {"j": 1}])),
            TensorAccess("C", _mapping(dims, [{"l": 1}, {"j": 1}])),
            TensorAccess("Y", _mapping(dims, [{"i": 1}, {"j": 1}]),
                         is_output=True, dtype_bits=32),
        ),
        body=(
            BodyOp("mul", "p0", ("A", "B")),
            BodyOp("mul", "p1", ("p0", "C")),
            BodyOp("add_acc", "Y", ("p1",)),
        ),
    )


def bitfusion_gemm(m: int = 32, n: int = 32, k: int = 32) -> Workload:
    """Mixed-precision GEMM with a BitFusion-style 2-bit mult-shift-add FU:
    ``Y += (A * B) << C`` (§II, user-defined FU example)."""
    dims = ("i", "j", "k")
    return Workload(
        name="bitfusion_gemm",
        dims=dims,
        bounds={"i": m, "j": n, "k": k},
        tensors=(
            TensorAccess("A", _mapping(dims, [{"i": 1}, {"k": 1}]), dtype_bits=2),
            TensorAccess("B", _mapping(dims, [{"k": 1}, {"j": 1}]), dtype_bits=2),
            TensorAccess("C", _mapping(dims, [{"k": 1}]), dtype_bits=4),
            TensorAccess("Y", _mapping(dims, [{"i": 1}, {"j": 1}]),
                         is_output=True, dtype_bits=32),
        ),
        body=(
            BodyOp("mul", "p", ("A", "B")),
            BodyOp("shl", "q", ("p", "C")),
            BodyOp("add_acc", "Y", ("q",)),
        ),
    )


# ---------------------------------------------------------------------------
# Named dataflows from the evaluation (Figs. 10, 13, 14).
# ---------------------------------------------------------------------------

def gemm_dataflow(kind: str, workload: Workload, p0: int = 4, p1: int = 4,
                  systolic: bool = True) -> Dataflow:
    """Named GEMM dataflows: ``IJ``, ``IK``, ``KJ`` (Fig. 3 is ``KJ``)."""
    control = (1, 1) if systolic else (0, 0)
    pairs = {"IJ": ("i", "j"), "IK": ("i", "k"), "KJ": ("k", "j")}
    if kind not in pairs:
        raise ValueError(f"unknown GEMM dataflow {kind!r}; expected {sorted(pairs)}")
    a, b = pairs[kind]
    return Dataflow.build(workload, spatial=[(a, p0), (b, p1)],
                          control=control, name=f"GEMM-{kind}")


def conv2d_dataflow(kind: str, workload: Workload, p0: int = 4,
                    p1: int = 4, systolic: bool | None = None) -> Dataflow:
    """Named Conv2D dataflows: ``OHOW`` (ShiDianNao, Fig. 4), ``ICOC``,
    ``KHOH`` (Eyeriss row-stationary-like), ``OCOH`` (AutoSA comparison).

    ``systolic`` overrides the default control style (OHOW broadcasts,
    the channel-parallel dataflows default to systolic control).
    """
    pairs = {"OHOW": ("oh", "ow"), "ICOC": ("ic", "oc"),
             "KHOH": ("kh", "oh"), "OCOH": ("oc", "oh")}
    if kind not in pairs:
        raise ValueError(f"unknown Conv2D dataflow {kind!r}; expected {sorted(pairs)}")
    a, b = pairs[kind]
    if systolic is None:
        systolic = kind != "OHOW"
    control = (1, 1) if systolic else (0, 0)
    return Dataflow.build(workload, spatial=[(a, p0), (b, p1)],
                          control=control, name=f"Conv2d-{kind}")


def mttkrp_dataflow(kind: str, workload: Workload, p0: int = 4,
                    p1: int = 4, systolic: bool = True) -> Dataflow:
    """Named MTTKRP dataflows: ``IJ`` and ``KJ``."""
    pairs = {"IJ": ("i", "j"), "KJ": ("k", "j")}
    if kind not in pairs:
        raise ValueError(f"unknown MTTKRP dataflow {kind!r}; expected {sorted(pairs)}")
    a, b = pairs[kind]
    control = (1, 1) if systolic else (0, 0)
    return Dataflow.build(workload, spatial=[(a, p0), (b, p1)],
                          control=control, name=f"MTTKRP-{kind}")


#: The eleven kernel-dataflow configurations of Figs. 10/13/14.  ``-MJ`` /
#: ``-MN`` names denote runtime-switchable (fused) dataflow pairs.
KERNEL_DATAFLOW_NAMES = (
    "Attention",
    "Conv2d-ICOC", "Conv2d-MNICOC", "Conv2d-OHOW",
    "GEMM-IJ", "GEMM-IK", "GEMM-KJ", "GEMM-MJ",
    "MTTKRP-IJ", "MTTKRP-KJ", "MTTKRP-MJ",
)
