"""Minimum spanning arborescence (Tarjan's Chu-Liu/Edmonds, paper §IV-B).

The reuse edges found by the interconnection analysis are usually
excessive: an FU may have several candidate data sources.  To guarantee a
single valid source per tensor operand per FU, LEGO computes a minimum
spanning arborescence of the directed reuse graph, with edge cost equal to
the delay-FIFO depth, so the register cost of delay connections is what is
minimized.  Roots of the resulting trees are labelled *data nodes*
(they fetch from / commit to memory).

Implemented from scratch (recursive cycle-contraction formulation); the
test suite cross-checks it against ``networkx``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

__all__ = ["Arc", "min_arborescence", "spanning_forest_with_memory_root"]


@dataclass(frozen=True)
class Arc:
    """A weighted directed edge with an opaque payload (e.g. a ReuseEdge)."""

    src: int
    dst: int
    weight: float
    payload: object = None


def min_arborescence(n_nodes: int, arcs: Sequence[Arc],
                     root: int) -> list[Arc] | None:
    """Minimum-cost arborescence rooted at *root* covering all nodes.

    Returns the chosen arcs (one incoming arc per non-root node) or ``None``
    when some node is unreachable from *root*.
    """
    if not 0 <= root < n_nodes:
        raise ValueError("root out of range")
    for arc in arcs:
        if not (0 <= arc.src < n_nodes and 0 <= arc.dst < n_nodes):
            raise ValueError(f"arc endpoints out of range: {arc}")
    return _solve([a for a in arcs if a.src != a.dst], n_nodes, root)


def _solve(arcs: list[Arc], n: int, root: int) -> list[Arc] | None:
    # Pick the cheapest incoming arc per non-root node.
    best: list[Arc | None] = [None] * n
    for arc in arcs:
        if arc.dst == root:
            continue
        cur = best[arc.dst]
        if cur is None or arc.weight < cur.weight:
            best[arc.dst] = arc
    for v in range(n):
        if v != root and best[v] is None:
            return None

    # Find cycles among the selected arcs.
    comp = [-1] * n      # strongly-contracted component id
    visited = [-1] * n   # walk marker
    n_comp = 0
    has_cycle = False
    for start in range(n):
        if visited[start] != -1:
            continue
        path = []
        v = start
        while v != -1 and visited[v] == -1:
            visited[v] = start
            path.append(v)
            v = best[v].src if (v != root and best[v] is not None) else -1
        if v != -1 and visited[v] == start and comp[v] == -1:
            # Found a new cycle: everything from v onwards in `path`.
            cycle_start = path.index(v)
            for u in path[cycle_start:]:
                comp[u] = n_comp
            n_comp += 1
            has_cycle = True
        # Nodes on the path but not in a cycle get singleton ids later.
    if not has_cycle:
        return [best[v] for v in range(n) if v != root]  # type: ignore[misc]

    for v in range(n):
        if comp[v] == -1:
            comp[v] = n_comp
            n_comp += 1

    # Contract: rebuild arcs between components; arcs entering a cycle
    # component are discounted by the cycle arc they would displace.
    new_arcs: list[Arc] = []
    for arc in arcs:
        cu, cv = comp[arc.src], comp[arc.dst]
        if cu == cv:
            continue
        weight = arc.weight
        sel = best[arc.dst] if arc.dst != root else None
        in_cycle = sel is not None and comp[sel.src] == comp[arc.dst]
        if in_cycle:
            weight -= sel.weight
        new_arcs.append(Arc(cu, cv, weight, payload=arc))

    sub = _solve(new_arcs, n_comp, comp[root])
    if sub is None:
        return None

    # Expand: each chosen contracted arc maps back to an original arc and
    # "enters" its destination node, displacing that node's selected cycle
    # arc.  Every other non-root node keeps its selected best arc (for
    # cycle nodes these are the remaining cycle arcs; non-cycle components
    # are singletons and are always entered exactly once).
    chosen: list[Arc] = []
    entered: set[int] = set()
    for meta in sub:
        orig: Arc = meta.payload  # type: ignore[assignment]
        chosen.append(orig)
        entered.add(orig.dst)
    for v in range(n):
        if v == root or v in entered:
            continue
        arc = best[v]
        assert arc is not None
        chosen.append(arc)
    if len(chosen) != n - 1:
        return None
    return chosen


def spanning_forest_with_memory_root(
        nodes: Sequence[Hashable], arcs: Sequence[tuple[Hashable, Hashable, float, object]],
        memory_cost: float) -> tuple[list[tuple[Hashable, Hashable, object]], list[Hashable]]:
    """Solve the §IV-B problem: span every FU with reuse edges, falling back
    to memory fetches.

    A virtual memory root with arcs of ``memory_cost`` to every node is
    added; the arborescence then decides which FUs become *data nodes*
    (fetch from memory) and which receive data via FU interconnections.

    Returns ``(tree_edges, data_nodes)`` where ``tree_edges`` are
    ``(src, dst, payload)`` FU-to-FU connections.
    """
    index = {node: i + 1 for i, node in enumerate(nodes)}
    all_arcs = [Arc(0, i + 1, memory_cost, payload=None) for i in range(len(nodes))]
    for src, dst, weight, payload in arcs:
        all_arcs.append(Arc(index[src], index[dst], weight, payload=payload))
    chosen = min_arborescence(len(nodes) + 1, all_arcs, root=0)
    if chosen is None:
        raise RuntimeError("arborescence infeasible despite memory root")
    rev = {i: node for node, i in index.items()}
    tree_edges: list[tuple[Hashable, Hashable, object]] = []
    data_nodes: list[Hashable] = []
    for arc in chosen:
        if arc.src == 0:
            data_nodes.append(rev[arc.dst])
        else:
            tree_edges.append((rev[arc.src], rev[arc.dst], arc.payload))
    return tree_edges, data_nodes
