"""Dataflow and control-flow representation (paper §III-B, §III-C).

A *dataflow mapping* expresses loop tiling, reordering, and parallelization
as an affine map **from** the temporal/spatial indexes **to** the
computation iteration domain::

    i = [ M_{T->I}  M_{S->I} ] @ [t; s]          (Definition 2)

— the inverse direction of polyhedral/STT representations, which
eliminates division and modulo from the analysis (§III-D).

The *control flow* vector ``c`` (one entry per spatial dimension) describes
how control signals (valid bits, addresses) propagate between FUs: value
``k > 0`` forwards along that dimension with ``k`` cycles of delay per hop
(systolic), ``0`` broadcasts.  Each FU then runs at a local time offset
``t_bias = s . c``  (Eq. 4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .affine import AffineMap
from .workload import Workload

__all__ = ["Dataflow", "timestamp_to_scalar", "scalar_to_timestamp"]


def timestamp_to_scalar(t: Sequence[int] | np.ndarray, sizes: Sequence[int]) -> int:
    """Mixed-radix scalarization of a for-loop state index (Eq. 3).

    ``t`` is interpreted lexicographically: ``t[0]`` is the outermost loop.
    Works for *delta* timestamps too (entries may be negative).
    """
    if len(t) != len(sizes):
        raise ValueError("timestamp and loop sizes must have equal length")
    scalar = 0
    for value, size in zip(t, sizes):
        scalar = scalar * int(size) + int(value)
    return scalar


def scalar_to_timestamp(scalar: int, sizes: Sequence[int]) -> np.ndarray:
    """Inverse of :func:`timestamp_to_scalar` for in-range timestamps."""
    total = math.prod(sizes)
    if not 0 <= scalar < total:
        raise ValueError(f"scalar timestamp {scalar} out of range [0, {total})")
    out = np.zeros(len(sizes), dtype=np.int64)
    for idx in range(len(sizes) - 1, -1, -1):
        out[idx] = scalar % sizes[idx]
        scalar //= sizes[idx]
    return out


@dataclass(frozen=True)
class Dataflow:
    """A concrete spatial/temporal schedule of a workload on an FU array.

    Attributes
    ----------
    workload:
        The workload being scheduled.
    t_names / s_names:
        Names for the for-loop and parfor-loop instances (documentation and
        debugging; ``t_names`` ordered outermost-first).
    rt / rs:
        For-loop sizes ``R_T`` and parfor-loop sizes ``R_S`` (the FU array
        shape).
    m_t / m_s:
        ``M_{T->I}`` (I x T) and ``M_{S->I}`` (I x S) as nested tuples.
    control:
        The control-flow vector ``c`` (length ``len(rs)``).
    """

    workload: Workload
    t_names: tuple[str, ...]
    s_names: tuple[str, ...]
    rt: tuple[int, ...]
    rs: tuple[int, ...]
    m_t: tuple[tuple[int, ...], ...]
    m_s: tuple[tuple[int, ...], ...]
    control: tuple[int, ...]
    name: str = ""

    def __post_init__(self) -> None:
        n_i = self.workload.n_dims
        mt, ms = self.mt_array, self.ms_array
        if mt.shape != (n_i, len(self.rt)):
            raise ValueError(f"M_T shape {mt.shape} != ({n_i}, {len(self.rt)})")
        if ms.shape != (n_i, len(self.rs)):
            raise ValueError(f"M_S shape {ms.shape} != ({n_i}, {len(self.rs)})")
        if len(self.control) != len(self.rs):
            raise ValueError("control flow vector must have one entry per "
                             "spatial dimension")
        if any(r <= 0 for r in self.rt) or any(r <= 0 for r in self.rs):
            raise ValueError("loop sizes must be positive")
        if len(self.t_names) != len(self.rt) or len(self.s_names) != len(self.rs):
            raise ValueError("loop names must match loop sizes")

    # -- matrix views ----------------------------------------------------------

    @property
    def mt_array(self) -> np.ndarray:
        return np.array(self.m_t, dtype=np.int64).reshape(
            self.workload.n_dims, len(self.rt))

    @property
    def ms_array(self) -> np.ndarray:
        return np.array(self.m_s, dtype=np.int64).reshape(
            self.workload.n_dims, len(self.rs))

    @property
    def n_temporal(self) -> int:
        return len(self.rt)

    @property
    def n_spatial(self) -> int:
        return len(self.rs)

    @property
    def n_fus(self) -> int:
        return math.prod(self.rs)

    @property
    def total_timestamps(self) -> int:
        return math.prod(self.rt)

    @property
    def strides(self) -> tuple[int, ...]:
        """Per-dim scalar weight of a unit timestamp step (Eq. 3)."""
        out = []
        acc = 1
        for size in reversed(self.rt):
            out.append(acc)
            acc *= size
        return tuple(reversed(out))

    # -- semantics -------------------------------------------------------------

    def iteration(self, t: Sequence[int], s: Sequence[int]) -> np.ndarray:
        """Evaluate ``i = M_T t + M_S s`` for one (timestamp, FU) pair."""
        return self.mt_array @ np.asarray(t, dtype=np.int64) + \
            self.ms_array @ np.asarray(s, dtype=np.int64)

    def data_index(self, tensor: str, t: Sequence[int], s: Sequence[int]) -> np.ndarray:
        """Tensor element accessed by FU ``s`` at local timestamp ``t``."""
        acc = self.workload.tensor(tensor)
        return acc.mapping(self.iteration(t, s))

    def tensor_ts_map(self, tensor: str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(M_D M_T, M_D M_S, b)`` for *tensor* — the composed map
        from (t, s) to the tensor data index used by Eq. 6/7."""
        acc = self.workload.tensor(tensor)
        md = acc.mapping.m
        return md @ self.mt_array, md @ self.ms_array, acc.mapping.b

    def t_bias(self, s: Sequence[int]) -> int:
        """Local-time offset of FU ``s`` induced by control propagation (Eq. 4)."""
        return int(np.dot(np.asarray(s, dtype=np.int64),
                          np.asarray(self.control, dtype=np.int64)))

    def delta_t_bias(self, ds: Sequence[int]) -> int:
        """Timestamp-bias difference between FUs separated by ``ds`` (Eq. 5)."""
        return int(np.dot(np.asarray(ds, dtype=np.int64),
                          np.asarray(self.control, dtype=np.int64)))

    def scalar_delay(self, dt: Sequence[int]) -> int:
        """Scalar cycle count of a timestamp delta (mixed-radix weights)."""
        return int(np.dot(np.asarray(dt, dtype=object),
                          np.asarray(self.strides, dtype=object)))

    def fu_coords(self) -> list[tuple[int, ...]]:
        """All FU coordinates in the spatial array, row-major."""
        coords: list[tuple[int, ...]] = [()]
        for size in self.rs:
            coords = [c + (v,) for c in coords for v in range(size)]
        return coords

    def iteration_multiplicity(self) -> dict[int, int]:
        """Histogram of how often each iteration point is visited.

        Exhaustively walks the (t, s) space and counts visits to each
        in-bounds computation iteration point.  A valid schedule visits
        every point at least once; points visited more than once are
        redundant recomputation (harmless for idempotent accumulation of
        a tiled dim, wasteful otherwise).  Exponential in loop depth —
        intended for tests and small schedules.
        """
        bounds = self.workload.bound_vector()
        counts: dict[int, int] = {}
        mt, ms = self.mt_array, self.ms_array

        def walk(prefix: list[int], sizes: tuple[int, ...], out: list):
            if len(prefix) == len(sizes):
                out.append(list(prefix))
                return
            for v in range(sizes[len(prefix)]):
                prefix.append(v)
                walk(prefix, sizes, out)
                prefix.pop()

        t_space: list[list[int]] = []
        walk([], self.rt, t_space)
        s_space: list[list[int]] = []
        walk([], self.rs, s_space)
        strides = []
        acc = 1
        for b in reversed(bounds):
            strides.append(acc)
            acc *= int(b)
        strides.reverse()
        for t in t_space:
            base = mt @ np.asarray(t, dtype=np.int64)
            for s in s_space:
                i = base + ms @ np.asarray(s, dtype=np.int64)
                if np.any(i < 0) or np.any(i >= bounds):
                    continue
                flat = int(np.dot(i, strides))
                counts[flat] = counts.get(flat, 0) + 1
        return counts

    def visits_every_point(self) -> bool:
        """Exact coverage: every in-bounds iteration point visited >= 1."""
        total = int(np.prod(self.workload.bound_vector()))
        return len(self.iteration_multiplicity()) == total

    def covers_workload(self) -> bool:
        """Check that the schedule enumerates at least the full iteration
        domain (per-dim factor products cover the bounds)."""
        mt, ms = self.mt_array, self.ms_array
        for idx, dim in enumerate(self.workload.dims):
            hi = 0
            for col, size in enumerate(self.rt):
                hi += abs(int(mt[idx, col])) * (size - 1)
            for col, size in enumerate(self.rs):
                hi += abs(int(ms[idx, col])) * (size - 1)
            if hi + 1 < self.workload.bounds[dim]:
                return False
        return True

    # -- construction helpers ---------------------------------------------------

    @staticmethod
    def build(workload: Workload,
              spatial: Sequence[tuple[str, int]],
              temporal: Sequence[tuple[str, int]] | None = None,
              control: Sequence[int] | None = None,
              name: str = "") -> "Dataflow":
        """Build a dataflow from a compact schedule description.

        Parameters
        ----------
        spatial:
            Ordered ``(dim, P)`` pairs — the parfor loops (FU array axes).
        temporal:
            Ordered ``(dim, R)`` pairs, outermost first.  A dim may appear
            multiple times (multi-level tiling).  If omitted, one temporal
            level per workload dim is created with
            ``R = ceil(bound / P_spatial)``, ordered as the workload dims.
        control:
            Control-flow vector ``c``; defaults to all-zero (broadcast).

        Convention: within one dim, the spatial level is the *least
        significant* factor and temporal levels gain significance from
        innermost to outermost — matching the paper's GEMM and Conv2D
        examples (Figs. 3-4).
        """
        spatial = list(spatial)
        spatial_size = {d: p for d, p in spatial}
        if len(spatial_size) != len(spatial):
            raise ValueError("a dim may be parallelized only once")
        for dim in spatial_size:
            if dim not in workload.dims:
                raise ValueError(f"unknown spatial dim {dim!r}")

        if temporal is None:
            temporal = []
            for dim in workload.dims:
                p = spatial_size.get(dim, 1)
                r = -(-workload.bounds[dim] // p)
                if r > 1 or dim not in spatial_size:
                    temporal.append((dim, r))
        temporal = list(temporal)
        for dim, _ in temporal:
            if dim not in workload.dims:
                raise ValueError(f"unknown temporal dim {dim!r}")

        n_i = workload.n_dims
        n_t, n_s = len(temporal), len(spatial)
        mt = np.zeros((n_i, n_t), dtype=np.int64)
        ms = np.zeros((n_i, n_s), dtype=np.int64)

        # Per-dim significance: innermost temporal level multiplies the
        # spatial factor; outer levels multiply everything inside them.
        for s_idx, (dim, _p) in enumerate(spatial):
            ms[workload.dim_index(dim), s_idx] = 1
        coeff: dict[str, int] = {d: spatial_size.get(d, 1) for d in workload.dims}
        for t_idx in range(n_t - 1, -1, -1):
            dim, size = temporal[t_idx]
            mt[workload.dim_index(dim), t_idx] = coeff[dim]
            coeff[dim] *= size

        t_names = []
        level_count: dict[str, int] = {}
        for dim, _ in reversed(temporal):
            lvl = level_count.get(dim, 0)
            level_count[dim] = lvl + 1
            t_names.append(f"t{lvl}_{dim}")
        t_names.reverse()
        s_names = [f"s_{dim}" for dim, _ in spatial]

        ctrl = tuple(int(x) for x in (control if control is not None else [0] * n_s))
        df = Dataflow(
            workload=workload,
            t_names=tuple(t_names),
            s_names=tuple(s_names),
            rt=tuple(int(r) for _d, r in temporal),
            rs=tuple(int(p) for _d, p in spatial),
            m_t=tuple(tuple(int(x) for x in row) for row in mt),
            m_s=tuple(tuple(int(x) for x in row) for row in ms),
            control=ctrl,
            name=name or "-".join(d for d, _ in spatial),
        )
        if not df.covers_workload():
            raise ValueError("schedule does not cover the iteration domain; "
                             "check spatial/temporal factor sizes")
        return df
