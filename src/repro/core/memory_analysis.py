"""Relation-based memory analysis (paper §IV-D, Fig. 6).

Data nodes access L1 memory simultaneously, so the tensor data layout must
avoid bank conflicts.  Examining the data indexes of all data-node FUs at
``t = 0``, a per-tensor-dimension bank count

    B_i  =  max|delta_d_i| / gcd({|delta_d_i|}) + 1

guarantees conflict-freedom (Eq. 8-9): any two simultaneous accesses then
land in different banks.  When several dataflows are fused, each needs its
own bank *shape*; the fused memory provisions ``max`` banks and re-views
them per dataflow (Fig. 6(c)).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .adg import MemoryLayout
from .dataflow import Dataflow

__all__ = ["analyze_banks", "fuse_layouts", "distribution_switch_size"]

Coord = tuple[int, ...]


def analyze_banks(dataflow: Dataflow, tensor: str,
                  data_nodes: list[Coord]) -> MemoryLayout:
    """Compute the conflict-free bank shape for *tensor* under *dataflow*.

    ``data_nodes`` are the FU coordinates labelled with a data node by the
    MST stage.  Following the paper, we evaluate the accessed data index of
    each data node at ``t = 0`` and bound the per-dimension index deltas.
    """
    mdt, mds, bias = dataflow.tensor_ts_map(tensor)
    rank = mds.shape[0]
    if not data_nodes:
        return MemoryLayout(tensor, (1,) * rank, (1,) * rank, 0)

    indexes = [mds @ np.array(fu, dtype=np.int64) + bias for fu in data_nodes]
    deltas_per_dim: list[set[int]] = [set() for _ in range(rank)]
    for a in range(len(indexes)):
        for b in range(len(indexes)):
            if a == b:
                continue
            delta = indexes[a] - indexes[b]
            for dim in range(rank):
                if delta[dim]:
                    deltas_per_dim[dim].add(abs(int(delta[dim])))

    bank_shape, bank_stride = [], []
    for dim in range(rank):
        deltas = deltas_per_dim[dim]
        if not deltas:
            bank_shape.append(1)
            bank_stride.append(1)
            continue
        g = math.gcd(*deltas) if len(deltas) > 1 else next(iter(deltas))
        bank_shape.append(max(deltas) // g + 1)
        bank_stride.append(g)
    return MemoryLayout(tensor, tuple(bank_shape), tuple(bank_stride),
                        len(data_nodes))


def verify_conflict_free(layout: MemoryLayout, dataflow: Dataflow,
                         tensor: str, data_nodes: list[Coord]) -> bool:
    """Check Eq. 8 directly: no two data nodes hit the same bank at t=0."""
    _mdt, mds, bias = dataflow.tensor_ts_map(tensor)
    banks = set()
    for fu in data_nodes:
        d = tuple(int(v) for v in (mds @ np.array(fu, dtype=np.int64) + bias))
        bank = layout.bank_of(d)
        if bank in banks:
            return False
        banks.add(bank)
    return True


def fuse_layouts(layouts: list[MemoryLayout]) -> MemoryLayout:
    """Fuse per-dataflow layouts into one provisioned memory (Fig. 6(c)).

    The fused memory has ``max`` total banks over the dataflows; each
    dataflow views it with its own bank shape.  We keep the bank shape of
    the most-demanding dataflow and record the provisioned bank count.
    """
    if not layouts:
        raise ValueError("need at least one layout to fuse")
    tensor = layouts[0].tensor
    if any(l.tensor != tensor for l in layouts):
        raise ValueError("cannot fuse layouts of different tensors")
    best = max(layouts, key=lambda l: l.n_banks)
    return MemoryLayout(
        tensor=tensor,
        bank_shape=best.bank_shape,
        bank_stride=best.bank_stride,
        n_data_nodes=max(l.n_data_nodes for l in layouts),
    )


def distribution_switch_size(layout: MemoryLayout) -> int:
    """Crosspoint count of the data-distribution switch for one tensor:
    every data node must be able to reach every bank (the switch resolves
    layout conflicts; reuse between FUs is already handled by the FU
    interconnections, §II)."""
    return layout.n_banks * max(layout.n_data_nodes, 1)
