"""Relation-based interconnection analysis (paper §IV-A).

Two FUs can share a tensor operand when they access the same data element.
With the composed map ``f_{TS->D}(t, s) = M_D M_T t + M_D M_S s + b`` the
analysis solves, for spatial offsets ``ds`` within distance ``d_S``:

* **direct** interconnections (Eq. 6):  ``M_D M_S ds = 0`` — the same data
  at the same local timestamp; physical register depth is the control-skew
  ``dt_bias = ds . c`` (must be >= 0);
* **delay** interconnections (Eq. 7):  ``M_D M_T dt = -M_D M_S ds`` — the
  same data ``dt`` timestamps later; the FIFO depth is the scalarized delay
  (Eq. 3) plus the control skew.

Unlike TensorLib, neither the number of spatial dimensions nor the number
of delay-interconnection sets is limited (§IV-A-c): every integer solution
inside the search window is reported, and the MST stage (§IV-B) selects the
cheapest spanning subset.

``ds = 0`` solutions with positive delay are *stationary* reuse (the FU
keeps the operand in a local register) — not an interconnection, but
recorded because the memory system uses it to size traffic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np
from scipy.optimize import LinearConstraint, milp

from .affine import box_iter, integer_nullspace, solve_integer
from .dataflow import Dataflow

__all__ = ["ReuseKind", "ReuseSolution", "find_reuse_solutions",
           "ReuseEdge", "build_reuse_edges"]


class ReuseKind:
    """Enumeration of reuse-solution kinds (plain strings for readability)."""

    DIRECT = "direct"
    DELAY = "delay"
    STATIONARY = "stationary"


@dataclass(frozen=True)
class ReuseSolution:
    """One solution of Eq. 6/7 for a tensor under a dataflow.

    ``depth`` is the physical register/FIFO depth of the connection:
    ``scalar_delay(dt) + ds . c`` — zero means a pure wire (broadcast).
    """

    tensor: str
    ds: tuple[int, ...]
    dt: tuple[int, ...]
    scalar_dt: int
    depth: int
    kind: str

    def is_interconnect(self) -> bool:
        return self.kind in (ReuseKind.DIRECT, ReuseKind.DELAY)

    def coverage(self, rt: tuple[int, ...]) -> float:
        """Fraction of destination timestamps the connection serves.

        A delay connection with timestamp delta ``dt`` is valid at the
        destination only when ``t - dt`` is a legal timestamp (the paper's
        "valid if and only if the timestamp is no smaller than dt"): at
        loop boundaries the FIFO holds no usable data and the FU must fall
        back to another source (we fall back to memory).  Direct
        connections (``dt = 0``) cover everything.
        """
        frac = 1.0
        for delta, size in zip(self.dt, rt):
            frac *= max(0, size - abs(delta)) / size
        return frac


def _minimize_scalar_delay(mdt: np.ndarray, rhs: np.ndarray,
                           strides: tuple[int, ...], rt: tuple[int, ...],
                           dt_bias: int, min_depth: int = 1
                           ) -> tuple[np.ndarray, int] | None:
    """Find integer ``dt`` with ``mdt @ dt = rhs`` minimizing the scalar
    delay, subject to ``|dt_k| <= rt_k - 1`` and
    ``delay + dt_bias >= min_depth``.

    Solved exactly: a particular solution plus integer nullspace from the
    HNF solver, then a small ILP over the nullspace coefficients (scipy's
    ``milp`` is backed by HiGHS — the solver the paper itself uses).
    """
    sol = solve_integer(mdt, rhs)
    if sol is None:
        return None
    x0 = np.array([int(v) for v in sol.x0], dtype=np.int64)
    basis = sol.basis
    w = np.array(strides, dtype=np.int64)
    hi = np.array([r - 1 for r in rt], dtype=np.int64)

    def admissible(dt: np.ndarray) -> bool:
        if np.any(np.abs(dt) > hi):
            return False
        return int(w @ dt) + dt_bias >= min_depth

    if basis.shape[1] == 0:
        return (x0, int(w @ x0)) if admissible(x0) else None

    n_z = basis.shape[1]
    bmat = np.array([[int(v) for v in row] for row in basis], dtype=np.float64)
    cost = w.astype(np.float64) @ bmat
    constraints = [
        # component bounds: -hi <= x0 + B z <= hi
        LinearConstraint(bmat, (-hi - x0).astype(np.float64),
                         (hi - x0).astype(np.float64)),
        # causality + FIFO floor: w.(x0 + B z) + dt_bias >= min_depth
        LinearConstraint((w.astype(np.float64) @ bmat).reshape(1, -1),
                         np.array([min_depth - float(w @ x0) - dt_bias]),
                         np.array([np.inf])),
    ]
    res = milp(c=cost, integrality=np.ones(n_z),
               constraints=constraints)
    if not res.success:
        return None
    z = np.rint(res.x).astype(np.int64)
    dt = x0 + np.array([[int(v) for v in row] for row in basis],
                       dtype=np.int64) @ z
    if not admissible(dt):  # numerical safety; should not happen
        return None
    return dt, int(w @ dt)


def find_reuse_solutions(dataflow: Dataflow, tensor: str, *,
                         max_dist: int = 1,
                         include_stationary: bool = True
                         ) -> list[ReuseSolution]:
    """Enumerate all reuse solutions for *tensor* within spatial distance
    ``max_dist`` (the paper's ``d_S`` constraint in Eq. 6/7)."""
    mdt, mds, _bias = dataflow.tensor_ts_map(tensor)
    strides = dataflow.strides
    rt = dataflow.rt
    solutions: list[ReuseSolution] = []

    bounds = [(-min(max_dist, r - 1), min(max_dist, r - 1)) for r in dataflow.rs]
    for ds in box_iter(bounds):
        ds_t = tuple(int(v) for v in ds)
        dt_bias = dataflow.delta_t_bias(ds)
        if not any(ds_t):
            if include_stationary:
                stat = _stationary_reuse(mdt, strides, rt)
                if stat is not None:
                    dt, scalar = stat
                    solutions.append(ReuseSolution(
                        tensor, ds_t, tuple(int(v) for v in dt),
                        scalar, scalar, ReuseKind.STATIONARY))
            continue

        rhs = -(mds @ ds)
        if not rhs.any():
            # Eq. 6 candidate: same data at the same local timestamp.
            if dt_bias >= 0:
                solutions.append(ReuseSolution(
                    tensor, ds_t, (0,) * len(rt), 0, dt_bias, ReuseKind.DIRECT))
                continue
            # dt_bias < 0 violates Eq. 6's constraint; fall through and look
            # for a compensating temporal delay (Eq. 7 with rhs = 0, dt != 0).
        found = _minimize_scalar_delay(mdt, rhs, strides, rt, dt_bias)
        if found is None:
            continue
        dt, scalar = found
        depth = scalar + dt_bias
        # min_depth=1 in the solver guarantees depth >= 1 here: a delay
        # interconnection is a FIFO; a zero-depth back-edge would be a
        # combinational cycle risk (the forest must stay acyclic, §II).
        kind = ReuseKind.DIRECT if scalar == 0 else ReuseKind.DELAY
        solutions.append(ReuseSolution(
            tensor, ds_t, tuple(int(v) for v in dt), scalar, depth, kind))
    return solutions


def _stationary_reuse(mdt: np.ndarray, strides: tuple[int, ...],
                      rt: tuple[int, ...]) -> tuple[np.ndarray, int] | None:
    """Smallest positive-delay ``dt`` with ``M_D M_T dt = 0`` — temporal
    (stationary) reuse at a single FU, if the schedule has any."""
    basis = integer_nullspace(mdt)
    if basis.shape[1] == 0:
        return None
    best: tuple[np.ndarray, int] | None = None
    # The smallest positive mixed-radix combination of nullspace vectors is
    # found among single basis vectors normalized to positive scalar delay.
    for col in range(basis.shape[1]):
        vec = np.array([int(v) for v in basis[:, col]], dtype=np.int64)
        scalar = int(np.dot(vec, strides))
        if scalar < 0:
            vec, scalar = -vec, -scalar
        if scalar == 0 or np.any(np.abs(vec) > np.array(rt) - 1):
            continue
        if best is None or scalar < best[1]:
            best = (vec, scalar)
    return best


@dataclass(frozen=True)
class ReuseEdge:
    """A concrete FU-to-FU reuse edge instantiated from a solution."""

    tensor: str
    src: tuple[int, ...]
    dst: tuple[int, ...]
    solution: ReuseSolution

    @property
    def cost(self) -> float:
        """MST edge cost: the delay-FIFO depth (§IV-B).

        Delay connections carry a small extra cost over equal-depth direct
        connections: a runtime-programmable FIFO needs control logic that a
        fixed skew-register chain does not, so ties break toward the
        simpler hardware.
        """
        return self.solution.depth + (0.25 if self.solution.kind == ReuseKind.DELAY
                                      else 0.0)


def build_reuse_edges(dataflow: Dataflow,
                      solutions: Iterable[ReuseSolution]) -> list[ReuseEdge]:
    """Instantiate every solution at every in-bounds FU pair.

    An edge ``src -> dst`` means *src* holds the data first and pushes it to
    *dst* after ``solution.depth`` cycles.
    """
    rs = dataflow.rs
    coords = dataflow.fu_coords()
    edges: list[ReuseEdge] = []
    for sol in solutions:
        if not sol.is_interconnect():
            continue
        ds = np.array(sol.ds, dtype=np.int64)
        for src in coords:
            dst = tuple(int(v) for v in (np.array(src) + ds))
            if all(0 <= d < r for d, r in zip(dst, rs)):
                edges.append(ReuseEdge(sol.tensor, src, dst, sol))
    return edges
