"""General tensor contractions from einsum-style specifications.

LEGO targets *tensor applications*, not a fixed kernel list: any
computation expressible as affine data mappings over a loop nest is fair
game (§III-A).  This module builds :class:`~repro.core.workload.Workload`
objects from an einsum-like subscript string, subsuming GEMM
(``"ik,kj->ij"``), batched attention contractions (``"hqd,hkd->hqk"``),
MTTKRP (``"ikl,kj,lj->ij"``), and arbitrary higher-order contractions —
all of which then flow through the unchanged generation pipeline.

Example::

    wl = contraction("bij,bjk->bik", {"b": 4, "i": 8, "j": 8, "k": 8})
    df = Dataflow.build(wl, spatial=[("i", 4), ("k", 4)], control=(1, 1))
"""

from __future__ import annotations

import numpy as np

from .affine import AffineMap
from .workload import BodyOp, TensorAccess, Workload

__all__ = ["contraction", "parse_subscripts"]


def parse_subscripts(spec: str) -> tuple[list[str], str]:
    """Split ``"ik,kj->ij"`` into (["ik", "kj"], "ij") with validation."""
    if "->" not in spec:
        raise ValueError("contraction spec needs an explicit '->' output")
    lhs, out = spec.split("->")
    inputs = [term.strip() for term in lhs.split(",")]
    out = out.strip()
    if not inputs or any(not term for term in inputs):
        raise ValueError("empty input term in contraction spec")
    seen = set()
    for term in inputs + [out]:
        for ch in term:
            if not ch.isalpha():
                raise ValueError(f"subscripts must be letters, got {ch!r}")
        if len(set(term)) != len(term):
            raise ValueError(f"repeated index within one term: {term!r} "
                             "(diagonal access is not affine-expressible "
                             "as a dense tensor walk)")
    input_indices = {ch for term in inputs for ch in term}
    for ch in out:
        if ch not in input_indices:
            raise ValueError(f"output index {ch!r} never appears on inputs")
    seen = seen  # appease linters; `seen` reserved for future use
    return inputs, out


def contraction(spec: str, sizes: dict[str, int], *, name: str | None = None,
                input_bits: int = 8, acc_bits: int = 32) -> Workload:
    """Build a workload computing ``out[...] += prod(inputs[...])``.

    Every index in *spec* must have a size in *sizes*.  Input tensors are
    named ``T0, T1, ...`` and the output ``Y``; the loop body chains one
    multiplier per extra input (exercising multi-multiplier FUs, as
    MTTKRP does) followed by the accumulation.
    """
    inputs, out = parse_subscripts(spec)
    dims = []
    for term in inputs + [out]:
        for ch in term:
            if ch not in dims:
                dims.append(ch)
    missing = [d for d in dims if d not in sizes]
    if missing:
        raise ValueError(f"sizes missing for indices {missing}")

    def mapping(term: str) -> AffineMap:
        m = np.zeros((len(term), len(dims)), dtype=np.int64)
        for row, ch in enumerate(term):
            m[row, dims.index(ch)] = 1
        return AffineMap.from_arrays(m)

    tensors = [TensorAccess(f"T{i}", mapping(term), dtype_bits=input_bits)
               for i, term in enumerate(inputs)]
    tensors.append(TensorAccess("Y", mapping(out), is_output=True,
                                dtype_bits=acc_bits))

    body: list[BodyOp] = []
    if len(inputs) == 1:
        body.append(BodyOp("mul", "p0", ("T0", "T0")))
        # Single-input contraction (e.g. trace-free reduction): square is
        # wrong; use a pass-through instead.
        body = [BodyOp("pass", "p0", ("T0",))]
    else:
        body.append(BodyOp("mul", "p0", ("T0", "T1")))
        for i in range(2, len(inputs)):
            body.append(BodyOp("mul", f"p{i - 1}", (f"p{i - 2}", f"T{i}")))
    body.append(BodyOp("add_acc", "Y", (body[-1].dst,)))

    return Workload(
        name=name or f"contraction[{spec}]",
        dims=tuple(dims),
        bounds={d: int(sizes[d]) for d in dims},
        tensors=tuple(tensors),
        body=tuple(body),
    )
