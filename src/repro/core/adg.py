"""Architecture Description Graph — the front end's output IR (paper §IV/§V).

The ADG describes the accelerator at the FU level: FU nodes on a spatial
grid, direct/delay interconnections between them (tagged with the dataflow
configurations that activate them), data nodes (FUs that exchange data with
the memory system), the banked memory layout per tensor, and the stationary
(temporal) reuse each dataflow exhibits.  The back end translates this into
the primitive-level DAG.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .dataflow import Dataflow
from .interconnect import ReuseSolution
from .workload import Workload

__all__ = ["ADGConnection", "ADGDataNode", "MemoryLayout", "ADG"]

Coord = tuple[int, ...]


@dataclass
class ADGConnection:
    """A physical FU-to-FU link for one tensor operand.

    ``depth`` is the register/FIFO depth (0 = wire).  ``dataflows`` lists
    the dataflow configurations that drive data over this link; a link used
    by several dataflows is one physical wire with a mux at the sink.
    """

    tensor: str
    src: Coord
    dst: Coord
    depth: int
    kind: str  # ReuseKind.DIRECT or ReuseKind.DELAY
    dataflows: set[str] = field(default_factory=set)
    #: programmed FIFO depth per dataflow (a link shared by several
    #: dataflows may need different delays at runtime — that is what makes
    #: delay interconnections programmable FIFOs, §II)
    depth_by_dataflow: dict[str, int] = field(default_factory=dict)
    #: timestamp delta per dataflow; the connection carries valid data at
    #: the destination only when ``t - dt`` is a legal timestamp (boundary
    #: timestamps fall back to the memory system)
    dt_by_dataflow: dict[str, tuple[int, ...]] = field(default_factory=dict)

    def depth_for(self, dataflow: str) -> int:
        return self.depth_by_dataflow.get(dataflow, self.depth)

    def dt_for(self, dataflow: str) -> tuple[int, ...] | None:
        """Timestamp delta under *dataflow*; None means full coverage."""
        dt = self.dt_by_dataflow.get(dataflow)
        if dt is None or not any(dt):
            return None
        return dt

    @property
    def key(self) -> tuple:
        return (self.tensor, self.src, self.dst)


@dataclass
class ADGDataNode:
    """An FU that fetches (input) or commits (output) tensor data.

    ``fallback_of`` marks boundary-fallback ports: the FU's primary source
    is a delay interconnection, and the memory port only serves the
    timestamps the connection cannot cover (per dataflow).
    """

    tensor: str
    fu: Coord
    is_output: bool
    dataflows: set[str] = field(default_factory=set)
    fallback_of: set[str] = field(default_factory=set)


@dataclass
class MemoryLayout:
    """Banked L1 layout for one tensor (paper §IV-D, Fig. 6).

    ``bank_shape`` gives the per-tensor-dimension bank counts ``B_i`` and
    ``bank_stride`` the divisors ``g_i`` so that element ``d`` lives in bank
    ``(d_i // g_i) mod B_i`` per dimension.
    """

    tensor: str
    bank_shape: tuple[int, ...]
    bank_stride: tuple[int, ...]
    n_data_nodes: int

    @property
    def n_banks(self) -> int:
        out = 1
        for b in self.bank_shape:
            out *= b
        return out

    def bank_of(self, d: tuple[int, ...]) -> tuple[int, ...]:
        if len(d) != len(self.bank_shape):
            raise ValueError("data index rank mismatch")
        return tuple((di // g) % b
                     for di, g, b in zip(d, self.bank_stride, self.bank_shape))


@dataclass
class ADG:
    """The complete FU-level architecture description."""

    fu_shape: tuple[int, ...]
    dataflows: list[Dataflow]
    connections: list[ADGConnection]
    data_nodes: list[ADGDataNode]
    memory: dict[str, MemoryLayout]
    stationary: dict[tuple[str, str], ReuseSolution]  # (dataflow, tensor) ->
    workloads: list[Workload] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [df.name for df in self.dataflows]
        if len(set(names)) != len(names):
            raise ValueError("dataflow names must be unique for fusion")

    # -- queries ----------------------------------------------------------------

    @property
    def n_fus(self) -> int:
        out = 1
        for s in self.fu_shape:
            out *= s
        return out

    def dataflow(self, name: str) -> Dataflow:
        for df in self.dataflows:
            if df.name == name:
                return df
        raise KeyError(name)

    def connections_for(self, tensor: str | None = None,
                        dataflow: str | None = None) -> list[ADGConnection]:
        out = []
        for conn in self.connections:
            if tensor is not None and conn.tensor != tensor:
                continue
            if dataflow is not None and dataflow not in conn.dataflows:
                continue
            out.append(conn)
        return out

    def data_nodes_for(self, tensor: str, dataflow: str | None = None
                       ) -> list[ADGDataNode]:
        out = []
        for node in self.data_nodes:
            if node.tensor != tensor:
                continue
            if dataflow is not None and dataflow not in node.dataflows:
                continue
            out.append(node)
        return out

    def inputs_of(self, fu: Coord, tensor: str) -> list[ADGConnection]:
        return [c for c in self.connections if c.dst == fu and c.tensor == tensor]

    def tensor_names(self) -> list[str]:
        seen: list[str] = []
        for wl in self.workloads:
            for t in wl.tensors:
                if t.name not in seen:
                    seen.append(t.name)
        return seen

    # -- summary statistics (used by reports, tests, and benchmarks) ------------

    def stats(self) -> dict[str, int]:
        n_delay_regs = sum(c.depth for c in self.connections)
        n_mux_inputs = 0
        sinks: dict[tuple, int] = {}
        for conn in self.connections:
            key = (conn.dst, conn.tensor)
            sinks[key] = sinks.get(key, 0) + 1
        n_mux_inputs = sum(v for v in sinks.values() if v > 1)
        return {
            "n_fus": self.n_fus,
            "n_connections": len(self.connections),
            "n_direct": sum(1 for c in self.connections if c.kind == "direct"),
            "n_delay": sum(1 for c in self.connections if c.kind == "delay"),
            "delay_registers": n_delay_regs,
            "n_data_nodes": len(self.data_nodes),
            "mux_inputs": n_mux_inputs,
            "n_banks": sum(m.n_banks for m in self.memory.values()),
        }
