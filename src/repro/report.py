"""Human-readable reports of generated architectures.

Renders ADGs as per-tensor array topology diagrams (which FU feeds which,
where the data nodes sit), DAG statistics tables, and one-page design
summaries — the kind of output an accelerator-generation tool owes its
users before they commit to synthesis.
"""

from __future__ import annotations

import io

from .backend.codegen import Design
from .core.adg import ADG

__all__ = ["render_topology", "dag_summary", "design_summary"]

_ARROWS = {
    (0, 1): ">", (0, -1): "<", (1, 0): "v", (-1, 0): "^",
    (1, 1): "\\", (-1, -1): "\\", (1, -1): "/", (-1, 1): "/",
}


def render_topology(adg: ADG, tensor: str, dataflow: str | None = None) -> str:
    """ASCII diagram of one tensor's interconnect on a 2-D FU array.

    ``*`` marks data nodes (memory ports); arrows show the flow direction
    of each link; ``.`` is an FU without a port.
    """
    if len(adg.fu_shape) != 2:
        raise ValueError("topology rendering supports 2-D arrays")
    rows, cols = adg.fu_shape
    node_fus = {n.fu for n in adg.data_nodes_for(tensor, dataflow)}
    # Cell grid with gaps for the arrows.
    height, width = rows * 2 - 1, cols * 2 - 1
    grid = [[" "] * width for _ in range(height)]
    for r in range(rows):
        for c in range(cols):
            grid[2 * r][2 * c] = "*" if (r, c) in node_fus else "."
    for conn in adg.connections_for(tensor, dataflow):
        (r0, c0), (r1, c1) = conn.src, conn.dst
        dr, dc = r1 - r0, c1 - c0
        if max(abs(dr), abs(dc)) != 1:
            continue  # long link: annotate below instead
        mark = _ARROWS.get((dr, dc), "+")
        grid[2 * r0 + dr][2 * c0 + dc] = mark
    out = io.StringIO()
    title = f"{tensor}" + (f" under {dataflow}" if dataflow else "")
    out.write(f"tensor {title}: * = data node, arrows = links\n")
    for line in grid:
        out.write("  " + "".join(line).rstrip() + "\n")
    long_links = [c for c in adg.connections_for(tensor, dataflow)
                  if max(abs(a - b) for a, b in zip(c.src, c.dst)) > 1]
    for conn in long_links:
        out.write(f"  {conn.src} -> {conn.dst} (depth {conn.depth})\n")
    return out.getvalue()


def dag_summary(design: Design) -> str:
    """Primitive-count and register-cost table of a generated DAG."""
    stats = design.dag.stats()
    out = io.StringIO()
    out.write(f"{'primitive':14s}{'count':>8s}\n")
    for kind in sorted(k for k in stats
                       if k not in ("pipeline_register_bits",
                                    "fifo_register_bits", "n_edges")):
        out.write(f"{kind:14s}{stats[kind]:8d}\n")
    out.write(f"{'edges':14s}{stats['n_edges']:8d}\n")
    out.write(f"pipeline register bits: {stats['pipeline_register_bits']}\n")
    out.write(f"FIFO register bits:     {stats['fifo_register_bits']}\n")
    return out.getvalue()


def design_summary(design: Design) -> str:
    """One-page overview: dataflows, ADG stats, DAG stats, pass report."""
    out = io.StringIO()
    adg = design.adg
    out.write(f"LEGO design: {adg.n_fus} FUs ({'x'.join(map(str, adg.fu_shape))})\n")
    out.write(f"dataflows: {', '.join(df.name for df in adg.dataflows)}\n\n")
    out.write("front end (ADG):\n")
    for key, value in adg.stats().items():
        out.write(f"  {key:18s}{value:8d}\n")
    out.write("\nmemory layouts:\n")
    for tensor, layout in sorted(adg.memory.items()):
        out.write(f"  {tensor:6s} banks {layout.bank_shape} "
                  f"(stride {layout.bank_stride}, "
                  f"{layout.n_data_nodes} data nodes)\n")
    out.write("\nback end (DAG):\n")
    out.write(dag_summary(design))
    if design.report:
        out.write("\npass report:\n")
        for key in ("reduction", "rewiring", "pin_reuse", "power_gating",
                    "register_bits"):
            if key in design.report:
                out.write(f"  {key}: {design.report[key]}\n")
    return out.getvalue()
