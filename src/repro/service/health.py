"""Fleet health: circuit breakers, a background prober, retry backoff.

Every backend the router knows about gets a :class:`BackendHealth`
tracker fed from two directions: the request path (every forward
records its transport success/failure) and a :class:`FleetHealth`
prober thread (periodic ``GET /healthz`` per backend).  The tracker
folds both into a three-state machine:

``up``
    breaker closed and the last probe answered.
``degraded``
    something is off — probe failing but breaker not yet tripped, or
    breaker half-open mid-recovery.  Traffic is still attempted.
``down``
    breaker open: consecutive transport failures hit the threshold.
    Requests skip this backend until a half-open probe succeeds.

The breaker is the classic three-state machine: ``closed`` → (K
consecutive failures) → ``open`` → (cooldown expires, one trial
request allowed) → ``half_open`` → ``closed`` on success or back to
``open`` (with doubled cooldown) on failure.  Cooldowns are capped at
the probe interval so a revived backend is re-admitted within one
probe interval — the prober's success closes the breaker even when no
client traffic is flowing.

Exported metrics: ``repro_backend_state{backend}`` (2=up, 1=degraded,
0=down) and ``repro_breaker_transitions_total{backend,to}``.
"""

from __future__ import annotations

import http.client
import random
import threading
import time

from ..obs import get_registry

__all__ = ["BackendHealth", "CircuitBreaker", "FleetHealth",
           "backoff_delays", "classify_error"]

_BREAKER_TRANSITIONS = get_registry().counter(
    "repro_breaker_transitions_total",
    "circuit-breaker state transitions, by backend and entered state",
    ("backend", "to"))
_BACKEND_STATE = get_registry().gauge(
    "repro_backend_state",
    "per-backend fleet state: 2=up, 1=degraded, 0=down", ("backend",))

STATE_VALUES = {"up": 2.0, "degraded": 1.0, "down": 0.0}


def classify_error(exc: BaseException) -> str:
    """Name the transport-failure class for error payloads and the
    ``repro_router_retries_total{reason}`` label."""
    # RemoteDisconnected subclasses both ConnectionResetError and
    # BadStatusLine; the reset test must come first.
    if isinstance(exc, ConnectionRefusedError):
        return "refused"
    if isinstance(exc, (ConnectionResetError, BrokenPipeError,
                        ConnectionAbortedError)):
        return "reset"
    if isinstance(exc, TimeoutError):
        return "timeout"
    if isinstance(exc, http.client.HTTPException):
        return "protocol"
    if isinstance(exc, OSError):
        return "os_error"
    return "error"


def backoff_delays(base_s: float = 0.05, max_s: float = 2.0,
                   factor: float = 2.0):
    """Infinite generator of jittered exponential backoff delays
    (0.5x–1.5x jitter so synchronized retriers fan out)."""
    delay = base_s
    while True:
        yield delay * (0.5 + random.random())
        delay = min(max_s, delay * factor)


class CircuitBreaker:
    """Per-backend closed / open / half_open breaker (thread-safe)."""

    def __init__(self, backend: str = "", threshold: int = 3,
                 cooldown_s: float = 0.25, max_cooldown_s: float = 30.0):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.backend = backend
        self.threshold = threshold
        self.cooldown_s = max(cooldown_s, 0.001)
        self.max_cooldown_s = max(max_cooldown_s, self.cooldown_s)
        self.state = "closed"
        self.failures = 0  # consecutive transport failures
        self._trips = 0    # consecutive open transitions, for backoff
        self._retry_at = 0.0
        self._lock = threading.Lock()

    def _transition(self, to: str) -> None:
        # caller holds the lock
        self.state = to
        _BREAKER_TRANSITIONS.labels(backend=self.backend, to=to).inc()
        if to == "open":
            self._trips += 1
            cooldown = min(self.max_cooldown_s,
                           self.cooldown_s * 2 ** (self._trips - 1))
            self._retry_at = time.monotonic() + cooldown

    def allows(self) -> bool:
        """May a request be sent now?  An expired-cooldown call flips
        open → half_open and admits exactly one trial request."""
        with self._lock:
            if self.state == "closed":
                return True
            if self.state == "open" and time.monotonic() >= self._retry_at:
                self._transition("half_open")
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self.failures = 0
            self._trips = 0
            if self.state != "closed":
                self._transition("closed")

    def record_failure(self) -> None:
        with self._lock:
            self.failures += 1
            if self.state == "half_open":
                self._transition("open")
            elif self.state == "closed" and self.failures >= self.threshold:
                self._transition("open")

    def to_dict(self) -> dict:
        return {"state": self.state, "failures": self.failures}


class BackendHealth:
    """Breaker + last-probe verdict for one backend URL."""

    def __init__(self, url: str, threshold: int = 3,
                 cooldown_s: float = 0.25, max_cooldown_s: float = 30.0):
        self.url = url
        self.breaker = CircuitBreaker(url, threshold=threshold,
                                      cooldown_s=cooldown_s,
                                      max_cooldown_s=max_cooldown_s)
        self.probe_ok = True  # optimistic until the first verdict
        self.last_error: str | None = None
        self._export()

    @property
    def state(self) -> str:
        breaker = self.breaker.state
        if breaker == "open":
            return "down"
        if breaker == "closed" and self.probe_ok:
            return "up"
        return "degraded"

    def _export(self) -> None:
        _BACKEND_STATE.labels(backend=self.url).set(
            STATE_VALUES[self.state])

    def allows(self) -> bool:
        return self.breaker.allows()

    def record_success(self) -> None:
        self.probe_ok = True
        self.last_error = None
        self.breaker.record_success()
        self._export()

    def record_failure(self, error: str | None = None) -> None:
        self.probe_ok = False
        if error is not None:
            self.last_error = error
        self.breaker.record_failure()
        self._export()

    def to_dict(self) -> dict:
        out = {"state": self.state, "breaker": self.breaker.to_dict()}
        if self.last_error:
            out["last_error"] = self.last_error
        return out


class FleetHealth:
    """Health trackers for a backend list, plus the prober thread.

    The prober re-checks each backend every ``probe_interval_s``; while
    a backend is failing it backs off exponentially from
    ``interval / 4`` up to the interval itself (fast confirmation of a
    blip, steady-state cost bounded) — so a revived backend is marked
    ``up`` within one probe interval of coming back.  Breaker cooldowns
    default to the same cap for the same reason.  Pass
    ``probe_interval_s=0`` to disable probing (request-path recording
    still runs).
    """

    def __init__(self, urls, probe_interval_s: float = 1.0,
                 threshold: int = 3, cooldown_s: float | None = None,
                 max_cooldown_s: float | None = None):
        self.urls = list(urls)
        self.probe_interval_s = probe_interval_s
        interval = probe_interval_s if probe_interval_s else 1.0
        interval = max(interval, 0.05)
        if cooldown_s is None:
            cooldown_s = interval / 4
        if max_cooldown_s is None:
            max_cooldown_s = interval
        self.backends = [
            BackendHealth(url, threshold=threshold, cooldown_s=cooldown_s,
                          max_cooldown_s=max_cooldown_s)
            for url in self.urls]
        self._interval = interval
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # request-path recording

    def allows(self, index: int) -> bool:
        return self.backends[index].allows()

    def record(self, index: int, ok: bool,
               error: str | None = None) -> None:
        if ok:
            self.backends[index].record_success()
        else:
            self.backends[index].record_failure(error)

    def state(self, index: int) -> str:
        return self.backends[index].state

    def describe(self, index: int) -> dict:
        return self.backends[index].to_dict()

    def overall(self) -> str:
        """Fleet verdict: ``up`` when every backend is, ``down`` when
        none is reachable, ``degraded`` in between."""
        states = [backend.state for backend in self.backends]
        if all(state == "up" for state in states):
            return "up"
        if all(state == "down" for state in states):
            return "down"
        return "degraded"

    # ------------------------------------------------------------------
    # prober

    def start(self) -> None:
        if not self.probe_interval_s or self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-health-prober")
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def probe(self, index: int) -> bool:
        """One synchronous ``GET /healthz`` against backend *index*."""
        from .client import ServiceClient, ServiceError
        timeout = max(0.25, min(self._interval, 5.0))
        try:
            with ServiceClient.from_url(self.urls[index], timeout=timeout,
                                        connect_timeout=timeout) as client:
                client.request("GET", "/healthz")
        except (OSError, ServiceError, ValueError,
                http.client.HTTPException) as exc:
            self.backends[index].record_failure(
                f"probe: {type(exc).__name__}: {exc}")
            return False
        self.backends[index].record_success()
        return True

    def _run(self) -> None:
        count = len(self.urls)
        next_due = [0.0] * count  # probe everyone immediately at start
        backoff = [self._interval] * count
        floor = self._interval / 4
        while not self._stop.is_set():
            now = time.monotonic()
            for index in range(count):
                if now < next_due[index]:
                    continue
                if self.probe(index):
                    backoff[index] = self._interval
                else:
                    # exponential from interval/4 back up to the interval:
                    # a fresh failure is re-checked fast, a long-dead
                    # backend costs one probe per interval
                    if backoff[index] >= self._interval:
                        backoff[index] = floor
                    else:
                        backoff[index] = min(self._interval,
                                             backoff[index] * 2)
                next_due[index] = time.monotonic() + backoff[index]
            pause = min(next_due) - time.monotonic()
            self._stop.wait(min(max(pause, 0.01), 0.25))
