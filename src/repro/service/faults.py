"""Chaos fault injection: break the fleet on purpose, on demand.

A process-global :class:`FaultRegistry` (like the metrics registry —
:func:`get_faults` returns the shared instance) maps **site names** to
armed faults.  Instrumented code calls :meth:`FaultRegistry.fire` at
each site; when a fault is armed there, the call injects the failure:

===========  ==========================================================
kind         effect at the site
===========  ==========================================================
``latency``  delay the request by ``param`` seconds (default 0.05)
``error``    raise :class:`FaultError` → the server answers 500
``drop``     raise :class:`FaultDrop` → the connection is aborted with
             no response (the peer sees a reset, like a crashed server)
``crash``    ``os._exit(86)`` — the process dies as if SIGKILLed
===========  ==========================================================

Sites are plain strings.  The HTTP layer fires
``<scope>:<route>`` per request (``server:/generate``,
``router:/jobs/{id}/stream``, … — route labels are the normalized ones
metrics use, so job ids don't explode the site space) and the fleet
router fires ``router:forward`` around every backend round-trip.

Faults are armed three ways: in code (``get_faults().arm(...)``), at
boot (``repro serve --fault SITE:KIND[:PARAM]``), or at runtime against
a live process (``POST /debug/faults`` — see
:meth:`repro.service.server.HttpServerBase._faults_endpoint`).  ``rate``
makes a fault probabilistic, ``count`` bounds how many times it fires
before disarming itself.  Every fire increments
``repro_faults_injected_total{site,kind}``.

>>> registry = FaultRegistry()
>>> _ = registry.arm("demo:site", "latency", param=0.0, count=1)
>>> registry.fire("demo:site")
0.0
>>> registry.fire("demo:site")  # count exhausted: disarmed
0.0
"""

from __future__ import annotations

import os
import random
import threading

from ..obs import get_registry

__all__ = ["FAULT_KINDS", "Fault", "FaultDrop", "FaultError",
           "FaultRegistry", "get_faults", "parse_fault_spec",
           "reset_faults"]

FAULT_KINDS = ("latency", "error", "drop", "crash")

_FAULTS_FIRED = get_registry().counter(
    "repro_faults_injected_total",
    "chaos faults fired, by site and kind", ("site", "kind"))


class FaultError(RuntimeError):
    """An injected application error: the server answers 500."""


class FaultDrop(BaseException):
    """An injected connection drop.

    Deliberately *not* an :class:`Exception`: the dispatch layer's
    catch-all 500 handler must not turn a drop into a clean response.
    It propagates to the connection handler, which aborts the transport
    without writing anything.
    """


class Fault:
    """One armed fault (see the module table for kind semantics)."""

    __slots__ = ("site", "kind", "rate", "param", "count")

    def __init__(self, site: str, kind: str, rate: float = 1.0,
                 param: float | None = None, count: int | None = None):
        if not isinstance(site, str) or not site:
            raise ValueError("fault site must be a non-empty string")
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; expected one "
                             f"of {FAULT_KINDS}")
        rate = float(rate)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {rate}")
        if param is not None:
            param = float(param)
            if param < 0:
                raise ValueError(f"fault param must be >= 0, got {param}")
        if count is not None:
            if isinstance(count, bool) or not isinstance(count, int):
                raise ValueError(f'"count" must be an integer, '
                                 f"got {count!r}")
            if count < 1:
                raise ValueError(f"fault count must be >= 1, got {count}")
        self.site = site
        self.kind = kind
        self.rate = rate
        self.param = param
        self.count = count

    def to_dict(self) -> dict:
        return {"site": self.site, "kind": self.kind, "rate": self.rate,
                "param": self.param, "count": self.count}


class FaultRegistry:
    """Thread-safe site → armed-fault table (one fault per site)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._faults: dict[str, Fault] = {}

    def arm(self, site: str, kind: str, rate: float = 1.0,
            param: float | None = None,
            count: int | None = None) -> Fault:
        """Arm (or replace) the fault at *site*; returns it."""
        fault = Fault(site, kind, rate=rate, param=param, count=count)
        with self._lock:
            self._faults[site] = fault
        return fault

    def clear(self, site: str | None = None) -> int:
        """Disarm one site (or all of them); returns how many cleared."""
        with self._lock:
            if site is None:
                cleared = len(self._faults)
                self._faults.clear()
                return cleared
            return 1 if self._faults.pop(site, None) is not None else 0

    def active(self) -> list[dict]:
        with self._lock:
            return [fault.to_dict() for fault in self._faults.values()]

    def fire(self, site: str) -> float:
        """Hit *site*: returns the latency to inject in seconds (0.0
        when nothing fires — the caller sleeps, so async sites can
        ``await`` instead of blocking the loop), raises
        :class:`FaultError`/:class:`FaultDrop`, or exits the process
        (``crash``).  Count-bounded faults disarm themselves when
        exhausted."""
        with self._lock:
            fault = self._faults.get(site)
            if fault is None:
                return 0.0
            if fault.rate < 1.0 and random.random() >= fault.rate:
                return 0.0
            if fault.count is not None:
                fault.count -= 1
                if fault.count <= 0:
                    del self._faults[site]
            kind, param = fault.kind, fault.param
        _FAULTS_FIRED.labels(site=site, kind=kind).inc()
        if kind == "latency":
            return param if param is not None else 0.05
        if kind == "error":
            raise FaultError(f"injected fault at {site}")
        if kind == "drop":
            raise FaultDrop(site)
        os._exit(86)  # crash: no cleanup, exactly like a SIGKILL


def parse_fault_spec(spec: str) -> dict:
    """Parse a ``--fault`` flag value: ``SITE:KIND[:PARAM]``.

    The site itself may contain colons (``server:/generate``), so the
    kind is matched from the right.  ``PARAM`` is the kind's knob:
    seconds for ``latency``, a fire probability in [0, 1] for every
    other kind.

    >>> parse_fault_spec("server:/generate:latency:0.25")
    {'site': 'server:/generate', 'kind': 'latency', 'param': 0.25}
    >>> parse_fault_spec("router:forward:drop")
    {'site': 'router:forward', 'kind': 'drop'}
    """
    parts = spec.split(":")
    if len(parts) >= 2 and parts[-1] in FAULT_KINDS:
        site, kind, raw = ":".join(parts[:-1]), parts[-1], None
    elif len(parts) >= 3 and parts[-2] in FAULT_KINDS:
        site, kind, raw = ":".join(parts[:-2]), parts[-2], parts[-1]
    else:
        raise ValueError(
            f"fault spec {spec!r} is not SITE:KIND[:PARAM] with KIND one "
            f"of {FAULT_KINDS}")
    if not site:
        raise ValueError(f"fault spec {spec!r} has an empty site")
    out: dict = {"site": site, "kind": kind}
    if raw is not None:
        try:
            value = float(raw)
        except ValueError:
            raise ValueError(f"fault param {raw!r} is not a number") \
                from None
        if kind == "latency":
            out["param"] = value
        else:
            out["rate"] = value
    return out


_FAULTS = FaultRegistry()


def get_faults() -> FaultRegistry:
    """The process-global fault registry every site checks."""
    return _FAULTS


def reset_faults() -> int:
    """Disarm everything (test teardown); returns how many cleared."""
    return _FAULTS.clear()
