"""Fleet router: one HTTP front for N design-service shards.

``repro route --backend URL --backend URL ...`` runs a thin
:class:`DesignRouter` process that speaks the same protocol as
:class:`~repro.service.server.DesignServer` (it shares the
:class:`~repro.service.server.HttpServerBase` plumbing) but owns no
engine: every request is forwarded to a backend server.

Routing policy:

* ``/generate`` and each entry of ``/batch`` go to
  ``backends[int(spec_hash[:2], 16) % N]`` — the same two-hex-digit
  prefix the :class:`~repro.service.cache.DesignCache` shards by, so a
  design's requests, its cache entry, and the backend that computes it
  always land together and every repeat is a warm hit.  The router
  memoizes raw request body → shard in a bounded LRU, so the warm path
  never parses a spec on the event loop: a repeated ``/generate`` costs
  a dict lookup plus a byte-for-byte proxied round-trip on an executor
  thread.
* ``/batch`` bodies spanning several shards are split into per-shard
  sub-batches submitted concurrently and tracked under one composite
  ``fan-...`` job id; polling it merges the parts back into the
  original request order.
* ``/explore`` is round-robin (any backend can search; its cache tier
  is shared work, not partitioned work).
* ``/jobs`` merges every backend's listing; job ids are namespaced as
  ``s<shard>.<job id>`` so ``GET``/``pause``/``resume``/``stream``
  forward to the owning backend.
* ``/metrics`` folds every backend's JSON snapshot
  (``GET /metrics?format=json``) plus the router's own registry into
  one Prometheus exposition via :meth:`MetricsRegistry.merge`;
  ``/healthz`` reports per-backend liveness and summed job counts.
* ``/trace`` fans to every backend and merges their Chrome-trace
  events with the router's own proxy spans into one fleet tree (every
  write-path forward runs under a ``proxy:<path>`` span whose id rides
  to the backend in ``X-Repro-Trace``, so the hops link up);
  ``/debug/profile`` fans a CPU capture across the fleet and merges
  the flamegraphs; ``/metrics/history`` serves the router's own
  metrics time series for the ``repro top`` dashboard.

Fault tolerance (``--replicas N``): each hash-prefix range gets a
**replica group** of N consecutive backends (a static map; the cache
being content-addressed means any owner computes the same bytes, so
read-your-writes holds across failover).  Write-path forwards run
through a failover loop — live owners in order, then (whole group
down) any live backend as *graceful degradation* (a cache miss, not an
outage) — with deadline-budgeted jittered-backoff retries, safe
because ``/generate``/``/batch`` are idempotent.  Per-backend health
is tracked by :mod:`repro.service.health`: a circuit breaker trips
after K consecutive transport failures and a background prober
re-probes ``GET /healthz`` (exponential backoff capped at the probe
interval) so a revived backend is back ``up`` within one interval.
The merged ``/healthz`` reports the fleet verdict
(``up``/``degraded``/``down``) plus per-backend breaker state, and
``repro_backend_state`` / ``repro_router_retries_total`` /
``repro_breaker_transitions_total`` chart it all in ``repro top``.

The router holds no job state beyond the composite-fan table, so
router restarts only forget fan ids — the underlying per-shard jobs
(journaled by their backends) survive.  Chaos faults
(:mod:`repro.service.faults`) can be armed in the router process too
(``router:/generate``, ``router:forward`` sites) via its own
``POST /debug/faults``.
"""

from __future__ import annotations

import asyncio
import contextlib
import http.client
import itertools
import json
import os
import queue as queue_module
import re
import secrets
import signal
import threading
import time
import urllib.parse
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor

from ..obs import (DEFAULT_HZ, MetricsHistory, MetricsRegistry, Profile,
                   SamplingProfiler, current_span_id, current_trace_id,
                   format_trace_header, get_registry, get_tracer,
                   new_trace_id, profile_for, refresh_trace_metrics,
                   setup_logging, trace_context, trace_span)
from .client import ServiceClient, ServiceError
from .faults import get_faults
from .health import FleetHealth, backoff_delays, classify_error
from .server import (HttpServerBase, ServerOnThread, StreamPayload,
                     _BadRequest, _request_from_body, _serve_async)

__all__ = ["DesignRouter", "RouterThread", "route"]

#: router-namespaced backend job ids: ``s<shard>.<backend job id>``
_SHARD_ID = re.compile(r"^s(\d+)\.(.+)$")

_LIVE = ("queued", "running", "pausing")

_ROUTER_RETRIES = get_registry().counter(
    "repro_router_retries_total",
    "write-path forwards retried or failed over, by what failed the "
    "previous attempt", ("reason",))


class _ClientPool:
    """A small free-list of persistent :class:`ServiceClient`
    connections to one backend (clients are not thread-safe, so each
    forwarding thread borrows one at a time)."""

    def __init__(self, url: str, timeout: float):
        self.url = url
        self.timeout = timeout
        self._lock = threading.Lock()
        self._idle: list[ServiceClient] = []

    @contextlib.contextmanager
    def client(self):
        with self._lock:
            client = self._idle.pop() if self._idle else None
        if client is None:
            # retries=0: the router's failover loop owns retry policy —
            # a pooled client must report a transport failure after one
            # attempt (plus the stale-keep-alive resend), not sit in its
            # own backoff.  The bounded connect budget makes a
            # blackholed backend fail fast instead of eating the whole
            # read timeout.
            client = ServiceClient.from_url(
                self.url, timeout=self.timeout,
                connect_timeout=min(5.0, self.timeout), retries=0)
        try:
            yield client
        except BaseException:
            client.close()
            raise
        else:
            with self._lock:
                self._idle.append(client)


class _ProxyStream(StreamPayload):
    """Proxy one backend job stream through the router: a pump thread
    consumes :meth:`ServiceClient.stream` and hands events to the
    router's event loop through a bounded queue."""

    def __init__(self, router: "DesignRouter", index: int, job_id: str,
                 checkpoint: bool = True):
        self.router = router
        self.index = index
        self.job_id = job_id
        self.checkpoint = checkpoint

    async def events(self, closing: threading.Event):
        events: queue_module.Queue = queue_module.Queue(maxsize=256)
        stop = threading.Event()
        done = object()

        def put(item) -> bool:
            while not stop.is_set():
                try:
                    events.put(item, timeout=0.25)
                    return True
                except queue_module.Full:
                    continue
            return False

        def pump():
            client = ServiceClient.from_url(
                self.router.backends[self.index],
                timeout=self.router.timeout)
            try:
                for event in client.stream(self.job_id,
                                           checkpoint=self.checkpoint):
                    if not put(event):
                        return
            except ServiceError as exc:
                put({"event": "error", "error": str(exc)})
            except OSError as exc:
                put({"event": "error",
                     "error": f"backend stream failed: {exc}"})
            finally:
                client.close()
                put(done)

        loop = asyncio.get_running_loop()
        pumping = loop.run_in_executor(self.router._forward_executor,
                                       pump)
        try:
            while True:
                try:
                    event = events.get_nowait()
                except queue_module.Empty:
                    if closing.is_set():
                        break
                    await asyncio.sleep(0.02)
                    continue
                if event is done:
                    break
                if (event.get("event") == "end"
                        and isinstance(event.get("job"), dict)):
                    job = dict(event["job"])
                    if isinstance(job.get("id"), str):
                        job["id"] = self.router._tag(self.index,
                                                     job["id"])
                    event = dict(event, job=job)
                yield event
        finally:
            # Unblock (and retire) the pump thread if the downstream
            # client abandoned the stream early.
            stop.set()
            pumping.cancel()


class DesignRouter(HttpServerBase):
    """Fan requests across design-service shards (see module doc)."""

    log_name = "route"
    fault_scope = "router"

    def __init__(self, backends, host: str = "127.0.0.1", port: int = 0,
                 timeout: float = 300.0, reuse_port: bool = False,
                 slow_request_ms: float = 1000.0,
                 profile_hz: float | None = None,
                 history_interval_s: float = 2.0,
                 replicas: int = 1,
                 probe_interval_s: float = 1.0,
                 breaker_threshold: int = 3,
                 retry_budget_s: float = 15.0):
        super().__init__(host=host, port=port, reuse_port=reuse_port,
                         slow_request_ms=slow_request_ms)
        urls = [str(u).rstrip("/") for u in backends]
        if not urls:
            raise ValueError("a router needs at least one --backend URL")
        self.backends = urls
        self.timeout = timeout
        if replicas < 1:
            raise ValueError(f"--replicas must be >= 1, got {replicas}")
        #: owners per hash-prefix range: shard i is owned by backends
        #: i, i+1, ... i+replicas-1 (mod N) — a static replica map, so
        #: a down primary fails over to the next owner instead of
        #: blackholing its range
        self.replicas = min(int(replicas), len(urls))
        #: per-request deadline for the write-path failover/retry loop
        self.retry_budget_s = min(retry_budget_s, timeout)
        #: breaker + prober state per backend (``/healthz`` fans, the
        #: request path, and the background prober all feed it)
        self.health = FleetHealth(urls,
                                  probe_interval_s=probe_interval_s,
                                  threshold=breaker_threshold)
        #: always-on sampler of the router process itself
        #: (``repro route --profile``)
        self.profiler = (SamplingProfiler(hz=profile_hz)
                         if profile_hz else None)
        #: the router's own metrics time series (its registry covers
        #: routed-traffic latencies) behind ``GET /metrics/history``
        self.history = (MetricsHistory(interval_s=history_interval_s,
                                       refresh=refresh_trace_metrics)
                        if history_interval_s else None)
        self._pools = [_ClientPool(u, timeout) for u in urls]
        # Forwarding happens on threads (http.client is blocking): size
        # the pool so a slow backend can't starve the others.
        self._forward_executor = ThreadPoolExecutor(
            max_workers=max(16, 8 * len(urls)),
            thread_name_prefix="repro-route")
        #: raw /generate body -> shard index (bounded LRU)
        self._route_cache: OrderedDict[bytes, int] = OrderedDict()
        self.route_cache_entries = 4096
        self._route_lock = threading.Lock()
        self._rr = itertools.count()
        self._fans: dict[str, dict] = {}
        self._fan_lock = threading.Lock()
        self._fan_seq = itertools.count(1)

    async def start(self) -> "DesignRouter":
        await super().start()
        if self.history is not None:
            self.history.start()
        if self.profiler is not None:
            self.profiler.start()
        self.health.start()
        return self

    async def stop(self) -> None:
        self.health.stop()
        if self.history is not None:
            self.history.stop()
        if self.profiler is not None:
            self.profiler.stop()
        await super().stop()
        self._forward_executor.shutdown(wait=False, cancel_futures=True)

    # -- forwarding --------------------------------------------------------

    async def _forward(self, index: int, method: str, path: str,
                       body=None, trace: str | None = None
                       ) -> tuple[int, bytes]:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._forward_executor, self._forward_sync, index, method,
            path, body, trace)

    def _forward_sync(self, index: int, method: str, path: str,
                      body=None, trace: str | None = None
                      ) -> tuple[int, bytes]:
        delay = get_faults().fire("router:forward")
        if delay:
            time.sleep(delay)  # executor thread: blocking is the point
        try:
            with self._pools[index].client() as client:
                status, raw = client.roundtrip(method, path, body,
                                               trace=trace)
        except (OSError, http.client.HTTPException) as exc:
            # HTTPException covers a backend speaking a non-HTTP byte
            # stream (BadStatusLine) or truncating a response — as dead
            # to the router as a refused connect.
            reason = classify_error(exc)
            self.health.record(
                index, False, f"{type(exc).__name__}: {exc}")
            return 502, json.dumps(
                {"error": f"backend {self.backends[index]} unreachable: "
                          f"{type(exc).__name__}: {exc}",
                 "backend": self.backends[index],
                 "backend_index": index,
                 "reason": reason}).encode()
        # Any HTTP response — even a 5xx — means the transport is fine;
        # only transport failures feed the breaker.
        self.health.record(index, True)
        return status, raw

    # -- failover ----------------------------------------------------------

    def owners_of(self, shard: int) -> list[int]:
        """The replica group owning *shard*'s hash-prefix range:
        ``replicas`` consecutive backends starting at the primary."""
        count = len(self.backends)
        return [(shard + offset) % count for offset in
                range(self.replicas)]

    def _candidates(self, owners: list[int]) -> list[int]:
        """Backends to try this round, in preference order: live owners
        first; with the whole replica group down, one live non-owner
        (a cache miss beats an outage — graceful degradation); as a
        last resort the owners anyway (breakers can be stale)."""
        live = [index for index in owners if self.health.allows(index)]
        if live:
            return live
        others = [index for index in range(len(self.backends))
                  if index not in owners and self.health.allows(index)]
        if others:
            _ROUTER_RETRIES.labels(reason="degraded_reroute").inc()
            return [others[next(self._rr) % len(others)]]
        return list(owners)

    @staticmethod
    def _failure_reason(status: int, raw: bytes) -> str:
        if status == 502:
            try:
                reason = json.loads(raw.decode()).get("reason")
            except (ValueError, UnicodeDecodeError, AttributeError):
                reason = None
            if isinstance(reason, str):
                return reason
        return f"http_{status}"

    def _forward_failover_sync(self, shard: int, method: str, path: str,
                               body=None, trace: str | None = None
                               ) -> tuple[int, bytes, int]:
        """Forward with failover: try the shard's replica group (then
        degraded rerouting) and retry transport failures with jittered
        exponential backoff inside the retry budget.  Safe to repeat
        because ``/generate``/``/batch`` are content-addressed and
        idempotent.  Returns ``(status, body, serving backend index)``
        so callers can tag job ids with the backend that actually
        answered."""
        deadline = time.monotonic() + self.retry_budget_s
        owners = self.owners_of(shard)
        delays = backoff_delays()
        last: tuple[int, bytes, int] | None = None
        last_reason: str | None = None
        while True:
            for index in self._candidates(owners):
                if last_reason is not None:
                    _ROUTER_RETRIES.labels(reason=last_reason).inc()
                status, raw = self._forward_sync(index, method, path,
                                                 body, trace)
                if status < 500:
                    return status, raw, index
                last = (status, raw, index)
                last_reason = self._failure_reason(status, raw)
            if last is not None and last_reason is not None \
                    and last_reason.startswith("http_"):
                # every candidate answered with an application-level
                # 5xx: the fleet is reachable and deterministic —
                # waiting won't change the answer
                return last
            delay = next(delays)
            if time.monotonic() + delay >= deadline:
                if last is not None:
                    return last
                return 502, json.dumps(
                    {"error": "no backend reachable within the retry "
                              f"budget ({self.retry_budget_s:g}s)",
                     "reason": "budget_exhausted"}).encode(), owners[0]
            time.sleep(delay)

    async def _proxy(self, shard: int, method: str, path: str,
                     body=None) -> tuple[int, bytes, int]:
        """Forward one write-path request under a router **proxy span**,
        with replica failover (:meth:`_forward_failover_sync`).

        The span joins the incoming trace (or mints a fresh id for
        untraced clients) and its span id rides to the backend in
        ``X-Repro-Trace`` — so in the merged fleet trace the backend's
        spans hang under ``proxy:<path>``, which hangs under whatever
        the client had open.  Returns ``(status, body, serving backend
        index)``."""
        trace_id = current_trace_id() or new_trace_id()
        loop = asyncio.get_running_loop()
        with trace_context(trace_id, current_span_id()):
            with trace_span(f"proxy:{path}", shard=shard,
                            backend=self.backends[shard]) as span:
                status, raw, served = await loop.run_in_executor(
                    self._forward_executor, self._forward_failover_sync,
                    shard, method, path, body,
                    format_trace_header(trace_id, span.span_id))
                span.set(status=status, served_by=self.backends[served])
        return status, raw, served

    @staticmethod
    def _decode(raw: bytes) -> dict:
        try:
            payload = json.loads(raw.decode()) if raw else {}
        except ValueError:
            payload = {"error": raw.decode(errors="replace")}
        return payload if isinstance(payload, dict) else {"value": payload}

    def _tag(self, index: int, job_id: str) -> str:
        return f"s{index}.{job_id}"

    # -- shard selection ---------------------------------------------------

    def shard_for(self, spec_hash: str) -> int:
        """``spec_hash`` prefix → backend index: the same mapping the
        sharded cache uses, so requests follow their cache entries."""
        return int(spec_hash[:2], 16) % len(self.backends)

    def _shard_for_generate(self, data) -> int:
        if not isinstance(data, dict):
            raise _BadRequest("body must be a JSON object")
        spec = data.get("request")
        if not isinstance(spec, dict):
            spec = {k: v for k, v in data.items() if k != "include_rtl"}
        return self.shard_for(_request_from_body(spec).spec_hash())

    # -- routing -----------------------------------------------------------

    async def _route_raw(self, method, path, query, body):
        """The /generate proxy path.  Warm repeats (the DSE loop's
        traffic) hit the raw-body routing LRU and forward byte-for-byte
        without any JSON work on the event loop; a first-seen body pays
        one parse + spec hash to learn its shard."""
        if method != "POST" or path != "/generate" or not body:
            return None
        with self._route_lock:
            index = self._route_cache.get(body)
            if index is not None:
                self._route_cache.move_to_end(body)
        if index is None:
            try:
                data = json.loads(body.decode())
            except (ValueError, UnicodeDecodeError) as exc:
                return 400, {"error": f"malformed JSON body: {exc}"}
            index = self._shard_for_generate(data)  # may raise _BadRequest
            with self._route_lock:
                self._route_cache[body] = index
                while len(self._route_cache) > self.route_cache_entries:
                    self._route_cache.popitem(last=False)
        status, raw, _served = await self._proxy(index, "POST",
                                                 "/generate", body)
        return status, raw

    async def _route(self, method, path, query, data) -> tuple[int, dict]:
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "use GET /healthz"}
            return await self._merged_health()
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "use GET /metrics"}
            return await self._merged_metrics(query)
        if path == "/metrics/history":
            if method != "GET":
                return 405, {"error": "use GET /metrics/history"}
            return 200, self._metrics_history(query)
        if path == "/trace":
            if method != "GET":
                return 405, {"error": "use GET /trace"}
            return await self._merged_trace(query)
        if path == "/debug/profile":
            if method != "GET":
                return 405, {"error": "use GET /debug/profile"}
            return await self._merged_profile(query)
        if path == "/backends":
            if method != "GET":
                return 405, {"error": "use GET /backends"}
            status, raw = await self._forward(0, "GET", "/backends")
            return status, self._decode(raw)
        if path == "/generate":
            if method != "POST":
                return 405, {"error": "use POST /generate"}
            # _route_raw answers every non-empty body; reaching here
            # means there was none.
            raise _BadRequest("body must be a JSON object")
        if path == "/batch":
            if method != "POST":
                return 405, {"error": "use POST /batch"}
            return await self._handle_batch(data)
        if path == "/explore":
            if method != "POST":
                return 405, {"error": "use POST /explore"}
            return await self._handle_explore(data)
        if path == "/jobs":
            if method != "GET":
                return 405, {"error": "use GET /jobs"}
            return await self._merged_jobs()
        if path.startswith("/jobs/"):
            return await self._handle_job(method, path, query)
        return 404, {"error": f"no such endpoint: {path}"}

    # -- fan-out endpoints -------------------------------------------------

    async def _handle_batch(self, data) -> tuple[int, dict]:
        if not isinstance(data, dict) or "requests" not in data:
            raise _BadRequest('body must be {"requests": [...]}')
        specs = data["requests"]
        if not isinstance(specs, list) or not specs:
            raise _BadRequest('"requests" must be a non-empty list')
        shards: dict[int, list[int]] = {}
        for position, spec in enumerate(specs):
            index = self.shard_for(_request_from_body(spec).spec_hash())
            shards.setdefault(index, []).append(position)
        if len(shards) == 1:
            # Single-shard batches forward wholesale: no fan bookkeeping,
            # the composite id machinery, or merged polling needed.
            index = next(iter(shards))
            # The job must be tagged with the backend that actually
            # accepted it — under failover that can be a replica, not
            # the primary the shard map names.
            status, raw, served = await self._proxy(index, "POST",
                                                    "/batch", data)
            payload = self._decode(raw)
            if status < 400 and isinstance(payload.get("job"), str):
                payload["job"] = self._tag(served, payload["job"])
                payload["shards"] = [self.backends[served]]
            return status, payload

        async def submit(index: int, positions: list[int]):
            body = dict(data, requests=[specs[p] for p in positions])
            status, raw, served = await self._proxy(index, "POST",
                                                    "/batch", body)
            return served, positions, status, self._decode(raw)

        outcomes = await asyncio.gather(
            *(submit(i, ps) for i, ps in sorted(shards.items())))
        for index, _positions, status, payload in outcomes:
            if status >= 400 or not isinstance(payload.get("job"), str):
                payload.setdefault("error", "batch submission failed")
                payload["backend"] = self.backends[index]
                return (status if status >= 400 else 502), payload
        fan_id = f"fan-{next(self._fan_seq)}-{secrets.token_hex(3)}"
        with self._fan_lock:
            self._fans[fan_id] = {
                "n_requests": len(specs),
                "parts": [{"shard": index, "job": payload["job"],
                           "positions": positions}
                          for index, positions, _status, payload
                          in outcomes]}
        return 202, {"job": fan_id, "status": "queued",
                     "requests": len(specs),
                     "shards": [self.backends[i] for i, *_ in outcomes]}

    async def _handle_explore(self, data) -> tuple[int, dict]:
        # Round-robin: any backend can search; the shared work is its
        # cache tier, which is already shard-routed per evaluation.
        index = next(self._rr) % len(self.backends)
        status, raw, served = await self._proxy(index, "POST",
                                                "/explore", data)
        payload = self._decode(raw)
        if status < 400 and isinstance(payload.get("job"), str):
            payload["job"] = self._tag(served, payload["job"])
            payload["backend"] = self.backends[served]
        return status, payload

    # -- job forwarding ----------------------------------------------------

    async def _handle_job(self, method, path, query) -> tuple[int, dict]:
        parts = path.strip("/").split("/")
        if len(parts) not in (2, 3):
            return 404, {"error": f"no such endpoint: {path}"}
        job_id = parts[1]
        action = parts[2] if len(parts) == 3 else None
        with self._fan_lock:
            fan = self._fans.get(job_id)
        if fan is not None:
            if action is not None:
                return 400, {"error": "fanned batch jobs support "
                             "GET /jobs/<id> only"}
            if method != "GET":
                return 405, {"error": "use GET /jobs/<id>"}
            return await self._fan_status(job_id, fan)
        match = _SHARD_ID.match(job_id)
        if match is None:
            return 404, {"error": f"no such job: {job_id} (router job "
                         "ids look like s<shard>.<job> or fan-<n>-<id>)"}
        index = int(match.group(1))
        if index >= len(self.backends):
            return 404, {"error": f"no such shard s{index}"}
        backend_job = match.group(2)
        if action == "stream":
            if method != "GET":
                return 405, {"error": "use GET /jobs/<id>/stream"}
            return 200, _ProxyStream(self, index, backend_job,
                                     checkpoint="checkpoint=0"
                                     not in query)
        backend_path = f"/jobs/{backend_job}"
        if action is not None:
            backend_path += f"/{action}"
        if query:
            backend_path += f"?{query}"
        status, raw = await self._forward(index, method, backend_path)
        payload = self._decode(raw)
        for key in ("job", "id"):
            if isinstance(payload.get(key), str):
                payload[key] = self._tag(index, payload[key])
        return status, payload

    async def _fan_status(self, fan_id: str, fan: dict) -> tuple[int,
                                                                 dict]:
        parts = fan["parts"]
        polls = await asyncio.gather(
            *(self._forward(p["shard"], "GET", f"/jobs/{p['job']}")
              for p in parts))
        payloads = [self._decode(raw) for _status, raw in polls]
        for part, (status, _raw), payload in zip(parts, polls, payloads):
            if status >= 400:
                return status, {
                    "id": fan_id,
                    "error": f"backend {self.backends[part['shard']]} "
                             f"lost job {part['job']}: "
                             f"{payload.get('error')}"}
        statuses = [p.get("status") for p in payloads]
        if any(s in _LIVE for s in statuses):
            status = ("queued" if all(s == "queued" for s in statuses)
                      else "running")
        elif any(s == "failed" for s in statuses):
            status = "failed"
        else:
            status = "done"
        done = sum((p.get("progress") or {}).get("done", 0)
                   for p in payloads)
        out: dict = {
            "id": fan_id, "kind": "batch", "status": status,
            "progress": {"done": done, "total": fan["n_requests"]},
            "parts": [{"backend": self.backends[part["shard"]],
                       "job": part["job"],
                       "status": payload.get("status")}
                      for part, payload in zip(parts, payloads)],
            "result": None, "error": None}
        if status == "done":
            merged: list = [None] * fan["n_requests"]
            ok = from_cache = 0
            failures: list = []
            for part, payload in zip(parts, payloads):
                result = payload.get("result") or {}
                for position, record in zip(part["positions"],
                                            result.get("results") or []):
                    merged[position] = record
                ok += result.get("ok", 0)
                from_cache += result.get("from_cache", 0)
                failures.extend(result.get("failed") or [])
            out["result"] = {"results": merged, "ok": ok,
                             "from_cache": from_cache,
                             "failed": failures}
        elif status == "failed":
            errors = [p.get("error") for p in payloads
                      if p.get("status") == "failed"]
            out["error"] = ("; ".join(e for e in errors if e)
                            or "a batch part failed")
        return 200, out

    # -- merged read endpoints ---------------------------------------------

    async def _merged_jobs(self) -> tuple[int, dict]:
        polls = await asyncio.gather(
            *(self._forward(i, "GET", "/jobs")
              for i in range(len(self.backends))))
        jobs: list[dict] = []
        for index, (status, raw) in enumerate(polls):
            if status >= 400:
                continue
            for job in self._decode(raw).get("jobs", []):
                if isinstance(job, dict) and isinstance(job.get("id"),
                                                        str):
                    job = dict(job, id=self._tag(index, job["id"]),
                               backend=self.backends[index])
                jobs.append(job)
        with self._fan_lock:
            fans = [{"id": fan_id, "kind": "batch", "fanned": True,
                     "parts": [{"backend": self.backends[p["shard"]],
                                "job": p["job"]}
                               for p in fan["parts"]]}
                    for fan_id, fan in self._fans.items()]
        return 200, {"jobs": jobs + fans}

    async def _merged_health(self) -> tuple[int, dict]:
        polls = await asyncio.gather(
            *(self._forward(i, "GET", "/healthz")
              for i in range(len(self.backends))))
        ok = True
        jobs: dict[str, int] = {}
        backends = []
        for index, (status, raw) in enumerate(polls):
            payload = self._decode(raw)
            up = status == 200 and bool(payload.get("ok"))
            ok = ok and up
            for key, value in (payload.get("jobs") or {}).items():
                if isinstance(value, (int, float)):
                    jobs[key] = jobs.get(key, 0) + value
            entry: dict = {"url": self.backends[index], "ok": up}
            # tracker verdict (breaker + prober); the live poll above
            # already fed it through _forward_sync's recording
            entry.update(self.health.describe(index))
            if not up:
                entry["error"] = payload.get("error")
            backends.append(entry)
        # "ok" keeps its strict meaning (every backend answering); the
        # fleet "status" adds the degradation verdict: any live backend
        # still serves the whole keyspace via failover/rerouting.
        if ok:
            status_word = "up"
        elif any(entry["ok"] for entry in backends):
            status_word = "degraded"
        else:
            status_word = "down"
        return 200, {"ok": ok, "status": status_word, "router": True,
                     "shards": len(self.backends),
                     "replicas": self.replicas,
                     "jobs": jobs, "backends": backends,
                     "trace": refresh_trace_metrics(),
                     "profiling": self.profiler is not None}

    async def _merged_metrics(self, query: str) -> tuple[int,
                                                         dict | str]:
        polls = await asyncio.gather(
            *(self._forward(i, "GET", "/metrics?format=json")
              for i in range(len(self.backends))))
        merged = MetricsRegistry()
        # The router's own registry first: its http route counters tell
        # the fleet story (gauges merge last-writer-wins, so backend
        # job gauges below overwrite the router's empty ones).
        merged.merge(get_registry().snapshot())
        for status, raw in polls:
            if status >= 400:
                continue
            try:
                merged.merge(self._decode(raw))
            except (KeyError, TypeError, ValueError):
                continue
        if "format=json" in query:
            return 200, merged.snapshot()
        return 200, merged.render()

    def _metrics_history(self, query: str) -> dict:
        """``GET /metrics/history``: the *router's* sample window (its
        registry holds the fleet-facing route latencies).  Per-backend
        history stays on the backends — histories are time series, and
        merging misaligned sampling clocks would fabricate rates."""
        if self.history is None:
            return {"interval_s": None, "max_samples": 0, "count": 0,
                    "samples": []}
        params = urllib.parse.parse_qs(query)
        limit = None
        raw = params.get("samples", [None])[0]
        if raw is not None:
            try:
                limit = max(0, int(raw))
            except ValueError:
                raise _BadRequest('"samples" must be an integer') from None
        return self.history.to_dict(limit)

    async def _merged_trace(self, query: str) -> tuple[int, dict]:
        """``GET /trace``: fan to every backend (query passes through,
        so ``drain``/``trace_id`` behave fleet-wide) and merge their
        Chrome-trace events with the router's own proxy spans into one
        tree — span ids stitch the hops together, and epoch-µs
        timestamps mean the hops align on one Perfetto timeline."""
        params = urllib.parse.parse_qs(query)
        sub = "/trace" + (f"?{query}" if query else "")
        polls = await asyncio.gather(
            *(self._forward(i, "GET", sub)
              for i in range(len(self.backends))))
        tracer = get_tracer()
        drain = params.get("drain", ["0"])[0] in ("1", "true")
        events = tracer.take() if drain else tracer.events()
        wanted = params.get("trace_id", [None])[0]
        if wanted:
            events = [e for e in events
                      if e.get("args", {}).get("trace_id") == wanted]
        merged = list(events)
        dropped = tracer.dropped
        reached = 1
        for status, raw in polls:
            if status >= 400:
                continue
            payload = self._decode(raw)
            tail = payload.get("traceEvents")
            if isinstance(tail, list):
                merged.extend(e for e in tail if isinstance(e, dict))
                reached += 1
            try:
                dropped += int(payload.get("dropped") or 0)
            except (TypeError, ValueError):
                pass
        return 200, {"traceEvents": merged, "displayTimeUnit": "ms",
                     "pid": os.getpid(), "dropped": dropped,
                     "merged_from": reached}

    async def _merged_profile(self, query: str) -> tuple[int, dict]:
        """``GET /debug/profile``: fan the capture across backends and
        fold the profiles into one fleet flamegraph.  With ``seconds=N``
        the router samples itself concurrently with the backends (the
        captures overlap, so one wall-clock wait covers the fleet);
        without, it merges always-on profiler snapshots from whichever
        processes run one."""
        params = urllib.parse.parse_qs(query)
        seconds = params.get("seconds", [None])[0]
        secs = None
        hz = DEFAULT_HZ
        if seconds is not None:
            try:
                secs = min(30.0, max(0.05, float(seconds)))
                hz = float(params.get("hz", [DEFAULT_HZ])[0])
            except ValueError:
                raise _BadRequest('"seconds" and "hz" must be numbers') \
                    from None
        sub = "/debug/profile" + (f"?{query}" if query else "")
        fan = asyncio.gather(*(self._forward(i, "GET", sub)
                               for i in range(len(self.backends))))
        if secs is not None:
            loop = asyncio.get_running_loop()
            own, polls = await asyncio.gather(
                loop.run_in_executor(None, profile_for, secs, hz), fan)
        else:
            own = (self.profiler.snapshot()
                   if self.profiler is not None else None)
            polls = await fan
        merged = own if own is not None else Profile(hz=hz)
        reached = 1 if own is not None else 0
        backends = []
        for index, (status, raw) in enumerate(polls):
            entry: dict = {"url": self.backends[index],
                           "ok": status < 400}
            payload = self._decode(raw)
            if status < 400:
                try:
                    part = Profile.from_dict(payload)
                except (TypeError, ValueError):
                    entry["ok"] = False
                    entry["error"] = "unparseable profile payload"
                else:
                    merged.merge(part)
                    entry["samples"] = part.samples
                    reached += 1
            else:
                entry["error"] = payload.get("error")
            backends.append(entry)
        if reached == 0:
            return 404, {"error": "no profile available: pass "
                         "?seconds=N for a one-shot capture, or run "
                         "the fleet with --profile", "backends": backends}
        return 200, dict(merged.to_dict(), continuous=secs is None,
                         merged_from=reached, backends=backends)


# ---------------------------------------------------------------------------
# Entry points: blocking route() for the CLI, RouterThread for embedding.
# ---------------------------------------------------------------------------

def route(backends, host: str = "127.0.0.1", port: int = 8730,
          quiet: bool = False, log_level: str = "warning",
          timeout: float = 300.0,
          slow_request_ms: float = 1000.0,
          profile_hz: float | None = None,
          history_interval_s: float = 2.0,
          replicas: int = 1,
          probe_interval_s: float = 1.0,
          breaker_threshold: int = 3,
          retry_budget_s: float = 15.0) -> None:
    """Run the fleet router until interrupted (``repro route``)."""
    setup_logging(log_level)
    router = DesignRouter(backends, host=host, port=port,
                          timeout=timeout,
                          slow_request_ms=slow_request_ms,
                          profile_hz=profile_hz,
                          history_interval_s=history_interval_s,
                          replicas=replicas,
                          probe_interval_s=probe_interval_s,
                          breaker_threshold=breaker_threshold,
                          retry_budget_s=retry_budget_s)

    def announce(r: DesignRouter) -> None:
        if not quiet:
            print(f"repro fleet router on {r.url} -> "
                  f"{len(r.backends)} backend(s), "
                  f"{r.replicas} replica(s) per range: "
                  + ", ".join(r.backends), flush=True)

    def _terminate(signum, frame):  # pragma: no cover — signal path
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _terminate)
    try:
        asyncio.run(_serve_async(router, ready=announce))
    except KeyboardInterrupt:  # pragma: no cover — interactive only
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)


class RouterThread(ServerOnThread):
    """A :class:`DesignRouter` on a background thread.

    ``with RouterThread([backend_url, ...]) as url: ...``
    """

    thread_name = "repro-route"

    def __init__(self, backends, host: str = "127.0.0.1", port: int = 0,
                 timeout: float = 300.0,
                 slow_request_ms: float = 1000.0,
                 profile_hz: float | None = None,
                 history_interval_s: float = 2.0,
                 replicas: int = 1,
                 probe_interval_s: float = 1.0,
                 breaker_threshold: int = 3,
                 retry_budget_s: float = 15.0):
        super().__init__(DesignRouter(
            backends, host=host, port=port, timeout=timeout,
            slow_request_ms=slow_request_ms, profile_hz=profile_hz,
            history_interval_s=history_interval_s, replicas=replicas,
            probe_interval_s=probe_interval_s,
            breaker_threshold=breaker_threshold,
            retry_budget_s=retry_budget_s))
