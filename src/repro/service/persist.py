"""Restart-safe job journal: the serving tier's table on disk.

The in-memory :class:`~repro.service.jobs.JobRegistry` dies with the
process; this journal is how it survives.  Each job gets one JSON file
(``<dir>/<job id>.json``) holding its latest
:meth:`~repro.service.jobs.Job.to_dict` snapshot (checkpoint included)
plus its submission params; every transition — and every exploration
step's checkpoint — overwrites it with the same atomic temp-file +
``os.replace`` discipline the design cache uses, so a reader (or a
rebooting server) never observes a partial record.

The journal is deliberately dumb: no log compaction, no cross-file
index, no locking.  One file per job means a transition costs one
atomic write, a forgotten job costs one unlink, and recovery is "read
the directory".  Recovery *policy* — which journaled states are
resumable after a crash — lives in :meth:`JobRegistry.restore`, not
here.

The server places the journal under the first cache shard root
(``<root>/jobs/``), so "reboot on the same cache root" is all it takes
to recover both the designs and the job table that produced them.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import tempfile

__all__ = ["JobJournal", "JOURNAL_FORMAT"]

JOURNAL_FORMAT = "lego-job-journal-v1"

#: job ids are ``<kind>-<seq>-<hex>``; anything else (a hand-edited
#: journal, a path-traversal attempt) is refused rather than written
_SAFE_ID = re.compile(r"^[A-Za-z0-9._-]+$")


class JobJournal:
    """One directory of atomic per-job JSON records."""

    def __init__(self, root):
        self.root = pathlib.Path(root)

    def path_for(self, job_id: str) -> pathlib.Path:
        if not _SAFE_ID.match(job_id):
            raise ValueError(f"unsafe job id for journal: {job_id!r}")
        return self.root / f"{job_id}.json"

    # -- write -------------------------------------------------------------

    def record(self, job_id: str, data: dict) -> None:
        """Persist *data* (a ``Job.to_dict`` + params snapshot) as the
        job's current journal record; last writer wins."""
        path = self.path_for(job_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps({"format": JOURNAL_FORMAT, "job": data},
                             sort_keys=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def forget(self, job_id: str) -> None:
        """Drop a job's record (registry eviction of finished jobs)."""
        try:
            self.path_for(job_id).unlink()
        except (OSError, ValueError):
            pass

    # -- read --------------------------------------------------------------

    def load(self, job_id: str) -> dict | None:
        """The job's journaled snapshot, or None if absent/corrupt."""
        try:
            with open(self.path_for(job_id)) as fh:
                wrapper = json.load(fh)
        except (OSError, ValueError):
            return None
        if (isinstance(wrapper, dict)
                and wrapper.get("format") == JOURNAL_FORMAT
                and isinstance(wrapper.get("job"), dict)
                and wrapper["job"].get("id") == job_id):
            return wrapper["job"]
        return None

    def load_all(self) -> list[dict]:
        """Every readable journal record (corrupt files are skipped,
        never raised: recovery must always be allowed to proceed with
        whatever survived)."""
        if not self.root.is_dir():
            return []
        records = []
        for path in sorted(self.root.glob("*.json")):
            record = self.load(path.stem)
            if record is not None:
                records.append(record)
        return records

    def __len__(self) -> int:
        return len(self.load_all())
