"""Blocking client for the design service (stdlib ``http.client``).

One :class:`ServiceClient` wraps one persistent HTTP/1.1 connection to a
``repro serve`` instance; it reconnects transparently when the server
closes the socket.  The client is deliberately synchronous — benchmark
worker processes, tests, and notebook users all drive it directly, and
concurrency comes from running many clients, exactly like production
traffic.  A client instance is not thread-safe: give each thread or
process its own.

When a trace id is bound in the calling context (``trace_context``),
every request carries it in the ``X-Repro-Trace`` header — so the
server (or the router, and through it every backend and pool worker)
joins the caller's trace tree instead of minting an unrelated id.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.parse

from ..obs import TRACE_HEADER, format_trace_header

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx response from the design service."""

    def __init__(self, status: int, payload: dict):
        self.status = status
        self.payload = payload if isinstance(payload, dict) else {}
        message = self.payload.get("error", repr(payload))
        super().__init__(f"HTTP {status}: {message}")


class _BudgetTimeout(TimeoutError):
    """A timeout already attributed to one budget (connect vs read) —
    the message names which one expired."""


class ServiceClient:
    """Talk to a running design service.

    Two separate time budgets: *connect_timeout* bounds the TCP dial
    (``None`` shares *timeout*, the old single-budget behavior) and
    *timeout* bounds each read.  An expired budget surfaces as a
    :class:`ServiceError` (HTTP 504, client-synthesized) from the
    high-level methods — its message names which budget ran out.
    *retries* is the transport-level retry allowance for **idempotent
    GETs** (and mid-:meth:`stream` resumes): connection resets and
    refusals are retried with a short jittered backoff; timeouts are
    never retried (the budget is the contract).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8731,
                 timeout: float = 120.0,
                 connect_timeout: float | None = None,
                 retries: int = 2):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.retries = max(0, int(retries))
        self._conn: http.client.HTTPConnection | None = None

    @classmethod
    def from_url(cls, url: str, timeout: float = 120.0,
                 connect_timeout: float | None = None,
                 retries: int = 2) -> "ServiceClient":
        """``ServiceClient.from_url("http://127.0.0.1:8731")``."""
        hostport = url.split("//", 1)[-1].rstrip("/")
        host, _, port = hostport.partition(":")
        return cls(host=host, port=int(port or 80), timeout=timeout,
                   connect_timeout=connect_timeout, retries=retries)

    # -- transport ---------------------------------------------------------

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(self, method: str, path: str,
                body: dict | None = None) -> dict:
        """One round-trip; raises :class:`ServiceError` on non-2xx.

        A stale keep-alive socket is retried once — but only when the
        failure happened while *sending* (the server cannot have acted
        on a half-written request) or on an idempotent GET (which gets
        the full *retries* allowance).  A POST whose response was lost
        is NOT resent: ``/batch``/``/explore`` would create a duplicate
        job.  An expired time budget raises :class:`ServiceError` with
        a synthesized 504 naming the budget.
        """
        try:
            status, data = self._roundtrip(method, path, body)
        except _BudgetTimeout as exc:
            raise ServiceError(504, {"error": str(exc)}) from exc
        try:
            decoded = json.loads(data.decode()) if data else {}
        except ValueError:
            decoded = {"error": data.decode(errors="replace")}
        if status >= 400:
            raise ServiceError(status, decoded)
        return decoded

    def request_text(self, method: str, path: str) -> str:
        """Like :meth:`request`, but return the raw response body as
        text — for non-JSON endpoints (the Prometheus exposition of
        ``GET /metrics``)."""
        try:
            status, data = self._roundtrip(method, path, None)
        except _BudgetTimeout as exc:
            raise ServiceError(504, {"error": str(exc)}) from exc
        text = data.decode(errors="replace")
        if status >= 400:
            raise ServiceError(status, {"error": text})
        return text

    def roundtrip(self, method: str, path: str,
                  body: dict | bytes | None = None,
                  trace: str | None = None) -> tuple[int, bytes]:
        """One raw round-trip: ``(status, response bytes)``, no error
        raising, no JSON decoding.  *body* may be pre-encoded bytes —
        the fleet router forwards request bodies verbatim through this
        without paying a decode/encode cycle per hop; *trace* is an
        explicit ``X-Repro-Trace`` value (the router computes it on the
        event loop, then forwards from an executor thread where the
        contextvars are no longer bound)."""
        return self._roundtrip(method, path, body, trace=trace)

    def _new_connection(self) -> http.client.HTTPConnection:
        """Dial under *connect_timeout*, then rebind the socket to the
        read *timeout* — so a refused/blackholed backend fails fast
        without shrinking the budget for slow-but-working responses."""
        connect = (self.connect_timeout if self.connect_timeout is not None
                   else self.timeout)
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=connect)
        try:
            conn.connect()
        except TimeoutError:
            conn.close()
            raise _BudgetTimeout(
                f"connect to {self.host}:{self.port} exceeded the "
                f"connect budget (connect_timeout={connect:g}s)") from None
        except OSError:
            conn.close()
            raise
        if conn.sock is not None:
            conn.sock.settimeout(self.timeout)
        return conn

    def _read_timeout(self, exc: OSError) -> _BudgetTimeout:
        if isinstance(exc, _BudgetTimeout):
            return exc
        return _BudgetTimeout(
            f"read from {self.host}:{self.port} exceeded the total "
            f"budget (timeout={self.timeout:g}s; the connect budget did "
            f"not expire)")

    def _retry_pause(self, attempt: int) -> None:
        time.sleep(min(1.0, 0.02 * 2 ** attempt) * (0.5 + random.random()))

    def _roundtrip(self, method: str, path: str,
                   body: dict | bytes | None,
                   trace: str | None = None) -> tuple[int, bytes]:
        if isinstance(body, bytes):
            payload = body
        else:
            payload = (json.dumps(body).encode()
                       if body is not None else None)
        headers = {"Content-Type": "application/json"}
        if trace is None:
            trace = format_trace_header()  # bound trace id, if any
        if trace is not None:
            headers[TRACE_HEADER] = trace
        # Non-GETs keep the historical two attempts (the second only
        # replaces a stale keep-alive socket); idempotent GETs add the
        # transport retry allowance on top.
        attempts = 2 + (self.retries if method == "GET" else 0)
        last_exc: BaseException | None = None
        for attempt in range(attempts):
            try:
                if self._conn is None:
                    self._conn = self._new_connection()
                self._conn.request(method, path, body=payload,
                                   headers=headers)
            except (ConnectionError, http.client.HTTPException,
                    OSError) as exc:
                self.close()
                if isinstance(exc, TimeoutError):
                    raise self._read_timeout(exc) from exc
                last_exc = exc
                if attempt == attempts - 1:
                    raise
                self._retry_pause(attempt)
                continue
            try:
                response = self._conn.getresponse()
                return response.status, response.read()
            except (ConnectionError, http.client.HTTPException,
                    OSError) as exc:
                self.close()
                if isinstance(exc, TimeoutError):
                    raise self._read_timeout(exc) from exc
                if method != "GET" or attempt == attempts - 1:
                    raise
                last_exc = exc
                self._retry_pause(attempt)
        raise ConnectionError(  # pragma: no cover — loop always raises
            f"could not reach {self.host}:{self.port}: {last_exc}")

    # -- endpoints ---------------------------------------------------------

    def health(self) -> dict:
        return self.request("GET", "/healthz")

    def metrics(self) -> str:
        """The server's Prometheus text exposition — ``GET /metrics``."""
        return self.request_text("GET", "/metrics")

    def metrics_snapshot(self) -> dict:
        """The mergeable JSON snapshot — ``GET /metrics?format=json``
        (the router serves the fleet-merged one); what ``repro top``
        polls."""
        return self.request("GET", "/metrics?format=json")

    def metrics_history(self, samples: int | None = None) -> dict:
        """The server's metrics time series — ``GET /metrics/history``
        (``samples`` trims to the most recent N)."""
        path = "/metrics/history"
        if samples is not None:
            path += f"?samples={int(samples)}"
        return self.request("GET", path)

    def trace(self, drain: bool = False,
              trace_id: str | None = None) -> dict:
        """The span buffer as Chrome-trace JSON — ``GET /trace``.
        Through the router this is the fan-and-merged fleet tree.
        ``drain=True`` clears the buffers as it reads (scrape pattern);
        *trace_id* filters to one request's tree."""
        params = {}
        if drain:
            params["drain"] = "1"
        if trace_id:
            params["trace_id"] = trace_id
        path = "/trace"
        if params:
            path += "?" + urllib.parse.urlencode(params)
        return self.request("GET", path)

    def profile(self, seconds: float | None = None,
                hz: float | None = None) -> dict:
        """A CPU profile — ``GET /debug/profile``.  With *seconds*, a
        one-shot capture of that length; without, a snapshot of the
        server's always-on profiler (``repro serve --profile``)."""
        params = {}
        if seconds is not None:
            params["seconds"] = f"{seconds:g}"
        if hz is not None:
            params["hz"] = f"{hz:g}"
        path = "/debug/profile"
        if params:
            path += "?" + urllib.parse.urlencode(params)
        return self.request("GET", path)

    def backends(self) -> list[dict]:
        """Registered emitter backend families (name, description,
        artifact names, option schema) — ``GET /backends``."""
        return self.request("GET", "/backends")["backends"]

    def generate(self, request: dict | None = None,
                 include_rtl: bool = False, **fields) -> dict:
        """Generate (or fetch) one design.  *request* is a design-request
        dict (``DesignRequest.to_dict`` shape, partial is fine); keyword
        fields are a shorthand: ``client.generate(kernel="gemm",
        array=[4, 4], backend="hls_c")``."""
        spec = dict(request or {})
        spec.update(fields)
        body = {"request": spec}
        if include_rtl:
            body["include_rtl"] = True
        return self.request("POST", "/generate", body)

    def batch(self, requests: list[dict], workers: int | None = None,
              include_rtl: bool = False) -> str:
        """Submit a batch job; returns the job id."""
        body: dict = {"requests": list(requests)}
        if workers is not None:
            body["workers"] = workers
        if include_rtl:
            body["include_rtl"] = True
        return self.request("POST", "/batch", body)["job"]

    def explore(self, models: list[str] | None = None,
                checkpoint: dict | None = None, **params) -> str:
        """Start (or, with *checkpoint*, resume) an exploration job;
        returns the job id.  *params* pass through: ``strategy``,
        ``objective``, ``max_evals``, ``seed``, ``step_evals``,
        ``area_budget_mm2``, ``space``."""
        body = dict(params)
        if models is not None:
            body["models"] = list(models)
        if checkpoint is not None:
            body["checkpoint"] = checkpoint
        return self.request("POST", "/explore", body)["job"]

    def jobs(self) -> list[dict]:
        return self.request("GET", "/jobs")["jobs"]

    def job(self, job_id: str, checkpoint: bool = True) -> dict:
        path = f"/jobs/{job_id}" + ("" if checkpoint else "?checkpoint=0")
        return self.request("GET", path)

    def pause(self, job_id: str) -> dict:
        return self.request("POST", f"/jobs/{job_id}/pause")

    def resume(self, job_id: str) -> dict:
        return self.request("POST", f"/jobs/{job_id}/resume")

    def wait(self, job_id: str, timeout: float = 300.0,
             poll_s: float = 0.05,
             until: tuple[str, ...] = ("done", "failed", "paused"),
             ) -> dict:
        """Poll ``GET /jobs/<id>`` until the job settles; returns the
        final job dict (raises :class:`TimeoutError` on timeout).

        Polls exclude the checkpoint (which grows with an exploration's
        evaluated rows); only the final fetch carries it.
        """
        deadline = time.monotonic() + timeout
        while True:
            state = self.job(job_id, checkpoint=False)
            if state["status"] in until:
                return self.job(job_id)
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"job {job_id} still {state['status']} after "
                    f"{timeout:.0f}s")
            # Cap the sleep to the remaining budget: a full poll_s past
            # the deadline would overshoot timeout=1.0, poll_s=0.5 to
            # ~1.5s.
            time.sleep(min(poll_s, remaining))

    def stream(self, job_id: str, checkpoint: bool = True):
        """Follow ``GET /jobs/<id>/stream``: yield each NDJSON event
        (per-result dicts for batches, per-step checkpoints for
        explorations, then one ``{"event": "end", "job": ...}``) as the
        server produces it — replacing a :meth:`wait` poll loop.

        Runs on its own connection (the server closes a stream's
        connection when it ends), so the client's persistent connection
        stays usable; abandoning the generator early closes the stream.
        """
        path = (f"/jobs/{job_id}/stream"
                + ("" if checkpoint else "?checkpoint=0"))
        # Resume state: the server replays a job's buffered events from
        # the start of every stream, so after a mid-stream connection
        # reset we reconnect and skip the `seen` events already yielded
        # (replay-then-follow).  `failures` resets on progress, so a
        # long stream tolerates `retries` *consecutive* drops, not
        # `retries` total.
        seen = 0
        failures = 0
        while True:
            try:
                conn = self._new_connection()
            except (ConnectionError, OSError) as exc:
                if isinstance(exc, TimeoutError):
                    raise  # already budget-named by _new_connection
                failures += 1
                if failures > self.retries:
                    raise
                self._retry_pause(failures)
                continue
            try:
                try:
                    conn.request("GET", path)
                    response = conn.getresponse()
                except (ConnectionError, http.client.HTTPException,
                        OSError) as exc:
                    if isinstance(exc, TimeoutError):
                        raise self._read_timeout(exc) from exc
                    failures += 1
                    if failures > self.retries:
                        raise
                    self._retry_pause(failures)
                    continue
                if response.status >= 400:
                    data = response.read()
                    try:
                        decoded = (json.loads(data.decode())
                                   if data else {})
                    except ValueError:
                        decoded = {"error": data.decode(errors="replace")}
                    raise ServiceError(response.status, decoded)
                # http.client undoes the chunked framing; each line is
                # one JSON event.
                skip = seen
                try:
                    for raw in response:
                        line = raw.strip()
                        if not line:
                            continue
                        if skip:
                            skip -= 1
                            continue
                        event = json.loads(line.decode())
                        seen += 1
                        failures = 0
                        yield event
                        if (isinstance(event, dict)
                                and event.get("event") == "end"):
                            return  # the protocol's terminal event
                except (ConnectionError, http.client.HTTPException,
                        OSError) as exc:
                    if isinstance(exc, TimeoutError):
                        raise self._read_timeout(exc) from exc
                    failures += 1
                    if failures > self.retries:
                        raise
                    self._retry_pause(failures)
                else:
                    # EOF before the "end" event: the server died
                    # mid-stream.  A truncated chunked response reads
                    # as a clean EOF here (http.client's line iteration
                    # swallows the IncompleteRead), so only the "end"
                    # event above is trusted as a real ending — resume
                    # this like any other mid-stream drop.
                    failures += 1
                    if failures > self.retries:
                        raise ConnectionError(
                            "stream ended before the terminal event "
                            f"({seen} events seen)")
                    self._retry_pause(failures)
            finally:
                conn.close()
