"""Content-addressed design cache: spec-hash → finished design.

Two tiers.  An in-memory LRU (dict of parsed records, bounded by
``memory_entries``) absorbs the hot loop of a DSE run; an on-disk store
(``<root>/<hh>/<hash>.json``, bounded by ``disk_entries``, evicted
oldest-access-first) persists across processes so a warm service start
never regenerates a design it has seen before.  Corrupted entries are
deleted and counted, never raised: the cache must always be allowed to
fall back to regeneration.

Concurrency: every write is atomic (temp file + ``os.replace``), so
readers never observe a partial entry; the memory tier is guarded by a
lock, so the asyncio server's executor threads can share one cache; and
the disk eviction scan takes a cross-process advisory file lock
(``.evict.lock``) so concurrent writers don't both act on the same
stale directory snapshot and evict twice the excess.

The disk tier can be **sharded** across N roots: pass a sequence of
directories as ``root`` and every key routes to
``roots[int(key[:2], 16) % N]`` — the same two-hex-digit prefix that
already fans entries into ``<hh>/`` subdirectories.  SHA-256 keys make
the split uniform, the mapping is stable for a fixed root list (so a
rebuilt cache over the same roots sees every entry), and each shard
carries its own ``.evict.lock`` so concurrent writers on different
shards never contend on one flock.  The fleet router shards *requests*
by the same prefix, which keeps a design's cache entry and the backend
that computes it on the same store.

Besides finished designs, the cache stores **keyed intermediates** of
the staged cold path (:meth:`DesignCache.get_phase` /
:meth:`DesignCache.put_phase`): scheduled-design and golden-vector
records addressed by ``(phase, phase key)``, namespaced into the same
content-addressed store so eviction, sharding, and corruption recovery
apply uniformly.  A small **live tier**
(:meth:`~DesignCache.get_live`/:meth:`~DesignCache.put_live`) keeps
unserializable in-process objects (front-end ADGs, reloaded designs)
for the duration of a burst — it never touches disk and dies with the
process.

Beside the live tier sits the **in-flight registry**
(:attr:`DesignCache.flights`, a :class:`SingleFlight` table): caching
alone cannot deduplicate *concurrent* identical work — two server
threads that miss the cache at the same instant both start computing —
so the pipeline routes each phase computation through
``flights.run(phase, key, fn)``, where the first caller becomes the
leader and every concurrent caller for the same ``(phase, key)`` waits
on the one in-flight computation and shares its result (failures
propagate to all waiters; the slot is always released so a retry
recomputes).  Like the live tier, it is per-process: processes
deduplicate through the disk tier's content-addressed records instead.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pathlib
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

try:
    import fcntl
except ImportError:  # pragma: no cover — non-POSIX fallback
    fcntl = None

from ..obs import get_registry
from ..serialize import canonical_dumps

__all__ = ["DesignCache", "CacheStats", "SingleFlight",
           "default_cache_dir", "shard_roots"]

_FORMAT = "lego-cache-v1"

# Telemetry: one lookup counter across all four tiers (memory / disk /
# phase / live), so `GET /metrics` answers "which tier absorbed the
# traffic" directly.  Families are process-global; pool workers reset
# and re-report them as deltas (see repro.obs.metrics).
_LOOKUPS = get_registry().counter(
    "repro_cache_lookups_total",
    "design-cache lookups by tier and outcome", ("tier", "outcome"))
_PUTS = get_registry().counter(
    "repro_cache_puts_total", "design-cache record writes")
_EVICTIONS = get_registry().counter(
    "repro_cache_evictions_total", "design-cache disk-tier evictions")
_CORRUPT = get_registry().counter(
    "repro_cache_corrupt_total",
    "corrupted design-cache entries dropped")
_FLIGHTS = get_registry().counter(
    "repro_singleflight_total",
    "single-flight outcomes by phase: lead = computed, wait = joined "
    "another caller's in-flight computation, reclaim = timed out "
    "waiting and recomputed", ("phase", "outcome"))
_FLIGHT_WAIT_SECONDS = get_registry().histogram(
    "repro_singleflight_wait_seconds",
    "seconds spent joined to another caller's in-flight computation",
    ("phase",))


class _Flight:
    """One in-flight computation: its completion event plus outcome."""

    __slots__ = ("done", "result", "error")

    def __init__(self):
        self.done = threading.Event()
        self.result = None
        self.error: BaseException | None = None


class SingleFlight:
    """Process-wide dedup of concurrent identical computations.

    ``run(phase, key, fn)`` executes *fn* at most once per ``(phase,
    key)`` at a time: the first caller (the *leader*) computes; every
    caller that arrives while that computation is in flight blocks and
    receives the same result.  The leader publishes its outcome —
    result or exception, ``BaseException`` included, so a leader killed
    mid-flight still releases its waiters — and removes the slot
    *before* waking them, so a later retry always recomputes rather
    than being served a stale failure.

    *timeout* (seconds) bounds how long a waiter trusts its leader: a
    waiter that times out reclaims the slot and computes for itself
    (duplicated work, never a deadlock).  ``None`` waits indefinitely.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._flights: dict[tuple[str, str], _Flight] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._flights)

    def run(self, phase: str, key: str, fn,
            timeout: float | None = None):
        """``(fn(), True)`` as the leader, or ``(shared result,
        False)`` after waiting on another caller's flight.  A leader's
        exception is re-raised in every waiter."""
        slot = (phase, key)
        while True:
            with self._lock:
                flight = self._flights.get(slot)
                lead = flight is None
                if lead:
                    flight = _Flight()
                    self._flights[slot] = flight
            if lead:
                try:
                    flight.result = fn()
                except BaseException as exc:
                    flight.error = exc
                    raise
                finally:
                    # Release the slot before waking waiters: anyone
                    # arriving from here on starts a fresh computation
                    # (a failed flight must never be joinable).
                    with self._lock:
                        if self._flights.get(slot) is flight:
                            del self._flights[slot]
                    flight.done.set()
                _FLIGHTS.labels(phase=phase, outcome="lead").inc()
                return flight.result, True
            t0 = time.perf_counter()
            if not flight.done.wait(timeout):
                # Leader hung (or was killed without unwinding): stop
                # trusting it.  Drop the slot if it is still ours and
                # loop — we (or whoever wins the race) recompute.
                with self._lock:
                    if self._flights.get(slot) is flight:
                        del self._flights[slot]
                _FLIGHTS.labels(phase=phase, outcome="reclaim").inc()
                continue
            _FLIGHTS.labels(phase=phase, outcome="wait").inc()
            _FLIGHT_WAIT_SECONDS.labels(phase=phase).observe(
                time.perf_counter() - t0)
            if flight.error is not None:
                raise flight.error
            return flight.result, False


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro/designs``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME", os.path.expanduser("~/.cache"))
    return pathlib.Path(xdg) / "repro" / "designs"


def shard_roots(base, n: int) -> list[pathlib.Path]:
    """The canonical N-shard layout under one base directory:
    ``<base>/shard-00 .. shard-<n-1>`` (or just ``[base]`` for n <= 1).
    ``repro serve --cache-shards N`` and the fleet benchmark build
    their roots through this so every process agrees on the split."""
    base = pathlib.Path(base)
    if n <= 1:
        return [base]
    return [base / f"shard-{i:02d}" for i in range(n)]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    corrupt: int = 0
    memory_hits: int = 0
    #: intermediate-tier lookups (subset of hits/misses above)
    phase_hits: int = 0
    phase_misses: int = 0
    #: in-process live-object tier (ADGs, reloaded designs)
    live_hits: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "puts": self.puts, "evictions": self.evictions,
                "corrupt": self.corrupt, "memory_hits": self.memory_hits,
                "phase_hits": self.phase_hits,
                "phase_misses": self.phase_misses,
                "live_hits": self.live_hits,
                "hit_rate": round(self.hit_rate, 4)}

    def tiers(self) -> dict:
        """Tier-by-tier breakdown (memory / disk / phase / live) — the
        shape ``/healthz`` and ``repro cache stats`` report, so cache
        behaviour can be read per tier rather than from the flat
        counter soup."""
        return {
            "memory": {"hits": self.memory_hits},
            "disk": {"hits": self.hits - self.memory_hits,
                     "misses": self.misses, "puts": self.puts,
                     "evictions": self.evictions,
                     "corrupt": self.corrupt},
            "phase": {"hits": self.phase_hits,
                      "misses": self.phase_misses},
            "live": {"hits": self.live_hits},
        }


@dataclass
class DesignCache:
    """Content-addressed record store keyed by SHA-256 hex digests.

    ``root`` is a single directory or a sequence of shard directories;
    see the module docstring for the shard routing rule.  With one root
    the behaviour is exactly the unsharded cache.
    """

    root: pathlib.Path = field(default_factory=default_cache_dir)
    memory_entries: int = 128
    disk_entries: int = 4096
    #: bound of the in-process live-object tier (ADGs, reloaded
    #: designs); these can be large, so the default is deliberately
    #: smaller than the record LRU
    live_entries: int = 16
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self):
        if isinstance(self.root, (list, tuple)):
            roots = [pathlib.Path(r) for r in self.root]
            if not roots:
                roots = [default_cache_dir()]
        else:
            roots = [pathlib.Path(self.root)]
        #: disk-tier shard directories (length >= 1, order significant)
        self.roots: list[pathlib.Path] = roots
        # Back-compat: `.root` stays a single path (the first shard) for
        # display, journal placement, and existing single-root callers.
        self.root = roots[0]
        self._memory: OrderedDict[str, dict] = OrderedDict()
        self._live: OrderedDict[str, object] = OrderedDict()
        #: in-flight registry: concurrent identical phase computations
        #: are deduplicated here before they ever reach the tiers above
        self.flights = SingleFlight()
        # Guards the memory LRU and the stats counters: without it, two
        # server threads can race a membership check against an
        # eviction and crash on move_to_end(missing key).
        self._lock = threading.RLock()
        # Approximate on-disk entry count; scanned lazily so put() stays
        # O(1) until the cache actually nears its bound.
        self._disk_count: int | None = None

    # -- addressing --------------------------------------------------------

    def shard_for(self, key: str) -> int:
        """Which shard root holds *key* (0 with a single root)."""
        if len(self.roots) == 1:
            return 0
        try:
            prefix = int(key[:2], 16)
        except ValueError:
            # Non-hex keys never come from our hashes, but route them
            # deterministically instead of crashing.
            prefix = int(hashlib.sha256(key.encode()).hexdigest()[:2], 16)
        return prefix % len(self.roots)

    def path_for(self, key: str) -> pathlib.Path:
        return self.roots[self.shard_for(key)] / key[:2] / f"{key}.json"

    def _shard_keys(self, index: int) -> list[str]:
        root = self.roots[index]
        if not root.is_dir():
            return []
        return sorted(p.stem for p in root.glob("??/*.json"))

    def keys(self) -> list[str]:
        """All keys currently on disk (sorted for stable listings)."""
        seen = []
        for index in range(len(self.roots)):
            seen.extend(self._shard_keys(index))
        return sorted(seen)

    def __len__(self) -> int:
        return len(self.keys())

    def __contains__(self, key: str) -> bool:
        return key in self._memory or self.path_for(key).is_file()

    # -- read / write ------------------------------------------------------

    def peek(self, key: str) -> dict | None:
        """Read a record without touching cache state: no stats, no LRU
        promotion, no mtime refresh, no corruption cleanup.  For
        listings and diagnostics only."""
        try:
            with open(self.path_for(key)) as fh:
                wrapper = json.load(fh)
        except (OSError, ValueError):
            return None
        if isinstance(wrapper, dict) and wrapper.get("format") == _FORMAT:
            return wrapper.get("record")
        return None

    def get_memory(self, key: str) -> dict | None:
        """Memory-tier-only lookup: no disk I/O, so it is safe on an
        event loop.  A hit promotes and counts as usual; a miss returns
        ``None`` *without* counting (the caller falls back to
        :meth:`get`, which does the bookkeeping)."""
        with self._lock:
            record = self._memory.get(key)
            if record is not None:
                self._memory.move_to_end(key)
                self.stats.hits += 1
                self.stats.memory_hits += 1
        if record is not None:
            _LOOKUPS.labels(tier="memory", outcome="hit").inc()
        return record

    def get(self, key: str) -> dict | None:
        """The cached record for *key*, or None on miss/corruption."""
        record = self.get_memory(key)
        if record is not None:
            return record
        path = self.path_for(key)
        try:
            with open(path) as fh:
                wrapper = json.load(fh)
            if (not isinstance(wrapper, dict)
                    or wrapper.get("format") != _FORMAT
                    or "record" not in wrapper):
                raise ValueError("bad cache wrapper")
        except FileNotFoundError:
            with self._lock:
                self.stats.misses += 1
            _LOOKUPS.labels(tier="disk", outcome="miss").inc()
            return None
        except (ValueError, OSError):
            # Corrupted entry: drop it and let the caller regenerate.
            # Decrement the approximate disk count only once the entry
            # is actually gone — decrementing on a failed unlink makes
            # the eviction trigger undercount and the disk tier creep
            # past its bound.
            unlinked = False
            try:
                path.unlink()
                unlinked = True
            except OSError:
                pass
            with self._lock:
                self.stats.corrupt += 1
                self.stats.misses += 1
                if unlinked and self._disk_count is not None:
                    self._disk_count = max(0, self._disk_count - 1)
            _LOOKUPS.labels(tier="disk", outcome="miss").inc()
            _CORRUPT.inc()
            return None
        with self._lock:
            self.stats.hits += 1
            self._remember(key, wrapper["record"])
        _LOOKUPS.labels(tier="disk", outcome="hit").inc()
        # Refresh mtime so disk eviction approximates LRU, not FIFO.
        try:
            os.utime(path)
        except OSError:
            pass
        return wrapper["record"]

    def put(self, key: str, record: dict) -> None:
        """Store *record* under *key* (atomic write; last writer wins)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = canonical_dumps({"format": _FORMAT, "key": key,
                                   "record": record})
        existed = path.is_file()
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        with self._lock:
            self.stats.puts += 1
            if self._disk_count is not None and not existed:
                self._disk_count += 1
            self._remember(key, record)
        _PUTS.inc()
        self._evict_disk()

    def clear(self) -> int:
        """Remove every entry; returns how many were deleted."""
        n = 0
        for key in self.keys():
            try:
                self.path_for(key).unlink()
                n += 1
            except OSError:
                pass
        with self._lock:
            self._memory.clear()
            self._live.clear()
            self._disk_count = 0
        return n

    # -- intermediate (phase) tier -----------------------------------------
    #
    # The staged cold path splits execute_request into hashed phases
    # (dataflows -> ADG -> scheduled design -> golden vectors ->
    # artifacts); each serializable intermediate lives in the same
    # content-addressed store under a phase-namespaced address, so a
    # request differing only in its emission phase (another backend, a
    # lazy testbench, a module rename) reuses the scheduled design and
    # simulation vectors instead of recompiling from scratch.

    @staticmethod
    def phase_address(phase: str, key: str) -> str:
        """Storage address of one ``(phase, phase key)`` intermediate —
        namespaced so it can never collide with a request's spec hash."""
        return hashlib.sha256(f"phase/{phase}/{key}".encode()).hexdigest()

    def get_phase(self, phase: str, key: str) -> dict | None:
        """The cached intermediate of *phase* under *key*, or None."""
        record = self.get(self.phase_address(phase, key))
        with self._lock:
            if record is not None:
                self.stats.phase_hits += 1
            else:
                self.stats.phase_misses += 1
        _LOOKUPS.labels(tier="phase",
                        outcome="hit" if record is not None
                        else "miss").inc()
        return record

    def put_phase(self, phase: str, key: str, record: dict) -> None:
        """Store one phase intermediate (atomic, evictable, shared
        across processes like any other record)."""
        self.put(self.phase_address(phase, key), record)

    # -- live tier ---------------------------------------------------------

    def get_live(self, phase: str, key: str):
        """In-process object cached under ``(phase, key)``, or None.
        Never touches disk; safe for unserializable intermediates."""
        address = self.phase_address(phase, key)
        with self._lock:
            obj = self._live.get(address)
            if obj is not None:
                self._live.move_to_end(address)
                self.stats.live_hits += 1
        _LOOKUPS.labels(tier="live",
                        outcome="hit" if obj is not None
                        else "miss").inc()
        return obj

    def put_live(self, phase: str, key: str, obj) -> None:
        address = self.phase_address(phase, key)
        with self._lock:
            self._live[address] = obj
            self._live.move_to_end(address)
            while len(self._live) > self.live_entries:
                self._live.popitem(last=False)

    # -- eviction ----------------------------------------------------------

    def _remember(self, key: str, record: dict) -> None:
        # Caller holds self._lock.
        self._memory[key] = record
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    @contextlib.contextmanager
    def _eviction_lock(self, root: pathlib.Path | None = None):
        """Cross-process advisory lock for one shard's eviction scan.
        Held by another process → yields False (skip: that process is
        already shrinking the shard, and two scans of the same stale
        snapshot would evict the excess twice).  Each shard root gets
        its own ``.evict.lock``, so writers on different shards never
        serialize against each other."""
        if fcntl is None:
            yield True
            return
        lock_path = (root if root is not None else self.root) / ".evict.lock"
        try:
            fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        except OSError:
            yield True
            return
        try:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                yield False
                return
            try:
                yield True
            finally:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)

    def _evict_disk(self) -> None:
        with self._lock:
            count = self._disk_count
        if count is None:
            # First-time scan happens OUTSIDE the lock: globbing a big
            # cache root must not stall memory-tier readers (the
            # server's event-loop fast path takes this lock).
            count = len(self.keys())
            with self._lock:
                self._disk_count = count
        if count <= self.disk_entries:
            return
        # Each shard keeps its fair slice of the bound; with one root
        # this is exactly the unsharded behaviour.
        per_shard = max(1, self.disk_entries // len(self.roots))
        total = 0
        for index, root in enumerate(self.roots):
            total += self._evict_shard(index, root, per_shard)
        with self._lock:
            self._disk_count = total

    def _evict_shard(self, index: int, root: pathlib.Path,
                     bound: int) -> int:
        """Shrink one shard to *bound* entries; returns the shard's
        entry count after any eviction."""
        paths = [self.path_for(k) for k in self._shard_keys(index)]
        if len(paths) <= bound:
            return len(paths)
        with self._eviction_lock(root) as held:
            if not held:
                return len(paths)
            # Re-scan under the lock: another process may have evicted
            # since the approximate count tripped the threshold.
            paths = [self.path_for(k) for k in self._shard_keys(index)]
            excess = max(len(paths) - bound, 0)

            def mtime(p: pathlib.Path) -> float:
                try:
                    return p.stat().st_mtime
                except OSError:
                    return 0.0
            for path in sorted(paths, key=mtime)[:excess]:
                try:
                    path.unlink()
                    with self._lock:
                        self.stats.evictions += 1
                    _EVICTIONS.inc()
                except OSError:
                    pass
                with self._lock:
                    self._memory.pop(path.stem, None)
            return len(paths) - excess
