"""Design service: content-addressed caching + parallel batch generation.

The generator is positioned to run *in series* with DSE frameworks
(paper §VII-a), which means the same specs get regenerated over and
over.  This subsystem memoizes the frontend→backend flow behind a
canonical, hashable :class:`DesignRequest`, stores finished designs in a
content-addressed :class:`DesignCache`, and fans batches of requests
across a :class:`BatchEngine` worker pool.  The :mod:`repro.service.api`
façade is the single entry point the CLI, the DSE explorer, and the
benchmarks all route through.
"""

from .api import (cache_stats, clear_cache, explore_cached, export_trace,
                  generate_many, get_engine, list_backends, metrics_text,
                  submit)
from .cache import CacheStats, DesignCache, shard_roots
from .client import ServiceClient, ServiceError
from .engine import (BatchEngine, BatchPlan, PlanGroup, evaluate_archs,
                     model_fingerprint, requests_from_space)
from .faults import (FaultError, FaultRegistry, get_faults,
                     parse_fault_spec, reset_faults)
from .health import BackendHealth, CircuitBreaker, FleetHealth
from .jobs import Job, JobRegistry
from .persist import JobJournal
from .router import DesignRouter, RouterThread, route
from .server import (DesignServer, HttpServerBase, ServerOnThread,
                     ServerThread, serve)
from .spec import DesignRequest, DesignResult, execute_request

__all__ = [
    "DesignRequest", "DesignResult", "execute_request",
    "DesignCache", "CacheStats",
    "BatchEngine", "BatchPlan", "PlanGroup",
    "evaluate_archs", "requests_from_space", "model_fingerprint",
    "get_engine", "submit", "generate_many", "explore_cached",
    "cache_stats", "clear_cache", "list_backends",
    "metrics_text", "export_trace",
    "DesignServer", "HttpServerBase", "ServerOnThread", "ServerThread",
    "serve",
    "DesignRouter", "RouterThread", "route",
    "ServiceClient", "ServiceError",
    "Job", "JobRegistry", "JobJournal", "shard_roots",
    "FaultError", "FaultRegistry", "get_faults", "parse_fault_spec",
    "reset_faults",
    "BackendHealth", "CircuitBreaker", "FleetHealth",
]
