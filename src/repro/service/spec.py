"""Canonical, hashable design requests and their results.

A :class:`DesignRequest` captures everything that determines a generated
design — kernel, dataflow set, FU array shape, workload bound overrides,
emitter backend family, backend options, and frontend tunables — in a
frozen dataclass with a deterministic JSON form.  Its SHA-256 content
hash is the identity under which the cache stores the finished design,
so two processes that build the same request always agree on the
address.

The ``backend`` field participates in the canonical hash, so the same
design emitted by two families lives at two distinct cache addresses.
The default family (``verilog``) is *omitted* from the canonical form:
a verilog request hashes exactly as requests did before backends were
pluggable, and pre-existing backend-less cache records load as verilog.

Besides the full spec hash, a request exposes **phase keys** for the
staged cold path (:func:`execute_request` with a cache):

``adg_key``
    identity of the front-end phase (dataflows → ADG) — everything
    except the backend passes and the emission knobs;
``design_key``
    identity of the scheduled design (ADG → §V passes) — the full
    request minus ``backend``/``module``/emission-only options, so two
    requests that differ only in emitter family or module name share
    one cached scheduled design;
``sim_key``
    identity of one dataflow's golden simulation vectors under the
    canonical testbench stimulus.
"""

from __future__ import annotations

import hashlib
import time
import traceback
from dataclasses import dataclass, field, fields

from ..backend import BackendOptions
from ..backends import DEFAULT_BACKEND, backend_names, get_backend
from ..core.frontend import FrontendConfig
from ..obs import (PHASE_ADG, PHASE_DESIGN, PHASE_DESIGN_LOAD, PHASE_EMIT,
                   PHASE_FLIGHT_WAIT, PHASE_REQUEST, PHASE_SCHEDULE,
                   timed_phase, trace_span)
from ..serialize import canonical_dumps

__all__ = ["DesignRequest", "DesignResult", "execute_request",
           "SUPPORTED_KERNELS"]

SUPPORTED_KERNELS = ("gemm", "conv2d", "mttkrp", "attention")


def _options_to_dict(options: BackendOptions) -> dict:
    return {f.name: getattr(options, f.name) for f in fields(BackendOptions)}


def _frontend_to_dict(config: FrontendConfig) -> dict:
    return {f.name: getattr(config, f.name) for f in fields(FrontendConfig)}


@dataclass(frozen=True)
class DesignRequest:
    """One fully-specified generation job.

    ``bounds`` overrides the array-derived workload bounds by dimension
    name (e.g. ``(("k", 32),)`` for GEMM); it is kept as a sorted tuple
    of pairs so equal requests hash equally regardless of the order the
    caller supplied them in.
    """

    kernel: str = "gemm"
    dataflows: tuple[str, ...] = ("KJ",)
    array: tuple[int, int] = (8, 8)
    systolic: bool = True
    bounds: tuple[tuple[str, int], ...] = ()
    options: BackendOptions = field(default_factory=BackendOptions)
    frontend: FrontendConfig = field(default_factory=FrontendConfig)
    module: str = "lego_top"
    backend: str = DEFAULT_BACKEND

    def __post_init__(self):
        object.__setattr__(self, "dataflows", tuple(self.dataflows))
        object.__setattr__(self, "array", tuple(self.array))
        if isinstance(self.bounds, dict):
            items = self.bounds.items()
        else:
            items = self.bounds
        object.__setattr__(
            self, "bounds",
            tuple(sorted((str(k), int(v)) for k, v in items)))
        if self.kernel not in SUPPORTED_KERNELS:
            raise ValueError(f"unknown kernel {self.kernel!r}; "
                             f"expected one of {SUPPORTED_KERNELS}")
        if self.backend not in backend_names():
            raise ValueError(f"unknown backend {self.backend!r}; "
                             f"expected one of {backend_names()}")
        # Families reject options they cannot honour *before* the
        # request is hashed, queued, or cached.
        get_backend(self.backend).validate(self.options)
        if self.kernel == "attention":
            # The attention dataflow pair is fixed (QK then PV, §II);
            # normalize so equal designs hash equally whatever the
            # caller passed in `dataflows`.
            object.__setattr__(self, "dataflows", ("QK", "PV"))
        if len(self.array) != 2 or any(p < 1 for p in self.array):
            raise ValueError(f"array must be two positive ints, "
                             f"got {self.array!r}")

    # -- canonical form ----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "format": "lego-request-v1",
            "kernel": self.kernel,
            "dataflows": list(self.dataflows),
            "array": list(self.array),
            "systolic": self.systolic,
            "bounds": {k: v for k, v in self.bounds},
            "options": _options_to_dict(self.options),
            "frontend": _frontend_to_dict(self.frontend),
            "module": self.module,
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DesignRequest":
        if data.get("format", "lego-request-v1") != "lego-request-v1":
            raise ValueError("not a LEGO design request")
        return cls(
            kernel=data["kernel"],
            dataflows=tuple(data["dataflows"]),
            array=tuple(data["array"]),
            systolic=data.get("systolic", True),
            bounds=tuple((k, v) for k, v in
                         sorted(data.get("bounds", {}).items())),
            options=BackendOptions(**data.get("options", {})),
            frontend=FrontendConfig(**data.get("frontend", {})),
            module=data.get("module", "lego_top"),
            # Pre-multi-backend records carry no backend key: verilog.
            backend=data.get("backend", DEFAULT_BACKEND),
        )

    def canonical_json(self) -> str:
        """Deterministic serialization — the hashed identity.

        The default backend is omitted so verilog requests hash exactly
        as they did before backends were pluggable (warm caches survive
        the upgrade); any other family is hashed in, so cache entries
        never collide across families.  Default-valued emission-only
        options added since (``emit_testbench``) are likewise omitted,
        keeping every pre-existing hash stable.
        """
        data = self.to_dict()
        if data["backend"] == DEFAULT_BACKEND:
            del data["backend"]
        if data["options"].get("emit_testbench", True):
            del data["options"]["emit_testbench"]
        return canonical_dumps(data)

    def spec_hash(self) -> str:
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    # -- phase keys (the staged cold path's intermediate addresses) --------

    def _phase_json(self, phase: str, with_options: bool) -> str:
        data = self.to_dict()
        del data["backend"]   # emission decisions only
        del data["module"]
        if with_options:
            data["options"].pop("emit_testbench", None)
        else:
            del data["options"]  # backend passes happen after the ADG
        data["phase"] = phase
        return canonical_dumps(data)

    def adg_key(self) -> str:
        """Identity of the front-end phase (dataflows → ADG)."""
        return hashlib.sha256(
            self._phase_json("adg", with_options=False).encode()).hexdigest()

    def design_key(self) -> str:
        """Identity of the scheduled design (ADG → §V passes): shared
        by every request that differs only in emitter family, module
        name, or emission-only options."""
        return hashlib.sha256(
            self._phase_json("design",
                             with_options=True).encode()).hexdigest()

    def sim_key(self, dataflow: str) -> str:
        """Identity of one dataflow's golden simulation vectors (the
        canonical testbench stimulus tag is part of the address, so a
        stimulus change can never be served stale vectors)."""
        from ..sim.dag_sim import CANONICAL_STIMULUS

        payload = {"phase": "sim", "design": self.design_key(),
                   "dataflow": dataflow,
                   "stimulus": CANONICAL_STIMULUS}
        return hashlib.sha256(
            canonical_dumps(payload).encode()).hexdigest()

    # -- workload construction --------------------------------------------

    def build_dataflows(self):
        """Materialize the workload + dataflow list this request names,
        mirroring (and replacing) the ad-hoc construction the CLI used."""
        from ..core import kernels
        from ..core.dataflow import Dataflow

        p0, p1 = self.array
        over = dict(self.bounds)

        def bound(name: str, default: int) -> int:
            return int(over.get(name, default))

        if self.kernel == "gemm":
            wl = kernels.gemm(bound("m", 4 * p0), bound("n", 4 * p1),
                              bound("k", 4 * max(p0, p1)))
            return [kernels.gemm_dataflow(k, wl, p0, p1,
                                          systolic=self.systolic)
                    for k in self.dataflows]
        if self.kernel == "conv2d":
            wl = kernels.conv2d(
                bound("n", 1), bound("oc", 2 * p0), bound("ic", 2 * p1),
                bound("oh", 2 * p0), bound("ow", 2 * p1),
                bound("kh", 3), bound("kw", 3))
            return [kernels.conv2d_dataflow(k, wl, p0, p1)
                    for k in self.dataflows]
        if self.kernel == "mttkrp":
            wl = kernels.mttkrp(bound("i", 4 * p0), bound("j", 4 * p1),
                                bound("k", 2 * p0), bound("l", 2 * p1))
            return [kernels.mttkrp_dataflow(k, wl, p0, p1,
                                            systolic=self.systolic)
                    for k in self.dataflows]
        # attention: the fused QK/PV contraction pair; the dataflow list
        # is fixed by the kernel (softmax runs on the PPU).
        heads = bound("h", 2)
        qk = kernels.attention_qk(heads, bound("q", 2 * p0),
                                  bound("k", 2 * p1), bound("d", 2 * p1))
        pv = kernels.attention_pv(heads, bound("q", 2 * p0),
                                  bound("k", 2 * p1), bound("d", 2 * p1))
        control = (1, 1) if self.systolic else (0, 0)
        return [
            Dataflow.build(qk, spatial=[("q", p0), ("k", p1)],
                           control=control, name="Attn-QK"),
            Dataflow.build(pv, spatial=[("q", p0), ("d", p1)],
                           control=control, name="Attn-PV"),
        ]


@dataclass
class DesignResult:
    """The finished (or failed) product of one :class:`DesignRequest`."""

    spec_hash: str
    request: DesignRequest
    design: dict | None = None
    #: text of the *primary* emitted artifact (Verilog for the default
    #: family, the C translation unit for ``hls_c``); kept under its
    #: historical name so cache records and API payloads stay stable
    rtl: str = ""
    #: the full artifact set, ``{filename: text}`` — first entry is the
    #: primary artifact, extra entries are companions (e.g. the HLS-C
    #: family's compilable testbench harness)
    artifacts: dict[str, str] = field(default_factory=dict)
    summary: str = ""
    elapsed_s: float = 0.0
    #: wall-clock seconds per staged phase of the *original* cold run
    #: (``adg``, ``schedule``, ``emit``, plus ``design_load`` when the
    #: scheduled design came from the intermediate cache — the
    #: :mod:`repro.obs.phases` vocabulary) — empty for records written
    #: before the pipeline was staged
    phases: dict[str, float] = field(default_factory=dict)
    from_cache: bool = False
    error: str | None = None
    #: full formatted traceback of the original failure (``error`` is
    #: just its last line) — preserved through the cache record and the
    #: serving job table so a batch's design #713 can be debugged from
    #: the client side.
    traceback: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def design_bytes(self) -> bytes:
        """Canonical byte form of the serialized design (for identity
        checks: equal designs compare byte-equal)."""
        return canonical_dumps(self.design).encode()

    def to_record(self) -> dict:
        return {
            "request": self.request.to_dict(),
            "design": self.design,
            "rtl": self.rtl,
            "artifacts": self.artifacts,
            "summary": self.summary,
            "elapsed_s": self.elapsed_s,
            "phases": self.phases,
            "error": self.error,
            "traceback": self.traceback,
        }

    @classmethod
    def from_record(cls, spec_hash: str, record: dict,
                    from_cache: bool = True) -> "DesignResult":
        request = DesignRequest.from_dict(record["request"])
        artifacts = record.get("artifacts")
        if artifacts is None:
            # Pre-multi-backend record: the single Verilog artifact.
            artifacts = ({f"{request.module}.v": record["rtl"]}
                         if record.get("rtl") else {})
        return cls(spec_hash=spec_hash,
                   request=request,
                   design=record["design"],
                   rtl=record["rtl"],
                   artifacts=artifacts,
                   summary=record["summary"],
                   elapsed_s=record.get("elapsed_s", 0.0),
                   phases=record.get("phases", {}),
                   from_cache=from_cache,
                   error=record.get("error"),
                   traceback=record.get("traceback"))


def _scheduled_design(request: DesignRequest, cache,
                      phases: dict[str, float]):
    """Phases 1+2 of the staged cold path: ``(design, design_dict,
    summary)`` for *request*, reusing the intermediate cache.

    With a cache, the build runs under the cache's single-flight table
    keyed by ``design_key``: concurrent requests for the same scheduled
    design (same spec on many server threads, or different backends of
    one design racing) wait on one in-flight §V run instead of each
    scheduling independently.  A waiter reports the time it spent
    joined to the winner's flight as the ``flight_wait`` phase; a
    leader's failure is re-raised in every waiter and the slot is
    released, so a retry recomputes.
    """
    if cache is None:
        return _build_scheduled_design(request, None, phases)
    design_key = request.design_key()
    live = cache.get_live(PHASE_DESIGN, design_key)
    if live is not None:
        return live
    t0 = time.perf_counter()
    built, lead = cache.flights.run(
        PHASE_DESIGN, design_key,
        lambda: _build_scheduled_design(request, cache, phases))
    if not lead:
        phases[PHASE_FLIGHT_WAIT] = time.perf_counter() - t0
    return built


def _build_scheduled_design(request: DesignRequest, cache,
                            phases: dict[str, float]):
    """The single-flight leader's body: cache tiers re-checked (another
    leader may have finished between our miss and our flight), then the
    cold build — front-end ADG (itself live-cached, so requests
    differing only in backend-pass options share it) followed by the
    §V pass pipeline.  Cold results are stored back in both tiers.
    """
    from ..backend import generate, run_backend
    from ..core.frontend import build_adg
    from ..report import design_summary
    from ..serialize import design_from_dict, design_to_dict

    design_key = request.design_key()
    if cache is not None:
        live = cache.get_live(PHASE_DESIGN, design_key)
        if live is not None:
            return live
        record = cache.get_phase(PHASE_DESIGN, design_key)
        if (isinstance(record, dict)
                and record.get("kind") == "phase-design-v1"):
            with timed_phase(PHASE_DESIGN_LOAD, phases,
                             design_key=design_key[:12]):
                design = design_from_dict(record["design"])
            loaded = (design, record["design"], record["summary"])
            cache.put_live(PHASE_DESIGN, design_key, loaded)
            return loaded

    adg_key = request.adg_key()
    adg = cache.get_live(PHASE_ADG, adg_key) if cache is not None else None
    if adg is None:
        with timed_phase(PHASE_ADG, phases, kernel=request.kernel):
            adg = build_adg(request.build_dataflows(), request.frontend)
        if cache is not None:
            cache.put_live(PHASE_ADG, adg_key, adg)
    with timed_phase(PHASE_SCHEDULE, phases, kernel=request.kernel):
        design = run_backend(generate(adg), request.options)
    design_dict = design_to_dict(design)
    summary = design_summary(design)
    built = (design, design_dict, summary)
    if cache is not None:
        cache.put_phase(PHASE_DESIGN, design_key,
                        {"kind": "phase-design-v1",
                         "design": design_dict, "summary": summary})
        cache.put_live(PHASE_DESIGN, design_key, built)
    return built


def execute_request(request: DesignRequest,
                    cache=None) -> DesignResult:
    """Run the staged frontend→backend flow for one request, emitting
    through the backend family the request names.

    With a :class:`~repro.service.cache.DesignCache`, the hashed phases
    (dataflows→ADG, ADG→scheduled design, design→golden vectors,
    design→artifacts) are reused from the intermediate tier, so a
    request that differs from a previous one only in ``backend`` or
    ``module`` pays for emission alone.  Concurrent calls for the same
    ``spec_hash`` are **single-flighted** through the cache's in-flight
    registry: exactly one computes, every concurrent caller shares its
    :class:`DesignResult` (failed results included — the slot is
    released, so a later retry recomputes).

    Failures are captured, not raised: a batch must survive one bad
    request, and the caller decides what to do with the error string.
    """
    flights = getattr(cache, "flights", None)
    if flights is None:
        return _execute_request_once(request, cache)
    result, _lead = flights.run(
        PHASE_REQUEST, request.spec_hash(),
        lambda: _execute_request_once(request, cache))
    return result


def _execute_request_once(request: DesignRequest,
                          cache=None) -> DesignResult:
    from ..backends import EmitContext, emit_artifacts

    start = time.perf_counter()
    spec_hash = request.spec_hash()
    phases: dict[str, float] = {}
    try:
        with trace_span("request", kernel=request.kernel,
                        backend=request.backend,
                        spec_hash=spec_hash[:12]):
            family = get_backend(request.backend)
            design, design_dict, summary = _scheduled_design(
                request, cache, phases)
            with timed_phase(PHASE_EMIT, phases, family=family.name):
                context = EmitContext(cache=cache, request=request,
                                      design_key=request.design_key())
                artifacts = emit_artifacts(family, design,
                                           module_name=request.module,
                                           context=context)
        primary = next(iter(artifacts), "")
        return DesignResult(
            spec_hash=spec_hash,
            request=request,
            design=design_dict,
            rtl=artifacts.get(primary, ""),
            artifacts=artifacts,
            summary=summary,
            elapsed_s=time.perf_counter() - start,
            phases=phases,
        )
    except Exception as exc:  # noqa: BLE001 — per-request capture is the point
        return DesignResult(
            spec_hash=spec_hash,
            request=request,
            elapsed_s=time.perf_counter() - start,
            phases=phases,
            error="".join(traceback.format_exception_only(type(exc),
                                                          exc)).strip(),
            traceback="".join(traceback.format_exception(
                type(exc), exc, exc.__traceback__)),
        )
