"""Asyncio HTTP front end: design requests stream in, results stream out.

``repro serve`` turns the batch engine into a long-lived service.  The
server is stdlib-only (``asyncio.start_server`` plus a small HTTP/1.1
reader/writer — no web framework): connections are multiplexed on the
event loop, blocking work (generation, DSE steps) runs on executor
threads against the shared :class:`~repro.service.engine.BatchEngine`,
and long-running work lives in a :class:`~repro.service.jobs.JobRegistry`
polled across requests.  Job bodies run on a **dedicated bounded
executor** (sized with ``max_jobs``, capped at 32 threads) while
synchronous ``/generate`` work keeps asyncio's default executor, so a
registry full of long-lived jobs cannot starve interactive requests.

The HTTP layer itself (connection handling, request parsing, dispatch
telemetry, JSON/text/chunked-stream responses) lives in
:class:`HttpServerBase`, shared with the fleet router
(:mod:`repro.service.router`), which speaks the same protocol in front
of N of these servers.

Endpoints (see ``docs/serving.md`` for the full reference):

=======  ====================  ===========================================
method   path                  purpose
=======  ====================  ===========================================
GET      ``/healthz``          liveness + tiered cache stats + job counts
GET      ``/metrics``          Prometheus text exposition of all telemetry
                               (``?format=json`` → mergeable snapshot)
GET      ``/metrics/history``  ring buffer of timestamped metric snapshots
GET      ``/trace``            span buffer as Chrome-trace JSON
                               (``?drain=1`` scrape, ``?trace_id=`` filter)
GET      ``/debug/profile``    CPU profile: ``?seconds=N`` one-shot capture,
                               bare = always-on profiler snapshot
GET/POST ``/debug/faults``     chaos harness: list / arm / clear injected
                               faults (see :mod:`repro.service.faults`)
GET      ``/backends``         registered emitter families + option schemas
POST     ``/generate``         one design, synchronously (cache-first)
POST     ``/batch``            many designs -> job id
POST     ``/explore``          DSE search -> job id (checkpointed steps)
GET      ``/jobs``             job summaries
GET      ``/jobs/<id>``        full job status, result, checkpoint
GET      ``/jobs/<id>/stream`` chunked NDJSON event stream of the job
POST     ``/jobs/<id>/pause``  pause an exploration after its step
POST     ``/jobs/<id>/resume`` resume a paused exploration
=======  ====================  ===========================================

When the engine has a cache, the job table is **journaled** under the
first cache root (``<root>/jobs/``, see
:mod:`repro.service.persist`): every transition and every exploration
step's checkpoint hits disk, and a server rebooted on the same root
reloads the table — interrupted explorations park as ``paused``
(resumable via ``POST /jobs/<id>/resume``), interrupted batches fail
with an error explaining the restart.

Every ``POST /generate`` / ``/batch`` / ``/explore`` response carries a
``trace_id``: the request-scoped id stitched through every span the
request produces (pipeline phases, pool workers, job bodies), so one
grep over an exported Chrome trace reconstructs one request's story.
Telemetry lives in :mod:`repro.obs`; ``GET /metrics`` renders the
process-wide registry (per-route latency histograms, cache tier
hits/misses, phase timings, job-status gauges) in Prometheus text
format.

``POST /generate`` and each entry of ``POST /batch`` accept a
``"backend"`` request field naming the emitter family (``verilog`` by
default); designs emitted by different families are cached under
distinct content hashes, so a warm hit for one family is never served
for another.

`/explore` jobs advance in checkpointed steps
(:func:`repro.dse.checkpoint.run_checkpointed`): after every
``step_evals`` worth of evaluations the job's resumable checkpoint is
refreshed in the job table, so a poll always sees a snapshot that
survives a killed server — POST the checkpoint back to ``/explore`` on a
fresh server and the search resumes bit-for-bit.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import threading
import time
import traceback
import urllib.parse
from concurrent.futures import ThreadPoolExecutor

from ..dse.checkpoint import run_checkpointed, space_from_dict
from ..obs import (DEFAULT_HZ, MetricsHistory, SamplingProfiler,
                   current_span_id, current_trace_id, get_logger,
                   get_registry, get_tracer, new_trace_id,
                   parse_trace_header, profile_for, refresh_trace_metrics,
                   setup_logging, trace_context, trace_span)
from .engine import BatchEngine
from .faults import FaultDrop, FaultError, get_faults
from .jobs import JobRegistry, RegistryFull
from .persist import JobJournal
from .spec import DesignRequest, DesignResult

__all__ = ["DesignServer", "HttpServerBase", "ServerOnThread",
           "ServerThread", "StreamPayload", "serve"]

_STATUS_TEXT = {200: "OK", 202: "Accepted", 400: "Bad Request",
                404: "Not Found", 405: "Method Not Allowed",
                500: "Internal Server Error", 502: "Bad Gateway",
                503: "Service Unavailable"}
_MAX_BODY = 64 * 1024 * 1024

_HTTP_REQUESTS = get_registry().counter(
    "repro_http_requests_total",
    "HTTP requests served, by normalized route and status",
    ("route", "method", "status"))
_HTTP_SECONDS = get_registry().histogram(
    "repro_http_request_seconds",
    "HTTP request handling latency by normalized route", ("route",))
_GENERATE_PATH = get_registry().counter(
    "repro_generate_path_total",
    "how /generate answers were produced: memory-tier hits stay on the "
    "event loop, everything else pays two executor handoffs", ("path",))
_JOBS_GAUGE = get_registry().gauge(
    "repro_jobs", "jobs in the registry by status", ("status",))

#: routes with an embedded job id, normalized for metric labels so the
#: label set stays bounded (no per-id time series)
_JOB_ACTIONS = ("pause", "resume", "stream")


def _route_label(path: str) -> str:
    """Collapse ``/jobs/<id>[/<action>]`` to a bounded label."""
    parts = path.strip("/").split("/")
    if len(parts) >= 2 and parts[0] == "jobs":
        if len(parts) == 2:
            return "/jobs/{id}"
        if len(parts) == 3 and parts[2] in _JOB_ACTIONS:
            return f"/jobs/{{id}}/{parts[2]}"
    return path


class _BadRequest(ValueError):
    """Client error: reported as a 400 with the message as payload."""


def _check_number(data: dict, key: str, kind=(int, float),
                  minimum=None) -> None:
    """400 on a wrongly-typed optional numeric field instead of a
    failed job with an internal traceback."""
    value = data.get(key)
    if value is None:
        return
    if isinstance(value, bool) or not isinstance(value, kind):
        raise _BadRequest(f'"{key}" must be a number, got {value!r}')
    if minimum is not None and value < minimum:
        raise _BadRequest(f'"{key}" must be >= {minimum}, got {value!r}')


def _request_from_body(data: dict) -> DesignRequest:
    """A full :class:`DesignRequest` from a (possibly partial) dict,
    with unknown keys rejected rather than silently ignored."""
    if not isinstance(data, dict):
        raise _BadRequest("design request must be a JSON object")
    base = DesignRequest().to_dict()
    unknown = set(data) - set(base)
    if unknown:
        raise _BadRequest(f"unknown design request fields: "
                          f"{sorted(unknown)}")
    base.update(data)
    try:
        return DesignRequest.from_dict(base)
    except (ValueError, TypeError, KeyError) as exc:
        raise _BadRequest(f"invalid design request: {exc}") from None


def _result_to_json(result: DesignResult,
                    include_rtl: bool = False) -> dict:
    out = {"spec_hash": result.spec_hash,
           "ok": result.ok,
           "from_cache": result.from_cache,
           "elapsed_s": result.elapsed_s,
           "kernel": result.request.kernel,
           "dataflows": list(result.request.dataflows),
           "array": list(result.request.array),
           "backend": result.request.backend,
           "summary": result.summary,
           "error": result.error,
           "traceback": result.traceback}
    if include_rtl:
        out["rtl"] = result.rtl
        out["artifacts"] = result.artifacts
    return out


def _point_to_json(point) -> dict:
    arch = point.arch
    return {"arch": {"name": arch.name, "array": list(arch.array),
                     "buffer_kb": arch.buffer_kb,
                     "dram_gbps": arch.dram_gbps,
                     "freq_mhz": arch.freq_mhz,
                     "dataflows": list(arch.dataflows)},
            "gops": point.gops, "gops_per_watt": point.gops_per_watt,
            "cycles": point.cycles, "energy_pj": point.energy_pj,
            "edp": point.edp}


def _search_result_to_json(result) -> dict:
    return {"strategy": result.strategy, "objective": result.objective,
            "evals_used": result.evals_used,
            "points_evaluated": result.points_evaluated,
            "space_size": result.space_size,
            "degenerate_skipped": result.degenerate_skipped,
            "best": _point_to_json(result.best) if result.best else None,
            "points": [_point_to_json(p) for p in result.points]}


class StreamPayload:
    """Marker payload: a ``_route`` that returns one of these switches
    the response to chunked ``application/x-ndjson`` streaming — one
    JSON document per line, one chunk per event, connection closed when
    the stream ends.  Subclasses implement :meth:`events`."""

    async def events(self, closing: threading.Event):
        """Async-iterate the stream's events (dicts are JSON-encoded,
        strings pass through verbatim as one line)."""
        raise NotImplementedError
        yield  # pragma: no cover — makes this an async generator


class _JobStream(StreamPayload):
    """Live NDJSON view of one job: replays the buffered events, then
    follows new ones at a small poll cadence *on the event loop* (no
    executor thread is held), and terminates with an ``end`` event
    carrying the full job dict once the job settles (done / failed /
    paused) or the server starts closing."""

    poll_s = 0.05

    def __init__(self, job, include_checkpoint: bool = True):
        self.job = job
        self.include_checkpoint = include_checkpoint

    def _strip(self, event: dict) -> dict:
        if self.include_checkpoint or "checkpoint" not in event:
            return event
        return {k: v for k, v in event.items() if k != "checkpoint"}

    async def events(self, closing: threading.Event):
        cursor = 0
        while True:
            fresh, cursor = self.job.events_since(cursor)
            for event in fresh:
                yield self._strip(event)
            if self.job.settled() or closing.is_set():
                break
            await asyncio.sleep(self.poll_s)
        fresh, cursor = self.job.events_since(cursor)
        for event in fresh:
            yield self._strip(event)
        yield {"event": "end",
               "job": self.job.to_dict(
                   include_checkpoint=self.include_checkpoint)}


class HttpServerBase:
    """Shared asyncio HTTP/1.1 front end of the serving tier.

    Owns the socket lifecycle and the protocol plumbing — connection
    handling with keep-alive, request parsing, dispatch with per-route
    telemetry and slow-request logging, JSON/text responses plus
    chunked NDJSON streams (:class:`StreamPayload`).  The design server
    and the fleet router are both thin routing layers over this:
    subclasses implement :meth:`_route` and may override
    :meth:`_route_raw` to answer before the JSON body is even parsed
    (the router's warm proxy path).
    """

    log_name = "serve"
    #: prefix of this process's chaos-fault sites (the router overrides
    #: it): each request fires ``<scope>:<route label>``
    fault_scope = "server"

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 reuse_port: bool = False,
                 slow_request_ms: float = 1000.0):
        self.host = host
        self.port = port
        self.reuse_port = reuse_port
        #: requests slower than this are logged at WARNING with their
        #: route and trace id (0 disables the check)
        self.slow_request_ms = slow_request_ms
        self._log = get_logger(self.log_name)
        self._server: asyncio.AbstractServer | None = None
        self._closing = threading.Event()
        self._tasks: set = set()
        self._writers: set[asyncio.StreamWriter] = set()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "HttpServerBase":
        kwargs = {"reuse_port": True} if self.reuse_port else {}
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=_MAX_BODY, **kwargs)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        self._closing.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Nudge idle keep-alive connections so their handler coroutines
        # finish cleanly instead of being cancelled at loop teardown.
        for writer in list(self._writers):
            try:
                writer.close()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        await asyncio.sleep(0.05)

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- routing hooks (subclass responsibility) ---------------------------

    async def _route(self, method, path, query, data) -> tuple[int, dict]:
        raise NotImplementedError

    async def _route_raw(self, method, path, query, body):
        """Pre-parse fast path: return ``(status, payload)`` to answer
        without JSON-decoding *body*, or ``None`` to fall through to
        :meth:`_route`."""
        return None

    # -- HTTP plumbing -----------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._writers.add(writer)
        try:
            while not self._closing.is_set():
                request = await self._read_request(reader, writer)
                if request is None:
                    break
                method, path, headers, body = request
                try:
                    status, payload = await self._dispatch(
                        method, path, body, headers)
                except FaultDrop:
                    # injected connection drop: abort without writing a
                    # response — the peer sees a reset, exactly as if
                    # the process died mid-request
                    writer.transport.abort()
                    break
                keep_alive = (headers.get("connection", "").lower()
                              != "close")
                if isinstance(payload, StreamPayload):
                    # Streams close the connection when they end: the
                    # terminating zero-chunk plus Connection: close is
                    # simpler and safer than re-synchronizing
                    # keep-alive framing after an aborted stream.
                    await self._respond_stream(writer, status, payload)
                    break
                await self._respond(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError):
            pass
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader, writer):
        """One HTTP/1.1 request -> (method, path, headers, body), or
        None when the peer closed the connection cleanly."""
        line = await reader.readline()
        if not line:
            return None
        try:
            method, path, _version = line.decode("ascii").split()
        except (UnicodeDecodeError, ValueError):
            await self._respond(writer, 400,
                                {"error": "malformed request line"}, False)
            return None
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > _MAX_BODY:
            await self._respond(writer, 400,
                                {"error": "bad Content-Length"}, False)
            return None
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, headers, body

    async def _respond(self, writer, status: int, payload,
                       keep_alive: bool) -> None:
        # A ``str`` payload is served verbatim as text (the Prometheus
        # exposition of /metrics); ``bytes`` pass through as
        # already-encoded JSON (the router's proxy path); everything
        # else is JSON-encoded here.
        if isinstance(payload, str):
            data = payload.encode()
            ctype = "text/plain; version=0.0.4; charset=utf-8"
        elif isinstance(payload, bytes):
            data = payload
            ctype = "application/json"
        else:
            data = json.dumps(payload).encode()
            ctype = "application/json"
        head = (f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(data)}\r\n"
                f"Connection: {'keep-alive' if keep_alive else 'close'}"
                f"\r\n\r\n")
        writer.write(head.encode("ascii") + data)
        await writer.drain()

    async def _respond_stream(self, writer, status: int,
                              stream: StreamPayload) -> None:
        head = (f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
                "Content-Type: application/x-ndjson\r\n"
                "Transfer-Encoding: chunked\r\n"
                "Connection: close\r\n\r\n")
        writer.write(head.encode("ascii"))
        await writer.drain()
        async for event in stream.events(self._closing):
            try:
                delay = get_faults().fire(
                    f"{self.fault_scope}:stream-event")
            except (FaultDrop, FaultError):
                # mid-stream chaos: the response status is already on
                # the wire, so both kinds truncate the chunked stream
                # exactly like a crash between events — resume clients
                # must replay-then-follow
                writer.transport.abort()
                return
            if delay:
                await asyncio.sleep(delay)
            line = event if isinstance(event, str) else json.dumps(event)
            data = line.encode() + b"\n"
            writer.write(b"%x\r\n" % len(data) + data + b"\r\n")
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    # -- dispatch ----------------------------------------------------------

    async def _dispatch(self, method: str, path: str, body: bytes,
                        headers: dict | None = None) -> tuple[int, dict]:
        path, _, query = path.partition("?")
        route = _route_label(path)
        t0 = time.perf_counter()
        # An incoming X-Repro-Trace header joins this request to the
        # caller's trace tree: the id pair is bound for the whole
        # dispatch, so handler spans parent under the upstream span and
        # handlers reuse the caller's trace id instead of minting one.
        trace_id, parent_id = parse_trace_header(
            (headers or {}).get("x-repro-trace"))
        if trace_id is None:
            return await self._dispatch_traced(method, path, query, body,
                                               route, t0)
        with trace_context(trace_id, parent_id):
            return await self._dispatch_traced(method, path, query, body,
                                               route, t0)

    async def _dispatch_traced(self, method, path, query, body, route,
                               t0) -> tuple[int, dict]:
        try:
            if path != "/debug/faults":
                # the chaos-control endpoint itself is exempt, so a
                # latency/error fault can always be cleared remotely
                delay = get_faults().fire(
                    f"{self.fault_scope}:{_route_label(path)}")
                if delay:
                    await asyncio.sleep(delay)
            answer = await self._route_raw(method, path, query, body)
            if answer is not None:
                status, payload = answer
            else:
                try:
                    data = json.loads(body.decode()) if body else {}
                except (ValueError, UnicodeDecodeError) as exc:
                    status, payload = 400, {
                        "error": f"malformed JSON body: {exc}"}
                else:
                    if path == "/debug/faults":
                        status, payload = self._faults_endpoint(method,
                                                                data)
                    else:
                        status, payload = await self._route(method, path,
                                                            query, data)
        except FaultError as exc:
            status, payload = 500, {"error": str(exc), "injected": True}
        except _BadRequest as exc:
            status, payload = 400, {"error": str(exc)}
        except RegistryFull as exc:
            status, payload = 503, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 — must not die
            status = 500
            payload = {"error": f"{type(exc).__name__}: {exc}",
                       "traceback": traceback.format_exc()}
            self._log.error("500 on %s %s: %s", method, path, exc)
        elapsed = time.perf_counter() - t0
        _HTTP_SECONDS.labels(route=route).observe(elapsed)
        _HTTP_REQUESTS.labels(route=route, method=method,
                              status=str(status)).inc()
        if (self.slow_request_ms
                and elapsed * 1000.0 >= self.slow_request_ms):
            trace_id = (payload.get("trace_id", "-")
                        if isinstance(payload, dict) else "-")
            self._log.warning(
                "slow request: %s %s took %.1f ms (>= %.0f ms) "
                "trace_id=%s", method, route, elapsed * 1000.0,
                self.slow_request_ms, trace_id)
        else:
            self._log.debug("%s %s -> %d in %.1f ms", method, route,
                            status, elapsed * 1000.0)
        return status, payload

    def _faults_endpoint(self, method: str, data) -> tuple[int, dict]:
        """``/debug/faults``: the chaos-harness control surface.

        ``GET`` lists armed faults.  ``POST {"site", "kind", "rate"?,
        "param"?, "count"?}`` arms one; ``POST {"clear": true|"site"}``
        disarms.  Shared by server and router — either tier of a fleet
        can be broken (and healed) remotely.
        """
        registry = get_faults()
        if method == "GET":
            return 200, {"faults": registry.active()}
        if method != "POST":
            return 405, {"error": "use GET or POST /debug/faults"}
        if not isinstance(data, dict):
            raise _BadRequest("body must be a JSON object")
        if "clear" in data:
            target = data["clear"]
            if target is True:
                cleared = registry.clear()
            elif isinstance(target, str):
                cleared = registry.clear(target)
            else:
                raise _BadRequest('"clear" must be true or a site name')
            return 200, {"cleared": cleared, "faults": registry.active()}
        try:
            fault = registry.arm(
                site=data.get("site"), kind=data.get("kind"),
                rate=data.get("rate", 1.0), param=data.get("param"),
                count=data.get("count"))
        except (TypeError, ValueError) as exc:
            raise _BadRequest(str(exc)) from None
        return 200, {"armed": fault.to_dict(),
                     "faults": registry.active()}


class DesignServer(HttpServerBase):
    """The serving front end around one shared :class:`BatchEngine`.

    With a cached engine and ``persist_jobs=True`` (the default) the
    job table is journaled under ``<first cache root>/jobs/`` and
    reloaded on construction — see the module docstring's recovery
    matrix.  ``job_workers`` overrides the job-body executor width
    (defaults to ``min(max_jobs, 32)``).
    """

    def __init__(self, engine: BatchEngine | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 step_evals: float = 1.0, max_jobs: int = 1024,
                 reuse_port: bool = False,
                 slow_request_ms: float = 1000.0,
                 persist_jobs: bool = True,
                 job_workers: int | None = None,
                 profile_hz: float | None = None,
                 history_interval_s: float = 2.0,
                 history_samples: int = 600):
        super().__init__(host=host, port=port, reuse_port=reuse_port,
                         slow_request_ms=slow_request_ms)
        self.engine = engine if engine is not None else BatchEngine()
        #: always-on sampling profiler (``repro serve --profile``);
        #: ``GET /debug/profile`` without ``seconds=`` snapshots it.
        self.profiler = (SamplingProfiler(hz=profile_hz)
                         if profile_hz else None)
        #: metrics time series behind ``GET /metrics/history``
        #: (``history_interval_s=0`` disables the recorder).
        self.history = (MetricsHistory(interval_s=history_interval_s,
                                       max_samples=history_samples,
                                       refresh=self._refresh_job_gauges)
                        if history_interval_s else None)
        #: default checkpoint step of `/explore` jobs, in
        #: full-model-equivalents (smaller = finer pause granularity)
        self.step_evals = step_evals
        journal = None
        if persist_jobs and self.engine.cache is not None:
            journal = JobJournal(self.engine.cache.root / "jobs")
        self.journal = journal
        self.jobs = JobRegistry(max_jobs=max_jobs, journal=journal)
        #: boot-recovery summary ({"jobs": n, "resumable": n,
        #: "failed": n}; all zero on a fresh root or without a journal)
        self.recovered = self.jobs.restore()
        if self.recovered.get("jobs"):
            self._log.info(
                "restored %d journaled job(s): %d exploration(s) parked "
                "paused (resumable), %d interrupted batch(es) failed",
                self.recovered["jobs"], self.recovered["resumable"],
                self.recovered["failed"])
        # Long-lived /batch and /explore job bodies get their own
        # bounded pool, sized consistently with the job registry: the
        # asyncio *default* executor (~32 threads) stays reserved for
        # synchronous /generate work, so a registry full of long jobs
        # can no longer starve interactive requests.
        self._job_executor = ThreadPoolExecutor(
            max_workers=(job_workers if job_workers
                         else max(1, min(max_jobs, 32))),
            thread_name_prefix="repro-job")

    async def start(self) -> "DesignServer":
        await super().start()
        if self.history is not None:
            self.history.start()
        if self.profiler is not None:
            self.profiler.start()
        return self

    async def stop(self) -> None:
        self._closing.set()
        if self.history is not None:
            self.history.stop()
        if self.profiler is not None:
            self.profiler.stop()
        # Queued-but-unstarted job bodies are dropped; running ones see
        # _closing at their next checkpoint and park themselves.
        self._job_executor.shutdown(wait=False, cancel_futures=True)
        # The dropped queued jobs would otherwise sit "queued" forever
        # and hang every wait() on them: transition them now — explore
        # parks paused (resumable, and journaled for the next boot),
        # batch fails with an explanation.
        swept = self.jobs.sweep_shutdown()
        if any(swept.values()):
            self._log.info("shutdown swept queued jobs: %s", swept)
        await super().stop()

    # -- routing -----------------------------------------------------------

    async def _route(self, method, path, query, data) -> tuple[int, dict]:
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "use GET /healthz"}
            return 200, self._health()
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "use GET /metrics"}
            if "format=json" in query:
                return 200, self._metrics_snapshot()
            return 200, self._metrics()
        if path == "/metrics/history":
            if method != "GET":
                return 405, {"error": "use GET /metrics/history"}
            return 200, self._metrics_history(query)
        if path == "/trace":
            if method != "GET":
                return 405, {"error": "use GET /trace"}
            return 200, self._trace_payload(query)
        if path == "/debug/profile":
            if method != "GET":
                return 405, {"error": "use GET /debug/profile"}
            return await self._handle_profile(query)
        if path == "/backends":
            if method != "GET":
                return 405, {"error": "use GET /backends"}
            from ..backends import backends_info

            return 200, {"backends": backends_info()}
        if path == "/generate":
            if method != "POST":
                return 405, {"error": "use POST /generate"}
            return await self._handle_generate(data)
        if path == "/batch":
            if method != "POST":
                return 405, {"error": "use POST /batch"}
            return self._handle_batch(data)
        if path == "/explore":
            if method != "POST":
                return 405, {"error": "use POST /explore"}
            return self._handle_explore(data)
        if path == "/jobs":
            if method != "GET":
                return 405, {"error": "use GET /jobs"}
            return 200, {"jobs": self.jobs.list()}
        if path.startswith("/jobs/"):
            return self._handle_job(method, path, query)
        return 404, {"error": f"no such endpoint: {path}"}

    def _health(self) -> dict:
        from ..backends import backend_names

        cache = self.engine.cache
        return {"ok": True,
                "jobs": self.jobs.counts(),
                "workers": self.engine.workers,
                "backends": list(backend_names()),
                "persist": self.journal is not None,
                "recovered": self.recovered,
                "trace": refresh_trace_metrics(),
                "profiling": self.profiler is not None,
                "cache": (dict(cache.stats.as_dict(),
                               root=str(cache.root),
                               shards=len(cache.roots),
                               tiers=cache.stats.tiers())
                          if cache is not None else None)}

    def _refresh_job_gauges(self) -> None:
        for status, count in self.jobs.counts().items():
            _JOBS_GAUGE.labels(status=status).set(count)
        refresh_trace_metrics()

    def _metrics(self) -> str:
        """The Prometheus text exposition of the process-wide registry
        (gauges that describe current state are refreshed first)."""
        self._refresh_job_gauges()
        return get_registry().render()

    def _metrics_snapshot(self) -> dict:
        """The registry as a mergeable JSON snapshot
        (``GET /metrics?format=json``) — what the fleet router folds
        across backends with :meth:`MetricsRegistry.merge` to serve
        one combined exposition."""
        self._refresh_job_gauges()
        return get_registry().snapshot()

    def _metrics_history(self, query: str) -> dict:
        """``GET /metrics/history``: the recorder's sample window (or
        an empty shell when disabled); ``?samples=N`` trims it."""
        if self.history is None:
            return {"interval_s": None, "max_samples": 0, "count": 0,
                    "samples": []}
        params = urllib.parse.parse_qs(query)
        limit = None
        raw = params.get("samples", [None])[0]
        if raw is not None:
            try:
                limit = max(0, int(raw))
            except ValueError:
                raise _BadRequest('"samples" must be an integer') from None
        return self.history.to_dict(limit)

    def _trace_payload(self, query: str) -> dict:
        """``GET /trace``: the span buffer as Chrome-trace JSON.
        ``?drain=1`` drains it (the scrape-and-reset pattern);
        ``?trace_id=<id>`` filters to one request's tree."""
        params = urllib.parse.parse_qs(query)
        tracer = get_tracer()
        drain = params.get("drain", ["0"])[0] in ("1", "true")
        events = tracer.take() if drain else tracer.events()
        wanted = params.get("trace_id", [None])[0]
        if wanted:
            events = [e for e in events
                      if e.get("args", {}).get("trace_id") == wanted]
        return {"traceEvents": events, "displayTimeUnit": "ms",
                "pid": os.getpid(), "dropped": tracer.dropped}

    async def _handle_profile(self, query: str) -> tuple[int, dict]:
        """``GET /debug/profile``: without ``seconds=``, snapshot the
        always-on profiler (404s when the server runs unprofiled);
        with ``seconds=N[&hz=H]``, run a bounded blocking capture on an
        executor thread and return it."""
        params = urllib.parse.parse_qs(query)
        seconds = params.get("seconds", [None])[0]
        if seconds is None:
            if self.profiler is None:
                return 404, {"error": "no continuous profiler running "
                             "(start with repro serve --profile) and no "
                             "seconds= given for a one-shot capture"}
            return 200, dict(self.profiler.snapshot().to_dict(),
                             continuous=True)
        try:
            secs = min(30.0, max(0.05, float(seconds)))
            hz = float(params.get("hz", [DEFAULT_HZ])[0])
        except ValueError:
            raise _BadRequest('"seconds" and "hz" must be numbers') \
                from None
        loop = asyncio.get_running_loop()
        profile = await loop.run_in_executor(None, profile_for, secs, hz)
        return 200, dict(profile.to_dict(), continuous=False)

    # -- endpoint handlers -------------------------------------------------

    async def _handle_generate(self, data) -> tuple[int, dict]:
        if not isinstance(data, dict):
            raise _BadRequest("body must be a JSON object")
        include_rtl = bool(data.get("include_rtl", False))
        payload = data.get("request")
        if payload is None:
            payload = {k: v for k, v in data.items() if k != "include_rtl"}
        request = _request_from_body(payload)
        # Reuse the trace id an upstream hop sent in X-Repro-Trace (the
        # router's proxy span, or a traced client) so the whole request
        # is one tree; mint only for untraced callers.
        trace_id = current_trace_id() or new_trace_id()
        parent_id = current_span_id()
        # Warm fast path: answer *memory-tier* hits directly on the
        # event loop — such a hit is a dict lookup plus JSON, and
        # skipping the two executor-thread handoffs roughly halves warm
        # latency.  Disk-tier hits still go through the executor: their
        # open()+json.load() must not stall every other connection.
        if self.engine.cache is not None:
            key = request.spec_hash()
            record = self.engine.cache.get_memory(key)
            if record is not None:
                _GENERATE_PATH.labels(path="event_loop").inc()
                result = DesignResult.from_record(key, record)
                return 200, dict(
                    _result_to_json(result, include_rtl=include_rtl),
                    trace_id=trace_id)
        _GENERATE_PATH.labels(path="executor").inc()
        loop = asyncio.get_running_loop()
        # contextvars do not follow work into executor threads, so the
        # trace id rides along explicitly and is re-bound over there.
        result = await loop.run_in_executor(
            None, self._submit_traced, request, trace_id, parent_id)
        return 200, dict(_result_to_json(result, include_rtl=include_rtl),
                         trace_id=trace_id)

    def _submit_traced(self, request: DesignRequest, trace_id: str,
                       parent_id: str | None = None) -> DesignResult:
        with trace_context(trace_id, parent_id):
            return self.engine.submit(request)

    def _handle_batch(self, data) -> tuple[int, dict]:
        if not isinstance(data, dict) or "requests" not in data:
            raise _BadRequest('body must be {"requests": [...]}')
        specs = data["requests"]
        if not isinstance(specs, list) or not specs:
            raise _BadRequest('"requests" must be a non-empty list')
        _check_number(data, "workers", kind=int, minimum=1)
        requests = [_request_from_body(spec) for spec in specs]
        job = self.jobs.create("batch", {
            "include_rtl": bool(data.get("include_rtl", False)),
            "workers": data.get("workers"),
            "n_requests": len(requests),
        })
        job.trace_id = current_trace_id() or new_trace_id()
        job.trace_parent = current_span_id()
        self._submit(self._run_batch_job, job, requests)
        return 202, {"job": job.id, "status": job.status,
                     "requests": len(requests), "trace_id": job.trace_id}

    def _handle_explore(self, data) -> tuple[int, dict]:
        from ..models import zoo

        if not isinstance(data, dict):
            raise _BadRequest("body must be a JSON object")
        checkpoint = data.get("checkpoint")
        if checkpoint is not None and not isinstance(checkpoint, dict):
            raise _BadRequest('"checkpoint" must be a checkpoint object')
        if checkpoint is not None:
            model_names = checkpoint.get("model_names", [])
        else:
            model_names = data.get("models", ["ResNet50"])
        if (not isinstance(model_names, list) or not model_names
                or not all(isinstance(m, str) for m in model_names)):
            raise _BadRequest('"models" must be a list of model names')
        unknown = [m for m in model_names if m not in zoo.MODEL_BUILDERS]
        if unknown:
            raise _BadRequest(f"unknown models {unknown}; choose from "
                              f"{sorted(zoo.MODEL_BUILDERS)}")
        step = data.get("step_evals", self.step_evals)
        if step is not None and (isinstance(step, bool)
                                 or not isinstance(step, (int, float))
                                 or step <= 0):
            raise _BadRequest('"step_evals" must be a positive number '
                              "(or null to run without pausing)")
        _check_number(data, "max_evals", minimum=1)
        _check_number(data, "seed", kind=int)
        _check_number(data, "area_budget_mm2")
        strategy = data.get("strategy", "exhaustive")
        params = {
            "models": model_names,
            "strategy": strategy,
            "objective": data.get("objective", "edp"),
            "max_evals": data.get("max_evals"),
            "seed": data.get("seed", 0),
            "area_budget_mm2": data.get("area_budget_mm2"),
            "space": data.get("space"),
            "step_evals": step,
            "checkpoint": checkpoint,
        }
        # Fail fast on bad strategy/space/objective before queueing.
        from ..dse.strategies import OBJECTIVES, get_strategy
        if (params["space"] is not None
                and not isinstance(params["space"], dict)):
            raise _BadRequest('"space" must be an object of DesignSpace '
                              "axes (see repro.dse.space_to_dict)")
        try:
            if checkpoint is None:
                get_strategy(strategy)
            if params["space"] is not None:
                space_from_dict(params["space"])
        except (ValueError, TypeError, KeyError) as exc:
            raise _BadRequest(str(exc)) from None
        if params["objective"] not in OBJECTIVES:
            raise _BadRequest(f"unknown objective "
                              f"{params['objective']!r}; expected "
                              f"{sorted(OBJECTIVES)}")
        job = self.jobs.create("explore", params)
        job.set_checkpoint(checkpoint)
        job.trace_id = current_trace_id() or new_trace_id()
        job.trace_parent = current_span_id()
        self._submit(self._run_explore_job, job)
        return 202, {"job": job.id, "status": job.status,
                     "resumed": checkpoint is not None,
                     "trace_id": job.trace_id}

    def _handle_job(self, method, path, query) -> tuple[int, dict]:
        parts = path.strip("/").split("/")
        if len(parts) not in (2, 3):
            return 404, {"error": f"no such endpoint: {path}"}
        job = self.jobs.get(parts[1])
        if job is None:
            return 404, {"error": f"no such job: {parts[1]}"}
        action = parts[2] if len(parts) == 3 else None
        if action is None:
            if method != "GET":
                return 405, {"error": "use GET /jobs/<id>"}
            include_ckpt = "checkpoint=0" not in query
            return 200, job.to_dict(include_checkpoint=include_ckpt)
        if action == "stream":
            if method != "GET":
                return 405, {"error": "use GET /jobs/<id>/stream"}
            include_ckpt = "checkpoint=0" not in query
            return 200, _JobStream(job, include_checkpoint=include_ckpt)
        if method != "POST":
            return 405, {"error": f"use POST /jobs/<id>/{action}"}
        if action == "pause":
            if job.kind != "explore":
                return 400, {"error": "only explore jobs can be paused"}
            if job.params.get("step_evals") is None:
                return 400, {"error": "this job runs without a "
                             "step_evals budget and cannot pause; "
                             "submit with a step_evals to make an "
                             "exploration pausable"}
            accepted = job.pause()
            return (202 if accepted else 400,
                    {"job": job.id, "status": job.status,
                     "accepted": accepted})
        if action == "resume":
            if not job.resume():
                return 400, {"error": f"job {job.id} is not paused "
                             f"(status {job.status})"}
            self._submit(self._run_explore_job, job)
            return 202, {"job": job.id, "status": job.status}
        return 404, {"error": f"unknown job action {action!r}"}

    # -- background work (executor threads) --------------------------------

    def _submit(self, fn, *args) -> None:
        loop = asyncio.get_running_loop()
        task = loop.run_in_executor(self._job_executor, fn, *args)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    def _run_batch_job(self, job, requests) -> None:
        try:
            job.start()
            include_rtl = job.params.get("include_rtl", False)

            def progress(done, total, result):
                job.update_progress(done=done, total=total)
                # One stream event per finished request, so
                # /jobs/<id>/stream readers see results as they land
                # instead of waiting for the terminal summary.
                job.emit({"event": "result", "done": done, "total": total,
                          "result": _result_to_json(
                              result, include_rtl=include_rtl)})

            # Job bodies run on executor threads, which never inherit
            # the submitting request's context — re-bind the job's
            # trace id (and upstream parent span) so engine/pipeline
            # spans land under it.
            with trace_context(job.trace_id, job.trace_parent), \
                    trace_span("job:batch", job=job.id,
                               n_requests=len(requests)):
                # Record the planner's dry run before executing, so a
                # poller sees how the batch collapses (duplicates,
                # cache hits, schedule groups) while it is running.
                job.plan = self.engine.plan(requests).to_dict()
                results = self.engine.generate_many(
                    requests, workers=job.params.get("workers"),
                    progress=progress)
            job.finish({
                "results": [_result_to_json(r, include_rtl=include_rtl)
                            for r in results],
                "ok": sum(r.ok for r in results),
                "from_cache": sum(r.from_cache for r in results),
                "plan": job.plan,
                "failed": [{"spec_hash": r.spec_hash, "error": r.error,
                            "traceback": r.traceback}
                           for r in results if not r.ok],
            })
        except Exception as exc:  # noqa: BLE001 — job table captures it
            job.fail(f"{type(exc).__name__}: {exc}",
                     traceback.format_exc())

    def _run_explore_job(self, job) -> None:
        with trace_context(job.trace_id, job.trace_parent), \
                trace_span("job:explore", job=job.id):
            self._explore_body(job)

    def _explore_body(self, job) -> None:
        from ..models import zoo

        try:
            job.start()
            p = job.params
            models = [zoo.MODEL_BUILDERS[name]() for name in p["models"]]
            space = (space_from_dict(p["space"])
                     if p.get("space") is not None else None)
            ckpt = job.checkpoint
            step = p.get("step_evals")
            while True:
                if ckpt is None:
                    result, snapshot = run_checkpointed(
                        models, space, strategy=p["strategy"],
                        objective=p["objective"],
                        area_budget_mm2=p["area_budget_mm2"],
                        workers=self.engine.workers,
                        cache=self.engine.cache,
                        max_evals=p["max_evals"], seed=p["seed"],
                        model_names=p["models"], step_evals=step)
                else:
                    result, snapshot = run_checkpointed(
                        models=models, checkpoint=ckpt,
                        workers=self.engine.workers,
                        cache=self.engine.cache, step_evals=step)
                stalled = (job.checkpoint is not None
                           and snapshot.evals_used
                           <= job.checkpoint.get("evals_used", -1.0))
                ckpt = snapshot.to_dict()
                # set_checkpoint (vs plain assignment) journals the
                # snapshot, so a SIGKILL between steps loses at most
                # the step in flight.
                job.set_checkpoint(ckpt)
                job.update_progress(**snapshot.progress())
                job.emit({"event": "checkpoint",
                          "progress": snapshot.progress(),
                          "checkpoint": ckpt})
                if result is not None:
                    job.finish(_search_result_to_json(result))
                    return
                if job.pause_requested or self._closing.is_set():
                    job.mark_paused()
                    return
                if stalled:
                    # Defense in depth: a step that charges nothing can
                    # never finish — fail loudly instead of spinning.
                    job.fail("exploration step made no progress "
                             f"(evals_used stuck at "
                             f"{snapshot.evals_used})")
                    return
        except Exception as exc:  # noqa: BLE001 — job table captures it
            job.fail(f"{type(exc).__name__}: {exc}",
                     traceback.format_exc())


# ---------------------------------------------------------------------------
# Entry points: blocking serve() for the CLI, ServerThread for embedding.
# ---------------------------------------------------------------------------

async def _serve_async(server: DesignServer, ready=None) -> None:
    await server.start()
    if ready is not None:
        ready(server)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:  # pragma: no cover — ctrl-C path
        pass
    finally:
        await server.stop()


def _engine_spec(engine: BatchEngine) -> dict:
    """Picklable recipe for rebuilding an equivalent engine in a
    sibling process (a live engine holds locks and can't cross a spawn
    boundary)."""
    spec: dict = {"workers": engine.workers, "cache": None}
    if engine.cache is not None:
        # All shard roots, in order: the sibling must agree on the
        # key→shard mapping or it would miss every warm entry.
        spec["cache"] = {"root": [str(r) for r in engine.cache.roots],
                         "memory_entries": engine.cache.memory_entries,
                         "disk_entries": engine.cache.disk_entries}
    return spec


def _serve_worker(engine_spec, host, port, step_evals,
                  log_level="warning",
                  slow_request_ms=1000.0,
                  profile_hz=None) -> None:
    """One SO_REUSEPORT sibling of a multi-process ``repro serve``."""
    from .cache import DesignCache

    setup_logging(log_level)
    cache = (DesignCache(**engine_spec["cache"])
             if engine_spec["cache"] is not None else None)
    engine = BatchEngine(cache=cache, workers=engine_spec["workers"])
    # Only the primary process journals jobs: siblings sharing the
    # journal directory would each re-adopt (and could double-resume)
    # the same journaled jobs at boot.  Jobs are per-connection-
    # consistent anyway (see serve() below).
    server = DesignServer(engine=engine, host=host, port=port,
                          step_evals=step_evals, reuse_port=True,
                          slow_request_ms=slow_request_ms,
                          persist_jobs=False, profile_hz=profile_hz)
    try:
        asyncio.run(_serve_async(server))
    except KeyboardInterrupt:  # pragma: no cover — parent tears us down
        pass


def serve(engine: BatchEngine | None = None, host: str = "127.0.0.1",
          port: int = 8731, step_evals: float = 1.0,
          processes: int = 1, quiet: bool = False,
          log_level: str = "warning",
          slow_request_ms: float = 1000.0,
          persist: bool = True,
          profile_hz: float | None = None,
          history_interval_s: float = 2.0) -> None:
    """Run the server until interrupted (the ``repro serve`` command).

    ``processes > 1`` forks that many SO_REUSEPORT siblings sharing the
    same port: the kernel spreads incoming connections across them, and
    they share warm designs through the (multi-process-safe) disk tier
    of the cache.  Stateful job endpoints stay consistent per
    *connection* (HTTP keep-alive pins a client to one sibling), so
    submit-then-poll over one connection works; cross-connection polling
    of a specific job is only guaranteed with ``processes=1``.

    *log_level* configures the ``repro.*`` stdlib loggers (see
    :func:`repro.obs.setup_logging`); requests slower than
    *slow_request_ms* are logged at WARNING with their trace id.

    *persist* (default on; ``repro serve --no-persist-jobs`` turns it
    off) journals the job table under the cache root so a restart on
    the same root recovers it.  With ``processes > 1`` only the primary
    process journals — siblings sharing one journal directory would
    each re-adopt the same jobs at boot.

    *profile_hz* (``repro serve --profile``) keeps a continuous
    sampling profiler running in every process, snapshotted by
    ``GET /debug/profile``; *history_interval_s* paces the metrics
    ring buffer behind ``GET /metrics/history``.
    """
    setup_logging(log_level)
    workers: list = []
    server = DesignServer(engine=engine, host=host, port=port,
                          step_evals=step_evals,
                          reuse_port=processes > 1,
                          slow_request_ms=slow_request_ms,
                          persist_jobs=persist,
                          profile_hz=profile_hz,
                          history_interval_s=history_interval_s)
    if processes > 1:
        import multiprocessing

        if port == 0:
            raise ValueError("multi-process serving needs a fixed --port "
                             "(ephemeral port 0 would bind one port per "
                             "process)")
        ctx = multiprocessing.get_context()
        workers = [ctx.Process(target=_serve_worker, daemon=True,
                               args=(_engine_spec(server.engine), host,
                                     port, step_evals, log_level,
                                     slow_request_ms, profile_hz))
                   for _ in range(processes - 1)]

    def announce(srv: DesignServer) -> None:
        for worker in workers:
            worker.start()
        if not quiet:
            cache = srv.engine.cache
            where = cache.root if cache is not None else "disabled"
            print(f"repro design service on {srv.url} "
                  f"(cache: {where}, workers: {srv.engine.workers}, "
                  f"processes: {processes})", flush=True)

    # `kill <pid>` (SIGTERM) must shut down as cleanly as ctrl-C so the
    # SO_REUSEPORT siblings are torn down too, not orphaned.
    def _terminate(signum, frame):  # pragma: no cover — signal path
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _terminate)
    try:
        asyncio.run(_serve_async(server, ready=announce))
    except KeyboardInterrupt:  # pragma: no cover — interactive only
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        # Only touch workers that actually started: a failed bind raises
        # before announce(), and terminate()/join() on an unstarted
        # Process would mask that error.
        started = [w for w in workers if w.ident is not None]
        for worker in started:
            worker.terminate()
        for worker in started:
            worker.join(timeout=10)


class ServerOnThread:
    """Run any :class:`HttpServerBase` on a background thread (tests,
    benchmarks, notebooks).  Context-manager friendly; subclasses
    construct ``self.server`` and call ``super().__init__(server)``."""

    thread_name = "repro-serve"

    def __init__(self, server: HttpServerBase):
        self.server = server
        self._ready = threading.Event()
        self._stop_event: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._error: BaseException | None = None

    @property
    def url(self) -> str:
        return self.server.url

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> "ServerOnThread":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name=self.thread_name)
        self._thread.start()
        if not self._ready.wait(timeout=30) or self._error is not None:
            raise RuntimeError(f"server failed to start: {self._error}")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=60)

    def __enter__(self) -> str:
        self.start()
        return self.url

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 — surfaced in start()
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        await self.server.start()
        self._ready.set()
        await self._stop_event.wait()
        await self.server.stop()


class ServerThread(ServerOnThread):
    """A :class:`DesignServer` on a background thread.

    ``with ServerThread(engine) as url: ...``
    """

    def __init__(self, engine: BatchEngine | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 step_evals: float = 1.0, max_jobs: int = 1024,
                 slow_request_ms: float = 1000.0,
                 persist_jobs: bool = True,
                 job_workers: int | None = None,
                 profile_hz: float | None = None,
                 history_interval_s: float = 2.0):
        super().__init__(DesignServer(
            engine=engine, host=host, port=port, step_evals=step_evals,
            max_jobs=max_jobs, slow_request_ms=slow_request_ms,
            persist_jobs=persist_jobs, job_workers=job_workers,
            profile_hz=profile_hz,
            history_interval_s=history_interval_s))
