"""Single façade over the design service.

The CLI, the DSE explorer, benchmarks, and library users all route
through these few functions; they share one process-wide
:class:`BatchEngine` (and therefore one cache) unless a caller asks for
its own.  ``REPRO_CACHE_DIR`` relocates the default on-disk store.
"""

from __future__ import annotations

import pathlib

from ..obs import (current_trace_id, export_chrome_trace, get_registry,
                   new_trace_id, trace_context)
from .cache import DesignCache
from .engine import BatchEngine
from .spec import DesignRequest, DesignResult

__all__ = ["get_engine", "submit", "generate_many", "explore_cached",
           "cache_stats", "clear_cache", "list_backends",
           "metrics_text", "export_trace"]

_engine: BatchEngine | None = None


def get_engine(cache_dir: str | pathlib.Path | None = None,
               workers: int | None = None,
               reset: bool = False) -> BatchEngine:
    """The shared engine (created on first use).  ``reset=True`` or a
    *different* ``cache_dir`` rebuilds it — e.g. to point tests at a tmp
    dir; re-passing the current ``cache_dir`` keeps the warm engine."""
    global _engine
    requested = pathlib.Path(cache_dir) if cache_dir is not None else None
    if (_engine is None or reset
            or (requested is not None
                and (_engine.cache is None
                     or _engine.cache.root != requested))):
        cache = DesignCache(root=requested) if requested is not None \
            else DesignCache()
        _engine = BatchEngine(cache=cache, workers=workers)
    elif workers is not None:
        _engine.workers = workers
    return _engine


def submit(request: DesignRequest, **engine_kwargs) -> DesignResult:
    """Generate (or fetch) a single design.

    Cold requests run the *staged* pipeline against the shared cache:
    a request differing from earlier traffic only in ``backend`` or
    ``module`` reuses the cached scheduled design (and, for testbench
    emission, the golden simulation vectors) instead of recompiling —
    see ``DesignRequest.design_key``/``sim_key`` and the
    ``phase_hits`` counter in :func:`cache_stats`.

    Spans recorded along the way carry the ambient trace id, minting a
    fresh one when the caller has not bound one (the library-use mirror
    of the ids the server mints per HTTP request)."""
    with trace_context(current_trace_id() or new_trace_id()):
        return get_engine(**engine_kwargs).submit(request)


def generate_many(requests, workers: int | None = None, progress=None,
                  **engine_kwargs) -> list[DesignResult]:
    """Generate a batch of requests (or a whole ``DesignSpace``)."""
    with trace_context(current_trace_id() or new_trace_id()):
        return get_engine(**engine_kwargs).generate_many(
            requests, workers=workers, progress=progress)


def explore_cached(models, space=None, objective: str = "edp",
                   area_budget_mm2: float | None = None, tech=None,
                   workers: int | None = None, strategy="exhaustive",
                   max_evals: int | None = None, seed: int = 0,
                   **engine_kwargs):
    """DSE search through the shared engine: point evaluations are
    parallel across ``workers`` and memoized in the design cache, so a
    guided *strategy* (``"anneal"``, ``"halving"``, or a
    :class:`~repro.dse.strategies.SearchStrategy` instance) revisits
    warm points for free.  Returns the full
    :class:`~repro.dse.strategies.SearchResult` (points + evals-used)."""
    from ..dse.strategies import run_search

    engine = get_engine(**engine_kwargs)
    return run_search(models, space, strategy=strategy,
                      objective=objective,
                      area_budget_mm2=area_budget_mm2, tech=tech,
                      workers=workers or engine.workers,
                      cache=engine.cache, max_evals=max_evals, seed=seed)


def list_backends() -> list[dict]:
    """The registered emitter backend families and their option schemas
    (the payload of ``GET /backends`` and ``repro backends``).

    >>> [b["name"] for b in list_backends()]
    ['hls_c', 'verilog']
    """
    from ..backends import backends_info

    return backends_info()


def cache_stats() -> dict:
    """Counters plus size of the shared engine's cache, including the
    per-tier breakdown (memory / disk / phase / live) that ``repro
    cache stats`` and ``GET /healthz`` print."""
    engine = get_engine()
    stats = engine.cache.stats.as_dict()
    stats["disk_entries"] = len(engine.cache)
    stats["root"] = str(engine.cache.root)
    stats["tiers"] = engine.cache.stats.tiers()
    return stats


def metrics_text() -> str:
    """This process's telemetry as Prometheus text — what a server
    would serve on ``GET /metrics`` (``repro metrics`` without
    ``--url`` prints this)."""
    return get_registry().render()


def export_trace(path) -> int:
    """Write every span buffered so far to *path* as Chrome-trace-event
    JSON (open it at https://ui.perfetto.dev); returns the number of
    events written."""
    return export_chrome_trace(path)


def clear_cache() -> int:
    """Empty the shared cache; returns the number of entries removed."""
    return get_engine().cache.clear()
