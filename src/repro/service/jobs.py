"""The serving job table: long-running work the HTTP front end tracks.

A :class:`Job` is one `/batch` or `/explore` request living across many
HTTP round-trips: submitted, polled via ``GET /jobs/<id>``, optionally
paused and resumed (explorations), and eventually carrying its result
or the full traceback of its failure.  The :class:`JobRegistry` is the
thread-safe table the asyncio server and its executor threads share;
nothing in here knows about HTTP.

Two serving-tier facilities hang off the job table:

* **Persistence** — give the registry a journal (see
  :class:`repro.service.persist.JobJournal`) and every transition is
  recorded to disk; :meth:`JobRegistry.restore` reloads the table at
  boot and applies the recovery matrix (interrupted explorations park
  as ``paused`` with their last journaled checkpoint, interrupted
  batches fail with an error explaining the restart).
* **Events** — job bodies :meth:`Job.emit` per-result / per-checkpoint
  events into a bounded buffer that the ``/jobs/<id>/stream`` endpoint
  drains with a cursor, so clients can stream results as they finish
  instead of polling.
"""

from __future__ import annotations

import itertools
import secrets
import threading
import time

__all__ = ["Job", "JobRegistry", "JOB_STATUSES", "RegistryFull"]

#: bound of a job's event buffer; past it, events are dropped (the
#: terminal "end" event is synthesized by the stream, never buffered,
#: so a stream always terminates; ``events_dropped`` records the loss)
MAX_JOB_EVENTS = 10_000

JOB_STATUSES = ("queued", "running", "pausing", "paused", "done", "failed")

#: statuses that still hold (or may again hold) an executor thread
LIVE_STATUSES = ("queued", "running", "pausing", "paused")


class RegistryFull(RuntimeError):
    """Backpressure signal: too many live jobs; try again later."""


class Job:
    """One unit of tracked background work."""

    def __init__(self, job_id: str, kind: str, params: dict):
        self.id = job_id
        self.kind = kind
        self.params = params
        self.status = "queued"
        self.created_s = time.time()
        self.started_s: float | None = None
        self.finished_s: float | None = None
        self.progress: dict = {}
        self.result: dict | None = None
        self.error: str | None = None
        self.traceback: str | None = None
        #: serialized SearchCheckpoint of an exploration job — updated
        #: after every step, so a poll always sees a resumable snapshot
        #: even if the server dies mid-search.
        self.checkpoint: dict | None = None
        #: request-scoped trace id minted at submission; every span the
        #: job body produces (pool workers included) carries it, so an
        #: exported Chrome trace can be filtered down to this job.
        self.trace_id: str | None = None
        #: span id of the submitting hop (the router's proxy span or a
        #: traced client's span): the job body re-binds it so its spans
        #: parent correctly in the cross-process trace tree.  Not
        #: journaled — a recovered job's submitter is long gone.
        self.trace_parent: str | None = None
        #: the batch planner's dry-run summary (``BatchPlan.to_dict()``)
        #: for a `/batch` job — recorded before execution starts, so a
        #: poller can see how much schedule work the batch will pay.
        self.plan: dict | None = None
        #: True when this job was reloaded from the journal after a
        #: restart and transitioned by the recovery matrix.
        self.recovered = False
        self._lock = threading.RLock()
        self._pause = threading.Event()
        self._finished = threading.Event()
        self._events: list[dict] = []
        self.events_dropped = 0
        self._journal = None  # set by JobRegistry.create / restore

    # -- state transitions (called from executor threads) ------------------

    def start(self) -> None:
        with self._lock:
            self.status = "running"
            self.started_s = time.time()
        self._persist()

    def update_progress(self, **fields) -> None:
        """Merge progress fields under the job lock (worker threads
        update while pollers copy — unlocked mutation would race the
        ``dict(self.progress)`` snapshots)."""
        with self._lock:
            self.progress.update(fields)

    def set_checkpoint(self, checkpoint: dict | None) -> None:
        """Record the latest resumable exploration snapshot — and
        journal it, so a killed server re-parks the search exactly one
        step behind where it died."""
        with self._lock:
            self.checkpoint = checkpoint
        self._persist()

    def finish(self, result: dict) -> None:
        with self._lock:
            self.result = result
            self.status = "done"
            self.finished_s = time.time()
        self._finished.set()
        self._persist()

    def fail(self, error: str, tb: str | None = None) -> None:
        with self._lock:
            self.error = error
            self.traceback = tb
            self.status = "failed"
            self.finished_s = time.time()
        self._finished.set()
        self._persist()

    def pause(self) -> bool:
        """Ask a running exploration to stop after its current step."""
        with self._lock:
            if self.status not in ("queued", "running", "pausing"):
                return False
            self._pause.set()
            if self.status == "running":
                self.status = "pausing"
        self._persist()
        return True

    def mark_paused(self) -> None:
        with self._lock:
            self.status = "paused"
        self._finished.set()
        self._persist()

    def resume(self) -> bool:
        """Clear the pause flag; the server re-dispatches the work."""
        with self._lock:
            if self.status != "paused":
                return False
            self._pause.clear()
            self._finished.clear()
            self.status = "running"
        self._persist()
        return True

    @property
    def pause_requested(self) -> bool:
        return self._pause.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches done/failed/paused."""
        return self._finished.wait(timeout)

    def settled(self) -> bool:
        """True once the job sits in done/failed/paused (no executor
        thread will emit further events until a resume)."""
        return self._finished.is_set()

    # -- recovery transitions (applied by JobRegistry.restore) -------------

    def recover_paused(self) -> None:
        """Park an exploration interrupted by a crash/restart: it holds
        no executor thread, but its journaled checkpoint makes it
        resumable through the ordinary ``POST /jobs/<id>/resume``."""
        with self._lock:
            self.status = "paused"
            self.recovered = True
        self._finished.set()
        self._persist()

    def recover_failed(self, error: str) -> None:
        with self._lock:
            self.error = error
            self.status = "failed"
            self.finished_s = time.time()
            self.recovered = True
        self._finished.set()
        self._persist()

    # -- event stream ------------------------------------------------------

    def emit(self, event: dict) -> None:
        """Append one stream event (a JSON-safe dict).  Past the buffer
        bound, events are dropped newest-first so existing cursors stay
        valid; drops are counted, never silent."""
        with self._lock:
            if len(self._events) >= MAX_JOB_EVENTS:
                self.events_dropped += 1
                return
            self._events.append(event)

    def events_since(self, cursor: int) -> tuple[list[dict], int]:
        """Events appended at or after *cursor*, plus the new cursor."""
        with self._lock:
            fresh = self._events[cursor:]
            return fresh, cursor + len(fresh)

    # -- journal -----------------------------------------------------------

    def _persist(self) -> None:
        """Best-effort journal write of the current state.  Runs under
        the job lock so concurrent transitions serialize their records
        (atomic replace makes each write all-or-nothing); a full disk
        must degrade persistence, never serving."""
        journal = self._journal
        if journal is None:
            return
        with self._lock:
            data = self.to_dict(include_checkpoint=True)
            data["params"] = self.params
            data["recovered"] = self.recovered
            try:
                journal.record(self.id, data)
            except OSError:
                pass

    @classmethod
    def from_journal(cls, data: dict, journal=None) -> "Job":
        """Rebuild a job verbatim from its journal record (recovery
        policy is the registry's concern, not this constructor's)."""
        job = cls(data["id"], data.get("kind", "batch"),
                  data.get("params") or {})
        job.status = data.get("status", "queued")
        job.created_s = data.get("created_s", job.created_s)
        job.started_s = data.get("started_s")
        job.finished_s = data.get("finished_s")
        job.progress = dict(data.get("progress") or {})
        job.result = data.get("result")
        job.error = data.get("error")
        job.traceback = data.get("traceback")
        job.checkpoint = data.get("checkpoint")
        job.trace_id = data.get("trace_id")
        job.plan = data.get("plan")
        job.recovered = bool(data.get("recovered"))
        job._journal = journal
        if job.status in ("done", "failed", "paused"):
            job._finished.set()
        return job

    # -- views -------------------------------------------------------------

    def summary(self) -> dict:
        with self._lock:
            return {"id": self.id, "kind": self.kind,
                    "status": self.status,
                    "created_s": self.created_s,
                    "trace_id": self.trace_id,
                    "plan": self.plan,
                    "recovered": self.recovered,
                    "progress": dict(self.progress)}

    def to_dict(self, include_checkpoint: bool = True) -> dict:
        with self._lock:
            out = {"id": self.id, "kind": self.kind, "status": self.status,
                   "created_s": self.created_s,
                   "trace_id": self.trace_id,
                   "plan": self.plan,
                   "recovered": self.recovered,
                   "started_s": self.started_s,
                   "finished_s": self.finished_s,
                   "progress": dict(self.progress),
                   "result": self.result,
                   "error": self.error,
                   "traceback": self.traceback}
            if include_checkpoint:
                out["checkpoint"] = self.checkpoint
            return out


class JobRegistry:
    """Thread-safe id → :class:`Job` table.

    *journal* (optional) is a :class:`~repro.service.persist.JobJournal`:
    every job created here records its transitions through it, evicted
    jobs are forgotten from it, and :meth:`restore` reloads it at boot.
    """

    def __init__(self, max_jobs: int = 1024, journal=None):
        self.max_jobs = max_jobs
        self.journal = journal
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._seq = itertools.count(1)

    def create(self, kind: str, params: dict) -> Job:
        job_id = f"{kind}-{next(self._seq)}-{secrets.token_hex(3)}"
        job = Job(job_id, kind, params)
        job._journal = self.journal
        evicted: list[str] = []
        with self._lock:
            live = sum(1 for j in self._jobs.values()
                       if j.status in LIVE_STATUSES)
            if live >= self.max_jobs:
                # Backpressure instead of unbounded growth: live jobs
                # are never discarded, so refuse new ones.
                raise RegistryFull(
                    f"{live} live jobs (limit {self.max_jobs}); retry "
                    "when current jobs finish, or pause/resume less")
            self._jobs[job_id] = job
            # Drop the oldest *finished* jobs once over the bound; live
            # jobs are never discarded.
            if len(self._jobs) > self.max_jobs:
                for jid, old in list(self._jobs.items()):
                    if len(self._jobs) <= self.max_jobs:
                        break
                    if old.status in ("done", "failed"):
                        del self._jobs[jid]
                        evicted.append(jid)
        job._persist()
        if self.journal is not None:
            for jid in evicted:
                self.journal.forget(jid)
        return job

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def list(self) -> list[dict]:
        with self._lock:
            jobs = list(self._jobs.values())
        return [job.summary() for job in jobs]

    def counts(self) -> dict:
        with self._lock:
            jobs = list(self._jobs.values())
        counts = {status: 0 for status in JOB_STATUSES}
        for job in jobs:
            # Snapshot each status under its own job lock (like
            # summary() does): executor threads transition concurrently
            # and the gauge must never observe a mid-transition read.
            with job._lock:
                status = job.status
            counts[status] = counts.get(status, 0) + 1
        return counts

    # -- restart recovery --------------------------------------------------

    def restore(self) -> dict:
        """Reload the journal at boot and apply the recovery matrix:

        ========== ============================ =======================
        journaled  meaning after a dead server  restored as
        ========== ============================ =======================
        queued /   the executor thread died     explore → ``paused``
        running /  with the process             (resumable from its
        pausing                                 checkpoint); batch →
                                                ``failed`` with a
                                                recovery error
        paused     parked, holds no thread      as-is (resumable)
        done /     terminal                     as-is
        failed
        ========== ============================ =======================

        Returns ``{"jobs": n, "resumable": n, "failed": n}``.
        """
        summary = {"jobs": 0, "resumable": 0, "failed": 0}
        if self.journal is None:
            return summary
        records = sorted(self.journal.load_all(),
                         key=lambda d: d.get("created_s") or 0.0)
        max_seq = 0
        for data in records:
            job = Job.from_journal(data, journal=self.journal)
            if job.status in ("queued", "running", "pausing"):
                if job.kind == "explore":
                    job.recover_paused()
                    summary["resumable"] += 1
                else:
                    job.recover_failed(
                        "server restarted while this batch job was "
                        f"{job.status}; batch jobs hold no checkpoint, "
                        "so the work cannot be resumed — resubmit the "
                        "batch (finished designs are in the cache and "
                        "will be served warm)")
                    summary["failed"] += 1
            with self._lock:
                self._jobs[job.id] = job
            summary["jobs"] += 1
            max_seq = max(max_seq, _id_sequence(job.id))
        if max_seq:
            with self._lock:
                # Continue numbering past the restored jobs so fresh
                # ids never collide with journaled ones.
                self._seq = itertools.count(max_seq + 1)
        return summary

    def sweep_shutdown(self) -> dict:
        """Transition jobs whose queued executor slot was cancelled by
        a server shutdown (``cancel_futures=True``): without this they
        would sit ``queued`` forever and every ``wait()`` on them would
        hang to its timeout.  Explorations park as ``paused`` (a resume
        — possibly after a restart, via the journal — re-runs them);
        batches fail with an explanation.  Running jobs are left alone:
        their bodies observe the closing flag themselves."""
        with self._lock:
            jobs = list(self._jobs.values())
        swept = {"paused": 0, "failed": 0}
        for job in jobs:
            with job._lock:
                status = job.status
            if status != "queued":
                continue
            if job.kind == "explore":
                job.mark_paused()
                swept["paused"] += 1
            else:
                job.fail("server shut down before this batch job "
                         "started; resubmit it")
                swept["failed"] += 1
        return swept


def _id_sequence(job_id: str) -> int:
    """The monotonic sequence number embedded in ``<kind>-<n>-<hex>``
    job ids (0 when the id doesn't carry one)."""
    parts = job_id.split("-")
    if len(parts) < 3:
        return 0
    try:
        return int(parts[-2])
    except ValueError:
        return 0
