"""The serving job table: long-running work the HTTP front end tracks.

A :class:`Job` is one `/batch` or `/explore` request living across many
HTTP round-trips: submitted, polled via ``GET /jobs/<id>``, optionally
paused and resumed (explorations), and eventually carrying its result
or the full traceback of its failure.  The :class:`JobRegistry` is the
thread-safe table the asyncio server and its executor threads share;
nothing in here knows about HTTP.
"""

from __future__ import annotations

import itertools
import secrets
import threading
import time

__all__ = ["Job", "JobRegistry", "JOB_STATUSES", "RegistryFull"]

JOB_STATUSES = ("queued", "running", "pausing", "paused", "done", "failed")

#: statuses that still hold (or may again hold) an executor thread
LIVE_STATUSES = ("queued", "running", "pausing", "paused")


class RegistryFull(RuntimeError):
    """Backpressure signal: too many live jobs; try again later."""


class Job:
    """One unit of tracked background work."""

    def __init__(self, job_id: str, kind: str, params: dict):
        self.id = job_id
        self.kind = kind
        self.params = params
        self.status = "queued"
        self.created_s = time.time()
        self.started_s: float | None = None
        self.finished_s: float | None = None
        self.progress: dict = {}
        self.result: dict | None = None
        self.error: str | None = None
        self.traceback: str | None = None
        #: serialized SearchCheckpoint of an exploration job — updated
        #: after every step, so a poll always sees a resumable snapshot
        #: even if the server dies mid-search.
        self.checkpoint: dict | None = None
        #: request-scoped trace id minted at submission; every span the
        #: job body produces (pool workers included) carries it, so an
        #: exported Chrome trace can be filtered down to this job.
        self.trace_id: str | None = None
        #: the batch planner's dry-run summary (``BatchPlan.to_dict()``)
        #: for a `/batch` job — recorded before execution starts, so a
        #: poller can see how much schedule work the batch will pay.
        self.plan: dict | None = None
        self._lock = threading.RLock()
        self._pause = threading.Event()
        self._finished = threading.Event()

    # -- state transitions (called from executor threads) ------------------

    def start(self) -> None:
        with self._lock:
            self.status = "running"
            self.started_s = time.time()

    def update_progress(self, **fields) -> None:
        """Merge progress fields under the job lock (worker threads
        update while pollers copy — unlocked mutation would race the
        ``dict(self.progress)`` snapshots)."""
        with self._lock:
            self.progress.update(fields)

    def finish(self, result: dict) -> None:
        with self._lock:
            self.result = result
            self.status = "done"
            self.finished_s = time.time()
        self._finished.set()

    def fail(self, error: str, tb: str | None = None) -> None:
        with self._lock:
            self.error = error
            self.traceback = tb
            self.status = "failed"
            self.finished_s = time.time()
        self._finished.set()

    def pause(self) -> bool:
        """Ask a running exploration to stop after its current step."""
        with self._lock:
            if self.status not in ("queued", "running", "pausing"):
                return False
            self._pause.set()
            if self.status == "running":
                self.status = "pausing"
            return True

    def mark_paused(self) -> None:
        with self._lock:
            self.status = "paused"
        self._finished.set()

    def resume(self) -> bool:
        """Clear the pause flag; the server re-dispatches the work."""
        with self._lock:
            if self.status != "paused":
                return False
            self._pause.clear()
            self._finished.clear()
            self.status = "running"
            return True

    @property
    def pause_requested(self) -> bool:
        return self._pause.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches done/failed/paused."""
        return self._finished.wait(timeout)

    # -- views -------------------------------------------------------------

    def summary(self) -> dict:
        with self._lock:
            return {"id": self.id, "kind": self.kind,
                    "status": self.status,
                    "created_s": self.created_s,
                    "trace_id": self.trace_id,
                    "plan": self.plan,
                    "progress": dict(self.progress)}

    def to_dict(self, include_checkpoint: bool = True) -> dict:
        with self._lock:
            out = {"id": self.id, "kind": self.kind, "status": self.status,
                   "created_s": self.created_s,
                   "trace_id": self.trace_id,
                   "plan": self.plan,
                   "started_s": self.started_s,
                   "finished_s": self.finished_s,
                   "progress": dict(self.progress),
                   "result": self.result,
                   "error": self.error,
                   "traceback": self.traceback}
            if include_checkpoint:
                out["checkpoint"] = self.checkpoint
            return out


class JobRegistry:
    """Thread-safe id → :class:`Job` table."""

    def __init__(self, max_jobs: int = 1024):
        self.max_jobs = max_jobs
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._seq = itertools.count(1)

    def create(self, kind: str, params: dict) -> Job:
        job_id = f"{kind}-{next(self._seq)}-{secrets.token_hex(3)}"
        job = Job(job_id, kind, params)
        with self._lock:
            live = sum(1 for j in self._jobs.values()
                       if j.status in LIVE_STATUSES)
            if live >= self.max_jobs:
                # Backpressure instead of unbounded growth: live jobs
                # are never discarded, so refuse new ones.
                raise RegistryFull(
                    f"{live} live jobs (limit {self.max_jobs}); retry "
                    "when current jobs finish, or pause/resume less")
            self._jobs[job_id] = job
            # Drop the oldest *finished* jobs once over the bound; live
            # jobs are never discarded.
            if len(self._jobs) > self.max_jobs:
                for jid, old in list(self._jobs.items()):
                    if len(self._jobs) <= self.max_jobs:
                        break
                    if old.status in ("done", "failed"):
                        del self._jobs[jid]
        return job

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def list(self) -> list[dict]:
        with self._lock:
            jobs = list(self._jobs.values())
        return [job.summary() for job in jobs]

    def counts(self) -> dict:
        with self._lock:
            jobs = list(self._jobs.values())
        counts = {status: 0 for status in JOB_STATUSES}
        for job in jobs:
            counts[job.status] = counts.get(job.status, 0) + 1
        return counts
