"""Batch-generation engine: cache-first, multiprocessing fan-out.

``generate_many`` takes a list of :class:`DesignRequest` (or a whole
:class:`~repro.dse.explorer.DesignSpace`), answers what it can from the
cache, deduplicates identical requests within the batch, and fans the
remaining cold work across a worker pool.  Per-request failures are
captured in the result, never raised — a thousand-design sweep must not
die on design #713.

The same engine also memoizes DSE point evaluations
(:func:`evaluate_archs`), which is how ``dse.explorer.explore`` gets its
``workers=``/``cache=`` parameters without knowing about this module's
internals.
"""

from __future__ import annotations

import dataclasses
import hashlib
import multiprocessing
from collections import Counter
from typing import Callable, Iterable, Sequence

from ..obs import (current_trace_id, get_registry, merge_telemetry,
                   reset_registry, telemetry_snapshot, trace_context,
                   trace_span)
from ..obs.tracing import get_tracer
from ..serialize import canonical_dumps
from .cache import DesignCache
from .spec import DesignRequest, DesignResult, execute_request

__all__ = ["BatchEngine", "requests_from_space", "evaluate_archs",
           "model_fingerprint"]

#: DSE dataflow names → (kernel, generator dataflow names).
_DSE_DATAFLOW_MAP = {
    "MN": ("gemm", "IJ"),
    "ICOC": ("conv2d", "ICOC"),
    "OHOW": ("conv2d", "OHOW"),
    "OCOH": ("conv2d", "OCOH"),
    "KHOH": ("conv2d", "KHOH"),
}


def _pool_context():
    try:  # fork is cheap and keeps imports warm; spawn is the fallback
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover — platforms without fork
        return multiprocessing.get_context("spawn")


# The staged pipeline's intermediate cache, rebuilt once per worker
# process from a picklable spec (a live DesignCache holds locks and
# cannot cross a spawn boundary).  The on-disk tier is multi-process
# safe, so every worker shares the same phase records.
_WORKER_CACHE: DesignCache | None = None


def _init_request_worker(cache_spec: dict | None) -> None:
    global _WORKER_CACHE
    _WORKER_CACHE = (DesignCache(**cache_spec)
                     if cache_spec is not None else None)


def _cache_spec(cache: DesignCache | None) -> dict | None:
    """Picklable recipe for rebuilding an equivalent cache in a worker."""
    if cache is None:
        return None
    return {"root": str(cache.root),
            "memory_entries": cache.memory_entries,
            "disk_entries": cache.disk_entries}


def _run_request_payload(payload: dict) -> tuple[str, dict, dict]:
    """Worker entry point: rebuild the request, run it through the
    staged pipeline, return the cache record plus this task's telemetry
    delta (metrics snapshot + spans, tagged with the trace id the
    payload carried).  Top-level so it pickles under both fork and
    spawn.

    Pool workers process tasks serially, so resetting the worker's
    process-global registry/tracer at task start makes the snapshot at
    task end exactly this task's delta — fork-inherited parent counts
    included in neither.
    """
    reset_registry()
    get_tracer().clear()
    request = DesignRequest.from_dict(payload["request"])
    with trace_context(payload.get("trace_id")):
        result = execute_request(request, cache=_WORKER_CACHE)
    return result.spec_hash, result.to_record(), telemetry_snapshot()


def requests_from_space(space, options=None,
                        backend: str = "verilog") -> list[DesignRequest]:
    """Translate every architecture point of a DSE ``DesignSpace`` into
    generator requests (one per kernel family present in its dataflow
    set), deduplicated — buffer/bandwidth axes do not change the RTL.
    *backend* names the emitter family every request targets, so a
    sweep can be retargeted (e.g. ``backend="hls_c"``) without touching
    the space."""
    seen: dict[str, DesignRequest] = {}
    for arch in space.points():
        per_kernel: dict[str, list[str]] = {}
        for name in arch.dataflows:
            kernel, df = _DSE_DATAFLOW_MAP.get(name, (None, None))
            if kernel is not None and df not in per_kernel.setdefault(
                    kernel, []):
                per_kernel[kernel].append(df)
        for kernel, dfs in sorted(per_kernel.items()):
            req = DesignRequest(kernel=kernel, dataflows=tuple(dfs),
                                array=arch.array, backend=backend)
            seen.setdefault(req.spec_hash(), req)
    return list(seen.values())


_DESIGNS = get_registry().counter(
    "repro_designs_total",
    "design requests resolved by the batch engine",
    ("source", "outcome"))


class BatchEngine:
    """Cache-consulting, parallel executor for design requests."""

    def __init__(self, cache: DesignCache | None = None,
                 workers: int | None = None):
        self.cache = cache
        self.workers = workers or 1

    # -- single request ----------------------------------------------------

    def submit(self, request: DesignRequest) -> DesignResult:
        return self.generate_many([request])[0]

    # -- batch -------------------------------------------------------------

    def generate_many(self, requests,
                      workers: int | None = None,
                      progress: Callable[[int, int, DesignResult], None]
                      | None = None) -> list[DesignResult]:
        """Generate every request, cache-first; results in input order.

        *requests* may be an iterable of :class:`DesignRequest` or a
        ``DesignSpace`` (translated via :func:`requests_from_space`).
        """
        requests = self._as_requests(requests)
        workers = workers if workers is not None else self.workers
        hashes = [r.spec_hash() for r in requests]
        occurrences = Counter(hashes)
        total = len(requests)
        done = 0
        resolved: dict[str, DesignResult] = {}

        def report(result: DesignResult) -> None:
            # One progress tick per *request*, so `done` reaches `total`
            # even when requests are cache hits or in-batch duplicates.
            nonlocal done
            _DESIGNS.labels(
                source="cache" if result.from_cache else "cold",
                outcome="ok" if result.ok else "error",
            ).inc(occurrences[result.spec_hash])
            for _ in range(occurrences[result.spec_hash]):
                done += 1
                if progress is not None:
                    progress(done, total, result)

        with trace_span("batch", n_requests=total, workers=workers):
            # 1. cache pass + in-batch dedup
            cold: list[DesignRequest] = []
            cold_keys: set[str] = set()
            for req, key in zip(requests, hashes):
                if key in resolved or key in cold_keys:
                    continue
                record = (self.cache.get(key)
                          if self.cache is not None else None)
                if record is not None:
                    resolved[key] = DesignResult.from_record(key, record)
                    report(resolved[key])
                else:
                    cold.append(req)
                    cold_keys.add(key)

            # 2. fan the cold set out
            for key, record in self._execute(cold, workers):
                result = DesignResult.from_record(key, record,
                                                  from_cache=False)
                resolved[key] = result
                if self.cache is not None and result.ok:
                    self.cache.put(key, record)
                report(result)

        return [resolved[key] for key in hashes]

    def _execute(self, cold: Sequence[DesignRequest],
                 workers: int) -> Iterable[tuple[str, dict]]:
        if workers <= 1 or len(cold) <= 1:
            # In-process: the staged pipeline shares this engine's cache
            # directly (live tier included), and its telemetry lands in
            # this process's registry/tracer as it happens.
            for request in cold:
                result = execute_request(request, cache=self.cache)
                yield result.spec_hash, result.to_record()
            return
        # Pooled: ship the current trace id inside each pickled payload
        # and merge every worker's telemetry delta back, so the parent's
        # /metrics and exported trace cover the whole fan-out.
        trace_id = current_trace_id()
        payloads = [{"request": r.to_dict(), "trace_id": trace_id}
                    for r in cold]
        ctx = _pool_context()
        with ctx.Pool(processes=min(workers, len(cold)),
                      initializer=_init_request_worker,
                      initargs=(_cache_spec(self.cache),)) as pool:
            for key, record, telemetry in pool.imap(
                    _run_request_payload, payloads, chunksize=1):
                merge_telemetry(telemetry)
                yield key, record

    @staticmethod
    def _as_requests(requests) -> list[DesignRequest]:
        if hasattr(requests, "points") and hasattr(requests, "size"):
            return requests_from_space(requests)
        return list(requests)


# ---------------------------------------------------------------------------
# DSE point evaluation (the explorer's hot loop) through the same cache.
# ---------------------------------------------------------------------------

def model_fingerprint(model) -> str:
    """Deterministic identity of a workload model (dataclass repr of
    names/ints/floats, stable across processes).  Part of the eval-row
    address, and the thing a DSE checkpoint pins its models to."""
    return hashlib.sha256(repr(model).encode()).hexdigest()


_model_fingerprint = model_fingerprint  # backward-compatible alias


def _eval_key(model_fingerprints: list[str], arch, tech) -> str:
    payload = {
        "kind": "eval-v1",
        "models": model_fingerprints,
        "arch": dataclasses.asdict(arch),
        "tech": repr(tech),
    }
    return hashlib.sha256(canonical_dumps(payload).encode()).hexdigest()


def _eval_arch(models, arch, tech) -> dict:
    """Aggregate cycles/energy/ops of *models* on one arch."""
    from ..sim.perf_model import evaluate_model

    cycles = energy = ops = 0.0
    for model in models:
        perf = evaluate_model(model, arch, tech)
        cycles += perf.total_cycles
        energy += perf.total_energy_pj
        ops += perf.total_ops
    return {"kind": "eval-v1", "cycles": cycles, "energy_pj": energy,
            "ops": ops}


# Models are invariant across a sweep; ship them to each worker once via
# the pool initializer instead of re-pickling them into every job.
_WORKER_MODELS: list | None = None


def _init_eval_worker(models) -> None:
    global _WORKER_MODELS
    _WORKER_MODELS = models


def _eval_arch_pooled(args) -> dict:
    arch, tech = args
    return _eval_arch(_WORKER_MODELS, arch, tech)


def evaluate_archs(models, archs, tech,
                   workers: int = 1,
                   cache: DesignCache | None = None,
                   overlay: dict | None = None) -> list[dict]:
    """Evaluate *models* on every architecture in *archs*; returns one
    ``{"cycles", "energy_pj", "ops"}`` row per arch, in order.  Rows are
    served from *cache* when possible and computed in parallel when
    ``workers > 1``.

    *overlay* is a plain ``{eval_key: row}`` dict consulted before the
    cache and updated with every row this call resolves (including
    cache hits), so a caller can carry a self-contained copy of the
    rows — the DSE checkpoint mechanism."""
    models = list(models)
    archs = list(archs)
    fingerprints = [model_fingerprint(m) for m in models]
    keys = [_eval_key(fingerprints, arch, tech) for arch in archs]
    rows: dict[int, dict] = {}
    cold: list[int] = []
    for i, key in enumerate(keys):
        record = overlay.get(key) if overlay is not None else None
        if record is None:
            record = cache.get(key) if cache is not None else None
        if record is not None and record.get("kind") == "eval-v1":
            rows[i] = record
            if overlay is not None:
                overlay[key] = record
        else:
            cold.append(i)

    if workers <= 1 or len(cold) <= 1:
        computed = [_eval_arch(models, archs[i], tech) for i in cold]
    else:
        ctx = _pool_context()
        with ctx.Pool(processes=min(workers, len(cold)),
                      initializer=_init_eval_worker,
                      initargs=(models,)) as pool:
            computed = pool.map(_eval_arch_pooled,
                                [(archs[i], tech) for i in cold])
    for i, record in zip(cold, computed):
        rows[i] = record
        if overlay is not None:
            overlay[keys[i]] = record
        if cache is not None:
            cache.put(keys[i], record)
    return [rows[i] for i in range(len(archs))]
