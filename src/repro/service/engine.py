"""Batch-generation engine: cache-first, phase-aware, parallel.

``generate_many`` takes a list of :class:`DesignRequest` (or a whole
:class:`~repro.dse.explorer.DesignSpace`), answers what it can from the
cache, deduplicates identical requests within the batch, and **plans**
the remaining cold work as a DAG over the staged pipeline's phase keys:
cold specs are grouped by ``design_key`` (the identity of the scheduled
design), only one *leader* per distinct design fans out to the worker
pool, and every other member of the group — a backend/module *variant*
of the same scheduled design — is emitted in-process afterwards from
the phase records the leader left in the shared cache.  A sweep of
1000 requests over 60 distinct designs × several backends therefore
pays ~60 schedule phases, not 1000.  :meth:`BatchEngine.plan` exposes
the same grouping as a dry-run :class:`BatchPlan` (the ``repro batch
--plan-summary`` surface and the serving job table's ``plan`` field).

Per-request failures are captured in the result, never raised — a
thousand-design sweep must not die on design #713.  A leader that
fails *before* its design phase completes poisons exactly its own
group (each member carries the failure traceback); sibling groups are
unaffected, and nothing broken is cached, so a retry recomputes.

The same engine also memoizes DSE point evaluations
(:func:`evaluate_archs`), which is how ``dse.explorer.explore`` gets its
``workers=``/``cache=`` parameters without knowing about this module's
internals.
"""

from __future__ import annotations

import dataclasses
import hashlib
import multiprocessing
from collections import Counter
from typing import Callable, Iterable, Sequence

from ..obs import (PHASE_DESIGN, current_span_id, current_trace_id,
                   get_registry, merge_telemetry, reset_registry,
                   telemetry_snapshot, trace_context, trace_span)
from ..obs.tracing import get_tracer
from ..serialize import canonical_dumps
from .cache import DesignCache
from .spec import DesignRequest, DesignResult, execute_request

__all__ = ["BatchEngine", "BatchPlan", "PlanGroup",
           "requests_from_space", "evaluate_archs", "model_fingerprint"]

#: DSE dataflow names → (kernel, generator dataflow names).
_DSE_DATAFLOW_MAP = {
    "MN": ("gemm", "IJ"),
    "ICOC": ("conv2d", "ICOC"),
    "OHOW": ("conv2d", "OHOW"),
    "OCOH": ("conv2d", "OCOH"),
    "KHOH": ("conv2d", "KHOH"),
}


def _pool_context():
    try:  # fork is cheap and keeps imports warm; spawn is the fallback
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover — platforms without fork
        return multiprocessing.get_context("spawn")


# The staged pipeline's intermediate cache, rebuilt once per worker
# process from a picklable spec (a live DesignCache holds locks and
# cannot cross a spawn boundary).  The on-disk tier is multi-process
# safe, so every worker shares the same phase records.
_WORKER_CACHE: DesignCache | None = None


def _init_request_worker(cache_spec: dict | None) -> None:
    global _WORKER_CACHE
    _WORKER_CACHE = (DesignCache(**cache_spec)
                     if cache_spec is not None else None)


def _cache_spec(cache: DesignCache | None) -> dict | None:
    """Picklable recipe for rebuilding an equivalent cache in a worker.
    Carries every shard root, in order: a worker with a different
    key→shard mapping would write warm designs to the wrong store."""
    if cache is None:
        return None
    return {"root": [str(r) for r in cache.roots],
            "memory_entries": cache.memory_entries,
            "disk_entries": cache.disk_entries}


def _run_request_payload(payload: dict) -> tuple[str, dict, dict]:
    """Worker entry point: rebuild the request, run it through the
    staged pipeline, return the cache record plus this task's telemetry
    delta (metrics snapshot + spans, tagged with the trace id the
    payload carried).  Top-level so it pickles under both fork and
    spawn.

    Pool workers process tasks serially, so resetting the worker's
    process-global registry/tracer at task start makes the snapshot at
    task end exactly this task's delta — fork-inherited parent counts
    included in neither.
    """
    reset_registry()
    get_tracer().clear()
    request = DesignRequest.from_dict(payload["request"])
    # parent_id is the engine-side span that fanned this task out (the
    # "batch" span): binding it makes the worker's spans children in
    # the merged trace tree, not disconnected roots.
    with trace_context(payload.get("trace_id"), payload.get("parent_id")):
        result = execute_request(request, cache=_WORKER_CACHE)
    return result.spec_hash, result.to_record(), telemetry_snapshot()


def requests_from_space(space, options=None,
                        backend: str = "verilog") -> list[DesignRequest]:
    """Translate every architecture point of a DSE ``DesignSpace`` into
    generator requests (one per kernel family present in its dataflow
    set), deduplicated — buffer/bandwidth axes do not change the RTL.
    *backend* names the emitter family every request targets, so a
    sweep can be retargeted (e.g. ``backend="hls_c"``) without touching
    the space."""
    seen: dict[str, DesignRequest] = {}
    for arch in space.points():
        per_kernel: dict[str, list[str]] = {}
        for name in arch.dataflows:
            kernel, df = _DSE_DATAFLOW_MAP.get(name, (None, None))
            if kernel is not None and df not in per_kernel.setdefault(
                    kernel, []):
                per_kernel[kernel].append(df)
        for kernel, dfs in sorted(per_kernel.items()):
            req = DesignRequest(kernel=kernel, dataflows=tuple(dfs),
                                array=arch.array, backend=backend)
            seen.setdefault(req.spec_hash(), req)
    return list(seen.values())


_DESIGNS = get_registry().counter(
    "repro_designs_total",
    "design requests resolved by the batch engine",
    ("source", "outcome"))

_PLAN_GROUPS = get_registry().counter(
    "repro_planner_groups_total",
    "distinct scheduled-design groups the batch planner fanned out "
    "(one schedule phase each)")

_PLAN_REQUESTS = get_registry().counter(
    "repro_planner_requests_total",
    "cold unique specs routed by the batch planner: leader = carries "
    "its group's schedule phase to the pool, variant = emitted "
    "in-process from the leader's shared phase records",
    ("role",))


@dataclasses.dataclass
class PlanGroup:
    """One distinct scheduled design in a :class:`BatchPlan`: the
    *leader* pays the ``schedule`` phase (and goes to the worker pool);
    the *variants* are backend/module re-emissions of the same
    scheduled design, run in-process from the leader's phase records."""

    design_key: str
    leader: DesignRequest
    variants: list[DesignRequest] = dataclasses.field(default_factory=list)

    def to_dict(self) -> dict:
        return {"design_key": self.design_key,
                "leader": self.leader.spec_hash(),
                "variants": [v.spec_hash() for v in self.variants]}


@dataclasses.dataclass
class BatchPlan:
    """The planner's view of one batch before any execution: how many
    requests collapse to unique specs, how many of those the cache
    already answers, and how the cold remainder groups by
    ``design_key`` — i.e. how many schedule phases the batch will
    actually pay."""

    n_requests: int          # as submitted, duplicates included
    n_unique: int            # distinct spec hashes
    n_cached: int            # unique specs the cache already answers
    groups: list[PlanGroup]  # cold work, one group per design_key

    @property
    def n_duplicates(self) -> int:
        return self.n_requests - self.n_unique

    @property
    def n_cold(self) -> int:
        return sum(1 + len(g.variants) for g in self.groups)

    @property
    def n_schedules(self) -> int:
        return len(self.groups)

    @property
    def n_variants(self) -> int:
        return self.n_cold - len(self.groups)

    def to_dict(self) -> dict:
        return {"n_requests": self.n_requests, "n_unique": self.n_unique,
                "n_duplicates": self.n_duplicates,
                "n_cached": self.n_cached, "n_cold": self.n_cold,
                "n_schedules": self.n_schedules,
                "n_variants": self.n_variants}

    def summary(self) -> str:
        return (f"{self.n_requests} requests -> {self.n_unique} unique "
                f"specs ({self.n_duplicates} in-batch duplicates), "
                f"{self.n_cached} cached; {self.n_cold} cold in "
                f"{self.n_schedules} design groups: "
                f"{self.n_schedules} schedules + "
                f"{self.n_variants} shared-design emits")


class BatchEngine:
    """Cache-consulting, phase-aware, parallel executor for design
    requests."""

    def __init__(self, cache: DesignCache | None = None,
                 workers: int | None = None):
        self.cache = cache
        self.workers = workers or 1

    # -- single request ----------------------------------------------------

    def submit(self, request: DesignRequest) -> DesignResult:
        return self.generate_many([request])[0]

    # -- planning ----------------------------------------------------------

    def plan(self, requests) -> BatchPlan:
        """Dry-run the planner: dedup by spec hash, test cache
        membership (without touching hit/miss stats or LRU order), and
        group the cold remainder by ``design_key``.  This is exactly
        the grouping :meth:`generate_many` executes."""
        requests = self._as_requests(requests)
        unique: dict[str, DesignRequest] = {}
        for request in requests:
            unique.setdefault(request.spec_hash(), request)
        cold = [r for key, r in unique.items()
                if self.cache is None or key not in self.cache]
        return BatchPlan(
            n_requests=len(requests), n_unique=len(unique),
            n_cached=len(unique) - len(cold),
            groups=self._group_by_design(cold))

    def _group_by_design(self, cold: Sequence[DesignRequest]
                         ) -> list[PlanGroup]:
        """Cold specs grouped by scheduled-design identity; the first
        request seen for each ``design_key`` leads its group.  Without
        a cache there is nowhere to share phase records through, so
        every request leads a group of one."""
        if self.cache is None:
            return [PlanGroup(r.design_key(), r) for r in cold]
        groups: dict[str, PlanGroup] = {}
        for request in cold:
            key = request.design_key()
            group = groups.get(key)
            if group is None:
                groups[key] = PlanGroup(key, request)
            else:
                group.variants.append(request)
        return list(groups.values())

    # -- batch -------------------------------------------------------------

    def generate_many(self, requests,
                      workers: int | None = None,
                      progress: Callable[[int, int, DesignResult], None]
                      | None = None,
                      plan: bool = True) -> list[DesignResult]:
        """Generate every request, cache-first; results in input order.

        *requests* may be an iterable of :class:`DesignRequest` or a
        ``DesignSpace`` (translated via :func:`requests_from_space`).

        With *plan* (the default), cold specs are grouped by
        ``design_key``: one leader per distinct scheduled design fans
        out (to the pool when ``workers > 1``), then its group's
        backend/module variants are emitted in-process from the phase
        records the leader left in the shared cache.  ``plan=False``
        executes every cold spec independently — the baseline the
        planner tests compare against byte-for-byte.
        """
        requests = self._as_requests(requests)
        workers = workers if workers is not None else self.workers
        hashes = [r.spec_hash() for r in requests]
        occurrences = Counter(hashes)
        total = len(requests)
        done = 0
        resolved: dict[str, DesignResult] = {}

        def report(result: DesignResult) -> None:
            # One progress tick per *request*, so `done` reaches `total`
            # even when requests are cache hits or in-batch duplicates.
            nonlocal done
            _DESIGNS.labels(
                source="cache" if result.from_cache else "cold",
                outcome="ok" if result.ok else "error",
            ).inc(occurrences[result.spec_hash])
            for _ in range(occurrences[result.spec_hash]):
                done += 1
                if progress is not None:
                    progress(done, total, result)

        def resolve(result: DesignResult) -> None:
            resolved[result.spec_hash] = result
            if (self.cache is not None and result.ok
                    and not result.from_cache):
                self.cache.put(result.spec_hash, result.to_record())
            report(result)

        with trace_span("batch", n_requests=total, workers=workers):
            # 1. cache pass + in-batch dedup
            cold: list[DesignRequest] = []
            cold_keys: set[str] = set()
            for req, key in zip(requests, hashes):
                if key in resolved or key in cold_keys:
                    continue
                record = (self.cache.get(key)
                          if self.cache is not None else None)
                if record is not None:
                    resolved[key] = DesignResult.from_record(key, record)
                    report(resolved[key])
                else:
                    cold.append(req)
                    cold_keys.add(key)

            # 2. plan: group cold specs by scheduled-design identity
            if plan:
                groups = self._group_by_design(cold)
            else:
                groups = [PlanGroup(r.design_key(), r) for r in cold]
            variants_of = {g.leader.spec_hash(): g.variants
                           for g in groups}
            n_variants = sum(len(g.variants) for g in groups)
            if plan and cold:
                _PLAN_GROUPS.inc(len(groups))
                _PLAN_REQUESTS.labels(role="leader").inc(len(groups))
                if n_variants:
                    _PLAN_REQUESTS.labels(role="variant").inc(n_variants)
                with trace_span("plan", n_cold=len(cold),
                                n_groups=len(groups),
                                n_variants=n_variants):
                    pass  # instant span: records the plan in the trace

            # 3. fan only the group leaders out; as each leader lands,
            # emit its variants in-process from the shared phase records
            for key, record in self._execute(
                    [g.leader for g in groups], workers):
                result = DesignResult.from_record(key, record,
                                                  from_cache=False)
                resolve(result)
                for variant in variants_of.get(key, ()):
                    resolve(self._run_variant(variant, result))

        return [resolved[key] for key in hashes]

    def _run_variant(self, variant: DesignRequest,
                     leader: DesignResult) -> DesignResult:
        """One non-leader member of a design group.  By the time this
        runs the leader has (on success) left the group's scheduled
        design in the cache's phase/live tiers, so ``execute_request``
        here pays for emission alone.  If the leader failed *before*
        its design phase completed, the shared schedule itself is
        broken: propagate the leader's failure to the variant instead
        of re-scheduling a known-bad design once per backend."""
        if not leader.ok and not self._design_available(variant):
            return DesignResult(spec_hash=variant.spec_hash(),
                                request=variant, error=leader.error,
                                traceback=leader.traceback)
        return execute_request(variant, cache=self.cache)

    def _design_available(self, request: DesignRequest) -> bool:
        key = request.design_key()
        return (self.cache is not None
                and (self.cache.get_live(PHASE_DESIGN, key) is not None
                     or self.cache.get_phase(PHASE_DESIGN, key)
                     is not None))

    def _execute(self, cold: Sequence[DesignRequest],
                 workers: int) -> Iterable[tuple[str, dict]]:
        if workers <= 1 or len(cold) <= 1:
            # In-process: the staged pipeline shares this engine's cache
            # directly (live tier included), and its telemetry lands in
            # this process's registry/tracer as it happens.
            for request in cold:
                result = execute_request(request, cache=self.cache)
                yield result.spec_hash, result.to_record()
            return
        # Pooled: ship the current trace id (and the enclosing span's id
        # — the pool tasks' parent in the trace tree) inside each
        # pickled payload and merge every worker's telemetry delta back,
        # so the parent's /metrics and exported trace cover the whole
        # fan-out.
        trace_id = current_trace_id()
        parent_id = current_span_id()
        payloads = [{"request": r.to_dict(), "trace_id": trace_id,
                     "parent_id": parent_id}
                    for r in cold]
        ctx = _pool_context()
        with ctx.Pool(processes=min(workers, len(cold)),
                      initializer=_init_request_worker,
                      initargs=(_cache_spec(self.cache),)) as pool:
            for key, record, telemetry in pool.imap(
                    _run_request_payload, payloads, chunksize=1):
                merge_telemetry(telemetry)
                yield key, record

    @staticmethod
    def _as_requests(requests) -> list[DesignRequest]:
        if hasattr(requests, "points") and hasattr(requests, "size"):
            return requests_from_space(requests)
        return list(requests)


# ---------------------------------------------------------------------------
# DSE point evaluation (the explorer's hot loop) through the same cache.
# ---------------------------------------------------------------------------

def model_fingerprint(model) -> str:
    """Deterministic identity of a workload model (dataclass repr of
    names/ints/floats, stable across processes).  Part of the eval-row
    address, and the thing a DSE checkpoint pins its models to."""
    return hashlib.sha256(repr(model).encode()).hexdigest()


_model_fingerprint = model_fingerprint  # backward-compatible alias


def _eval_key(model_fingerprints: list[str], arch, tech) -> str:
    payload = {
        "kind": "eval-v1",
        "models": model_fingerprints,
        "arch": dataclasses.asdict(arch),
        "tech": repr(tech),
    }
    return hashlib.sha256(canonical_dumps(payload).encode()).hexdigest()


def _eval_arch(models, arch, tech) -> dict:
    """Aggregate cycles/energy/ops of *models* on one arch."""
    from ..sim.perf_model import evaluate_model

    cycles = energy = ops = 0.0
    for model in models:
        perf = evaluate_model(model, arch, tech)
        cycles += perf.total_cycles
        energy += perf.total_energy_pj
        ops += perf.total_ops
    return {"kind": "eval-v1", "cycles": cycles, "energy_pj": energy,
            "ops": ops}


# Models are invariant across a sweep; ship them to each worker once via
# the pool initializer instead of re-pickling them into every job.
_WORKER_MODELS: list | None = None


def _init_eval_worker(models) -> None:
    global _WORKER_MODELS
    _WORKER_MODELS = models


def _eval_arch_pooled(args) -> dict:
    arch, tech = args
    return _eval_arch(_WORKER_MODELS, arch, tech)


def evaluate_archs(models, archs, tech,
                   workers: int = 1,
                   cache: DesignCache | None = None,
                   overlay: dict | None = None) -> list[dict]:
    """Evaluate *models* on every architecture in *archs*; returns one
    ``{"cycles", "energy_pj", "ops"}`` row per arch, in order.  Rows are
    served from *cache* when possible and computed in parallel when
    ``workers > 1``.

    *overlay* is a plain ``{eval_key: row}`` dict consulted before the
    cache and updated with every row this call resolves (including
    cache hits), so a caller can carry a self-contained copy of the
    rows — the DSE checkpoint mechanism."""
    models = list(models)
    archs = list(archs)
    fingerprints = [model_fingerprint(m) for m in models]
    keys = [_eval_key(fingerprints, arch, tech) for arch in archs]
    rows: dict[int, dict] = {}
    cold: list[int] = []
    for i, key in enumerate(keys):
        record = overlay.get(key) if overlay is not None else None
        if record is None:
            record = cache.get(key) if cache is not None else None
        if record is not None and record.get("kind") == "eval-v1":
            rows[i] = record
            if overlay is not None:
                overlay[key] = record
        else:
            cold.append(i)

    if workers <= 1 or len(cold) <= 1:
        computed = [_eval_arch(models, archs[i], tech) for i in cold]
    else:
        ctx = _pool_context()
        with ctx.Pool(processes=min(workers, len(cold)),
                      initializer=_init_eval_worker,
                      initargs=(models,)) as pool:
            computed = pool.map(_eval_arch_pooled,
                                [(archs[i], tech) for i in cold])
    for i, record in zip(cold, computed):
        rows[i] = record
        if overlay is not None:
            overlay[keys[i]] = record
        if cache is not None:
            cache.put(keys[i], record)
    return [rows[i] for i in range(len(archs))]
