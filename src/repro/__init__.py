"""LEGO: spatial accelerator generation and optimization for tensor
applications — a from-scratch Python reproduction of the HPCA 2025 paper.

Quickstart::

    from repro import kernels, build_adg, generate, run_backend
    wl = kernels.gemm(64, 64, 64)
    df = kernels.gemm_dataflow("KJ", wl, 16, 16)
    design = run_backend(generate(build_adg([df])))
    print(design.report["register_bits"])
"""

from .backend import BackendOptions, generate, run_backend
from .core import AffineMap, BodyOp, Dataflow, TensorAccess, Workload
from .core import kernels
from .core.frontend import FrontendConfig, build_adg

__version__ = "1.2.0"

__all__ = ["AffineMap", "Workload", "TensorAccess", "BodyOp", "Dataflow",
           "kernels", "build_adg", "FrontendConfig", "generate",
           "run_backend", "BackendOptions", "__version__"]
