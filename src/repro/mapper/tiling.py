"""Tiling enumeration utilities used by the mapping search.

The mapper needs loop tilings whose factor products cover each dimension;
these helpers enumerate exact factorizations (for small dims) and padded
power-of-two splits (for large dims), plus working-set accounting.
"""

from __future__ import annotations

import math
from typing import Iterator

__all__ = ["divisors", "factor_pairs", "tile_candidates", "working_set_bytes"]


def divisors(n: int) -> list[int]:
    """All positive divisors of *n*, ascending."""
    if n <= 0:
        raise ValueError("n must be positive")
    small, large = [], []
    d = 1
    while d * d <= n:
        if n % d == 0:
            small.append(d)
            if d != n // d:
                large.append(n // d)
        d += 1
    return small + large[::-1]


def factor_pairs(n: int) -> list[tuple[int, int]]:
    """All ordered pairs ``(a, b)`` with ``a * b == n``."""
    return [(d, n // d) for d in divisors(n)]


def tile_candidates(bound: int, floor: int = 1,
                    max_candidates: int = 12) -> list[int]:
    """Candidate tile sizes for a loop of size *bound*: exact divisors when
    few, otherwise power-of-two split points, always including ``bound``
    and the spatial floor."""
    divs = [d for d in divisors(bound) if d >= floor]
    if len(divs) <= max_candidates:
        out = divs
    else:
        out = sorted({min(bound, max(floor, 1 << k))
                      for k in range(0, bound.bit_length() + 1)})
    if bound not in out:
        out.append(bound)
    return sorted(set(out))


def working_set_bytes(tiles: dict[str, int],
                      tensors: dict[str, tuple[str, ...]],
                      bytes_per_el: dict[str, float]) -> float:
    """Bytes of L1 needed to hold one tile of every tensor."""
    total = 0.0
    for t, tdims in tensors.items():
        size = bytes_per_el.get(t, 1.0)
        for d in tdims:
            if d in tiles:
                size *= tiles[d]
        total += size
    return total


def ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def n_tiles(dims: dict[str, int], tiles: dict[str, int]) -> int:
    out = 1
    for d, bound in dims.items():
        out *= ceil_div(bound, tiles.get(d, bound))
    return out
