"""Per-layer mapping search (paper §VI-A: "a simple mapping search tool
that identifies the best mapping (i.e., dataflow and tiling) for every
neural network layer based on the simulated #cycles and energy").

The search space is the cross product of the hardware's switchable
spatial dataflows with the L1 tilings; the cost model is the front-end
performance simulator.  Results are cached per (layer shape, arch).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..models.layers import PPULayer
from ..sim.perf_model import ArchPerf, LayerPerf, evaluate_layer

__all__ = ["Mapping", "choose_mapping", "map_model"]


@dataclass(frozen=True)
class Mapping:
    """The chosen schedule of one layer."""

    dataflow: str
    cycles: float
    energy_pj: float
    utilization: float


_cache: dict[tuple, tuple[Mapping, LayerPerf]] = {}


def choose_mapping(layer, arch: ArchPerf,
                   objective: str = "latency") -> tuple[Mapping, LayerPerf]:
    """Best (dataflow, tiling) for *layer* on *arch*.

    ``objective`` is ``latency`` (cycles first, energy tie-break) or
    ``energy`` (the reverse) — Table V's two design goals.
    """
    key = (layer, arch, objective)
    if key in _cache:
        return _cache[key]
    best: tuple[tuple, Mapping, LayerPerf] | None = None
    for dataflow in arch.dataflows:
        perf = evaluate_layer(layer, arch, dataflow)
        if perf is None:
            continue
        rank = ((perf.cycles, perf.energy_pj) if objective == "latency"
                else (perf.energy_pj, perf.cycles))
        if best is None or rank < best[0]:
            mapping = Mapping(dataflow, perf.cycles, perf.energy_pj,
                              perf.utilization)
            best = (rank, mapping, perf)
    if best is None:
        raise ValueError(f"no feasible mapping for layer {layer!r}")
    _cache[key] = (best[1], best[2])
    return _cache[key]


def map_model(model, arch: ArchPerf, objective: str = "latency"
              ) -> list[tuple[object, Mapping | None]]:
    """Mappings for every layer of a model (None for PPU layers)."""
    out = []
    for layer in model.layers:
        if isinstance(layer, PPULayer):
            out.append((layer, None))
        else:
            mapping, _perf = choose_mapping(layer, arch, objective)
            out.append((layer, mapping))
    return out
