"""Mapping search: dataflow and tiling selection per layer."""

from .search import Mapping, choose_mapping, map_model
from .tiling import divisors, factor_pairs, tile_candidates

__all__ = ["Mapping", "choose_mapping", "map_model", "divisors",
           "factor_pairs", "tile_candidates"]
