"""Span-based tracing with Chrome-trace-event export (Perfetto-ready).

A *span* is one timed region of work — an HTTP request, a staged
pipeline phase, an emitter family run — recorded as a Chrome trace
"complete" event (``ph: "X"``): wall-clock start in epoch microseconds,
duration from ``perf_counter``, the recording pid/tid, and free-form
``args``.  Events from many processes merge cleanly because the
timestamps share the epoch clock; load the exported JSON at
https://ui.perfetto.dev (or ``chrome://tracing``) and spans nest by
timing per thread track.

Request-scoped **trace IDs** ride a :mod:`contextvars` variable: the
server (or ``api``) mints one per request (:func:`new_trace_id`), binds
it with :func:`trace_context`, and every span recorded inside — on the
event loop, on an executor thread that re-binds it, or in a pool worker
that received it inside a pickled payload — carries it in ``args``, so
one request's work can be filtered out of a fleet-wide trace.

Spans land in the process-global :class:`Tracer` ring buffer (bounded,
so a long-lived server cannot leak memory through its own telemetry).

>>> get_tracer().clear()
>>> with trace_span("demo", kind="doc"):
...     pass
>>> event = get_tracer().events()[-1]
>>> event["name"], event["ph"], event["args"]["kind"]
('demo', 'X', 'doc')
"""

from __future__ import annotations

import collections
import contextlib
import contextvars
import json
import os
import secrets
import threading
import time

__all__ = ["Tracer", "Span", "get_tracer", "trace_span", "new_trace_id",
           "current_trace_id", "trace_context", "export_chrome_trace",
           "load_chrome_trace"]

_TRACE_ID: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_trace_id", default=None)


def new_trace_id() -> str:
    """A fresh 16-hex-char request-scoped trace id."""
    return secrets.token_hex(8)


def current_trace_id() -> str | None:
    """The trace id bound in this context, or None outside a request."""
    return _TRACE_ID.get()


@contextlib.contextmanager
def trace_context(trace_id: str | None):
    """Bind *trace_id* for the duration of the block.  Executor threads
    and pool workers do not inherit the caller's contextvars, so thread
    and worker entry points re-bind explicitly with this."""
    token = _TRACE_ID.set(trace_id)
    try:
        yield trace_id
    finally:
        _TRACE_ID.reset(token)


class Span:
    """Mutable handle yielded by :func:`trace_span`; ``set(**attrs)``
    attaches attributes after the fact (e.g. a result status)."""

    __slots__ = ("name", "attrs")

    def __init__(self, name: str, attrs: dict):
        self.name = name
        self.attrs = attrs

    def set(self, **attrs) -> None:
        self.attrs.update(attrs)


class Tracer:
    """Bounded, thread-safe buffer of finished span events."""

    def __init__(self, max_events: int = 100_000):
        self._lock = threading.Lock()
        self._events: collections.deque = collections.deque(
            maxlen=max_events)
        self.enabled = True
        #: spans dropped because the ring buffer was full
        self.dropped = 0

    def record(self, event: dict) -> None:
        with self._lock:
            if len(self._events) == self._events.maxlen:
                self.dropped += 1
            self._events.append(event)

    def extend(self, events) -> None:
        """Merge spans recorded elsewhere (pool workers, siblings)."""
        with self._lock:
            for event in events:
                if len(self._events) == self._events.maxlen:
                    self.dropped += 1
                self._events.append(event)

    def events(self) -> list[dict]:
        with self._lock:
            return list(self._events)

    def take(self) -> list[dict]:
        """Drain: return the buffered spans and clear the buffer."""
        with self._lock:
            out = list(self._events)
            self._events.clear()
            return out

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self.dropped = 0

    def chrome_trace(self) -> dict:
        """The buffer as a Chrome-trace-event JSON object."""
        return {"traceEvents": self.events(), "displayTimeUnit": "ms"}


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-global span buffer."""
    return _TRACER


@contextlib.contextmanager
def trace_span(name: str, **attrs):
    """Record the enclosed block as one complete ("X") trace event.

    Attributes plus the current trace id land in the event's ``args``.
    Yields a :class:`Span`; ``span.set(...)`` adds attributes before
    the event is finalized.
    """
    tracer = _TRACER
    if not tracer.enabled:
        yield Span(name, attrs)
        return
    span = Span(name, attrs)
    ts_us = time.time_ns() // 1000  # epoch clock: aligns across processes
    t0 = time.perf_counter()
    try:
        yield span
    finally:
        dur_us = (time.perf_counter() - t0) * 1e6
        args = dict(span.attrs)
        trace_id = _TRACE_ID.get()
        if trace_id is not None:
            args["trace_id"] = trace_id
        tracer.record({"name": span.name, "ph": "X", "ts": ts_us,
                       "dur": dur_us, "pid": os.getpid(),
                       "tid": threading.get_ident(), "args": args})


def export_chrome_trace(path, events: list[dict] | None = None) -> int:
    """Write the tracer buffer (or *events*) as Chrome-trace JSON at
    *path*; returns the number of events written.  The file loads
    directly in Perfetto (https://ui.perfetto.dev)."""
    if events is None:
        events = _TRACER.events()
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    with open(path, "w") as fh:
        json.dump(payload, fh)
    return len(events)


def load_chrome_trace(path) -> list[dict]:
    """Read a Chrome-trace JSON file (object or bare array form) back
    into a list of events — the ``repro trace`` CLI's loader."""
    with open(path) as fh:
        data = json.load(fh)
    if isinstance(data, dict):
        data = data.get("traceEvents", [])
    if not isinstance(data, list):
        raise ValueError(f"{path}: not a Chrome trace event file")
    return [e for e in data if isinstance(e, dict)]
