"""Span-based tracing with Chrome-trace-event export (Perfetto-ready).

A *span* is one timed region of work — an HTTP request, a staged
pipeline phase, an emitter family run — recorded as a Chrome trace
"complete" event (``ph: "X"``): wall-clock start in epoch microseconds,
duration from ``perf_counter``, the recording pid/tid, and free-form
``args``.  Events from many processes merge cleanly because the
timestamps share the epoch clock; load the exported JSON at
https://ui.perfetto.dev (or ``chrome://tracing``) and spans nest by
timing per thread track.

Request-scoped **trace IDs** ride a :mod:`contextvars` variable: the
server (or ``api``) mints one per request (:func:`new_trace_id`), binds
it with :func:`trace_context`, and every span recorded inside — on the
event loop, on an executor thread that re-binds it, or in a pool worker
that received it inside a pickled payload — carries it in ``args``, so
one request's work can be filtered out of a fleet-wide trace.

Spans additionally form a **tree**: every span mints a ``span_id`` and
records the enclosing span's id as ``parent_id``.  The pair travels
across process hops in the ``X-Repro-Trace`` header
(:data:`TRACE_HEADER`, traceparent-style ``trace_id-span_id``), so a
request proxied client → router → backend → pool worker yields one
connected trace tree: the backend's spans parent under the router's
proxy span, and a worker's spans parent under the engine's batch span.

Spans land in the process-global :class:`Tracer` ring buffer (bounded,
so a long-lived server cannot leak memory through its own telemetry).
Drops and occupancy are exported as ``repro_trace_dropped_total`` /
``repro_trace_buffer_events`` (see :func:`refresh_trace_metrics`).

>>> get_tracer().clear()
>>> with trace_span("demo", kind="doc"):
...     pass
>>> event = get_tracer().events()[-1]
>>> event["name"], event["ph"], event["args"]["kind"]
('demo', 'X', 'doc')
>>> len(event["args"]["span_id"])
16
"""

from __future__ import annotations

import collections
import contextlib
import contextvars
import json
import os
import re
import secrets
import threading
import time

from .metrics import get_registry

__all__ = ["Tracer", "Span", "get_tracer", "trace_span", "new_trace_id",
           "new_span_id", "current_trace_id", "current_span_id",
           "trace_context", "export_chrome_trace", "load_chrome_trace",
           "TRACE_HEADER", "format_trace_header", "parse_trace_header",
           "active_spans", "refresh_trace_metrics"]

_TRACE_ID: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_trace_id", default=None)
#: id of the innermost open span — the parent for spans opened next.
_SPAN_ID: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_span_id", default=None)

#: HTTP header carrying ``trace_id-span_id`` across process hops.
TRACE_HEADER = "X-Repro-Trace"

_ID_RE = re.compile(r"^[0-9a-f]{16}$")

_TRACE_DROPPED = get_registry().counter(
    "repro_trace_dropped_total",
    "spans dropped because a tracer ring buffer was full")
_TRACE_BUFFER = get_registry().gauge(
    "repro_trace_buffer_events",
    "spans currently held in the process tracer ring buffer")


def new_trace_id() -> str:
    """A fresh 16-hex-char request-scoped trace id."""
    return secrets.token_hex(8)


def new_span_id() -> str:
    """A fresh 16-hex-char span id."""
    return secrets.token_hex(8)


def current_trace_id() -> str | None:
    """The trace id bound in this context, or None outside a request."""
    return _TRACE_ID.get()


def current_span_id() -> str | None:
    """The innermost open span's id in this context (the id a child
    span — or a downstream process — should record as ``parent_id``),
    or None outside any span."""
    return _SPAN_ID.get()


@contextlib.contextmanager
def trace_context(trace_id: str | None, parent_id: str | None = None):
    """Bind *trace_id* (and optionally an upstream *parent_id*) for the
    duration of the block.  Executor threads and pool workers do not
    inherit the caller's contextvars, so thread and worker entry points
    re-bind explicitly with this; servers bind the pair parsed from an
    incoming ``X-Repro-Trace`` header so their spans join the caller's
    trace tree."""
    token = _TRACE_ID.set(trace_id)
    stoken = _SPAN_ID.set(parent_id)
    try:
        yield trace_id
    finally:
        _SPAN_ID.reset(stoken)
        _TRACE_ID.reset(token)


def format_trace_header(trace_id: str | None = None,
                        span_id: str | None = None) -> str | None:
    """The ``X-Repro-Trace`` value for the current context (or explicit
    ids): ``trace_id-span_id``, bare ``trace_id`` when no span is open,
    None when no trace is bound — callers skip the header entirely."""
    tid = trace_id if trace_id is not None else _TRACE_ID.get()
    if tid is None:
        return None
    sid = span_id if span_id is not None else _SPAN_ID.get()
    return f"{tid}-{sid}" if sid else tid


def parse_trace_header(value: str | None) -> tuple[str | None, str | None]:
    """Parse an ``X-Repro-Trace`` value into ``(trace_id, parent_id)``.
    Malformed or missing headers parse as ``(None, None)`` — a garbage
    header must never fail a request, it just starts a fresh trace."""
    if not value:
        return None, None
    parts = value.strip().split("-")
    if not _ID_RE.match(parts[0]):
        return None, None
    if len(parts) == 1:
        return parts[0], None
    if len(parts) == 2 and _ID_RE.match(parts[1]):
        return parts[0], parts[1]
    return None, None


class Span:
    """Mutable handle yielded by :func:`trace_span`; ``set(**attrs)``
    attaches attributes after the fact (e.g. a result status).  The
    minted ``span_id`` is readable during the block — it is what a
    downstream hop must record as its ``parent_id``."""

    __slots__ = ("name", "attrs", "span_id", "parent_id")

    def __init__(self, name: str, attrs: dict,
                 span_id: str | None = None, parent_id: str | None = None):
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id

    def set(self, **attrs) -> None:
        self.attrs.update(attrs)


class Tracer:
    """Bounded, thread-safe buffer of finished span events."""

    def __init__(self, max_events: int = 100_000):
        self._lock = threading.Lock()
        self._events: collections.deque = collections.deque(
            maxlen=max_events)
        self.enabled = True
        #: spans dropped because the ring buffer was full
        self.dropped = 0

    def record(self, event: dict) -> None:
        with self._lock:
            if len(self._events) == self._events.maxlen:
                self.dropped += 1
                _TRACE_DROPPED.inc()
            self._events.append(event)

    def extend(self, events) -> None:
        """Merge spans recorded elsewhere (pool workers, siblings)."""
        with self._lock:
            for event in events:
                if len(self._events) == self._events.maxlen:
                    self.dropped += 1
                    _TRACE_DROPPED.inc()
                self._events.append(event)

    def events(self) -> list[dict]:
        with self._lock:
            return list(self._events)

    def take(self) -> list[dict]:
        """Drain: return the buffered spans and clear the buffer."""
        with self._lock:
            out = list(self._events)
            self._events.clear()
            return out

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self.dropped = 0

    def buffer_stats(self) -> dict:
        """Occupancy / capacity / drop count — the ``trace`` section of
        ``GET /healthz``."""
        with self._lock:
            return {"buffered": len(self._events),
                    "capacity": self._events.maxlen,
                    "dropped": self.dropped}

    def chrome_trace(self) -> dict:
        """The buffer as a Chrome-trace-event JSON object."""
        return {"traceEvents": self.events(), "displayTimeUnit": "ms"}


_TRACER = Tracer()

# Innermost open span *name* per OS thread — read by the sampling
# profiler (obs.profiler) to attribute CPU samples to pipeline phases.
# Mutated only by the owning thread; dict/list ops are GIL-atomic.
_THREAD_SPANS: dict[int, list] = {}


def get_tracer() -> Tracer:
    """The process-global span buffer."""
    return _TRACER


def active_spans() -> dict[int, str]:
    """Snapshot of ``{thread_ident: innermost open span name}`` across
    all threads — how profiler samples get their phase labels."""
    out = {}
    for ident, stack in list(_THREAD_SPANS.items()):
        try:
            out[ident] = stack[-1]
        except IndexError:  # raced with the owning thread's pop
            pass
    return out


def refresh_trace_metrics() -> dict:
    """Push the global tracer's occupancy into the
    ``repro_trace_buffer_events`` gauge (drops already count into
    ``repro_trace_dropped_total`` as they happen) and return
    :meth:`Tracer.buffer_stats` for ``/healthz``."""
    stats = _TRACER.buffer_stats()
    _TRACE_BUFFER.set(stats["buffered"])
    return stats


@contextlib.contextmanager
def trace_span(name: str, **attrs):
    """Record the enclosed block as one complete ("X") trace event.

    Attributes plus the current trace id land in the event's ``args``,
    alongside a fresh ``span_id`` and — when another span (or a bound
    upstream context) encloses this one — its ``parent_id``.  Yields a
    :class:`Span`; ``span.set(...)`` adds attributes before the event
    is finalized, and ``span.span_id`` is the id downstream hops parent
    under.
    """
    tracer = _TRACER
    if not tracer.enabled:
        yield Span(name, attrs)
        return
    span_id = secrets.token_hex(8)
    parent_id = _SPAN_ID.get()
    span = Span(name, attrs, span_id=span_id, parent_id=parent_id)
    token = _SPAN_ID.set(span_id)
    ident = threading.get_ident()
    stack = _THREAD_SPANS.setdefault(ident, [])
    stack.append(name)
    ts_us = time.time_ns() // 1000  # epoch clock: aligns across processes
    t0 = time.perf_counter()
    try:
        yield span
    finally:
        dur_us = (time.perf_counter() - t0) * 1e6
        stack.pop()
        if not stack:
            _THREAD_SPANS.pop(ident, None)
        _SPAN_ID.reset(token)
        args = dict(span.attrs)
        trace_id = _TRACE_ID.get()
        if trace_id is not None:
            args["trace_id"] = trace_id
        args["span_id"] = span_id
        if parent_id is not None:
            args["parent_id"] = parent_id
        tracer.record({"name": span.name, "ph": "X", "ts": ts_us,
                       "dur": dur_us, "pid": os.getpid(),
                       "tid": ident, "args": args})


def export_chrome_trace(path, events: list[dict] | None = None) -> int:
    """Write the tracer buffer (or *events*) as Chrome-trace JSON at
    *path*; returns the number of events written.  The file loads
    directly in Perfetto (https://ui.perfetto.dev)."""
    if events is None:
        events = _TRACER.events()
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    with open(path, "w") as fh:
        json.dump(payload, fh)
    return len(events)


def load_chrome_trace(path) -> list[dict]:
    """Read a Chrome-trace JSON file (object or bare array form) back
    into a list of events — the ``repro trace`` CLI's loader."""
    with open(path) as fh:
        data = json.load(fh)
    if isinstance(data, dict):
        data = data.get("traceEvents", [])
    if not isinstance(data, list):
        raise ValueError(f"{path}: not a Chrome trace event file")
    return [e for e in data if isinstance(e, dict)]
