"""Stdlib sampling profiler: wall-clock stack sampling, flamegraph-ready.

A daemon thread wakes at a configurable rate (default ~67 Hz — an odd
frequency so samples do not phase-lock with common 10 ms/100 ms timer
loops), snapshots every thread's Python stack via
``sys._current_frames()``, and accumulates collapsed call stacks
(Brendan Gregg's flamegraph input format: ``frame;frame;frame count``).
Nothing is installed per-call, so the overhead on the profiled code is
just the GIL time the sampler thread steals — well under 5% at the
default rate — which is what makes it safe to leave running on a
serving fleet (``repro serve --profile``).

Samples are attributed to the innermost open trace span on the sampled
thread (see :func:`repro.obs.tracing.active_spans`), so the per-phase
CPU split (``by_phase``) answers "*why* is ``schedule`` slow" rather
than just "schedule is slow".

Three surfaces share this module: ``GET /debug/profile?seconds=N`` on
a server (the router fans the capture across backends and merges),
``repro profile [--url]`` on the CLI, and the always-on profiler behind
``repro serve --profile``.

>>> p = Profile.from_dict({"hz": 50, "wall_s": 1.0, "samples": 2,
...     "idle_samples": 0, "stacks": {"a;b": 2}, "by_phase": {"emit": 2}})
>>> p.collapsed()
'a;b 2'
>>> p.top(1)[0]["frame"], p.top(1)[0]["self"]
('b', 2)
"""

from __future__ import annotations

import pathlib
import sys
import threading
import time

from .metrics import get_registry
from .tracing import active_spans

__all__ = ["Profile", "SamplingProfiler", "profile_for", "DEFAULT_HZ"]

DEFAULT_HZ = 67.0
_MAX_DEPTH = 64
_MAX_STACKS = 20_000
_TRUNCATED = "(truncated)"

#: leaf function names that mean "this thread is parked, not burning
#: CPU" — event loops in select, executors waiting on queues, our own
#: sampler sleeping.  They are counted separately as ``idle_samples``.
_IDLE_LEAVES = frozenset({
    "select", "poll", "epoll", "kqueue", "accept", "wait", "_wait",
    "acquire", "get", "recv", "recv_into", "read", "readinto",
    "readline", "sleep", "settimeout", "park", "_recv_bytes",
})

_SAMPLES = get_registry().counter(
    "repro_profile_samples_total",
    "thread stack samples taken by the sampling profiler")


def _frame_label(frame) -> str:
    code = frame.f_code
    return f"{pathlib.PurePath(code.co_filename).stem}.{code.co_name}"


class Profile:
    """An accumulated set of stack samples.

    ``stacks`` maps a collapsed stack string (root-first,
    ``;``-joined) to its sample count; ``by_phase`` maps trace-span
    names to the samples taken while that span was the innermost open
    one on the sampled thread ("(no span)" otherwise).
    """

    def __init__(self, hz: float, stacks: dict | None = None,
                 by_phase: dict | None = None, samples: int = 0,
                 idle_samples: int = 0, wall_s: float = 0.0):
        self.hz = hz
        self.stacks: dict[str, int] = dict(stacks or {})
        self.by_phase: dict[str, int] = dict(by_phase or {})
        self.samples = samples
        self.idle_samples = idle_samples
        self.wall_s = wall_s

    def collapsed(self, include_idle: bool = False) -> str:
        """Flamegraph input: one ``frame;frame;... count`` line per
        distinct stack, busiest first.  Feed to ``flamegraph.pl`` or
        paste into https://www.speedscope.app (collapsed format)."""
        lines = []
        for stack, count in sorted(self.stacks.items(),
                                   key=lambda kv: (-kv[1], kv[0])):
            if not include_idle and self._is_idle(stack):
                continue
            lines.append(f"{stack} {count}")
        return "\n".join(lines)

    @staticmethod
    def _is_idle(stack: str) -> bool:
        leaf = stack.rsplit(";", 1)[-1]
        return leaf.rsplit(".", 1)[-1] in _IDLE_LEAVES

    def top(self, n: int = 20, include_idle: bool = False) -> list[dict]:
        """Hottest frames: ``self`` counts samples with the frame on
        top of the stack, ``total`` counts samples with it anywhere."""
        self_c: dict[str, int] = {}
        total_c: dict[str, int] = {}
        for stack, count in self.stacks.items():
            if not include_idle and self._is_idle(stack):
                continue
            frames = stack.split(";")
            self_c[frames[-1]] = self_c.get(frames[-1], 0) + count
            for frame in set(frames):
                total_c[frame] = total_c.get(frame, 0) + count
        ranked = sorted(total_c,
                        key=lambda f: (-self_c.get(f, 0), -total_c[f], f))
        return [{"frame": f, "self": self_c.get(f, 0),
                 "total": total_c[f]} for f in ranked[:n]]

    def merge(self, other: "Profile") -> "Profile":
        """Fold *other* into self (cross-backend fleet merges)."""
        for stack, count in other.stacks.items():
            self.stacks[stack] = self.stacks.get(stack, 0) + count
        for phase, count in other.by_phase.items():
            self.by_phase[phase] = self.by_phase.get(phase, 0) + count
        self.samples += other.samples
        self.idle_samples += other.idle_samples
        self.wall_s = max(self.wall_s, other.wall_s)
        return self

    def to_dict(self, top_n: int = 30) -> dict:
        return {"hz": self.hz, "wall_s": round(self.wall_s, 3),
                "samples": self.samples, "idle_samples": self.idle_samples,
                "stacks": dict(self.stacks),
                "by_phase": dict(self.by_phase),
                "top": self.top(top_n)}

    @classmethod
    def from_dict(cls, data: dict) -> "Profile":
        return cls(hz=float(data.get("hz", DEFAULT_HZ)),
                   stacks=data.get("stacks") or {},
                   by_phase=data.get("by_phase") or {},
                   samples=int(data.get("samples", 0)),
                   idle_samples=int(data.get("idle_samples", 0)),
                   wall_s=float(data.get("wall_s", 0.0)))


class SamplingProfiler:
    """The daemon sampler.  ``start()`` it once; ``snapshot()`` reads
    the accumulated profile, ``take()`` drains it (the continuous-mode
    scrape pattern, mirroring ``Tracer.take``).  Bounded: at most
    ``max_stacks`` distinct stacks are kept, further novel stacks
    aggregate under ``(truncated)``."""

    def __init__(self, hz: float = DEFAULT_HZ, max_stacks: int = _MAX_STACKS,
                 exclude_idents=()):
        self.hz = max(1.0, min(1000.0, float(hz)))
        self.max_stacks = max_stacks
        #: thread idents never sampled (e.g. the thread blocked in
        #: ``profile_for``'s sleep — a builtin, so its Python leaf frame
        #: would otherwise masquerade as hot).
        self.exclude_idents = set(exclude_idents)
        self._lock = threading.Lock()
        self._stacks: dict[str, int] = {}
        self._by_phase: dict[str, int] = {}
        self._samples = 0
        self._idle = 0
        self._started_at: float | None = None
        self._wall_s = 0.0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        if self.running:
            return self
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="repro-profiler")
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=2.0)
        with self._lock:
            if self._started_at is not None:
                self._wall_s += time.perf_counter() - self._started_at
                self._started_at = None
        self._thread = None

    def _loop(self) -> None:
        interval = 1.0 / self.hz
        while not self._stop.wait(interval):
            self._sample_once()

    def _sample_once(self) -> None:
        own = threading.get_ident()
        frames = sys._current_frames()
        phases = active_spans()
        taken = 0
        with self._lock:
            for ident, frame in frames.items():
                if ident == own or ident in self.exclude_idents:
                    continue
                stack = []
                depth = 0
                while frame is not None and depth < _MAX_DEPTH:
                    stack.append(_frame_label(frame))
                    frame = frame.f_back
                    depth += 1
                stack.reverse()
                key = ";".join(stack)
                if key not in self._stacks and \
                        len(self._stacks) >= self.max_stacks:
                    key = _TRUNCATED
                self._stacks[key] = self._stacks.get(key, 0) + 1
                phase = phases.get(ident, "(no span)")
                self._by_phase[phase] = self._by_phase.get(phase, 0) + 1
                self._samples += 1
                if Profile._is_idle(key):
                    self._idle += 1
                taken += 1
        if taken:
            _SAMPLES.inc(taken)

    def _wall(self) -> float:
        if self._started_at is None:
            return self._wall_s
        return self._wall_s + (time.perf_counter() - self._started_at)

    def snapshot(self) -> Profile:
        """The profile accumulated so far (buffer kept)."""
        with self._lock:
            return Profile(self.hz, dict(self._stacks),
                           dict(self._by_phase), self._samples,
                           self._idle, self._wall())

    def take(self) -> Profile:
        """Drain: the profile so far, then reset the accumulators."""
        with self._lock:
            out = Profile(self.hz, self._stacks, self._by_phase,
                          self._samples, self._idle, self._wall())
            self._stacks = {}
            self._by_phase = {}
            self._samples = 0
            self._idle = 0
            self._wall_s = 0.0
            if self._started_at is not None:
                self._started_at = time.perf_counter()
            return out


def profile_for(seconds: float, hz: float = DEFAULT_HZ) -> Profile:
    """Blocking capture: sample every thread for *seconds*, return the
    :class:`Profile` — what ``GET /debug/profile?seconds=N`` runs on an
    executor thread."""
    profiler = SamplingProfiler(
        hz=hz, exclude_idents=(threading.get_ident(),))
    profiler.start()
    time.sleep(max(0.0, seconds))
    profiler.stop()
    return profiler.snapshot()
