"""Structured logging setup for the serving stack (stdlib ``logging``).

Library modules just call ``logging.getLogger("repro.<area>")`` and log;
nothing is emitted until an entry point opts in.  ``repro serve
--log-level`` calls :func:`setup_logging`, which attaches one
stream handler with a timestamped single-line format to the ``repro``
logger tree.  Idempotent: repeated setup re-levels the existing handler
instead of stacking duplicates.
"""

from __future__ import annotations

import logging

__all__ = ["setup_logging", "get_logger", "LOG_LEVELS"]

LOG_LEVELS = ("debug", "info", "warning", "error", "critical")

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s %(message)s"
_HANDLER_FLAG = "_repro_obs_handler"


def get_logger(name: str) -> logging.Logger:
    """``logging.getLogger("repro.<name>")`` (accepts either form)."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def setup_logging(level: str = "warning",
                  stream=None) -> logging.Logger:
    """Configure the ``repro`` logger tree to emit at *level*.

    Returns the root ``repro`` logger.  Safe to call more than once —
    the handler this module installed is re-used and re-levelled.
    """
    if level.lower() not in LOG_LEVELS:
        raise ValueError(f"unknown log level {level!r}; expected one of "
                         f"{LOG_LEVELS}")
    numeric = getattr(logging, level.upper())
    root = logging.getLogger("repro")
    root.setLevel(numeric)
    for handler in root.handlers:
        if getattr(handler, _HANDLER_FLAG, False):
            handler.setLevel(numeric)
            break
    else:
        handler = logging.StreamHandler(stream)
        handler.setLevel(numeric)
        handler.setFormatter(logging.Formatter(_FORMAT))
        setattr(handler, _HANDLER_FLAG, True)
        root.addHandler(handler)
    return root
