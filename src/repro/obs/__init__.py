"""Telemetry subsystem: metrics, tracing, phase vocabulary, logging.

Dependency-free observability for the whole stack — the substrate the
serving front end, the batch engine, the cache tiers, the DSE
strategies, and (eventually) a per-pass pipeline all instrument into:

:mod:`repro.obs.metrics`
    process-wide :class:`MetricsRegistry` (counters, gauges, fixed-
    bucket histograms; thread-safe; picklable snapshots that merge
    across pool workers) rendered as Prometheus text by ``GET
    /metrics`` and ``repro metrics``.
:mod:`repro.obs.tracing`
    ``trace_span(name, **attrs)`` spans with request-scoped trace IDs,
    buffered process-wide and exportable as Chrome-trace-event JSON
    (loadable at https://ui.perfetto.dev) — ``repro trace <file>``
    summarizes one.
:mod:`repro.obs.phases`
    the staged pipeline's phase-name constants (``adg``, ``schedule``,
    ``emit``, …) shared by ``DesignResult.phases``, the cache's phase
    tiers, metric labels, and span names.
:mod:`repro.obs.logs`
    stdlib-``logging`` setup (``repro serve --log-level``).

:func:`timed_phase` is the one-liner the pipeline uses: one context
manager that times a region, records a trace span, observes the
``repro_phase_seconds`` histogram, and (optionally) writes the duration
into a caller-owned dict such as ``DesignResult.phases``.
"""

from __future__ import annotations

import contextlib
import time

from .dashboard import render_dashboard
from .history import (MetricsHistory, histogram_quantile, histogram_totals,
                      snapshot_children, snapshot_value)
from .logs import LOG_LEVELS, get_logger, setup_logging
from .metrics import (DEFAULT_BUCKETS, Counter, Gauge, Histogram,
                      MetricsRegistry, get_registry, reset_registry)
from .phases import (CACHE_PHASE_TIERS, PHASE_ADG, PHASE_DESIGN,
                     PHASE_DESIGN_LOAD, PHASE_EMIT, PHASE_FLIGHT_WAIT,
                     PHASE_REQUEST, PHASE_SCHEDULE, PHASE_SIM,
                     PIPELINE_PHASES)
from .profiler import DEFAULT_HZ, Profile, SamplingProfiler, profile_for
from .tracing import (TRACE_HEADER, Span, Tracer, active_spans,
                      current_span_id, current_trace_id,
                      export_chrome_trace, format_trace_header, get_tracer,
                      load_chrome_trace, new_span_id, new_trace_id,
                      parse_trace_header, refresh_trace_metrics,
                      trace_context, trace_span)

__all__ = [
    "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "DEFAULT_BUCKETS", "get_registry", "reset_registry",
    "Tracer", "Span", "get_tracer", "trace_span", "new_trace_id",
    "new_span_id", "current_trace_id", "current_span_id",
    "trace_context", "export_chrome_trace", "load_chrome_trace",
    "TRACE_HEADER", "format_trace_header", "parse_trace_header",
    "active_spans", "refresh_trace_metrics",
    "Profile", "SamplingProfiler", "profile_for", "DEFAULT_HZ",
    "MetricsHistory", "snapshot_value", "snapshot_children",
    "histogram_totals", "histogram_quantile", "render_dashboard",
    "PHASE_ADG", "PHASE_SCHEDULE", "PHASE_EMIT", "PHASE_DESIGN_LOAD",
    "PHASE_FLIGHT_WAIT", "PHASE_REQUEST", "PHASE_DESIGN", "PHASE_SIM",
    "PIPELINE_PHASES", "CACHE_PHASE_TIERS",
    "setup_logging", "get_logger", "LOG_LEVELS",
    "timed_phase", "telemetry_snapshot", "merge_telemetry",
]

_PHASE_SECONDS = get_registry().histogram(
    "repro_phase_seconds",
    "wall-clock seconds per staged-pipeline phase", ("phase",))


@contextlib.contextmanager
def timed_phase(phase: str, sink: dict | None = None, **attrs):
    """Time one staged-pipeline phase into every telemetry sink at once:
    a trace span named *phase*, the ``repro_phase_seconds{phase=...}``
    histogram, and (when *sink* is given) ``sink[phase] = seconds`` —
    the shape ``DesignResult.phases`` expects."""
    t0 = time.perf_counter()
    with trace_span(phase, **attrs) as span:
        yield span
    elapsed = time.perf_counter() - t0
    if sink is not None:
        sink[phase] = elapsed
    _PHASE_SECONDS.labels(phase=phase).observe(elapsed)


def telemetry_snapshot() -> dict:
    """Picklable bundle of this process's telemetry delta — the payload
    a :class:`~repro.service.engine.BatchEngine` pool worker returns
    beside each result (see :func:`merge_telemetry`)."""
    return {"metrics": get_registry().snapshot(),
            "spans": get_tracer().take()}


def merge_telemetry(bundle: dict | None) -> None:
    """Fold a worker's :func:`telemetry_snapshot` into this process:
    metrics merge into the global registry, spans append to the global
    tracer (keeping their original worker pid)."""
    if not bundle:
        return
    get_registry().merge(bundle.get("metrics"))
    get_tracer().extend(bundle.get("spans", ()))
