"""The ``repro top`` renderer: one terminal frame of fleet state.

Pure functions from telemetry payloads to text — the CLI loop fetches
``/healthz`` and ``/metrics?format=json`` (both a single server and the
router serve the same shapes; the router's are fleet-merged), holds the
previous snapshot, and calls :func:`render_dashboard` each refresh.
Rates and latency quantiles come from *deltas* between the two
snapshots, so the numbers are "over the last refresh interval", not
since process start; the first frame (no previous snapshot) falls back
to lifetime totals.

Keeping the renderer import-light and side-effect-free makes it
testable without sockets: build two registry snapshots, render, assert
on the text.

>>> from repro.obs import MetricsRegistry
>>> reg = MetricsRegistry()
>>> reg.counter("repro_http_requests_total", "", ("route", "method",
...     "status")).labels(route="/generate", method="POST",
...     status="200").inc(4)
>>> frame = render_dashboard("http://x", {"ok": True}, None,
...                          reg.snapshot(), 2.0)
>>> "/generate" in frame
True
"""

from __future__ import annotations

import time

from .history import (histogram_quantile, histogram_totals,
                      snapshot_children, snapshot_value)

__all__ = ["render_dashboard"]

_CACHE_TIERS = ("memory", "disk", "phase", "live")


def _rate(curr: float | None, prev: float | None, dt: float) -> float:
    if curr is None:
        return 0.0
    base = prev if prev is not None else 0.0
    return max(0.0, curr - base) / max(dt, 1e-9)


def _counter_children(snapshot, name):
    return list(snapshot_children(snapshot, name)) if snapshot else []


def _fmt_ms(seconds: float | None) -> str:
    return "-" if seconds is None else f"{seconds * 1e3:.1f}"


def _health_line(health: dict | None) -> str:
    if not health:
        return "health: (unreachable)"
    if health.get("router"):
        backends = health.get("backends") or []
        up = sum(1 for b in backends if b.get("ok"))

        def mark(b: dict) -> str:
            # per-backend tracker state when the router reports one
            # (breaker + prober verdict); plain ok/DOWN otherwise
            state = b.get("state")
            if state is None:
                state = "up" if b.get("ok") else "down"
            word = state if state == "up" else state.upper()
            return f"{word}:{b.get('url', '?')}"

        status = health.get("status")
        verdict = f" [{status}]" if status else ""
        return (f"fleet: {up}/{health.get('shards', len(backends))} "
                f"backends ok{verdict}   "
                + " ".join(mark(b) for b in backends))
    cache = health.get("cache") or {}
    return (f"server: ok={health.get('ok')} "
            f"workers={health.get('workers', '?')} "
            f"persist={health.get('persist', False)} "
            f"cache_shards={cache.get('shards', '?')}")


def _jobs_line(health: dict | None) -> str:
    jobs = (health or {}).get("jobs") or {}
    if not jobs:
        return "jobs: (none)"
    parts = " ".join(f"{k}={v}" for k, v in sorted(jobs.items()))
    return f"jobs: {parts}"


def _trace_line(health: dict | None, curr: dict) -> str:
    trace = (health or {}).get("trace") or {}
    buffered = trace.get("buffered",
                         snapshot_value(curr, "repro_trace_buffer_events"))
    dropped = trace.get("dropped",
                        snapshot_value(curr, "repro_trace_dropped_total"))
    return (f"trace: {int(buffered or 0)} spans buffered / "
            f"{int(dropped or 0)} dropped")


def _routes_section(prev, curr, dt) -> list[str]:
    lines = [f"{'ROUTE':<22}{'REQ/S':>8}{'P50 ms':>9}{'P99 ms':>9}"
             f"{'TOTAL':>9}"]
    routes = sorted({labels.get("route")
                     for labels, _ in _counter_children(
                         curr, "repro_http_requests_total")
                     if labels.get("route")})
    for route in routes:
        total = 0.0
        prev_total = 0.0
        for labels, value in _counter_children(curr,
                                               "repro_http_requests_total"):
            if labels.get("route") == route:
                total += value
                prev_value = snapshot_value(
                    prev, "repro_http_requests_total", **labels) \
                    if prev else None
                prev_total += prev_value or 0.0
        hist = histogram_totals(curr, "repro_http_request_seconds",
                                route=route)
        p50 = p99 = None
        if hist:
            bounds, counts, _, _ = hist
            prev_hist = histogram_totals(
                prev, "repro_http_request_seconds", route=route) \
                if prev else None
            if prev_hist:
                counts = [c - p for c, p in zip(counts, prev_hist[1])]
                if sum(counts) <= 0:  # idle interval: show lifetime
                    counts = hist[1]
            p50 = histogram_quantile(bounds, counts, 0.50)
            p99 = histogram_quantile(bounds, counts, 0.99)
        lines.append(f"{route:<22}{_rate(total, prev_total, dt):>8.1f}"
                     f"{_fmt_ms(p50):>9}{_fmt_ms(p99):>9}{int(total):>9}")
    if len(lines) == 1:
        lines.append("(no http traffic yet)")
    return lines


def _cache_section(prev, curr, dt) -> list[str]:
    lines = [f"{'CACHE TIER':<22}{'HIT/S':>8}{'MISS/S':>9}{'HIT%':>9}"
             f"{'HITS':>9}"]
    seen = False
    for tier in _CACHE_TIERS:
        hits = snapshot_value(curr, "repro_cache_lookups_total",
                              tier=tier, outcome="hit")
        misses = snapshot_value(curr, "repro_cache_lookups_total",
                                tier=tier, outcome="miss")
        if hits is None and misses is None:
            continue
        seen = True
        hits = hits or 0.0
        misses = misses or 0.0
        p_hits = snapshot_value(prev, "repro_cache_lookups_total",
                                tier=tier, outcome="hit") if prev else None
        p_miss = snapshot_value(prev, "repro_cache_lookups_total",
                                tier=tier, outcome="miss") if prev else None
        total = hits + misses
        pct = f"{100.0 * hits / total:.1f}" if total else "-"
        lines.append(f"{tier:<22}{_rate(hits, p_hits, dt):>8.1f}"
                     f"{_rate(misses, p_miss, dt):>9.1f}{pct:>9}"
                     f"{int(hits):>9}")
    if not seen:
        lines.append("(no cache traffic yet)")
    return lines


def _engine_section(prev, curr, dt) -> list[str]:
    def pair(name, **labels):
        value = snapshot_value(curr, name, **labels) or 0.0
        prev_value = snapshot_value(prev, name, **labels) \
            if prev else None
        return value, _rate(value, prev_value, dt)

    def summed(name, **match):
        total = prev_total = 0.0
        for labels, value in _counter_children(curr, name):
            if all(labels.get(k) == v for k, v in match.items()):
                total += value
                if prev:
                    prev_total += snapshot_value(prev, name,
                                                 **labels) or 0.0
        return total, _rate(total, prev_total if prev else None, dt)

    groups, groups_s = pair("repro_planner_groups_total")
    leader, _ = pair("repro_planner_requests_total", role="leader")
    variant, _ = pair("repro_planner_requests_total", role="variant")
    lead, lead_s = summed("repro_singleflight_total", outcome="lead")
    wait, wait_s = summed("repro_singleflight_total", outcome="wait")
    mem, _ = pair("repro_generate_path_total", path="event_loop")
    exe, _ = pair("repro_generate_path_total", path="executor")
    return [
        f"planner: groups={int(groups)} ({groups_s:.1f}/s) "
        f"leader={int(leader)} variant={int(variant)}   "
        f"single-flight: lead={int(lead)} ({lead_s:.1f}/s) "
        f"wait={int(wait)} ({wait_s:.1f}/s)",
        f"generate path: memory-tier={int(mem)} executor={int(exe)}",
    ]


def _fleet_section(prev, curr, dt) -> list[str]:
    """Self-healing activity: failover retries by reason, breaker
    transitions, chaos faults fired.  Empty when none of the fleet
    metric families have data (single plain server)."""
    retries = _counter_children(curr, "repro_router_retries_total")
    flips = _counter_children(curr, "repro_breaker_transitions_total")
    faults = _counter_children(curr, "repro_faults_injected_total")
    if not (retries or flips or faults):
        return []
    total = sum(value for _, value in retries)
    prev_total = sum(value for _, value in _counter_children(
        prev, "repro_router_retries_total")) if prev else None
    reasons = " ".join(
        f"{labels.get('reason', '?')}={int(value)}"
        for labels, value in sorted(retries, key=lambda kv: -kv[1])) \
        or "-"
    opened = sum(value for labels, value in flips
                 if labels.get("to") == "open")
    fired = sum(value for _, value in faults)
    return [
        f"failover: retries={int(total)} "
        f"({_rate(total, prev_total, dt):.1f}/s)   by reason: {reasons}",
        f"breakers: transitions={int(sum(v for _, v in flips))} "
        f"(opened {int(opened)})   chaos faults fired={int(fired)}",
    ]


def render_dashboard(url: str, health: dict | None, prev: dict | None,
                     curr: dict, dt: float, now: float | None = None,
                     interval: float | None = None) -> str:
    """One ``repro top`` frame as a multi-line string.

    *prev*/*curr* are ``MetricsRegistry.snapshot()`` payloads *dt*
    seconds apart (*prev* may be None on the first frame); *health* is
    the ``/healthz`` payload (router or single-server shape)."""
    stamp = time.strftime("%H:%M:%S", time.localtime(now))
    head = f"repro top — {url} — {stamp}"
    if interval:
        head += f" (refresh {interval:g}s)"
    lines = [head, _health_line(health), _jobs_line(health),
             _trace_line(health, curr), ""]
    lines += _routes_section(prev, curr, dt)
    lines.append("")
    lines += _cache_section(prev, curr, dt)
    lines.append("")
    lines += _engine_section(prev, curr, dt)
    fleet = _fleet_section(prev, curr, dt)
    if fleet:
        lines.append("")
        lines += fleet
    return "\n".join(lines)
