"""The staged pipeline's phase-name vocabulary, in one place.

``DesignResult.phases`` keys, the cache's phase/live-tier namespaces,
the ``repro_phase_seconds`` metric labels, and the trace span names all
draw from these constants, so the pipeline, the cache listings, and the
docs table can never drift apart.  (Before this module existed the same
strings were retyped ad hoc in three places in ``service/spec.py``.)
"""

from __future__ import annotations

__all__ = [
    "PHASE_ADG", "PHASE_SCHEDULE", "PHASE_EMIT", "PHASE_DESIGN_LOAD",
    "PHASE_FLIGHT_WAIT", "PHASE_REQUEST", "PHASE_DESIGN", "PHASE_SIM",
    "PIPELINE_PHASES", "CACHE_PHASE_TIERS",
]

#: front-end phase: dataflows -> architecture description graph
PHASE_ADG = "adg"
#: backend §V pass pipeline: ADG -> scheduled design
PHASE_SCHEDULE = "schedule"
#: emission phase: scheduled design -> backend-family artifacts
PHASE_EMIT = "emit"
#: reloading a cached scheduled design instead of re-scheduling
#: (appears in ``DesignResult.phases`` when the intermediate tier hit)
PHASE_DESIGN_LOAD = "design_load"
#: joined another caller's in-flight computation instead of running
#: one (appears in ``DesignResult.phases`` when single-flight dedup
#: made this request wait; the winner's record is shared)
PHASE_FLIGHT_WAIT = "flight_wait"
#: single-flight namespace of a whole ``execute_request`` (keyed by
#: ``spec_hash`` — a flight-table namespace, never a cache namespace)
PHASE_REQUEST = "request"
#: cache namespace of the serialized scheduled design
PHASE_DESIGN = "design"
#: cache namespace of one dataflow's golden simulation vectors
PHASE_SIM = "sim"

#: every wall-clock phase a cold ``execute_request`` can report
PIPELINE_PHASES = (PHASE_ADG, PHASE_SCHEDULE, PHASE_EMIT,
                   PHASE_DESIGN_LOAD, PHASE_FLIGHT_WAIT)

#: the ``(phase, key)`` namespaces the cache's phase/live tiers store
CACHE_PHASE_TIERS = (PHASE_ADG, PHASE_DESIGN, PHASE_SIM)
