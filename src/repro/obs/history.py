"""Metrics history: a ring buffer of registry snapshots over time.

``GET /metrics`` is point-in-time; rates and trends need *two* points.
:class:`MetricsHistory` runs a daemon thread that captures the full
(mergeable, JSON-safe) ``MetricsRegistry.snapshot()`` every
``interval_s`` seconds into a bounded deque — at the default 2 s
interval and 600 samples that is a 20-minute window, served by ``GET
/metrics/history`` and rendered by the ``repro top`` dashboard.

The module also carries the snapshot *readers* the dashboard and tests
share: :func:`snapshot_value` pulls one scalar out of a snapshot,
:func:`snapshot_children` iterates a family's labeled children, and
:func:`histogram_quantile` interpolates p50/p99 from bucket-count
deltas between two snapshots (the standard Prometheus
``histogram_quantile`` estimate).

>>> from repro.obs import MetricsRegistry
>>> reg = MetricsRegistry()
>>> reg.counter("jobs_total", "jobs").inc(3)
>>> snapshot_value(reg.snapshot(), "jobs_total")
3.0
"""

from __future__ import annotations

import collections
import threading
import time

from .metrics import get_registry

__all__ = ["MetricsHistory", "snapshot_value", "snapshot_children",
           "histogram_totals", "histogram_quantile"]


class MetricsHistory:
    """Sample ``registry.snapshot()`` every *interval_s* seconds into a
    ring of *max_samples* entries ``{"ts": epoch_s, "metrics": snap}``.

    *refresh* (optional) runs before each sample — servers pass their
    gauge-refresh hook so job/trace gauges are current in every sample,
    not just on ``/metrics`` scrapes.
    """

    def __init__(self, registry=None, interval_s: float = 2.0,
                 max_samples: int = 600, refresh=None):
        self.registry = registry if registry is not None else get_registry()
        self.interval_s = max(0.05, float(interval_s))
        self.max_samples = max_samples
        self._refresh = refresh
        self._samples: collections.deque = collections.deque(
            maxlen=max_samples)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "MetricsHistory":
        if self.running:
            return self
        self._stop.clear()
        self.sample_now()  # a first point is available immediately
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="repro-metrics-history")
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=2.0)
        self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample_now()

    def sample_now(self) -> dict:
        """Capture one sample (also callable without the thread)."""
        if self._refresh is not None:
            try:
                self._refresh()
            except Exception:  # a broken gauge hook must not kill sampling
                pass
        sample = {"ts": time.time(), "metrics": self.registry.snapshot()}
        with self._lock:
            self._samples.append(sample)
        return sample

    def samples(self, limit: int | None = None) -> list[dict]:
        """Oldest-first samples (the last *limit* of them)."""
        with self._lock:
            out = list(self._samples)
        if limit is not None and limit >= 0:
            out = out[-limit:]
        return out

    def series(self, name: str, limit: int | None = None,
               **labels) -> list[tuple[float, float]]:
        """One metric as ``[(ts, value), ...]`` across the window."""
        out = []
        for sample in self.samples(limit):
            value = snapshot_value(sample["metrics"], name, **labels)
            if value is not None:
                out.append((sample["ts"], value))
        return out

    def to_dict(self, limit: int | None = None) -> dict:
        """The ``GET /metrics/history`` payload."""
        samples = self.samples(limit)
        return {"interval_s": self.interval_s,
                "max_samples": self.max_samples,
                "count": len(samples), "samples": samples}


def _family(snapshot: dict, name: str) -> dict | None:
    for entry in (snapshot or {}).get("metrics", []):
        if entry.get("name") == name:
            return entry
    return None


def snapshot_children(snapshot: dict, name: str):
    """Yield ``(labels_dict, data)`` for every child of family *name*
    in a ``MetricsRegistry.snapshot()``; ``data`` is a float for
    counters/gauges and the bucket dict for histograms."""
    family = _family(snapshot, name)
    if not family:
        return
    labelnames = family.get("labelnames", [])
    for child in family.get("children", []):
        labels = dict(zip(labelnames, child.get("labels", [])))
        yield labels, child.get("value")


def snapshot_value(snapshot: dict, name: str, **labels) -> float | None:
    """One scalar out of a snapshot: counter/gauge value, or a
    histogram child's observation count.  None when absent."""
    family = _family(snapshot, name)
    if not family:
        return None
    for child_labels, data in snapshot_children(snapshot, name):
        if child_labels == labels:
            if isinstance(data, dict):
                return float(data.get("count", 0))
            return float(data)
    return None


def histogram_totals(snapshot: dict, name: str,
                     **labels) -> tuple[list, list, float, float] | None:
    """A histogram child as ``(bounds, bucket_counts, sum, count)``
    (non-cumulative per-bucket counts; bounds exclude +Inf)."""
    family = _family(snapshot, name)
    if not family:
        return None
    for child_labels, data in snapshot_children(snapshot, name):
        if child_labels == labels and isinstance(data, dict):
            return (list(family.get("buckets", [])),
                    list(data.get("bucket_counts", [])),
                    float(data.get("sum", 0.0)),
                    float(data.get("count", 0)))
    return None


def histogram_quantile(bounds: list, bucket_counts: list,
                       q: float) -> float | None:
    """Prometheus-style quantile estimate from per-bucket counts:
    linear interpolation inside the bucket holding the q-th
    observation; the overflow bucket clamps to the top bound."""
    total = sum(bucket_counts)
    if total <= 0:
        return None
    rank = q * total
    seen = 0.0
    for i, count in enumerate(bucket_counts):
        if count <= 0:
            continue
        if seen + count >= rank:
            hi = bounds[i] if i < len(bounds) else bounds[-1]
            lo = bounds[i - 1] if 0 < i <= len(bounds) else 0.0
            frac = (rank - seen) / count
            return lo + (hi - lo) * min(1.0, max(0.0, frac))
        seen += count
    return bounds[-1] if bounds else None
