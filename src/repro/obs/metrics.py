"""Process-wide metrics registry: counters, gauges, histograms.

Dependency-free (stdlib only) and deliberately small: a
:class:`MetricsRegistry` owns named metric *families*; a family plus one
set of label values is a *child* holding the actual number(s).  All
mutation happens under one registry lock, so the asyncio server's
executor threads, the batch engine, and the cache can share the
process-global registry (:func:`get_registry`) without coordination.

Two properties matter beyond the basics:

**Mergeable snapshots.**  :meth:`MetricsRegistry.snapshot` returns a
plain picklable dict and :meth:`MetricsRegistry.merge` folds one into a
registry (counters and histograms add, gauges overwrite).  This is how
``BatchEngine`` pool workers report: each pooled task resets its worker
registry, runs, and ships the delta back beside the design record.

**Prometheus exposition.**  :meth:`MetricsRegistry.render` produces the
text format ``GET /metrics`` serves (``# HELP``/``# TYPE`` headers,
escaped label values, ``_bucket``/``_sum``/``_count`` histogram series).

>>> r = MetricsRegistry()
>>> c = r.counter("demo_total", "demo counter", ("kind",))
>>> c.labels(kind="a").inc()
>>> c.labels(kind="a").value
1.0
>>> "demo_total{kind=\\"a\\"} 1" in r.render()
True
"""

from __future__ import annotations

import math
import re
import threading

__all__ = ["MetricsRegistry", "Counter", "Gauge", "Histogram",
           "DEFAULT_BUCKETS", "get_registry", "reset_registry"]

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")

#: default latency buckets (seconds): 0.5 ms .. 10 s, then +Inf
DEFAULT_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                   0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

_SNAPSHOT_FORMAT = "repro-metrics-v1"


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class Counter:
    """Monotonically increasing value (one family child)."""

    __slots__ = ("_family", "value")

    def __init__(self, family: "_Family"):
        self._family = family
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up (inc({amount}))")
        with self._family._lock:
            self.value += amount


class Gauge:
    """A value that can go up and down (one family child)."""

    __slots__ = ("_family", "value")

    def __init__(self, family: "_Family"):
        self._family = family
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._family._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._family._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class Histogram:
    """Fixed-boundary cumulative histogram (one family child)."""

    __slots__ = ("_family", "bucket_counts", "sum", "count")

    def __init__(self, family: "_Family"):
        self._family = family
        self.bucket_counts = [0] * (len(family.buckets) + 1)  # + Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        buckets = self._family.buckets
        i = len(buckets)
        for j, bound in enumerate(buckets):
            if value <= bound:
                i = j
                break
        with self._family._lock:
            self.bucket_counts[i] += 1
            self.sum += value
            self.count += 1


_CHILD_TYPES = {"counter": Counter, "gauge": Gauge,
                "histogram": Histogram}


class _Family:
    """One named metric plus its labelled children."""

    def __init__(self, kind: str, name: str, help_text: str,
                 labelnames: tuple[str, ...],
                 buckets: tuple[float, ...],
                 lock: threading.RLock):
        self.kind = kind
        self.name = name
        self.help = help_text
        self.labelnames = labelnames
        self.buckets = buckets
        self._lock = lock
        self._children: dict[tuple, object] = {}

    def labels(self, **labelvalues):
        """The child at these label values (created on first use)."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}")
        key = tuple(str(labelvalues[k]) for k in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = _CHILD_TYPES[self.kind](self)
                self._children[key] = child
            return child

    # Label-less families act as their own single child.
    def _solo(self):
        if self.labelnames:
            raise ValueError(f"{self.name} requires labels "
                             f"{self.labelnames}; use .labels(...)")
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)


class MetricsRegistry:
    """Thread-safe, name -> metric-family table."""

    def __init__(self):
        self._lock = threading.RLock()
        self._families: dict[str, _Family] = {}

    # -- declaration -------------------------------------------------------

    def _family(self, kind: str, name: str, help_text: str,
                labelnames, buckets=()) -> _Family:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        labelnames = tuple(labelnames)
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.kind}{family.labelnames}")
                return family
            family = _Family(kind, name, help_text, labelnames,
                             tuple(buckets), self._lock)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str = "",
                labelnames=()) -> _Family:
        """Declare (or fetch) a counter family."""
        return self._family("counter", name, help_text, labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames=()) -> _Family:
        """Declare (or fetch) a gauge family."""
        return self._family("gauge", name, help_text, labelnames)

    def histogram(self, name: str, help_text: str = "", labelnames=(),
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> _Family:
        """Declare (or fetch) a histogram family with fixed buckets."""
        buckets = tuple(sorted(float(b) for b in buckets))
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        return self._family("histogram", name, help_text, labelnames,
                            buckets)

    # -- point reads (tests, benchmarks, planner assertions) ---------------

    def value(self, name: str, **labels) -> float:
        """One sample, by family name and exact label values: a
        counter's or gauge's current value, a histogram's observation
        *count*.  Unregistered families and never-touched children read
        as ``0.0`` — callers diff before/after around a region instead
        of special-casing first use."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return 0.0
            key = tuple(str(labels.get(k, "")) for k in family.labelnames)
            child = family._children.get(key)
            if child is None:
                return 0.0
            if family.kind == "histogram":
                return float(child.count)
            return float(child.value)

    # -- snapshots (picklable; the pool-worker merge protocol) -------------

    def snapshot(self) -> dict:
        """Plain-dict copy of every value — picklable, mergeable."""
        out: dict = {"format": _SNAPSHOT_FORMAT, "metrics": []}
        with self._lock:
            for family in self._families.values():
                entry = {"name": family.name, "kind": family.kind,
                         "help": family.help,
                         "labelnames": list(family.labelnames),
                         "buckets": list(family.buckets),
                         "children": []}
                for key, child in family._children.items():
                    if family.kind == "histogram":
                        value = {"bucket_counts": list(child.bucket_counts),
                                 "sum": child.sum, "count": child.count}
                    else:
                        value = child.value
                    entry["children"].append({"labels": list(key),
                                              "value": value})
                out["metrics"].append(entry)
        return out

    def merge(self, snapshot: dict | None) -> None:
        """Fold a :meth:`snapshot` into this registry: counters and
        histograms add, gauges take the incoming value.  Unknown
        families are declared on the fly, so a worker process can report
        metrics the parent never touched."""
        if not snapshot or snapshot.get("format") != _SNAPSHOT_FORMAT:
            return
        for entry in snapshot.get("metrics", []):
            family = self._family(
                entry["kind"], entry["name"], entry.get("help", ""),
                tuple(entry.get("labelnames", ())),
                tuple(entry.get("buckets", ())))
            for item in entry.get("children", []):
                child = family.labels(**dict(zip(family.labelnames,
                                                 item["labels"])))
                value = item["value"]
                with self._lock:
                    if family.kind == "histogram":
                        counts = value.get("bucket_counts", [])
                        for i, n in enumerate(counts):
                            if i < len(child.bucket_counts):
                                child.bucket_counts[i] += n
                        child.sum += value.get("sum", 0.0)
                        child.count += value.get("count", 0)
                    elif family.kind == "counter":
                        child.value += value
                    else:  # gauge: last writer wins
                        child.value = value

    def reset(self) -> None:
        """Zero every child *in place*.  Families (and module-level
        handles to them) stay registered — pool workers reset at task
        start so each task ships a clean delta back to the parent."""
        with self._lock:
            for family in self._families.values():
                for child in family._children.values():
                    if family.kind == "histogram":
                        child.bucket_counts = [0] * len(child.bucket_counts)
                        child.sum = 0.0
                        child.count = 0
                    else:
                        child.value = 0.0

    # -- exposition --------------------------------------------------------

    def render(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        with self._lock:
            for name in sorted(self._families):
                family = self._families[name]
                if family.help:
                    lines.append(f"# HELP {name} {family.help}")
                lines.append(f"# TYPE {name} {family.kind}")
                for key in sorted(family._children):
                    child = family._children[key]
                    labels = dict(zip(family.labelnames, key))
                    if family.kind == "histogram":
                        lines.extend(self._render_histogram(
                            name, labels, family.buckets, child))
                    else:
                        lines.append(f"{name}{self._labelset(labels)} "
                                     f"{_format_value(child.value)}")
        return "\n".join(lines) + "\n" if lines else ""

    @staticmethod
    def _labelset(labels: dict) -> str:
        if not labels:
            return ""
        inner = ",".join(f'{k}="{_escape_label(v)}"'
                         for k, v in labels.items())
        return "{" + inner + "}"

    @classmethod
    def _render_histogram(cls, name, labels, buckets, child) -> list[str]:
        lines = []
        cumulative = 0
        for bound, count in zip((*buckets, math.inf),
                                child.bucket_counts):
            cumulative += count
            le = dict(labels, le=_format_value(bound))
            lines.append(f"{name}_bucket{cls._labelset(le)} {cumulative}")
        base = cls._labelset(labels)
        lines.append(f"{name}_sum{base} {_format_value(child.sum)}")
        lines.append(f"{name}_count{base} {child.count}")
        return lines


# -- the process-wide registry ----------------------------------------------

_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry every subsystem instruments into."""
    return _REGISTRY


def reset_registry() -> None:
    """Zero the global registry in place (tests; pool-worker task
    boundaries).  Module-level family handles stay valid."""
    _REGISTRY.reset()
