"""JSON serialization of generated architectures.

An accelerator-generation tool must let users persist and diff what it
produced: the ADG (front-end decisions), the DAG (primitive netlist with
delay-matching results), and the per-dataflow runtime configurations.
The format is plain JSON — stable keys, integer-exact — and round-trips
through :func:`load_design` for the simulator and the reports.

(Workload/dataflow definitions are code, not data: the ADG embeds only
what downstream consumers need — matrices, bounds, names.)
"""

from __future__ import annotations

import json

from .backend.codegen import AddrGenConfig, DataflowConfig, Design
from .backend.dag import DAG, Edge
from .backend.primitives import Primitive

__all__ = ["dump_design", "load_design_graph", "design_to_dict",
           "design_from_dict", "canonical_dumps"]


def canonical_dumps(obj) -> str:
    """Deterministic JSON — sorted keys, no whitespace.  The service
    layer hashes and byte-compares this form, so it must not vary across
    processes or Python versions."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _jsonable(value):
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in sorted(value, key=repr)] \
            if isinstance(value, (set, frozenset)) else \
            [_jsonable(v) for v in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return repr(value)


def design_to_dict(design: Design) -> dict:
    """The JSON-ready dictionary form of a generated design."""
    dag = design.dag
    nodes = []
    for nid in sorted(dag.nodes):
        node = dag.nodes[nid]
        nodes.append({
            "id": nid,
            "kind": node.kind,
            "width": node.width,
            "latency": node.latency,
            "place": _jsonable(node.place),
            "params": _jsonable(node.params),
        })
    edges = [{
        "uid": e.uid, "src": e.src, "dst": e.dst, "pin": e.dst_pin,
        "width": e.width, "el": e.el,
    } for e in dag.edges]

    configs = {}
    for name, cfg in design.configs.items():
        configs[name] = {
            "mux_select": {str(k): v for k, v in cfg.mux_select.items()},
            "mux_policy": {str(k): [[p, list(dt) if dt else None]
                                    for p, dt in policy]
                           for k, policy in cfg.mux_policy.items()},
            "fifo_depth": {str(k): v for k, v in cfg.fifo_depth.items()},
            "fifo_phys": {str(k): v for k, v in cfg.fifo_phys.items()},
            "write_enable": sorted(cfg.write_enable),
            "read_enable": sorted(cfg.read_enable),
            "total_timestamps": cfg.total_timestamps,
            # the dataflow's temporal basis plus the liveness/offset
            # tables: everything design_from_dict needs to rebuild a
            # simulatable, emittable configuration without live
            # Dataflow objects
            "rt": [int(r) for r in cfg.dataflow.rt],
            "ctrl_offset": {str(k): v for k, v in cfg.ctrl_offset.items()},
            "active_nodes": sorted(cfg.active_nodes),
            "active_edges": sorted(cfg.active_edges),
            "addrgen": {str(k): {
                "rt": list(a.rt),
                "mdt": [list(r) for r in a.mdt],
                "offset": list(a.offset),
                "dims": list(a.dims),
                "gate_dt": list(a.gate_dt) if a.gate_dt else None,
            } for k, a in cfg.addrgen.items()},
        }

    adg = design.adg
    if adg is None:
        # A design reloaded by design_from_dict: the front-end graph is
        # code and is not reconstructed, but its serialized form rides
        # along so re-serialization round-trips byte-identically.
        meta = getattr(design, "_adg_dict", None) or {
            "fu_shape": [], "dataflows": sorted(design.configs), "adg": {}}
        fu_shape = list(meta["fu_shape"])
        dataflow_names = list(meta["dataflows"])
        adg_section = meta["adg"]
    else:
        fu_shape = list(adg.fu_shape)
        dataflow_names = [df.name for df in adg.dataflows]
        adg_section = {
            "connections": [{
                "tensor": c.tensor, "src": list(c.src), "dst": list(c.dst),
                "depth": c.depth, "kind": c.kind,
                "dataflows": sorted(c.dataflows),
            } for c in adg.connections],
            "data_nodes": [{
                "tensor": n.tensor, "fu": list(n.fu),
                "is_output": n.is_output,
                "dataflows": sorted(n.dataflows),
                "fallback_of": sorted(n.fallback_of),
            } for n in adg.data_nodes],
            "memory": {t: {"bank_shape": list(m.bank_shape),
                           "bank_stride": list(m.bank_stride),
                           "n_data_nodes": m.n_data_nodes}
                       for t, m in adg.memory.items()},
        }
    return {
        "format": "lego-design-v1",
        "fu_shape": fu_shape,
        "dataflows": dataflow_names,
        "adg": adg_section,
        "dag": {"nodes": nodes, "edges": edges},
        "configs": configs,
        "report": _jsonable({k: v for k, v in design.report.items()
                             if k != "options"}),
    }


def dump_design(design: Design, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(design_to_dict(design), fh, indent=1)


def _dag_from_dict(data: dict) -> DAG:
    """Rebuild the primitive DAG of a serialized design."""
    dag = DAG()
    for spec in data["dag"]["nodes"]:
        node = Primitive(spec["id"], spec["kind"], width=spec["width"],
                         latency=spec["latency"], params=spec["params"],
                         place=tuple(spec["place"])
                         if isinstance(spec["place"], list) else spec["place"])
        dag.nodes[node.node_id] = node
        dag._next_id = max(dag._next_id, node.node_id + 1)
    for spec in data["dag"]["edges"]:
        edge = Edge(spec["src"], spec["dst"], spec["pin"], spec["width"],
                    spec["el"], uid=spec["uid"])
        dag.edges.append(edge)
        dag._next_edge_uid = max(dag._next_edge_uid, edge.uid + 1)
    return dag


def load_design_graph(path: str) -> tuple[DAG, dict[str, dict]]:
    """Reload the DAG and raw per-dataflow configuration dictionaries.

    The graph is fully reconstructed (usable for reports, Verilog
    emission, and resource accounting); configurations are returned as
    dictionaries.  :func:`design_from_dict` goes further and rebuilds a
    simulatable :class:`Design`.
    """
    with open(path) as fh:
        data = json.load(fh)
    if data.get("format") != "lego-design-v1":
        raise ValueError("not a LEGO design file")
    return _dag_from_dict(data), data["configs"]


class _LoadedDataflow:
    """Stand-in for the live :class:`~repro.core.dataflow.Dataflow` of a
    reloaded design: carries exactly what the simulator and the emitter
    families read (name, temporal basis, timestamp count)."""

    __slots__ = ("name", "rt", "total_timestamps")

    def __init__(self, name: str, rt, total_timestamps: int):
        self.name = name
        self.rt = tuple(int(r) for r in rt)
        self.total_timestamps = int(total_timestamps)

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return (f"_LoadedDataflow({self.name!r}, rt={self.rt}, "
                f"total_timestamps={self.total_timestamps})")


def _restore_params(params: dict) -> dict:
    """Undo the JSON coercions of :func:`_jsonable` for the parameter
    keys the simulator and emitters consume structurally."""
    out = dict(params)
    pdf = out.get("pin_dataflows")
    if isinstance(pdf, dict):
        out["pin_dataflows"] = {int(k): set(v) for k, v in pdf.items()}
    return out


def design_from_dict(data: dict) -> Design:
    """Rebuild a simulatable, emittable :class:`Design` from its
    :func:`design_to_dict` form.

    The reloaded design carries the DAG, every per-dataflow runtime
    configuration (with liveness sets and control offsets), and the pass
    report — everything the cycle-accurate simulator and the emitter
    backends consume.  It does *not* carry the front-end ADG (whose
    dataflow/workload objects are code, not data): ``design.adg`` is
    ``None``, so ADG-level reports must come from the original record.
    This is the content-addressed intermediate the staged cold path
    caches between the scheduling and emission phases.
    """
    if data.get("format") != "lego-design-v1":
        raise ValueError("not a LEGO design dictionary")
    dag = _dag_from_dict(data)
    for node in dag.nodes.values():
        node.params = _restore_params(node.params)

    configs: dict[str, DataflowConfig] = {}
    missing_liveness = False
    for name, raw in data["configs"].items():
        rt = raw.get("rt")
        if rt is None:
            # Pre-staged-pipeline record: recover the temporal basis
            # from any address generator (they all share it).
            for ag in raw["addrgen"].values():
                rt = ag["rt"]
                break
            else:
                rt = [int(raw["total_timestamps"])]
        addrgen = {
            int(k): AddrGenConfig(
                rt=tuple(int(r) for r in a["rt"]),
                mdt=tuple(tuple(int(x) for x in row) for row in a["mdt"]),
                offset=tuple(int(x) for x in a["offset"]),
                dims=tuple(int(x) for x in a["dims"]),
                gate_dt=(tuple(int(x) for x in a["gate_dt"])
                         if a.get("gate_dt") else None))
            for k, a in raw["addrgen"].items()}
        cfg = DataflowConfig(
            dataflow=_LoadedDataflow(name, rt, raw["total_timestamps"]),
            mux_select={int(k): int(v)
                        for k, v in raw["mux_select"].items()},
            mux_policy={int(k): [(int(p), tuple(int(x) for x in dt)
                                  if dt else None) for p, dt in policy]
                        for k, policy in raw["mux_policy"].items()},
            fifo_depth={int(k): int(v)
                        for k, v in raw["fifo_depth"].items()},
            fifo_phys={int(k): int(v)
                       for k, v in raw.get("fifo_phys", {}).items()},
            addrgen=addrgen,
            write_enable=set(raw["write_enable"]),
            read_enable=set(raw["read_enable"]),
            active_nodes=set(raw.get("active_nodes", ())),
            active_edges=set(raw.get("active_edges", ())),
            ctrl_offset={int(k): int(v)
                         for k, v in raw.get("ctrl_offset", {}).items()},
        )
        if "active_nodes" not in raw:
            missing_liveness = True
        configs[name] = cfg

    design = Design(adg=None, dag=dag, configs=configs,
                    report=data.get("report", {}))
    design._adg_dict = {"fu_shape": data.get("fu_shape", []),
                        "dataflows": data.get("dataflows",
                                              sorted(configs)),
                        "adg": data.get("adg", {})}
    if missing_liveness:
        from .backend.codegen import compute_liveness

        compute_liveness(design)
    return design
