"""JSON serialization of generated architectures.

An accelerator-generation tool must let users persist and diff what it
produced: the ADG (front-end decisions), the DAG (primitive netlist with
delay-matching results), and the per-dataflow runtime configurations.
The format is plain JSON — stable keys, integer-exact — and round-trips
through :func:`load_design` for the simulator and the reports.

(Workload/dataflow definitions are code, not data: the ADG embeds only
what downstream consumers need — matrices, bounds, names.)
"""

from __future__ import annotations

import json

from .backend.codegen import AddrGenConfig, DataflowConfig, Design
from .backend.dag import DAG, Edge
from .backend.primitives import Primitive

__all__ = ["dump_design", "load_design_graph", "design_to_dict",
           "canonical_dumps"]


def canonical_dumps(obj) -> str:
    """Deterministic JSON — sorted keys, no whitespace.  The service
    layer hashes and byte-compares this form, so it must not vary across
    processes or Python versions."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _jsonable(value):
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in sorted(value, key=repr)] \
            if isinstance(value, (set, frozenset)) else \
            [_jsonable(v) for v in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return repr(value)


def design_to_dict(design: Design) -> dict:
    """The JSON-ready dictionary form of a generated design."""
    dag = design.dag
    nodes = []
    for nid in sorted(dag.nodes):
        node = dag.nodes[nid]
        nodes.append({
            "id": nid,
            "kind": node.kind,
            "width": node.width,
            "latency": node.latency,
            "place": _jsonable(node.place),
            "params": _jsonable(node.params),
        })
    edges = [{
        "uid": e.uid, "src": e.src, "dst": e.dst, "pin": e.dst_pin,
        "width": e.width, "el": e.el,
    } for e in dag.edges]

    configs = {}
    for name, cfg in design.configs.items():
        configs[name] = {
            "mux_select": {str(k): v for k, v in cfg.mux_select.items()},
            "mux_policy": {str(k): [[p, list(dt) if dt else None]
                                    for p, dt in policy]
                           for k, policy in cfg.mux_policy.items()},
            "fifo_depth": {str(k): v for k, v in cfg.fifo_depth.items()},
            "fifo_phys": {str(k): v for k, v in cfg.fifo_phys.items()},
            "write_enable": sorted(cfg.write_enable),
            "read_enable": sorted(cfg.read_enable),
            "total_timestamps": cfg.total_timestamps,
            "addrgen": {str(k): {
                "rt": list(a.rt),
                "mdt": [list(r) for r in a.mdt],
                "offset": list(a.offset),
                "dims": list(a.dims),
                "gate_dt": list(a.gate_dt) if a.gate_dt else None,
            } for k, a in cfg.addrgen.items()},
        }

    adg = design.adg
    return {
        "format": "lego-design-v1",
        "fu_shape": list(adg.fu_shape),
        "dataflows": [df.name for df in adg.dataflows],
        "adg": {
            "connections": [{
                "tensor": c.tensor, "src": list(c.src), "dst": list(c.dst),
                "depth": c.depth, "kind": c.kind,
                "dataflows": sorted(c.dataflows),
            } for c in adg.connections],
            "data_nodes": [{
                "tensor": n.tensor, "fu": list(n.fu),
                "is_output": n.is_output,
                "dataflows": sorted(n.dataflows),
                "fallback_of": sorted(n.fallback_of),
            } for n in adg.data_nodes],
            "memory": {t: {"bank_shape": list(m.bank_shape),
                           "bank_stride": list(m.bank_stride),
                           "n_data_nodes": m.n_data_nodes}
                       for t, m in adg.memory.items()},
        },
        "dag": {"nodes": nodes, "edges": edges},
        "configs": configs,
        "report": _jsonable({k: v for k, v in design.report.items()
                             if k != "options"}),
    }


def dump_design(design: Design, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(design_to_dict(design), fh, indent=1)


def load_design_graph(path: str) -> tuple[DAG, dict[str, dict]]:
    """Reload the DAG and raw per-dataflow configuration dictionaries.

    The graph is fully reconstructed (usable for reports, Verilog
    emission, and resource accounting); configurations are returned as
    dictionaries because :class:`DataflowConfig` references live
    Dataflow objects, which are code.
    """
    with open(path) as fh:
        data = json.load(fh)
    if data.get("format") != "lego-design-v1":
        raise ValueError("not a LEGO design file")
    dag = DAG()
    for spec in data["dag"]["nodes"]:
        node = Primitive(spec["id"], spec["kind"], width=spec["width"],
                         latency=spec["latency"], params=spec["params"],
                         place=tuple(spec["place"])
                         if isinstance(spec["place"], list) else spec["place"])
        dag.nodes[node.node_id] = node
        dag._next_id = max(dag._next_id, node.node_id + 1)
    for spec in data["dag"]["edges"]:
        edge = Edge(spec["src"], spec["dst"], spec["pin"], spec["width"],
                    spec["el"], uid=spec["uid"])
        dag.edges.append(edge)
        dag._next_edge_uid = max(dag._next_edge_uid, edge.uid + 1)
    return dag, data["configs"]
