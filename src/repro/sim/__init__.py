"""Simulation substrates: cycle-accurate DAG sim, perf/energy models,
NoC, memories, PPUs."""

from .dag_sim import Simulator, make_input, simulate_workload
from .energy_model import TSMC28, FREEPDK45, TechModel, evaluate_design
from .perf_model import ArchPerf, GEMMINI_LIKE, evaluate_layer, evaluate_model

__all__ = ["Simulator", "make_input", "simulate_workload", "TSMC28",
           "FREEPDK45", "TechModel", "evaluate_design", "ArchPerf",
           "GEMMINI_LIKE", "evaluate_layer", "evaluate_model"]
