"""Vectorized execution of a design's cycle schedule — the fast cold path.

The per-cycle interpreter in :mod:`.dag_sim` walks every active primitive
every cycle in Python: ``O(nodes x cycles)`` dict lookups, param reads,
and branch dispatch.  This module compiles the same schedule *once* into
a **step program**: the active topological order is partitioned into
steps of same-kind primitives (splitting whenever a node feeds another
node of its own step, so every step's inputs are fully computed series),
and every static table the interpreter consults per cycle — input
sources, edge + latency lookbacks, physical FIFO depths, mux selects and
timestamp policies, affine address matrices, LUT contents — is
precomputed into numpy arrays at construction.  Execution is then one
batched numpy column operation per node (and one fancy-indexed 2-D
assignment per pass-through partition) over the value/valid matrices
``V``/``K`` of shape ``(active primitives, cycles)``.

Outputs, cycle counts, per-node toggle counts, and memory access
counters are **bit-identical** to the interpreter, which stays available
as the ``Simulator(..., reference=True)`` oracle — the property tests in
``tests/test_vector_sim.py`` assert the equivalence across every kernel
family.  Designs the vectorization cannot honour exactly (a tensor both
read and written by one configuration, or non-accumulating commits) are
detected at compile time and fall back to the interpreter.
"""

from __future__ import annotations

import numpy as np

__all__ = ["StepProgram"]

#: kinds executed by one shifted copy of their single input series
_PASS_KINDS = ("ctrl_tap", "wire", "output", "fifo")
_ALU_KINDS = ("mul", "add", "sub", "shl", "shr", "max")

#: magnitude ceiling for the int64 engine: if any value the program can
#: produce may reach this, the run falls back to the interpreter (whose
#: Python ints never wrap) instead of silently wrapping
_SAFE_LIMIT = 1 << 62


class _Unsupported(Exception):
    """Design feature the vectorized path cannot reproduce bit-exactly."""


class StepProgram:
    """Precompiled vectorized execution plan for one dataflow config.

    Built from a :class:`~repro.sim.dag_sim.Simulator` (which owns the
    graph preparation: active order, per-pin input map, pipeline bound).
    ``supported`` is False when the design needs the reference
    interpreter; ``run`` then must not be called.
    """

    def __init__(self, sim):
        self.sim = sim
        self.n_cycles = sim.cfg.total_timestamps + sim.pipeline_bound + 2
        self.order = list(sim.order)
        self.row = {nid: i for i, nid in enumerate(self.order)}
        self.steps: list[tuple[str, list[dict]]] = []
        self.supported = True
        try:
            self._compile()
        except _Unsupported:
            self.supported = False

    # -- compilation -------------------------------------------------------

    def _input(self, nid: int, pin: int, extra: int):
        """(source row, total lookback) of one input pin, or None when
        the pin is unconnected in this dataflow."""
        entry = self.sim.inputs.get(nid, {}).get(pin)
        if entry is None:
            return None
        src, el = entry
        return self.row[src], el + extra

    def _compile(self) -> None:
        sim = self.sim
        dag = sim.dag
        cfg = sim.cfg
        rt = tuple(int(r) for r in sim.rt)
        total = 1
        for r in rt:
            total *= r
        # t // stride[i] % rt[i] == unrank digit i (t always >= 0 here).
        strides = np.ones(len(rt), dtype=np.int64)
        for i in range(len(rt) - 2, -1, -1):
            strides[i] = strides[i + 1] * rt[i + 1]
        self._rt = np.array(rt, dtype=np.int64)
        self._strides = strides
        self._total = total

        read_tensors = {dag.nodes[n].params["tensor"]
                        for n in cfg.read_enable if n in self.row}
        written = {dag.nodes[n].params["tensor"]
                   for n in cfg.write_enable if n in self.row}
        if read_tensors & written:
            # Memory feedback the DAG does not express: the interpreter
            # interleaves the accesses cycle by cycle, we cannot.
            raise _Unsupported

        specs = [self._compile_node(nid) for nid in self.order]
        # Group consecutive same-executor nodes, splitting when a node
        # consumes a series produced inside the open step (batched 2-D
        # assignment needs every source series finished).
        steps: list[tuple[str, list[dict]]] = []
        open_rows: set[int] = set()
        for nid, (kind, spec) in zip(self.order, specs):
            sources = spec.get("_srcs", ())
            if (not steps or steps[-1][0] != kind
                    or any(s in open_rows for s in sources)):
                steps.append((kind, []))
                open_rows = set()
            steps[-1][1].append(spec)
            open_rows.add(self.row[nid])
        self.steps = steps

    def _compile_node(self, nid: int) -> tuple[str, dict]:
        sim = self.sim
        node = sim.dag.nodes[nid]
        cfg = sim.cfg
        kind = node.kind
        row = self.row[nid]
        spec: dict = {"row": row}

        def srcs(*entries):
            spec["_srcs"] = tuple(e[0] for e in entries if e is not None)

        if kind == "const":
            spec["value"] = int(node.params.get("value", 0))
            return "const", spec
        if kind == "ctrl":
            spec["offset"] = int(cfg.ctrl_offset.get(nid, 0))
            return "ctrl", spec
        if kind in _PASS_KINDS:
            extra = sim._node_delay(nid) if kind == "fifo" else 0
            spec["input"] = self._input(nid, 0, extra)
            srcs(spec["input"])
            return "pass", spec
        if kind == "mux":
            policy = cfg.mux_policy.get(nid)
            if policy is None:
                sel = cfg.mux_select.get(nid, 0)
                spec["input"] = self._input(nid, sel, 0)
                srcs(spec["input"])
                return "pass", spec
            spec["ts"] = self._input(nid, 0, 0)
            spec["policy"] = [
                (self._input(nid, pin, 0),
                 None if dt is None else np.array([int(d) for d in dt],
                                                 dtype=np.int64))
                for pin, dt in policy]
            srcs(spec["ts"], *(entry for entry, _dt in spec["policy"]))
            return "mux_dyn", spec
        if kind == "addrgen":
            agc = cfg.addrgen.get(nid)
            spec["input"] = self._input(nid, 0, node.latency)
            if agc is None or spec["input"] is None:
                return "idle", spec
            nt = len(agc.rt)
            assert tuple(int(r) for r in agc.rt) == tuple(
                int(r) for r in sim.rt), \
                "address generators share the dataflow's temporal basis"
            spec["mdt"] = np.array(agc.mdt, dtype=np.int64).reshape(
                len(agc.offset), nt)
            spec["offset"] = np.array(agc.offset, dtype=np.int64)
            spec["dims"] = np.array(agc.dims, dtype=np.int64)
            spec["gate"] = (None if agc.gate_dt is None
                            else np.array(agc.gate_dt, dtype=np.int64))
            srcs(spec["input"])
            return "addrgen", spec
        if kind == "mem_read":
            spec["input"] = self._input(nid, 0, node.latency)
            spec["tensor"] = node.params["tensor"]
            if nid not in cfg.read_enable or spec["input"] is None:
                return "idle", spec
            srcs(spec["input"])
            return "mem_read", spec
        if kind == "mem_write":
            if nid not in cfg.write_enable:
                return "idle", spec
            spec["addr"] = self._input(nid, 0, 0)
            spec["data"] = self._input(nid, 1, 0)
            spec["tensor"] = node.params["tensor"]
            if spec["addr"] is None or spec["data"] is None:
                return "idle", spec
            if not node.params.get("accumulate", True):
                # Overwriting commits are order-sensitive across write
                # ports; only the interpreter serializes them exactly.
                raise _Unsupported
            srcs(spec["addr"], spec["data"])
            return "mem_write", spec
        if kind in _ALU_KINDS:
            spec["op"] = kind
            spec["a"] = self._input(nid, 0, node.latency)
            spec["b"] = self._input(nid, 1, node.latency)
            if spec["a"] is None or spec["b"] is None:
                return "idle", spec
            srcs(spec["a"], spec["b"])
            return "alu", spec
        if kind == "reducer":
            pin_dfs = node.params.get("pin_dataflows", {})
            pins = []
            for pin in sim.inputs.get(nid, {}):
                if pin_dfs and sim.dataflow not in pin_dfs.get(pin, ()):
                    continue
                pins.append(self._input(nid, pin, node.latency))
            spec["pins"] = pins
            srcs(*pins)
            return "reducer", spec
        if kind == "lut":
            spec["input"] = self._input(nid, 0, node.latency)
            table = node.params.get("table")
            if spec["input"] is None or table is None:
                return "idle", spec
            spec["table"] = np.array([int(v) for v in table],
                                     dtype=np.int64)
            srcs(spec["input"])
            return "lut", spec
        # Unknown kinds produce None every cycle in the interpreter.
        return "idle", spec

    # -- magnitude safety --------------------------------------------------

    def magnitude_safe(self, storage: dict[str, np.ndarray]) -> bool:
        """Conservative interval check that every value this run can
        produce — and every accumulated memory commit — provably fits
        int64.

        The reference interpreter computes on Python ints (unbounded)
        and only overflows loudly when committing to the int64 tensor
        memories; the vectorized engine would *wrap silently* instead.
        So before running we propagate worst-case magnitude bounds (in
        exact Python ints) through the step program from the actual
        input data; any possible excursion past ``_SAFE_LIMIT`` makes
        the caller fall back to the interpreter.  Typical generator
        stimuli (small integers) pass by many orders of magnitude.
        """
        bound: dict[int, int] = {}
        commit: dict[str, int] = {}
        for tensor, arr in storage.items():
            commit[tensor] = int(np.abs(arr).max()) if arr.size else 0

        def inb(entry):
            return bound.get(entry[0], 0) if entry is not None else 0

        for kind, specs in self.steps:
            for s in specs:
                b = 0
                if kind == "const":
                    b = abs(s["value"])
                elif kind == "ctrl":
                    b = self.n_cycles + abs(s["offset"])
                elif kind == "pass":
                    b = inb(s["input"])
                elif kind == "mux_dyn":
                    b = max([inb(e) for e, _dt in s["policy"]] + [0])
                elif kind == "addrgen":
                    b = int(np.prod(s["dims"])) + 1
                elif kind == "mem_read":
                    b = commit[s["tensor"]]
                elif kind == "mem_write":
                    # every cycle may add the worst-case datum
                    commit[s["tensor"]] += inb(s["data"]) * self.n_cycles
                    if commit[s["tensor"]] >= _SAFE_LIMIT:
                        return False
                elif kind == "alu":
                    ba, bb = inb(s["a"]), inb(s["b"])
                    op = s["op"]
                    if op == "mul":
                        b = ba * bb
                    elif op in ("add", "sub"):
                        b = ba + bb
                    elif op == "max":
                        b = max(ba, bb)
                    elif op == "shl":
                        if bb > 63:
                            # Python << has no 63-bit ceiling; the
                            # engine's clamp would diverge.
                            return False
                        b = ba << bb
                    else:  # shr never grows magnitude
                        b = ba
                elif kind == "reducer":
                    b = sum(inb(e) for e in s["pins"])
                elif kind == "lut":
                    table = s["table"]
                    b = int(np.abs(table).max()) if table.size else 0
                if b >= _SAFE_LIMIT:
                    return False
                bound[s["row"]] = b
        return True

    # -- execution ---------------------------------------------------------

    def _shift(self, V, K, entry):
        """The (value, valid) series one input sees: its source's series
        delayed by the lookback (invalid before the first arrival)."""
        n = self.n_cycles
        if entry is None:
            return (np.zeros(n, dtype=np.int64), np.zeros(n, dtype=bool))
        src, lb = entry
        if lb <= 0:
            return V[src], K[src]
        v = np.zeros(n, dtype=np.int64)
        k = np.zeros(n, dtype=bool)
        if lb < n:
            v[lb:] = V[src, :n - lb]
            k[lb:] = K[src, :n - lb]
        return v, k

    def run(self, storage: dict[str, np.ndarray]):
        """Execute the program; returns ``(V, K, toggles, mem_reads,
        mem_writes)`` — the caller (the simulator) assembles the
        :class:`~repro.sim.dag_sim.SimResult`."""
        n = self.n_cycles
        V = np.zeros((len(self.order), n), dtype=np.int64)
        K = np.zeros((len(self.order), n), dtype=bool)
        mem_reads: dict[str, int] = {}
        mem_writes: dict[str, int] = {}
        for kind, specs in self.steps:
            getattr(self, f"_exec_{kind}")(specs, V, K, storage,
                                           mem_reads, mem_writes)

        # Toggle counts: a change of validity, or of value while valid
        # on both sides — exactly the interpreter's `prev != out` test
        # (None==None never toggles, None vs value always does).
        both = K[:, 1:] & K[:, :-1]
        changed = (K[:, 1:] != K[:, :-1]) | (both & (V[:, 1:] != V[:, :-1]))
        counts = changed.sum(axis=1)
        toggles = {nid: int(counts[self.row[nid]]) for nid in self.order}
        return V, K, toggles, mem_reads, mem_writes

    # Each executor handles one step (a batch of same-kind specs) as
    # column operations over the full cycle range.

    def _exec_idle(self, specs, V, K, storage, mem_reads, mem_writes):
        pass  # series stays all-invalid, like the interpreter's None

    def _exec_const(self, specs, V, K, storage, mem_reads, mem_writes):
        rows = np.array([s["row"] for s in specs])
        values = np.array([s["value"] for s in specs], dtype=np.int64)
        V[rows] = values[:, None]
        K[rows] = True

    def _exec_ctrl(self, specs, V, K, storage, mem_reads, mem_writes):
        cycle = np.arange(self.n_cycles, dtype=np.int64)
        rows = np.array([s["row"] for s in specs])
        offsets = np.array([s["offset"] for s in specs], dtype=np.int64)
        V[rows] = cycle[None, :] - offsets[:, None]
        K[rows] = True

    def _exec_pass(self, specs, V, K, storage, mem_reads, mem_writes):
        # Partition by lookback: each partition is one 2-D shifted copy.
        n = self.n_cycles
        by_lb: dict[int, list[tuple[int, int]]] = {}
        for s in specs:
            if s["input"] is None:
                continue
            src, lb = s["input"]
            by_lb.setdefault(min(lb, n), []).append((s["row"], src))
        for lb, pairs in by_lb.items():
            dst = np.array([d for d, _ in pairs])
            src = np.array([s for _, s in pairs])
            if lb <= 0:
                V[dst] = V[src]
                K[dst] = K[src]
            else:
                V[dst, lb:] = V[src, :n - lb]
                K[dst, lb:] = K[src, :n - lb]

    def _exec_alu(self, specs, V, K, storage, mem_reads, mem_writes):
        for s in specs:
            av, ak = self._shift(V, K, s["a"])
            bv, bk = self._shift(V, K, s["b"])
            op = s["op"]
            if op == "mul":
                out = av * bv
            elif op == "add":
                out = av + bv
            elif op == "sub":
                out = av - bv
            elif op == "max":
                out = np.maximum(av, bv)
            elif op == "shl":
                # Invalid lanes may carry garbage shift counts; clamping
                # them never touches valid data (Python << would have
                # raised on a negative count).
                out = np.left_shift(av, np.clip(bv, 0, 63))
            else:  # shr
                out = np.right_shift(av, np.clip(bv, 0, 63))
            V[s["row"]] = out
            K[s["row"]] = ak & bk

    def _unrank_digits(self, t):
        """(digits, in_range) of the scalar timestamps in *t* (garbage
        digits where out of range — callers mask)."""
        ok = (t >= 0) & (t < self._total)
        safe = np.where(ok, t, 0)
        digits = (safe[None, :] // self._strides[:, None]) \
            % self._rt[:, None]
        return digits, ok

    def _exec_mux_dyn(self, specs, V, K, storage, mem_reads, mem_writes):
        for s in specs:
            row = s["row"]
            tv, tk = self._shift(V, K, s["ts"])
            digits, in_range = self._unrank_digits(tv)
            live = tk & in_range
            assigned = ~live  # no timestamp -> stays invalid
            out_v = np.zeros(self.n_cycles, dtype=np.int64)
            out_k = np.zeros(self.n_cycles, dtype=bool)
            for entry, dt in s["policy"]:
                if dt is None:
                    cond = ~assigned
                else:
                    shifted = digits - dt[:, None]
                    cond = ~assigned & np.all(
                        (shifted >= 0) & (shifted < self._rt[:, None]),
                        axis=0)
                if not cond.any():
                    continue
                v, k = self._shift(V, K, entry)
                out_v[cond] = v[cond]
                out_k[cond] = k[cond]
                assigned |= cond
            V[row] = out_v
            K[row] = out_k

    def _exec_addrgen(self, specs, V, K, storage, mem_reads, mem_writes):
        for s in specs:
            tv, tk = self._shift(V, K, s["input"])
            digits, in_range = self._unrank_digits(tv)
            ok = tk & in_range
            if s["gate"] is not None:
                shifted = digits + s["gate"][:, None]
                covered = np.all((shifted >= 0)
                                 & (shifted < self._rt[:, None]), axis=0)
                ok &= ~covered
            idx = s["mdt"] @ digits + s["offset"][:, None]
            dims = s["dims"][:, None]
            in_bounds = np.all((idx >= 0) & (idx < dims), axis=0)
            addr = np.zeros(self.n_cycles, dtype=np.int64)
            for r in range(len(s["dims"])):
                addr = addr * s["dims"][r] + idx[r]
            V[s["row"]] = np.where(in_bounds, addr, -1)
            K[s["row"]] = ok

    def _exec_mem_read(self, specs, V, K, storage, mem_reads, mem_writes):
        for s in specs:
            av, ak = self._shift(V, K, s["input"])
            arr = storage[s["tensor"]]
            fetch = ak & (av >= 0)
            out = np.zeros(self.n_cycles, dtype=np.int64)
            out[fetch] = arr[av[fetch]]
            V[s["row"]] = out
            K[s["row"]] = ak
            count = int(np.count_nonzero(fetch))
            if count:
                mem_reads[s["tensor"]] = \
                    mem_reads.get(s["tensor"], 0) + count

    def _exec_mem_write(self, specs, V, K, storage, mem_reads, mem_writes):
        for s in specs:
            av, ak = self._shift(V, K, s["addr"])
            dv, dk = self._shift(V, K, s["data"])
            commit = ak & dk & (av >= 0)
            np.add.at(storage[s["tensor"]], av[commit], dv[commit])
            count = int(np.count_nonzero(commit))
            if count:
                mem_writes[s["tensor"]] = \
                    mem_writes.get(s["tensor"], 0) + count

    def _exec_reducer(self, specs, V, K, storage, mem_reads, mem_writes):
        for s in specs:
            acc = np.zeros(self.n_cycles, dtype=np.int64)
            seen = np.zeros(self.n_cycles, dtype=bool)
            for entry in s["pins"]:
                v, k = self._shift(V, K, entry)
                acc += np.where(k, v, 0)
                seen |= k
            V[s["row"]] = acc
            K[s["row"]] = seen

    def _exec_lut(self, specs, V, K, storage, mem_reads, mem_writes):
        for s in specs:
            v, k = self._shift(V, K, s["input"])
            table = s["table"]
            V[s["row"]] = table[v % len(table)]
            K[s["row"]] = k
