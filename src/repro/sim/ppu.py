"""Post-processing units (paper §II).

Each PPU is a lookup table evaluating the activation function plus a
reduction unit that accumulates the statistics non-linear layers need
(sum of exponents for softmax, mean/variance for normalization).  PPUs
share the output buffers with the FU array for in-place processing, so
their latency model is simply elements / (PPU count x throughput) and the
paper's claim to check is that this stays a small fraction of end-to-end
latency (Fig. 12(b)).

The functional LUT implementation here is real fixed-point hardware
behavior: inputs are quantized to the table index grid, so accuracy is
bounded by table resolution — the tests verify both the monotonic
functions and softmax normalization error bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["LookupTable", "PostProcessingUnit", "ppu_latency_cycles"]


class LookupTable:
    """A fixed-point function table with linear interpolation."""

    def __init__(self, fn, lo: float, hi: float, n_entries: int = 256):
        if hi <= lo:
            raise ValueError("hi must exceed lo")
        self.lo, self.hi = lo, hi
        self.n_entries = n_entries
        xs = np.linspace(lo, hi, n_entries)
        self.table = np.array([fn(float(x)) for x in xs])

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.clip(np.asarray(x, dtype=np.float64), self.lo, self.hi)
        pos = (x - self.lo) / (self.hi - self.lo) * (self.n_entries - 1)
        idx = np.floor(pos).astype(int)
        frac = pos - idx
        hi_idx = np.minimum(idx + 1, self.n_entries - 1)
        return self.table[idx] * (1 - frac) + self.table[hi_idx] * frac


@dataclass
class PostProcessingUnit:
    """One PPU: LUT + reduction; ``throughput`` elements per cycle."""

    throughput: int = 1
    lut_entries: int = 256

    def __post_init__(self) -> None:
        self._exp = LookupTable(math.exp, -16.0, 0.0, self.lut_entries)
        self._sigmoid = LookupTable(lambda x: 1 / (1 + math.exp(-x)),
                                    -8.0, 8.0, self.lut_entries)
        self._gelu = LookupTable(
            lambda x: 0.5 * x * (1 + math.erf(x / math.sqrt(2))),
            -8.0, 8.0, self.lut_entries)
        self._rsqrt = LookupTable(lambda x: 1 / math.sqrt(max(x, 1e-6)),
                                  1e-3, 16.0, self.lut_entries)

    # -- functional models -------------------------------------------------------

    def relu(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0)

    def gelu(self, x: np.ndarray) -> np.ndarray:
        return self._gelu(x)

    def sigmoid(self, x: np.ndarray) -> np.ndarray:
        return self._sigmoid(x)

    def softmax(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """LUT-based softmax: exp via table after max-subtraction (the
        reduction unit tracks the running max and the sum of exponents)."""
        x = np.asarray(x, dtype=np.float64)
        shifted = x - x.max(axis=axis, keepdims=True)
        ex = self._exp(shifted)
        return ex / ex.sum(axis=axis, keepdims=True)

    def layernorm(self, x: np.ndarray, axis: int = -1,
                  eps: float = 1e-5) -> np.ndarray:
        """Mean/variance via the reduction unit, 1/sqrt via LUT."""
        x = np.asarray(x, dtype=np.float64)
        mean = x.mean(axis=axis, keepdims=True)
        var = x.var(axis=axis, keepdims=True)
        return (x - mean) * self._rsqrt(var + eps)

    # -- performance model ---------------------------------------------------------

    def cycles(self, n_elements: int, n_passes: int = 2) -> int:
        """Cycles to process ``n_elements``; reductions need an extra pass
        (softmax: max+exp-sum then normalize; layernorm: stats then apply).
        """
        return math.ceil(n_elements * n_passes / self.throughput)


def ppu_latency_cycles(n_elements: int, n_ppus: int, throughput: int = 1,
                       n_passes: int = 2) -> int:
    """Aggregate latency of a PPU bank processing ``n_elements``."""
    if n_ppus < 1:
        raise ValueError("need at least one PPU")
    per_ppu = math.ceil(n_elements / n_ppus)
    return math.ceil(per_ppu * n_passes / throughput)
