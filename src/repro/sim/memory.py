"""On-chip memory system models (paper §II).

* :class:`BankedMemory` — an L1 memory split into banks per the §IV-D
  layout; each L1 space has a single address generator and controller, so
  simultaneous accesses must hit distinct banks (the front end guarantees
  this; the model detects violations and charges stall cycles).
* :class:`Buffet` — the credit-based L2 interface (fill / read / shrink),
  after the Buffets proposal the paper cites for L2+ memories: data is
  filled by the producer, read randomly within the live window, and
  shrunk when consumed, giving decoupled yet safe staging.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.adg import MemoryLayout

__all__ = ["BankedMemory", "Buffet"]


class BankedMemory:
    """A banked L1 tensor buffer with conflict accounting."""

    def __init__(self, layout: MemoryLayout, dims: tuple[int, ...],
                 dtype=np.int64):
        if len(dims) != len(layout.bank_shape):
            raise ValueError("dims rank must match the bank shape rank")
        self.layout = layout
        self.dims = dims
        self.data = np.zeros(dims, dtype=dtype)
        self.accesses = 0
        self.conflict_stalls = 0

    @property
    def n_banks(self) -> int:
        return self.layout.n_banks

    def bank_of(self, index: tuple[int, ...]) -> tuple[int, ...]:
        return self.layout.bank_of(index)

    def access_cycle(self, indexes: list[tuple[int, ...]],
                     values: list | None = None) -> int:
        """Service one cycle's worth of accesses; returns cycles consumed
        (1 if conflict-free, more if banks collide).

        ``values`` writes; None reads.
        """
        by_bank: dict[tuple[int, ...], int] = {}
        for idx in indexes:
            bank = self.bank_of(idx)
            by_bank[bank] = by_bank.get(bank, 0) + 1
        worst = max(by_bank.values(), default=1)
        self.accesses += len(indexes)
        self.conflict_stalls += worst - 1
        if values is not None:
            for idx, value in zip(indexes, values):
                self.data[idx] = value
        return worst

    def read(self, index: tuple[int, ...]):
        self.accesses += 1
        return self.data[index]

    def write(self, index: tuple[int, ...], value) -> None:
        self.accesses += 1
        self.data[index] = value


@dataclass
class Buffet:
    """Credit-based staging buffer (fill / read / shrink) used for L2+.

    Reads may address any element of the currently-filled window; reads
    beyond the fill point block (modeled by :meth:`read` returning None),
    which is how Buffets synchronize producer and consumer without a
    full-blown coherence protocol.
    """

    capacity: int
    fill_ptr: int = 0
    head: int = 0
    data: dict[int, object] = field(default_factory=dict)
    blocked_reads: int = 0

    @property
    def occupancy(self) -> int:
        return self.fill_ptr - self.head

    def can_fill(self, n: int = 1) -> bool:
        return self.occupancy + n <= self.capacity

    def fill(self, values: list) -> int:
        """Fill values; returns how many were accepted (back-pressure)."""
        accepted = 0
        for value in values:
            if not self.can_fill():
                break
            self.data[self.fill_ptr] = value
            self.fill_ptr += 1
            accepted += 1
        return accepted

    def read(self, offset: int):
        """Random-access read at ``head + offset``; None if not yet filled
        (the consumer must retry — a blocked read)."""
        if offset < 0:
            raise ValueError("negative buffet offset")
        addr = self.head + offset
        if addr >= self.fill_ptr:
            self.blocked_reads += 1
            return None
        return self.data[addr]

    def shrink(self, n: int = 1) -> None:
        """Retire the ``n`` oldest elements, freeing credit."""
        if n > self.occupancy:
            raise ValueError("cannot shrink below zero occupancy")
        for addr in range(self.head, self.head + n):
            self.data.pop(addr, None)
        self.head += n
