"""Cycle-accurate functional simulation of a generated design.

This is the reproduction's stand-in for RTL simulation (the paper
validates its performance model against Verilator runs of the generated
Verilog): every primitive is executed every cycle, honoring node
latencies, per-edge pipeline registers inserted by delay matching, and
per-dataflow programmed FIFO depths.  A generated GEMM/Conv/MTTKRP design
must produce bit-exact results against the numpy reference — this closes
the loop over the *entire* flow: interconnect solving, MST planning,
memory banking, codegen, and every backend pass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..backend.codegen import Design, DataflowConfig

__all__ = ["Simulator", "simulate_workload", "make_input"]


@dataclass
class SimResult:
    """Outputs plus activity counters for the energy model."""

    outputs: dict[str, np.ndarray]
    cycles: int
    toggles: dict[int, int]  # node id -> number of value changes
    mem_reads: dict[str, int]
    mem_writes: dict[str, int]


class Simulator:
    """Executes one dataflow configuration of a design cycle by cycle."""

    def __init__(self, design: Design, dataflow: str):
        self.design = design
        self.dag = design.dag
        self.cfg: DataflowConfig = design.configs[dataflow]
        self.dataflow = dataflow
        self.rt = self.cfg.dataflow.rt

        cfg = self.cfg
        dag = self.dag

        def active_edge(e) -> bool:
            return e.uid in cfg.active_edges

        self.order = dag.topo_order(sequential_break=False,
                                    edge_filter=active_edge)
        self.order = [nid for nid in self.order if nid in cfg.active_nodes]
        # Pre-resolve inputs per node: list of (src, total_delay) per pin.
        self.inputs: dict[int, dict[int, tuple[int, int]]] = {}
        for e in dag.edges:
            if not active_edge(e):
                continue
            if e.dst not in cfg.active_nodes or e.src not in cfg.active_nodes:
                continue
            self.inputs.setdefault(e.dst, {})[e.dst_pin] = (e.src, e.el)

        # Total pipeline depth bound for the run length.
        self.pipeline_bound = self._longest_path()

    def _unrank(self, t_scalar: int) -> tuple[int, ...] | None:
        total = 1
        for r in self.rt:
            total *= r
        if not 0 <= t_scalar < total:
            return None
        out = []
        rem = t_scalar
        for r in reversed(self.rt):
            out.append(rem % r)
            rem //= r
        out.reverse()
        return tuple(out)

    def _node_delay(self, nid: int) -> int:
        node = self.dag.nodes[nid]
        if node.kind == "fifo":
            return self.cfg.fifo_phys.get(nid, self.cfg.fifo_depth.get(nid, 0))
        return node.latency

    def _longest_path(self) -> int:
        dist = {nid: 0 for nid in self.order}
        for nid in self.order:
            for pin, (src, el) in self.inputs.get(nid, {}).items():
                cand = dist[src] + el + self._node_delay(nid)
                if cand > dist[nid]:
                    dist[nid] = cand
        return max(dist.values(), default=0)

    def run(self, tensors: dict[str, np.ndarray]) -> SimResult:
        """Simulate the full temporal range of the configured dataflow.

        ``tensors`` maps input tensor names to arrays shaped like the
        address generators expect (see :func:`make_input`).  Returns the
        output buffers plus activity counts.
        """
        dag = self.dag
        cfg = self.cfg
        total_t = cfg.total_timestamps
        n_cycles = total_t + self.pipeline_bound + 2

        storage: dict[str, np.ndarray] = {}
        shapes: dict[str, tuple[int, ...]] = {}
        for ag, agc in cfg.addrgen.items():
            tensor = dag.nodes[ag].params["tensor"]
            shapes[tensor] = agc.dims
        for tensor, dims in shapes.items():
            if tensor in tensors:
                arr = np.asarray(tensors[tensor]).astype(np.int64)
                if tuple(arr.shape) != tuple(dims):
                    raise ValueError(
                        f"tensor {tensor!r} must have shape {dims}, "
                        f"got {arr.shape}")
                storage[tensor] = arr.reshape(-1)
            else:
                storage[tensor] = np.zeros(int(np.prod(dims)), dtype=np.int64)

        values: dict[int, list] = {nid: [None] * n_cycles for nid in self.order}
        toggles = {nid: 0 for nid in self.order}
        mem_reads: dict[str, int] = {}
        mem_writes: dict[str, int] = {}

        def in_val(nid: int, pin: int, cycle: int):
            entry = self.inputs.get(nid, {}).get(pin)
            if entry is None:
                return None
            src, el = entry
            t = cycle - el
            if t < 0:
                return None
            return values[src][t]

        for n in range(n_cycles):
            for nid in self.order:
                node = dag.nodes[nid]
                kind = node.kind
                out = None
                if kind == "const":
                    out = node.params.get("value", 0)
                elif kind == "ctrl":
                    out = n - cfg.ctrl_offset.get(nid, 0)
                elif kind in ("ctrl_tap", "wire"):
                    out = in_val(nid, 0, n)
                elif kind == "mux":
                    policy = cfg.mux_policy.get(nid)
                    if policy is None:
                        sel = cfg.mux_select.get(nid, 0)
                        out = in_val(nid, sel, n)
                    else:
                        # Dynamic mux: pin 0 carries the local timestamp;
                        # pick the first source whose coverage test passes.
                        t = in_val(nid, 0, n)
                        tv = self._unrank(t) if t is not None else None
                        out = None
                        if tv is not None:
                            for pin, dt in policy:
                                if dt is None:
                                    out = in_val(nid, pin, n)
                                    break
                                if all(0 <= v - d < r for v, d, r in
                                       zip(tv, dt, self.rt)):
                                    out = in_val(nid, pin, n)
                                    break
                elif kind == "fifo":
                    depth = self._node_delay(nid)
                    t = n - depth
                    out = in_val(nid, 0, t) if t >= 0 else None
                elif kind == "addrgen":
                    v = in_val(nid, 0, n - node.latency)
                    agc = cfg.addrgen.get(nid)
                    if v is not None and agc is not None:
                        out = agc.flat_address(int(v))
                elif kind == "mem_read":
                    addr = in_val(nid, 0, n - node.latency)
                    tensor = node.params["tensor"]
                    if nid not in cfg.read_enable or addr is None:
                        out = None
                    elif addr < 0:
                        out = 0  # padding region reads zero
                    else:
                        out = int(storage[tensor][addr])
                        mem_reads[tensor] = mem_reads.get(tensor, 0) + 1
                elif kind == "mem_write":
                    if nid in cfg.write_enable:
                        addr = in_val(nid, 0, n)
                        data = in_val(nid, 1, n)
                        tensor = node.params["tensor"]
                        if addr is not None and addr >= 0 and data is not None:
                            if node.params.get("accumulate", True):
                                storage[tensor][addr] += int(data)
                            else:
                                storage[tensor][addr] = int(data)
                            mem_writes[tensor] = mem_writes.get(tensor, 0) + 1
                    out = None
                elif kind in ("mul", "add", "sub", "shl", "shr", "max"):
                    a = in_val(nid, 0, n - node.latency)
                    b = in_val(nid, 1, n - node.latency)
                    if a is not None and b is not None:
                        if kind == "mul":
                            out = a * b
                        elif kind == "add":
                            out = a + b
                        elif kind == "sub":
                            out = a - b
                        elif kind == "shl":
                            out = a << b
                        elif kind == "shr":
                            out = a >> b
                        else:
                            out = max(a, b)
                elif kind == "reducer":
                    pin_dfs = node.params.get("pin_dataflows", {})
                    total = 0
                    seen = False
                    for pin in self.inputs.get(nid, {}):
                        if pin_dfs and self.dataflow not in pin_dfs.get(pin, ()):
                            continue
                        v = in_val(nid, pin, n - node.latency)
                        if v is not None:
                            total += v
                            seen = True
                    out = total if seen else None
                elif kind == "lut":
                    v = in_val(nid, 0, n - node.latency)
                    table = node.params.get("table")
                    if v is not None and table is not None:
                        out = table[int(v) % len(table)]
                elif kind == "output":
                    out = in_val(nid, 0, n)
                if n > 0 and values[nid][n - 1] != out:
                    toggles[nid] += 1
                values[nid][n] = out

        outputs: dict[str, np.ndarray] = {}
        for tensor, dims in shapes.items():
            is_out = any(dag.nodes[nid].params.get("tensor") == tensor
                         and dag.nodes[nid].kind == "mem_write"
                         for nid in cfg.write_enable)
            if is_out:
                outputs[tensor] = storage[tensor].reshape(shapes[tensor])
        return SimResult(outputs=outputs, cycles=n_cycles, toggles=toggles,
                         mem_reads=mem_reads, mem_writes=mem_writes)


def make_input(design: Design, dataflow: str, tensor: str,
               rng: np.random.Generator, lo: int = -4, hi: int = 5
               ) -> np.ndarray:
    """Random integer input shaped as the design's address generators
    expect for *tensor* under *dataflow*."""
    cfg = design.configs[dataflow]
    for ag, agc in cfg.addrgen.items():
        if design.dag.nodes[ag].params["tensor"] == tensor:
            return rng.integers(lo, hi, size=agc.dims).astype(np.int64)
    raise KeyError(f"no address generator for tensor {tensor!r}")


def simulate_workload(design: Design, dataflow: str,
                      tensors: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Convenience wrapper: run the simulator, return output tensors."""
    sim = Simulator(design, dataflow)
    return sim.run(tensors).outputs
