"""Cycle-accurate functional simulation of a generated design.

This is the reproduction's stand-in for RTL simulation (the paper
validates its performance model against Verilator runs of the generated
Verilog): every primitive is executed every cycle, honoring node
latencies, per-edge pipeline registers inserted by delay matching, and
per-dataflow programmed FIFO depths.  A generated GEMM/Conv/MTTKRP design
must produce bit-exact results against the numpy reference — this closes
the loop over the *entire* flow: interconnect solving, MST planning,
memory banking, codegen, and every backend pass.

Two execution engines share one graph preparation:

* the **vectorized step program** (:mod:`.step_program`, the default):
  the schedule is compiled once at construction into batched numpy
  column operations over value/valid matrices — an order of magnitude
  faster on cold simulations;
* the **reference interpreter** (``Simulator(..., reference=True)``):
  the original per-cycle Python loop, kept as the oracle the vectorized
  engine is property-tested bit-exact against (outputs, cycle count,
  toggle counts, memory access counters).

Designs the vectorized engine cannot reproduce exactly (a tensor both
read and written under one configuration, non-accumulating commits)
fall back to the interpreter automatically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..backend.codegen import Design, DataflowConfig

__all__ = ["Simulator", "simulate_workload", "make_input",
           "canonical_stimulus", "golden_vectors", "CANONICAL_STIMULUS"]

#: tag of the canonical testbench stimulus produced by
#: :func:`canonical_stimulus`; hashed into ``DesignRequest.sim_key`` so
#: cached golden vectors can never be served for a different stimulus.
#: CHANGING :func:`canonical_stimulus` REQUIRES CHANGING THIS TAG.
CANONICAL_STIMULUS = "default_rng(0):lo0:hi8"


@dataclass
class SimResult:
    """Outputs plus activity counters for the energy model."""

    outputs: dict[str, np.ndarray]
    cycles: int
    toggles: dict[int, int]  # node id -> number of value changes
    mem_reads: dict[str, int]
    mem_writes: dict[str, int]


class Simulator:
    """Executes one dataflow configuration of a design cycle by cycle.

    ``reference=True`` forces the per-cycle Python interpreter (the
    oracle); the default compiles the schedule into a vectorized
    :class:`~repro.sim.step_program.StepProgram` at construction and
    falls back to the interpreter only for designs the vectorization
    cannot honour bit-exactly.
    """

    def __init__(self, design: Design, dataflow: str,
                 reference: bool = False):
        self.design = design
        self.dag = design.dag
        self.cfg: DataflowConfig = design.configs[dataflow]
        self.dataflow = dataflow
        self.reference = reference
        self.rt = self.cfg.dataflow.rt

        cfg = self.cfg
        dag = self.dag

        def active_edge(e) -> bool:
            return e.uid in cfg.active_edges

        self.order = dag.topo_order(sequential_break=False,
                                    edge_filter=active_edge)
        self.order = [nid for nid in self.order if nid in cfg.active_nodes]
        # Pre-resolve inputs per node: list of (src, total_delay) per pin.
        self.inputs: dict[int, dict[int, tuple[int, int]]] = {}
        for e in dag.edges:
            if not active_edge(e):
                continue
            if e.dst not in cfg.active_nodes or e.src not in cfg.active_nodes:
                continue
            self.inputs.setdefault(e.dst, {})[e.dst_pin] = (e.src, e.el)

        # Total pipeline depth bound for the run length.
        self.pipeline_bound = self._longest_path()

        # Precompile the vectorized step program (input/latency/FIFO
        # index tables are all static per configuration).
        self._program = None
        if not reference:
            from .step_program import StepProgram

            program = StepProgram(self)
            if program.supported:
                self._program = program

    def _unrank(self, t_scalar: int) -> tuple[int, ...] | None:
        total = 1
        for r in self.rt:
            total *= r
        if not 0 <= t_scalar < total:
            return None
        out = []
        rem = t_scalar
        for r in reversed(self.rt):
            out.append(rem % r)
            rem //= r
        out.reverse()
        return tuple(out)

    def _node_delay(self, nid: int) -> int:
        node = self.dag.nodes[nid]
        if node.kind == "fifo":
            return self.cfg.fifo_phys.get(nid, self.cfg.fifo_depth.get(nid, 0))
        return node.latency

    def _longest_path(self) -> int:
        dist = {nid: 0 for nid in self.order}
        for nid in self.order:
            for pin, (src, el) in self.inputs.get(nid, {}).items():
                cand = dist[src] + el + self._node_delay(nid)
                if cand > dist[nid]:
                    dist[nid] = cand
        return max(dist.values(), default=0)

    def _prepare_storage(self, tensors: dict[str, np.ndarray]
                         ) -> tuple[dict[str, np.ndarray],
                                    dict[str, tuple[int, ...]]]:
        """Flattened int64 memories per tensor (inputs copied in, the
        rest zeroed) plus the tensor shapes — shared by both engines."""
        storage: dict[str, np.ndarray] = {}
        shapes: dict[str, tuple[int, ...]] = {}
        for ag, agc in self.cfg.addrgen.items():
            tensor = self.dag.nodes[ag].params["tensor"]
            shapes[tensor] = agc.dims
        for tensor, dims in shapes.items():
            if tensor in tensors:
                arr = np.asarray(tensors[tensor]).astype(np.int64)
                if tuple(arr.shape) != tuple(dims):
                    raise ValueError(
                        f"tensor {tensor!r} must have shape {dims}, "
                        f"got {arr.shape}")
                storage[tensor] = arr.reshape(-1)
            else:
                storage[tensor] = np.zeros(int(np.prod(dims)),
                                           dtype=np.int64)
        return storage, shapes

    def _collect_outputs(self, storage, shapes) -> dict[str, np.ndarray]:
        outputs: dict[str, np.ndarray] = {}
        for tensor, dims in shapes.items():
            is_out = any(self.dag.nodes[nid].params.get("tensor") == tensor
                         and self.dag.nodes[nid].kind == "mem_write"
                         for nid in self.cfg.write_enable)
            if is_out:
                outputs[tensor] = storage[tensor].reshape(shapes[tensor])
        return outputs

    def run(self, tensors: dict[str, np.ndarray]) -> SimResult:
        """Simulate the full temporal range of the configured dataflow.

        ``tensors`` maps input tensor names to arrays shaped like the
        address generators expect (see :func:`make_input`).  Returns the
        output buffers plus activity counts.
        """
        storage, shapes = self._prepare_storage(tensors)
        if (self._program is not None
                and self._program.magnitude_safe(storage)):
            _v, _k, toggles, mem_reads, mem_writes = \
                self._program.run(storage)
            return SimResult(
                outputs=self._collect_outputs(storage, shapes),
                cycles=self._program.n_cycles, toggles=toggles,
                mem_reads=mem_reads, mem_writes=mem_writes)
        return self._run_reference(storage, shapes)

    def _run_reference(self, storage, shapes) -> SimResult:
        """The original per-cycle interpreter (the bit-exactness
        oracle)."""
        dag = self.dag
        cfg = self.cfg
        total_t = cfg.total_timestamps
        n_cycles = total_t + self.pipeline_bound + 2

        values: dict[int, list] = {nid: [None] * n_cycles for nid in self.order}
        toggles = {nid: 0 for nid in self.order}
        mem_reads: dict[str, int] = {}
        mem_writes: dict[str, int] = {}

        def in_val(nid: int, pin: int, cycle: int):
            entry = self.inputs.get(nid, {}).get(pin)
            if entry is None:
                return None
            src, el = entry
            t = cycle - el
            if t < 0:
                return None
            return values[src][t]

        for n in range(n_cycles):
            for nid in self.order:
                node = dag.nodes[nid]
                kind = node.kind
                out = None
                if kind == "const":
                    out = node.params.get("value", 0)
                elif kind == "ctrl":
                    out = n - cfg.ctrl_offset.get(nid, 0)
                elif kind in ("ctrl_tap", "wire"):
                    out = in_val(nid, 0, n)
                elif kind == "mux":
                    policy = cfg.mux_policy.get(nid)
                    if policy is None:
                        sel = cfg.mux_select.get(nid, 0)
                        out = in_val(nid, sel, n)
                    else:
                        # Dynamic mux: pin 0 carries the local timestamp;
                        # pick the first source whose coverage test passes.
                        t = in_val(nid, 0, n)
                        tv = self._unrank(t) if t is not None else None
                        out = None
                        if tv is not None:
                            for pin, dt in policy:
                                if dt is None:
                                    out = in_val(nid, pin, n)
                                    break
                                if all(0 <= v - d < r for v, d, r in
                                       zip(tv, dt, self.rt)):
                                    out = in_val(nid, pin, n)
                                    break
                elif kind == "fifo":
                    depth = self._node_delay(nid)
                    t = n - depth
                    out = in_val(nid, 0, t) if t >= 0 else None
                elif kind == "addrgen":
                    v = in_val(nid, 0, n - node.latency)
                    agc = cfg.addrgen.get(nid)
                    if v is not None and agc is not None:
                        out = agc.flat_address(int(v))
                elif kind == "mem_read":
                    addr = in_val(nid, 0, n - node.latency)
                    tensor = node.params["tensor"]
                    if nid not in cfg.read_enable or addr is None:
                        out = None
                    elif addr < 0:
                        out = 0  # padding region reads zero
                    else:
                        out = int(storage[tensor][addr])
                        mem_reads[tensor] = mem_reads.get(tensor, 0) + 1
                elif kind == "mem_write":
                    if nid in cfg.write_enable:
                        addr = in_val(nid, 0, n)
                        data = in_val(nid, 1, n)
                        tensor = node.params["tensor"]
                        if addr is not None and addr >= 0 and data is not None:
                            if node.params.get("accumulate", True):
                                storage[tensor][addr] += int(data)
                            else:
                                storage[tensor][addr] = int(data)
                            mem_writes[tensor] = mem_writes.get(tensor, 0) + 1
                    out = None
                elif kind in ("mul", "add", "sub", "shl", "shr", "max"):
                    a = in_val(nid, 0, n - node.latency)
                    b = in_val(nid, 1, n - node.latency)
                    if a is not None and b is not None:
                        if kind == "mul":
                            out = a * b
                        elif kind == "add":
                            out = a + b
                        elif kind == "sub":
                            out = a - b
                        elif kind == "shl":
                            out = a << b
                        elif kind == "shr":
                            out = a >> b
                        else:
                            out = max(a, b)
                elif kind == "reducer":
                    pin_dfs = node.params.get("pin_dataflows", {})
                    total = 0
                    seen = False
                    for pin in self.inputs.get(nid, {}):
                        if pin_dfs and self.dataflow not in pin_dfs.get(pin, ()):
                            continue
                        v = in_val(nid, pin, n - node.latency)
                        if v is not None:
                            total += v
                            seen = True
                    out = total if seen else None
                elif kind == "lut":
                    v = in_val(nid, 0, n - node.latency)
                    table = node.params.get("table")
                    if v is not None and table is not None:
                        out = table[int(v) % len(table)]
                elif kind == "output":
                    out = in_val(nid, 0, n)
                if n > 0 and values[nid][n - 1] != out:
                    toggles[nid] += 1
                values[nid][n] = out

        return SimResult(outputs=self._collect_outputs(storage, shapes),
                         cycles=n_cycles, toggles=toggles,
                         mem_reads=mem_reads, mem_writes=mem_writes)


def make_input(design: Design, dataflow: str, tensor: str,
               rng: np.random.Generator, lo: int = -4, hi: int = 5
               ) -> np.ndarray:
    """Random integer input shaped as the design's address generators
    expect for *tensor* under *dataflow*."""
    cfg = design.configs[dataflow]
    for ag, agc in cfg.addrgen.items():
        if design.dag.nodes[ag].params["tensor"] == tensor:
            return rng.integers(lo, hi, size=agc.dims).astype(np.int64)
    raise KeyError(f"no address generator for tensor {tensor!r}")


def simulate_workload(design: Design, dataflow: str,
                      tensors: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Convenience wrapper: run the simulator, return output tensors."""
    sim = Simulator(design, dataflow)
    return sim.run(tensors).outputs


def canonical_stimulus(design: Design,
                       dataflow: str) -> dict[str, np.ndarray]:
    """The canonical self-checking-testbench stimulus for *dataflow*:
    ``default_rng(0)`` integers in ``[0, 8)``, one array per tensor the
    configuration reads, generated in sorted tensor order.

    This is the *single* definition every golden-vector producer shares
    (the hls_c and Verilog testbench emitters and the staged pipeline's
    sim-phase cache); its parameters are pinned by
    :data:`CANONICAL_STIMULUS`, which must be bumped with any change
    here or stale cached vectors would keep their old address.
    """
    rng = np.random.default_rng(0)
    cfg = design.configs[dataflow]
    names = sorted({design.dag.nodes[n].params["tensor"]
                    for n in cfg.read_enable})
    return {t: make_input(design, dataflow, t, rng, 0, 8) for t in names}


def golden_vectors(design: Design, dataflow: str):
    """``(tensors, outputs, cycles)`` of one run of *dataflow* under the
    canonical stimulus — the payload of a sim-phase cache record."""
    tensors = canonical_stimulus(design, dataflow)
    result = Simulator(design, dataflow).run(tensors)
    return tensors, result.outputs, int(result.cycles)
