"""Area and energy model (the reproduction's Design Compiler + CACTI).

The paper synthesizes with Synopsys DC on TSMC 28 nm and models SRAM with
CACTI.  Offline we use analytic per-primitive cost tables calibrated to
published 28 nm figures (MAC ≈ 0.2 pJ/8-bit op, register ≈ 4 µm²/bit,
SRAM read ≈ 5 pJ + sqrt-capacity term, etc.).  All evaluation figures in
the paper are *ratios* (savings, speedup, efficiency), which a consistent
linear model preserves; EXPERIMENTS.md records where absolute values
diverge from the paper's.

Two technology modes are provided: ``tsmc28`` (default, matches the main
evaluation) and ``freepdk45`` (Table VII's SODA comparison), scaled by
standard node factors (area ~ (45/28)^2, energy ~ 45/28).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..backend.codegen import Design

__all__ = ["TechModel", "AreaPowerReport", "evaluate_design", "sram_model"]


@dataclass(frozen=True)
class TechModel:
    """Per-primitive cost coefficients for one technology node.

    Areas in µm², energies in pJ per operation, leakage in µW per µm²
    (aggregate).  Arithmetic scales with operand bits; multipliers scale
    quadratically (array multiplier), everything else linearly.
    """

    name: str = "tsmc28"
    freq_mhz: float = 1000.0
    # area (um^2)
    reg_area_per_bit: float = 2.0
    adder_area_per_bit: float = 3.0
    mult_area_per_bit2: float = 4.5     # * wa * wb
    mux_area_per_bit: float = 1.0       # per 2:1 leg
    lut_area: float = 1800.0
    addrgen_area: float = 700.0         # counters + small matrix MAC
    ctrl_area: float = 600.0
    comparator_area_per_bit: float = 2.5
    # dynamic energy (pJ per op)
    reg_energy_per_bit: float = 0.0012
    adder_energy_per_bit: float = 0.0022
    mult_energy_per_bit2: float = 0.0031
    mux_energy_per_bit: float = 0.0004
    lut_energy: float = 0.8
    addrgen_energy: float = 0.35
    ctrl_energy: float = 0.25
    # leakage, fraction of dynamic at full activity
    leakage_fraction: float = 0.08
    # SRAM (CACTI-like): energy = a + b*sqrt(kbytes), per access of `width` bits
    sram_read_base_pj: float = 1.1
    sram_read_sqrt_pj: float = 0.45
    sram_write_scale: float = 1.15
    sram_area_per_bit: float = 0.60     # um^2 per bit + bank overhead
    sram_bank_overhead: float = 2500.0
    dram_energy_per_byte: float = 20.0  # pJ/byte (LPDDR-class)
    noc_energy_per_byte_hop: float = 0.18
    noc_area_per_port: float = 230.0

    def scaled(self, node_nm: float) -> "TechModel":
        """Scale to another technology node with classical factors."""
        s_area = (node_nm / 28.0) ** 2
        s_energy = node_nm / 28.0
        values = {}
        for fname, value in self.__dict__.items():
            if fname in ("name", "freq_mhz", "leakage_fraction",
                         "sram_write_scale"):
                values[fname] = value
            elif "area" in fname:
                values[fname] = value * s_area
            else:
                values[fname] = value * s_energy
        values["name"] = f"scaled{int(node_nm)}"
        return TechModel(**values)


TSMC28 = TechModel()
FREEPDK45 = TSMC28.scaled(45.0)


def sram_model(tech: TechModel, kbytes: float, width_bits: int,
               n_banks: int = 1) -> dict[str, float]:
    """CACTI-like SRAM macro model: area (µm²) and per-access energy (pJ)."""
    bits = kbytes * 1024 * 8
    area = bits * tech.sram_area_per_bit + n_banks * tech.sram_bank_overhead
    per_kb = max(kbytes / max(n_banks, 1), 0.25)
    read = (tech.sram_read_base_pj
            + tech.sram_read_sqrt_pj * math.sqrt(per_kb)) * width_bits / 64.0
    return {"area_um2": area, "read_pj": read,
            "write_pj": read * tech.sram_write_scale}


@dataclass
class AreaPowerReport:
    """Breakdown of a design evaluation."""

    area_um2: dict[str, float] = field(default_factory=dict)
    power_mw: dict[str, float] = field(default_factory=dict)

    @property
    def total_area_um2(self) -> float:
        return sum(self.area_um2.values())

    @property
    def total_area_mm2(self) -> float:
        return self.total_area_um2 / 1e6

    @property
    def total_power_mw(self) -> float:
        return sum(self.power_mw.values())

    def merge(self, other: "AreaPowerReport") -> "AreaPowerReport":
        merged = AreaPowerReport(dict(self.area_um2), dict(self.power_mw))
        for k, v in other.area_um2.items():
            merged.area_um2[k] = merged.area_um2.get(k, 0.0) + v
        for k, v in other.power_mw.items():
            merged.power_mw[k] = merged.power_mw.get(k, 0.0) + v
        return merged


def _node_costs(design: Design, nid, tech: TechModel,
                activity: dict[int, float]) -> tuple[str, float, float]:
    """(category, area µm², dynamic power mW) for one DAG node."""
    dag = design.dag
    node = dag.nodes[nid]
    ins = dag.in_edges(nid)
    in_w = [dag.nodes[e.src].width for e in ins]
    w = max(node.width, 1)
    act = activity.get(nid, 1.0)
    ops_per_s = tech.freq_mhz * 1e6 * act
    kind = node.kind

    if kind == "mul":
        wa = in_w[0] if in_w else w
        wb = in_w[1] if len(in_w) > 1 else wa
        area = tech.mult_area_per_bit2 * wa * wb
        energy = tech.mult_energy_per_bit2 * wa * wb
        return "fu_array", area, energy * ops_per_s * 1e-9
    if kind in ("add", "sub", "max", "shl", "shr"):
        area = tech.adder_area_per_bit * w
        energy = tech.adder_energy_per_bit * w
        return "fu_array", area, energy * ops_per_s * 1e-9
    if kind == "reducer":
        n_pins = node.params.get("n_phys_pins",
                                 node.params.get("n_inputs", 2))
        n_mux = node.params.get("remap_muxes", 0)
        area = (tech.adder_area_per_bit * w * max(n_pins - 1, 1)
                + tech.mux_area_per_bit * w * n_mux)
        energy = (tech.adder_energy_per_bit * w * max(n_pins - 1, 1)
                  + tech.mux_energy_per_bit * w * n_mux)
        return "fu_array", area, energy * ops_per_s * 1e-9
    if kind == "mux":
        n_in = max(node.params.get("n_inputs", len(ins)), 1)
        legs = max(n_in - 1, 0)
        extra = tech.comparator_area_per_bit * 8 if node.params.get(
            "dynamic") else 0.0
        area = tech.mux_area_per_bit * w * legs + extra
        energy = tech.mux_energy_per_bit * w
        return "fu_array", area, energy * ops_per_s * 1e-9
    if kind == "fifo":
        depth = node.params.get("depth")
        if depth is None:
            depths = [cfg.fifo_phys.get(nid, cfg.fifo_depth.get(nid, 0))
                      for cfg in design.configs.values()]
            depth = max(depths, default=0)
        area = tech.reg_area_per_bit * w * depth
        energy = tech.reg_energy_per_bit * w * depth
        if node.params.get("power_gated") and act == 0.0:
            energy = 0.0
        return "fu_array", area, energy * ops_per_s * 1e-9
    if kind in ("ctrl", "ctrl_tap"):
        area = tech.ctrl_area if kind == "ctrl" else tech.reg_area_per_bit * w
        energy = tech.ctrl_energy if kind == "ctrl" else \
            tech.reg_energy_per_bit * w
        return "control", area, energy * ops_per_s * 1e-9
    if kind == "addrgen":
        # One full generator per tensor L1 space ("each L1 memory space has
        # only one address generator", §II); additional data nodes of the
        # same tensor only add a constant-offset adder.
        share = node.params.get("addrgen_share", 1.0)
        return "control", tech.addrgen_area * share, \
            tech.addrgen_energy * share * ops_per_s * 1e-9
    if kind == "lut":
        return "ppu", tech.lut_area, tech.lut_energy * ops_per_s * 1e-9
    if kind in ("mem_read", "mem_write"):
        # Port logic only; the SRAM macro is charged separately.
        area = tech.mux_area_per_bit * w * 2
        return "buffers", area, tech.mux_energy_per_bit * w * ops_per_s * 1e-9
    return "fu_array", 0.0, 0.0  # const / wire / output


def evaluate_design(design: Design, tech: TechModel = TSMC28,
                    activity: dict[int, float] | None = None,
                    active_dataflow: str | None = None) -> AreaPowerReport:
    """Area and power of the generated FU array + control + ports.

    ``activity`` maps node id -> activity factor (default 1.0 = every
    cycle).  With ``active_dataflow`` set, nodes inactive under that
    dataflow get activity 0 (power-gated nodes consume nothing, others
    leak toggles at 10%)."""
    dag = design.dag
    act: dict[int, float] = dict(activity or {})
    if active_dataflow is not None:
        cfg = design.configs[active_dataflow]
        for nid, node in dag.nodes.items():
            if nid in act:
                continue
            if nid in cfg.active_nodes:
                act[nid] = 1.0
            elif node.params.get("power_gated"):
                act[nid] = 0.0
            else:
                act[nid] = 0.1  # idle toggling without gating

    report = AreaPowerReport()

    def add(cat: str, area: float, power: float) -> None:
        report.area_um2[cat] = report.area_um2.get(cat, 0.0) + area
        report.power_mw[cat] = report.power_mw.get(cat, 0.0) + power

    seen_tensors: set[str] = set()
    for nid in sorted(dag.nodes):
        node = dag.nodes[nid]
        if node.kind == "addrgen":
            tensor = node.params.get("tensor")
            node.params["addrgen_share"] = 1.0 if tensor not in seen_tensors \
                else 0.12
            seen_tensors.add(tensor)
        cat, area, power = _node_costs(design, nid, tech, act)
        add(cat, area, power)
    # Pipeline registers on edges.
    for e in dag.edges:
        if e.el <= 0:
            continue
        a = act.get(e.dst, 1.0)
        area = tech.reg_area_per_bit * e.width * e.el
        power = (tech.reg_energy_per_bit * e.width * e.el
                 * tech.freq_mhz * 1e6 * a * 1e-9)
        add("fu_array", area, power)
    # Leakage as a fraction of full-activity dynamic power.
    total_dyn = sum(report.power_mw.values())
    add("leakage", 0.0, total_dyn * tech.leakage_fraction)
    return report
