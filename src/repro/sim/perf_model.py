"""Analytic performance model for the FU array + memory system (§VI-A).

The paper's front end includes "a fast and accurate performance simulator
for the FU array and NoC ... verified with the RTL simulation"; this
module is that tool.  Given a layer, a spatial dataflow and an L1 tiling
it derives compute cycles, DRAM traffic (tile-reuse model), SRAM access
counts discounted by the FU-interconnect reuse the front end discovered,
PPU cycles, and energy.  Latency is the max of compute and DRAM-bandwidth
cycles (roofline) — which is exactly what makes GPT-2/LLaMA decode
memory-bound in Fig. 11/Table II.

Cross-validation against the cycle-accurate DAG simulator lives in the
test suite (`tests/test_perf_model.py`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from ..models.layers import AttentionLayer, ConvLayer, LinearLayer, PPULayer
from .energy_model import TSMC28, TechModel, sram_model
from .ppu import ppu_latency_cycles

__all__ = ["ArchPerf", "LayerPerf", "ModelPerf", "spatial_options",
           "evaluate_layer", "evaluate_model", "GEMMINI_LIKE"]


@dataclass(frozen=True)
class ArchPerf:
    """Architecture parameters of the performance model."""

    name: str = "LEGO-MNICOC"
    array: tuple[int, int] = (16, 16)
    buffer_kb: float = 256.0
    dram_gbps: float = 16.0
    freq_mhz: float = 1000.0
    n_ppus: int = 8
    ppu_throughput: int = 2
    #: spatial dataflows the generated hardware can switch between
    dataflows: tuple[str, ...] = ("MN", "ICOC")
    #: Gemmini-style penalties
    weight_load_overhead: bool = False
    im2col_conv: bool = False
    has_ppu: bool = True
    #: fraction of peak DRAM bandwidth achieved (strided/small bursts hurt)
    dram_efficiency: float = 0.90
    #: fixed per-tile dispatch cost (instruction issue, fences)
    dispatch_overhead_cycles: float = 0.0
    #: fraction of DRAM time hidden under compute (double buffering)
    dma_overlap: float = 1.0

    @property
    def n_fus(self) -> int:
        return self.array[0] * self.array[1]

    @property
    def peak_gops(self) -> float:
        return self.n_fus * 2 * self.freq_mhz / 1e3

    @property
    def dram_bytes_per_cycle(self) -> float:
        return (self.dram_gbps * 1e9 * self.dram_efficiency
                / (self.freq_mhz * 1e6))


@dataclass
class LayerPerf:
    layer: object
    dataflow: str
    cycles: float
    compute_cycles: float
    dram_cycles: float
    ppu_cycles: float
    dram_bytes: float
    sram_reads: float
    sram_writes: float
    macs: int
    energy_pj: float
    utilization: float
    n_tiles: int = 1


@dataclass
class ModelPerf:
    name: str
    layers: list[LayerPerf] = field(default_factory=list)
    arch: ArchPerf | None = None

    @property
    def total_cycles(self) -> float:
        return sum(l.cycles for l in self.layers)

    @property
    def total_ops(self) -> float:
        return sum(2 * l.macs for l in self.layers)

    @property
    def total_energy_pj(self) -> float:
        return sum(l.energy_pj for l in self.layers)

    @property
    def seconds(self) -> float:
        return self.total_cycles / (self.arch.freq_mhz * 1e6)

    @property
    def gops(self) -> float:
        return self.total_ops / self.seconds / 1e9 if self.seconds else 0.0

    @property
    def gops_per_watt(self) -> float:
        watts = self.total_energy_pj * 1e-12 / self.seconds if self.seconds else 0
        return self.gops / watts if watts else 0.0

    @property
    def utilization(self) -> float:
        return self.gops / self.arch.peak_gops if self.arch else 0.0

    @property
    def ppu_fraction(self) -> float:
        tot = self.total_cycles
        ppu = sum(l.ppu_cycles for l in self.layers)
        return ppu / tot if tot else 0.0

    def instruction_stats(self) -> dict[str, float]:
        """§VI-B(e): one instruction per dispatched tile, 16 bytes each."""
        n_instr = max(sum(l.n_tiles for l in self.layers), 1)
        cycles_per_instr = self.total_cycles / n_instr
        bw_gbs = n_instr * 16 / self.seconds / 1e9 if self.seconds else 0.0
        return {"n_instructions": float(n_instr),
                "cycles_per_instruction": cycles_per_instr,
                "instruction_bw_gbs": bw_gbs}


# ---------------------------------------------------------------------------
# Layer -> iteration-space description
# ---------------------------------------------------------------------------

def _layer_space(layer) -> tuple[dict[str, int], dict[str, tuple[str, ...]],
                                 tuple[str, ...], dict[str, float]]:
    """Return (dims, tensor->dims, reduction dims, tensor->bytes/elem)."""
    if isinstance(layer, ConvLayer):
        d = layer.dims()
        dims = {k: v for k, v in d.items() if v > 0}
        tensors = {
            "X": ("n", "ic", "oh", "ow"),
            "W": ("oc", "ic", "kh", "kw"),
            "Y": ("n", "oc", "oh", "ow"),
        }
        return dims, tensors, ("ic", "kh", "kw"), {"X": 1, "W": 1, "Y": 2}
    if isinstance(layer, LinearLayer):
        dims = {"m": layer.m, "n": layer.n, "k": layer.k}
        tensors = {"X": ("m", "k"), "W": ("k", "n"), "Y": ("m", "n")}
        return dims, tensors, ("k",), {"X": 1, "W": 1, "Y": 2}
    if isinstance(layer, AttentionLayer):
        # Two contractions folded into one GEMM-shaped space (h batched).
        dims = {"m": layer.heads * layer.q_len, "n": layer.kv_len,
                "k": 2 * layer.d_head}
        tensors = {"X": ("m", "k"), "W": ("k", "n"), "Y": ("m", "n")}
        return dims, tensors, ("k",), {"X": 1, "W": 1, "Y": 2}
    raise TypeError(f"not a tensor layer: {layer!r}")


def spatial_options(layer, dataflow: str,
                    array: tuple[int, int]) -> dict[str, int] | None:
    """Spatial dim assignment for a named dataflow; None if inapplicable.

    ``MN`` parallelizes the two output dims (oh/ow for conv, m/n for
    GEMM); ``ICOC`` the input/output channels (k/n for GEMM); ``KHOH`` and
    ``OCOH`` are the Eyeriss- and AutoSA-style conv dataflows.
    """
    p0, p1 = array
    if isinstance(layer, ConvLayer):
        mapping = {"MN": ("oh", "ow"), "ICOC": ("ic", "oc"),
                   "KHOH": ("kh", "oh"), "OCOH": ("oc", "oh")}
        if dataflow not in mapping:
            return None
        a, b = mapping[dataflow]
        return {a: p0, b: p1}
    mapping = {"MN": ("m", "n"), "ICOC": ("k", "n"), "OCOH": ("n", "m"),
               "KHOH": None}
    pair = mapping.get(dataflow)
    if pair is None:
        return None
    a, b = pair
    return {a: p0, b: p1}


def _tile_search(dims: dict[str, int], tensors: dict[str, tuple[str, ...]],
                 bytes_per_el: dict[str, float], reduction: tuple[str, ...],
                 spatial: dict[str, int], buffer_bytes: float
                 ) -> tuple[dict[str, int], float]:
    """Greedy L1 tiling: start fully resident, halve the dim that best
    trades working-set reduction for traffic, until the tile fits.
    Returns (tiles, dram_bytes)."""

    def working_set(tiles: dict[str, int]) -> float:
        total = 0.0
        for t, tdims in tensors.items():
            size = bytes_per_el[t]
            for d in tdims:
                if d in tiles:
                    size *= tiles[d]
            total += size
        return total

    def traffic(tiles: dict[str, int]) -> float:
        n_tiles = {d: math.ceil(dims[d] / tiles[d]) for d in dims}
        total = 0.0
        for t, tdims in tensors.items():
            footprint = bytes_per_el[t]
            for d in tdims:
                if d in dims:
                    footprint *= dims[d]
            refetch = 1.0
            for d in dims:
                if d not in tdims:
                    refetch *= n_tiles[d]
            if t == "Y":
                red_tiles = 1.0
                for d in reduction:
                    if d in dims:
                        red_tiles *= n_tiles[d]
                refetch = max(2 * red_tiles - 1, 1.0)
            total += footprint * refetch
        return total

    tiles = {d: v for d, v in dims.items()}
    # Tiles cannot go below the spatial unrolling.
    floor = {d: min(spatial.get(d, 1), dims[d]) for d in dims}
    while working_set(tiles) > buffer_bytes:
        best = None
        for d in dims:
            if tiles[d] <= floor[d]:
                continue
            trial = dict(tiles)
            trial[d] = max(floor[d], math.ceil(tiles[d] / 2))
            cand = (traffic(trial), -working_set(trial), d)
            if best is None or cand < best:
                best = cand
        if best is None:
            break  # cannot shrink further; model will charge the traffic
        d = best[2]
        tiles[d] = max(floor[d], math.ceil(tiles[d] / 2))
    return tiles, traffic(tiles)


def evaluate_layer(layer, arch: ArchPerf, dataflow: str,
                   tech: TechModel = TSMC28) -> LayerPerf | None:
    """Model one tensor layer under one spatial dataflow.  None if the
    dataflow cannot execute the layer on this architecture."""
    dims, tensors, reduction, bpe = _layer_space(layer)
    spatial = spatial_options(layer, dataflow, arch.array)
    if spatial is None:
        return None
    spatial = {d: min(p, dims.get(d, 1)) for d, p in spatial.items()
               if d in dims}

    # -- compute ------------------------------------------------------------------
    macs = layer.macs()
    dw_im2col = False
    if (arch.im2col_conv and isinstance(layer, ConvLayer)
            and layer.is_depthwise):
        dw_im2col = True
        # im2col lowers each depthwise group to a GEMM with N = 1 and
        # K = kh*kw: a single systolic column (and only kh*kw of its rows)
        # does useful work — the reason fixed-dataflow arrays collapse on
        # MobileNet-class models (Fig. 11 discussion).
        temporal_steps = layer.groups * layer.oh * layer.ow
        spatial = {}
    else:
        temporal_steps = 1
        for d, bound in dims.items():
            p = spatial.get(d, 1)
            temporal_steps *= math.ceil(bound / p)
    spatial_used = 1
    for d, p in spatial.items():
        spatial_used *= p
    utilization = macs / (temporal_steps * arch.n_fus)
    compute_cycles = temporal_steps + sum(arch.array)  # + pipeline fill

    if arch.weight_load_overhead:
        # Weight-stationary arrays stall to preload each weight tile.
        compute_cycles *= 1.15

    # -- memory -------------------------------------------------------------------
    tiles, dram_bytes = _tile_search(dims, tensors, bpe, reduction, spatial,
                                     arch.buffer_kb * 1024 * 0.9)
    n_tiles = 1
    for d in dims:
        n_tiles *= math.ceil(dims[d] / tiles[d])
    if dw_im2col:
        # Each depthwise group is a separate tiny GEMM dispatch.
        n_tiles = max(n_tiles, layer.groups)
    if arch.im2col_conv and isinstance(layer, ConvLayer):
        # im2col materializes overlapping patches in DRAM-visible form.
        inflation = (layer.kh * layer.kw) / (layer.stride * layer.stride)
        x_bytes = layer.tensor_bytes()["X"]
        dram_bytes += x_bytes * max(inflation - 1.0, 0.0)
    dram_cycles = dram_bytes / arch.dram_bytes_per_cycle

    # -- SRAM accesses, discounted by interconnect + stationary reuse --------------
    sram_reads = 0.0
    sram_writes = 0.0
    for t, tdims in tensors.items():
        spatial_reuse = 1.0
        for d, p in spatial.items():
            if d not in tdims:
                spatial_reuse *= p
        stationary = 1.0
        for d in dims:
            if d not in tdims:
                stationary = max(stationary, min(tiles[d], 64))
        accesses = macs / max(spatial_reuse, 1.0) / max(stationary, 1.0)
        if t == "Y":
            sram_writes += accesses
        else:
            sram_reads += accesses

    # -- PPU ------------------------------------------------------------------------
    ppu_cycles = 0.0

    # Roofline with imperfect overlap plus per-tile dispatch cost.
    cycles = (max(compute_cycles, dram_cycles)
              + (1.0 - arch.dma_overlap) * min(compute_cycles, dram_cycles)
              + arch.dispatch_overhead_cycles * n_tiles)

    # -- energy ----------------------------------------------------------------------
    e_mac = tech.mult_energy_per_bit2 * 64 + tech.adder_energy_per_bit * 32
    sram = sram_model(tech, arch.buffer_kb, 64, n_banks=16)
    energy = (macs * e_mac
              + sram_reads * sram["read_pj"]
              + sram_writes * sram["write_pj"]
              + dram_bytes * tech.dram_energy_per_byte
              + cycles * arch.n_fus * tech.reg_energy_per_bit * 24)  # clocking
    energy *= 1 + tech.leakage_fraction

    return LayerPerf(layer=layer, dataflow=dataflow, cycles=cycles,
                     compute_cycles=compute_cycles, dram_cycles=dram_cycles,
                     ppu_cycles=ppu_cycles, dram_bytes=dram_bytes,
                     sram_reads=sram_reads, sram_writes=sram_writes,
                     macs=macs, energy_pj=energy, utilization=utilization,
                     n_tiles=n_tiles)


def _ppu_layer_perf(layer: PPULayer, arch: ArchPerf,
                    tech: TechModel) -> LayerPerf:
    if arch.has_ppu:
        cycles = ppu_latency_cycles(layer.n_elements, arch.n_ppus,
                                    arch.ppu_throughput, layer.n_passes)
    else:
        # Without PPUs the host handles non-tensor ops over the memory bus.
        cycles = layer.n_elements * 2 / arch.dram_bytes_per_cycle + 2000
    energy = layer.n_elements * layer.n_passes * tech.lut_energy
    # Non-tensor ops stream through DRAM (little reuse, Fig. 12 discussion).
    dram_bytes = layer.n_elements * 2.0
    cycles = max(cycles, dram_bytes / arch.dram_bytes_per_cycle)
    energy += dram_bytes * tech.dram_energy_per_byte
    return LayerPerf(layer=layer, dataflow="ppu", cycles=cycles,
                     compute_cycles=0.0, dram_cycles=0.0, ppu_cycles=cycles,
                     dram_bytes=dram_bytes, sram_reads=0.0, sram_writes=0.0,
                     macs=0, energy_pj=energy, utilization=0.0)


def evaluate_model(model, arch: ArchPerf,
                   tech: TechModel = TSMC28) -> ModelPerf:
    """Per-layer mapping search (best supported dataflow per layer, the
    paper's "simple mapping search tool") + PPU layers."""
    perf = ModelPerf(name=model.name, arch=arch)
    for layer in model.layers:
        if isinstance(layer, PPULayer):
            perf.layers.append(_ppu_layer_perf(layer, arch, tech))
            continue
        best: LayerPerf | None = None
        for dataflow in arch.dataflows:
            cand = evaluate_layer(layer, arch, dataflow, tech)
            if cand is None:
                continue
            if best is None or (cand.cycles, cand.energy_pj) < (
                    best.cycles, best.energy_pj):
                best = cand
        if best is None:
            raise ValueError(
                f"no supported dataflow for layer {layer.name!r} on "
                f"{arch.name}")
        perf.layers.append(best)
    return perf


#: The Gemmini-class baseline of Fig. 11: same resources (256 MACs, 256 KB,
#: 16 GB/s) but a fixed weight-stationary systolic dataflow, im2col conv
#: lowering, and no dataflow switching.
GEMMINI_LIKE = ArchPerf(
    name="Gemmini",
    array=(16, 16),
    buffer_kb=256.0,
    dram_gbps=16.0,
    dataflows=("ICOC",),
    weight_load_overhead=True,
    im2col_conv=True,
    has_ppu=False,
    dram_efficiency=0.45,   # narrow strided bursts from im2col tiles
    dispatch_overhead_cycles=120.0,  # RoCC instruction issue + fences
    dma_overlap=0.5,        # mvin/mvout only partially hidden
)
