"""Network-on-chip models (paper §II: L1/L2 NoC, NoP).

Two predefined structures, as in the paper:

* a **multistage butterfly** used between L1 banks and FU data nodes
  (the data distribution switches resolve layout conflicts here), and
* a **wormhole 2D-mesh** used at the L2 level to scale past 1024 FUs
  (Table IV), with classical X-Y dimension-ordered routing, which is
  deadlock-free on a mesh.

Both give analytic latency/area/energy (used by the performance model)
and the wormhole mesh additionally has a small flit-level simulator used
by the tests to validate the analytic latency on random traffic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["ButterflyNetwork", "WormholeMesh", "xy_route"]


@dataclass(frozen=True)
class ButterflyNetwork:
    """A radix-2 multistage butterfly with ``n`` inputs and outputs."""

    n: int
    width_bits: int = 64

    def __post_init__(self) -> None:
        if self.n < 1 or self.n & (self.n - 1):
            raise ValueError("butterfly size must be a power of two")

    @property
    def n_stages(self) -> int:
        return max(1, int(math.log2(self.n)))

    @property
    def n_switches(self) -> int:
        return self.n_stages * self.n // 2

    def latency(self) -> int:
        """Pipeline latency in cycles (one per stage)."""
        return self.n_stages

    def route(self, src: int, dst: int) -> list[int]:
        """Stage-by-stage port numbers of the unique butterfly path."""
        if not (0 <= src < self.n and 0 <= dst < self.n):
            raise ValueError("port out of range")
        path = [src]
        cur = src
        for stage in range(self.n_stages):
            bit = self.n_stages - 1 - stage
            desired = (dst >> bit) & 1
            cur = (cur & ~(1 << bit)) | (desired << bit)
            path.append(cur)
        return path

    def area_um2(self, area_per_port: float) -> float:
        return self.n_switches * 2 * area_per_port / 2

    def transfer_energy_pj(self, n_bytes: int, energy_per_byte_hop: float) -> float:
        return n_bytes * self.n_stages * energy_per_byte_hop


def xy_route(src: tuple[int, int], dst: tuple[int, int]
             ) -> list[tuple[int, int]]:
    """Dimension-ordered (X first, then Y) route on a mesh — deadlock-free."""
    path = [src]
    x, y = src
    while x != dst[0]:
        x += 1 if dst[0] > x else -1
        path.append((x, y))
    while y != dst[1]:
        y += 1 if dst[1] > y else -1
        path.append((x, y))
    return path


@dataclass
class WormholeMesh:
    """A ``cols x rows`` wormhole-switched mesh with X-Y routing.

    ``flit_bytes`` is the link width; a packet of ``n`` bytes becomes
    ``ceil(n / flit_bytes)`` body flits plus a head flit.
    """

    cols: int
    rows: int
    flit_bytes: int = 16
    router_latency: int = 1

    @property
    def n_nodes(self) -> int:
        return self.cols * self.rows

    def hops(self, src: tuple[int, int], dst: tuple[int, int]) -> int:
        return abs(src[0] - dst[0]) + abs(src[1] - dst[1])

    def packet_latency(self, src: tuple[int, int], dst: tuple[int, int],
                       n_bytes: int) -> int:
        """Zero-load wormhole latency: head latency + serialization."""
        n_flits = 1 + math.ceil(n_bytes / self.flit_bytes)
        return (self.hops(src, dst) + 1) * self.router_latency + n_flits - 1

    def area_um2(self, area_per_port: float) -> float:
        # 5 ports per router (N, S, E, W, local).
        return self.n_nodes * 5 * area_per_port

    def transfer_energy_pj(self, src: tuple[int, int], dst: tuple[int, int],
                           n_bytes: int, energy_per_byte_hop: float) -> float:
        return n_bytes * max(self.hops(src, dst), 1) * energy_per_byte_hop

    # -- flit-level simulation (validates the analytic model) -------------------

    def simulate(self, packets: list[tuple[tuple[int, int], tuple[int, int],
                                           int, int]]) -> dict[int, int]:
        """Simulate wormhole transfers; returns packet id -> arrival cycle.

        ``packets`` are ``(src, dst, n_bytes, inject_cycle)`` tuples;
        ids are list positions.  Links are single-flit per cycle; a link
        occupied by one worm blocks others (wormhole, no virtual
        channels).  X-Y routing guarantees progress.
        """
        flights = []
        for pid, (src, dst, n_bytes, t0) in enumerate(packets):
            route = xy_route(src, dst)
            n_flits = 1 + math.ceil(n_bytes / self.flit_bytes)
            flights.append({"id": pid, "route": route, "flits": n_flits,
                            "t0": t0, "sent": 0, "head_pos": 0,
                            "done": False, "arrival": None})
        link_busy: dict[tuple, int] = {}
        arrivals: dict[int, int] = {}
        cycle = 0
        max_cycles = 10000 + sum(f["flits"] for f in flights) * 4
        while not all(f["done"] for f in flights) and cycle < max_cycles:
            order = sorted((f["t0"], f["id"]) for f in flights if not f["done"])
            for _t0, pid in order:
                f = flights[pid]
                if cycle < f["t0"]:
                    continue
                route = f["route"]
                if f["head_pos"] < len(route) - 1:
                    link = (route[f["head_pos"]], route[f["head_pos"] + 1])
                    if link_busy.get(link, -1) < cycle:
                        link_busy[link] = cycle + max(f["flits"] - 1, 0)
                        f["head_pos"] += 1
                if f["head_pos"] >= len(route) - 1:
                    # Head arrived; tail needs the remaining flits to drain.
                    f["done"] = True
                    f["arrival"] = cycle + f["flits"] - 1 \
                        + self.router_latency * len(route)
                    arrivals[pid] = f["arrival"]
            cycle += 1
        for f in flights:
            if not f["done"]:  # pragma: no cover - bounded by max_cycles
                raise RuntimeError("wormhole simulation did not converge")
        return arrivals
