"""Command-line interface: ``python -m repro <command>`` (or the
``repro`` console script).

Commands
--------
``generate``   run the full flow for a named kernel/dataflow and emit
               the chosen backend family's artifacts (Verilog by
               default, ``--backend hls_c`` for HLS-style C) plus a
               design summary (service-cached);
``batch``      generate many designs at once across a worker pool;
``backends``   list the registered emitter backend families;
``evaluate``   end-to-end model performance on a named architecture;
``explore``    design-space exploration with a Pareto report, under a
               pluggable search strategy (``--strategy``/``--max-evals``);
``cache``      inspect, list, or clear the content-addressed design cache;
``serve``      run the asyncio HTTP front end (generate/batch/explore as
               a long-lived service with pausable, journaled jobs that
               survive restarts);
``route``      run a fleet router fanning requests across several
               ``serve`` backends by spec-hash shard;
``metrics``    print telemetry as Prometheus text (this process's
               registry, or a running server's ``GET /metrics``);
``trace``      summarize an exported Chrome/Perfetto trace file, or pull
               the live (router-merged) span buffer off a running
               server/fleet with ``--url``;
``profile``    capture a CPU flamegraph: of a running server/fleet with
               ``--url`` (``GET /debug/profile``), or of a local
               calibration workload;
``top``        live auto-refreshing terminal dashboard of a running
               server or fleet (rates, latency quantiles, cache tiers,
               jobs, backend health).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def _build_engine(args: argparse.Namespace):
    """Engine honouring the shared ``--cache-dir``/``--no-cache`` flags."""
    from .service.cache import DesignCache
    from .service.engine import BatchEngine

    workers = getattr(args, "workers", None)
    if getattr(args, "no_cache", False):
        return BatchEngine(cache=None, workers=workers)
    cache_dir = getattr(args, "cache_dir", None)
    shards = getattr(args, "cache_shards", 0) or 0
    if shards > 1:
        from .service.cache import default_cache_dir, shard_roots

        base = pathlib.Path(cache_dir) if cache_dir else default_cache_dir()
        cache = DesignCache(root=shard_roots(base, shards))
    else:
        cache = DesignCache(root=cache_dir) if cache_dir else DesignCache()
    return BatchEngine(cache=cache, workers=workers)


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache-dir", help="design cache location "
                        "(default: $REPRO_CACHE_DIR or ~/.cache/repro)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the design cache entirely")


def _request_from_args(args: argparse.Namespace, dataflows=None):
    import dataclasses

    from .backend import BackendOptions
    from .service.spec import DesignRequest

    options = (BackendOptions.baseline() if args.no_optimize
               else BackendOptions())
    if getattr(args, "no_testbench", False):
        options = dataclasses.replace(options, emit_testbench=False)
    return DesignRequest(
        kernel=args.kernel,
        dataflows=tuple(dataflows if dataflows is not None
                        else args.dataflows),
        array=tuple(args.array),
        systolic=not args.broadcast,
        options=options,
        module=getattr(args, "module", "lego_top"),
        backend=getattr(args, "backend", "verilog"),
    )


def _artifact_suffix(name: str, module: str) -> str:
    """`lego_top_tb.c` emitted for module `lego_top` -> `_tb.c` — the
    per-artifact suffix appended to a hash- or stem-based filename."""
    return name[len(module):] if name.startswith(module) else f"_{name}"


def _export_trace_arg(args: argparse.Namespace, trace_id: str) -> None:
    """Honour a ``--trace-out`` flag: write everything the tracer
    buffered (pool-worker spans included) as Perfetto-loadable JSON."""
    if not getattr(args, "trace_out", None):
        return
    from .obs import export_chrome_trace

    count = export_chrome_trace(args.trace_out)
    print(f"wrote {count} trace events (trace_id {trace_id}) to "
          f"{args.trace_out}")


def _service_client(args: argparse.Namespace):
    """A :class:`ServiceClient` honoring the shared remote flags
    (``--url``, ``--timeout``, ``--connect-timeout``)."""
    from .service.client import ServiceClient

    return ServiceClient.from_url(
        args.url, timeout=args.timeout,
        connect_timeout=args.connect_timeout)


def _remote_failed(what: str, url: str, exc: BaseException) -> int:
    """Print a remote failure and return the exit code.  A synthesized
    504 already names which budget expired (connect vs read)."""
    print(f"remote {what} against {url} failed: {exc}", file=sys.stderr)
    return 1


def _cmd_generate_remote(args: argparse.Namespace) -> int:
    import pathlib

    from .service.client import ServiceError

    if args.topology:
        print("--topology needs the in-process frontend; drop --url",
              file=sys.stderr)
        return 2
    request = _request_from_args(args)
    try:
        with _service_client(args) as client:
            result = client.generate(request.to_dict(),
                                     include_rtl=bool(args.output))
    except (ServiceError, OSError) as exc:
        return _remote_failed("generate", args.url, exc)
    if not result.get("ok"):
        print(f"generation failed: {result.get('error')}",
              file=sys.stderr)
        return 1
    print(result.get("summary", result.get("spec_hash", "")))
    if result.get("from_cache"):
        print(f"(cache hit {result['spec_hash'][:12]})")
    if args.output:
        out_path = pathlib.Path(args.output)
        out_path.write_text(result.get("rtl") or "")
        print(f"wrote {len((result.get('rtl') or '').splitlines())} "
              f"lines ({request.backend}) to {args.output}")
        artifacts = result.get("artifacts") or {}
        primary = next(iter(artifacts), None)
        stem = out_path.name
        for suffix in (out_path.suffixes or [""])[::-1]:
            stem = stem.removesuffix(suffix)
        for name, text in artifacts.items():
            if name == primary:
                continue
            side = out_path.with_name(
                stem + _artifact_suffix(name, request.module))
            side.write_text(text)
            print(f"wrote companion artifact {side}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from .obs import new_trace_id, trace_context
    from .report import render_topology

    if args.url:
        return _cmd_generate_remote(args)
    request = _request_from_args(args)
    trace_id = new_trace_id()
    with trace_context(trace_id):
        result = _build_engine(args).submit(request)
    _export_trace_arg(args, trace_id)
    if not result.ok:
        print(f"generation failed: {result.error}", file=sys.stderr)
        return 1
    print(result.summary)
    if result.from_cache:
        print(f"(cache hit {result.spec_hash[:12]})")
    if args.topology:
        # Topology rendering needs the live ADG; the frontend alone is
        # cheap, so rebuild it rather than fatten every cache record.
        from .core.frontend import build_adg
        dfs = request.build_dataflows()
        adg = build_adg(dfs, request.frontend)
        for tensor in adg.tensor_names():
            print(render_topology(adg, tensor, dfs[0].name))
    if args.output:
        import pathlib

        out_path = pathlib.Path(args.output)
        out_path.write_text(result.rtl)
        print(f"wrote {len(result.rtl.splitlines())} lines "
              f"({request.backend}) to {args.output}")
        # Companion artifacts (e.g. the hls_c testbench) land next to
        # the primary one, named after its stem.
        primary = next(iter(result.artifacts), None)
        stem = out_path.name
        for suffix in (out_path.suffixes or [""])[::-1]:
            stem = stem.removesuffix(suffix)
        for name, text in result.artifacts.items():
            if name == primary:
                continue
            side = out_path.with_name(
                stem + _artifact_suffix(name, request.module))
            side.write_text(text)
            print(f"wrote companion artifact {side}")
    return 0


def _parse_array(text: str) -> tuple[int, int]:
    try:
        p0, _, p1 = text.partition("x")
        shape = int(p0), int(p1)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"array {text!r} is not of the form P0xP1 (e.g. 8x8)")
    if shape[0] < 1 or shape[1] < 1:
        raise argparse.ArgumentTypeError(
            f"array {text!r} must have positive dimensions")
    return shape


def _cmd_batch_remote(args: argparse.Namespace,
                      requests: list) -> int:
    from .service.client import ServiceError

    if args.output_dir:
        print("--output-dir needs the in-process engine (the service "
              "returns result summaries, not artifact files); drop "
              "--url or --output-dir", file=sys.stderr)
        return 2
    specs = [request.to_dict() for request in requests]
    try:
        with _service_client(args) as client:
            job = client.batch(specs, workers=args.workers)
            print(f"submitted job {job} ({len(specs)} requests) "
                  f"to {args.url}")
            final = None
            try:
                for event in client.stream(job):
                    if event.get("event") == "result":
                        record = event.get("result") or {}
                        status = ("hit" if record.get("from_cache")
                                  else "ok" if record.get("ok")
                                  else "FAIL")
                        print(f"  [{event.get('done', '?')}/{len(specs)}]"
                              f" {status:4s} "
                              f"{(record.get('spec_hash') or '')[:12]}")
                    elif event.get("event") == "end":
                        final = event.get("job")
            except ServiceError:
                # fleet fan-out jobs don't stream; poll them instead
                final = None
            if final is None:
                final = client.wait(job, timeout=max(args.timeout, 600))
    except (ServiceError, OSError, TimeoutError) as exc:
        return _remote_failed("batch", args.url, exc)
    result = final.get("result") or {}
    ok = result.get("ok", 0)
    print(f"{ok}/{len(specs)} designs ok — job {job} "
          f"{final.get('status')}")
    return 0 if final.get("status") == "done" and ok == len(specs) else 1


def _cmd_batch(args: argparse.Namespace) -> int:
    import pathlib

    from .service.spec import DesignRequest

    try:
        if args.spec_file:
            with open(args.spec_file) as fh:
                specs = json.load(fh)
            if not isinstance(specs, list):
                print(f"{args.spec_file}: expected a JSON list of request "
                      "dicts", file=sys.stderr)
                return 2
            requests = [DesignRequest.from_dict(spec) for spec in specs]
        else:
            requests = []
            for array in args.arrays:
                args.array = list(array)  # _request_from_args reads it
                if args.fuse:
                    requests.append(_request_from_args(
                        args, dataflows=tuple(args.dataflows)))
                else:
                    requests.extend(
                        _request_from_args(args, dataflows=(df,))
                        for df in args.dataflows)
    except (ValueError, TypeError, KeyError) as exc:
        print(f"invalid design request: {exc}", file=sys.stderr)
        return 2

    if args.url:
        return _cmd_batch_remote(args, requests)

    engine = _build_engine(args)

    def progress(done: int, total: int, result) -> None:
        status = ("hit" if result.from_cache
                  else "ok" if result.ok else "FAIL")
        print(f"  [{done}/{total}] {status:4s} "
              f"{result.request.kernel}-{'+'.join(result.request.dataflows)}"
              f" @{result.request.array[0]}x{result.request.array[1]}"
              f"  {result.elapsed_s:6.2f}s  {result.spec_hash[:12]}")

    import time

    from .obs import new_trace_id, trace_context

    if args.plan_summary:
        print(f"plan: {engine.plan(requests).summary()}")

    trace_id = new_trace_id()
    start = time.perf_counter()
    with trace_context(trace_id):
        results = engine.generate_many(requests, workers=args.workers,
                                       progress=progress)
    elapsed = max(time.perf_counter() - start, 1e-9)
    _export_trace_arg(args, trace_id)

    if args.output_dir:
        out = pathlib.Path(args.output_dir)
        out.mkdir(parents=True, exist_ok=True)
        for result in results:
            if not result.ok:
                continue
            stem = result.spec_hash[:16]
            for name, text in result.artifacts.items():
                suffix = _artifact_suffix(name, result.request.module)
                (out / f"{stem}{suffix}").write_text(text)
            (out / f"{stem}.json").write_text(
                json.dumps(result.design, indent=1))
        print(f"wrote {sum(r.ok for r in results)} designs to {out}")

    ok = sum(r.ok for r in results)
    hits = sum(r.from_cache for r in results)
    print(f"{ok}/{len(results)} designs ok ({hits} from cache) in "
          f"{elapsed:.2f}s — {len(results) / elapsed:.1f} designs/sec, "
          f"workers={args.workers}")
    if engine.cache is not None:
        print(f"cache: {engine.cache.stats.as_dict()}")
    for result in results:
        if not result.ok:
            print(f"  failed {result.spec_hash[:12]}: {result.error}",
                  file=sys.stderr)
            if args.show_traceback and result.traceback:
                print(result.traceback, file=sys.stderr)
    return 0 if ok == len(results) else 1


def _cmd_backends(args: argparse.Namespace) -> int:
    from .service.api import list_backends

    families = list_backends()
    if args.names:
        for family in families:
            print(family["name"])
        return 0
    for family in families:
        print(f"{family['name']}")
        print(f"  {family['description']}")
        print(f"  artifacts : "
              f"{', '.join(family['artifacts'])}")
        opts = ", ".join(f"{k}={v['default']}"
                         for k, v in family["options"].items())
        print(f"  options   : {opts}")
    return 0


def _arm_faults(args: argparse.Namespace) -> int:
    """Arm ``--fault SITE:KIND[:PARAM]`` specs before serving; returns
    0, or 2 on a malformed spec."""
    from .service.faults import get_faults, parse_fault_spec

    for spec in getattr(args, "fault", None) or []:
        try:
            get_faults().arm(**parse_fault_spec(spec))
        except ValueError as exc:
            print(f"bad --fault: {exc}", file=sys.stderr)
            return 2
        print(f"armed chaos fault: {spec}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service.server import serve

    bad = _arm_faults(args)
    if bad:
        return bad
    serve(engine=_build_engine(args), host=args.host, port=args.port,
          step_evals=args.step_evals, processes=args.processes,
          log_level=args.log_level,
          slow_request_ms=args.slow_request_ms,
          persist=not args.no_persist_jobs,
          profile_hz=args.profile_hz if args.profile else None,
          history_interval_s=args.history_interval)
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    from .service.router import route

    bad = _arm_faults(args)
    if bad:
        return bad
    try:
        route(backends=args.backend, host=args.host, port=args.port,
              log_level=args.log_level, timeout=args.timeout,
              slow_request_ms=args.slow_request_ms,
              profile_hz=args.profile_hz if args.profile else None,
              history_interval_s=args.history_interval,
              replicas=args.replicas,
              probe_interval_s=args.probe_interval,
              breaker_threshold=args.breaker_threshold,
              retry_budget_s=args.retry_budget)
    except ValueError as exc:
        print(f"cannot start router: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    if args.url:
        from .service.client import ServiceClient

        with ServiceClient.from_url(args.url) as client:
            sys.stdout.write(client.metrics())
    else:
        from .service.api import metrics_text

        sys.stdout.write(metrics_text())
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs import load_chrome_trace

    if bool(args.file) == bool(args.url):
        print("give exactly one of: a trace FILE, or --url to pull the "
              "live span buffer off a running server/fleet",
              file=sys.stderr)
        return 2
    if args.url:
        from .service.client import ServiceClient, ServiceError

        try:
            with ServiceClient.from_url(args.url) as client:
                payload = client.trace(drain=args.drain,
                                       trace_id=args.trace_id)
        except (OSError, ServiceError) as exc:
            print(f"cannot pull trace from {args.url}: {exc}",
                  file=sys.stderr)
            return 2
        events = [e for e in payload.get("traceEvents", [])
                  if isinstance(e, dict)]
        source = args.url
        if payload.get("merged_from"):
            source += f" (merged from {payload['merged_from']} processes)"
        if args.out:
            pathlib.Path(args.out).write_text(json.dumps(
                {"traceEvents": events, "displayTimeUnit": "ms"},
                indent=1))
            print(f"wrote {len(events)} trace events to {args.out} "
                  f"(load at https://ui.perfetto.dev)")
    else:
        try:
            events = load_chrome_trace(args.file)
        except (OSError, ValueError) as exc:
            print(f"cannot read trace: {exc}", file=sys.stderr)
            return 2
        source = args.file
    spans = [e for e in events
             if e.get("ph") == "X" and "ts" in e and "dur" in e]
    print(f"{source}: {len(events)} events "
          f"({len(spans)} complete spans)")
    if not spans:
        return 0
    start = min(e["ts"] for e in spans)
    end = max(e["ts"] + e["dur"] for e in spans)
    pids = {e.get("pid") for e in spans}
    trace_ids = {e["args"]["trace_id"] for e in spans
                 if isinstance(e.get("args"), dict)
                 and "trace_id" in e["args"]}
    print(f"wall span  : {(end - start) / 1e3:.1f} ms across "
          f"{len(pids)} process(es), {len(trace_ids)} trace id(s)")
    by_name: dict[str, list[float]] = {}
    for e in spans:
        by_name.setdefault(str(e.get("name", "?")), []).append(e["dur"])
    print(f"{'span':24s}{'count':>7s}{'total ms':>10s}"
          f"{'mean ms':>9s}{'max ms':>9s}")
    ranked = sorted(by_name.items(), key=lambda kv: -sum(kv[1]))
    for name, durs in ranked[:args.top]:
        total = sum(durs)
        print(f"{name:24s}{len(durs):7d}{total / 1e3:10.1f}"
              f"{total / len(durs) / 1e3:9.2f}{max(durs) / 1e3:9.2f}")
    if len(ranked) > args.top:
        print(f"... {len(ranked) - args.top} more span names "
              f"(raise --top)")
    return 0


def _print_profile(profile, args) -> None:
    phases = sorted(profile.by_phase.items(), key=lambda kv: -kv[1])
    # self% is over the population actually shown: busy samples, or
    # every sample when idle stacks are included
    busy = max(1, profile.samples if args.include_idle
               else profile.samples - profile.idle_samples)
    print(f"{profile.samples} samples over {profile.wall_s:.1f}s at "
          f"{profile.hz:g} Hz ({profile.idle_samples} idle)")
    if phases:
        print("by phase: " + "  ".join(
            f"{name}={count}" for name, count in phases[:8]))
    rows = profile.top(args.top, include_idle=args.include_idle)
    if rows:
        print(f"{'frame':40s}{'self':>7s}{'self%':>7s}{'total':>7s}")
        for row in rows:
            print(f"{row['frame'][:40]:40s}{row['self']:7d}"
                  f"{100 * row['self'] / busy:6.1f}%{row['total']:7d}")
    if args.collapsed_out:
        text = profile.collapsed(include_idle=args.include_idle)
        pathlib.Path(args.collapsed_out).write_text(text + "\n")
        print(f"wrote {len(text.splitlines())} collapsed stacks to "
              f"{args.collapsed_out} (feed to flamegraph.pl or "
              f"https://www.speedscope.app)")


def _cmd_profile(args: argparse.Namespace) -> int:
    from .obs import Profile, profile_for

    if args.url:
        from .service.client import ServiceClient, ServiceError

        timeout = max(60.0, 2.0 * args.seconds + 30.0)
        try:
            with ServiceClient.from_url(args.url,
                                        timeout=timeout) as client:
                payload = client.profile(
                    seconds=None if args.snapshot else args.seconds,
                    hz=args.hz)
        except (OSError, ServiceError) as exc:
            print(f"cannot profile {args.url}: {exc}", file=sys.stderr)
            return 2
        profile = Profile.from_dict(payload)
        where = args.url
        if payload.get("merged_from"):
            where += f" (merged from {payload['merged_from']} processes)"
        print(f"profile of {where}:")
    else:
        # No server given: sample *this* process while it churns
        # through a small calibration workload, so the flamegraph shows
        # the real generation pipeline.
        import threading

        from .service.spec import DesignRequest

        engine = _build_engine(args)
        stop = threading.Event()
        arrays = ((4, 4), (8, 8), (12, 12))

        def churn() -> None:
            i = 0
            while not stop.is_set():
                engine.submit(DesignRequest(kernel="gemm",
                                            dataflows=("KJ",),
                                            array=arrays[i % len(arrays)]))
                i += 1

        worker = threading.Thread(target=churn, daemon=True,
                                  name="repro-profile-workload")
        worker.start()
        profile = profile_for(args.seconds, args.hz)
        stop.set()
        worker.join(timeout=30)
        print("profile of a local generate workload:")
    _print_profile(profile, args)
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import time

    from .obs import render_dashboard
    from .service.client import ServiceClient, ServiceError

    clear = sys.stdout.isatty() and not args.no_clear
    prev = None
    prev_ts = None
    shown = 0
    with ServiceClient.from_url(args.url) as client:
        while True:
            try:
                health = client.health()
                curr = client.metrics_snapshot()
            except (OSError, ServiceError) as exc:
                print(f"cannot reach {args.url}: {exc}", file=sys.stderr)
                return 1
            now = time.time()
            dt = (now - prev_ts) if prev_ts is not None \
                else float(args.interval)
            frame = render_dashboard(args.url, health, prev, curr,
                                     dt, interval=args.interval)
            if clear:
                sys.stdout.write("\x1b[2J\x1b[H")
            print(frame, flush=True)
            prev, prev_ts = curr, now
            shown += 1
            if args.iterations and shown >= args.iterations:
                return 0
            try:
                time.sleep(args.interval)
            except KeyboardInterrupt:  # pragma: no cover — interactive
                return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from .service.cache import DesignCache

    cache = DesignCache(root=args.cache_dir) if args.cache_dir \
        else DesignCache()
    if args.action == "clear":
        print(f"removed {cache.clear()} entries from {cache.root}")
        return 0
    keys = cache.keys()
    if args.action == "stats":
        def size_of(key: str) -> int:
            try:  # entries may vanish under a concurrent clear/eviction
                return cache.path_for(key).stat().st_size
            except OSError:
                return 0
        total_bytes = sum(size_of(k) for k in keys)
        kinds: dict[str, int] = {}
        for key in keys:
            record = cache.peek(key)
            kind = (record or {}).get("kind", "design")
            if kind.startswith("phase-"):
                kind = "phase"
            elif kind == "eval-v1":
                kind = "eval"
            else:
                kind = "design"
            kinds[kind] = kinds.get(kind, 0) + 1
        breakdown = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
        print(f"cache root : {cache.root}")
        print(f"entries    : {len(keys)}" +
              (f" ({breakdown})" if breakdown else ""))
        print(f"size       : {total_bytes / 1024:.1f} KiB")
        # Per-tier hit/miss counters of *this process's* cache object —
        # a long-lived process (server, notebook) sees its real traffic
        # here; a fresh CLI invocation reports zeros.  `GET /healthz`
        # serves the same breakdown for a running server.
        for tier, counters in cache.stats.tiers().items():
            line = "  ".join(f"{name}={value}"
                             for name, value in counters.items())
            print(f"tier {tier:7s}: {line}")
        return 0
    # list — peek() keeps the listing read-only (no LRU promotion, no
    # mtime refresh that would scramble the eviction order)
    for key in keys:
        record = cache.peek(key)
        if record is None:
            continue
        kind = record.get("kind", "")
        if kind == "eval-v1":
            print(f"{key[:16]}  eval    cycles={record['cycles']:.3g}")
        elif kind.startswith("phase-"):
            # staged-pipeline intermediate (scheduled design / golden
            # simulation vectors)
            phase = kind[len("phase-"):].rsplit("-v", 1)[0]
            print(f"{key[:16]}  phase   {phase}")
        else:
            req = record.get("request", {})
            print(f"{key[:16]}  design  {req.get('kernel', '?')}-"
                  f"{'+'.join(req.get('dataflows', []))} "
                  f"@{'x'.join(map(str, req.get('array', [])))} "
                  f"[{req.get('backend', 'verilog')}]")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from .models import zoo
    from .sim.perf_model import GEMMINI_LIKE, ArchPerf, evaluate_model

    if args.model not in zoo.MODEL_BUILDERS:
        print(f"unknown model {args.model!r}; choose from "
              f"{sorted(zoo.MODEL_BUILDERS)}", file=sys.stderr)
        return 2
    model = zoo.MODEL_BUILDERS[args.model]()
    arch = (GEMMINI_LIKE if args.arch == "gemmini" else
            ArchPerf(name="LEGO-MNICOC", dataflows=("MN", "ICOC", "OCOH")))
    perf = evaluate_model(model, arch)
    print(f"{args.model} on {arch.name}:")
    print(f"  {perf.gops:8.1f} GOP/s   {perf.gops_per_watt:8.0f} GOPS/W   "
          f"utilization {100 * perf.utilization:.1f}%")
    stats = perf.instruction_stats()
    print(f"  {stats['cycles_per_instruction']:.0f} cycles/instruction, "
          f"{stats['instruction_bw_gbs'] * 1000:.1f} MB/s instruction BW")
    return 0


def _cmd_explore_remote(args: argparse.Namespace) -> int:
    from .service.client import ServiceError

    params: dict = {"strategy": args.strategy,
                    "objective": args.objective, "seed": args.seed}
    if args.max_evals is not None:
        params["max_evals"] = args.max_evals
    if args.area_budget is not None:
        params["area_budget_mm2"] = args.area_budget
    try:
        with _service_client(args) as client:
            job = client.explore(models=args.models, **params)
            print(f"submitted job {job} to {args.url}")
            final = client.wait(job, timeout=max(args.timeout, 600))
    except (ServiceError, OSError, TimeoutError) as exc:
        return _remote_failed("explore", args.url, exc)
    if final.get("status") != "done":
        print(f"job {job} ended {final.get('status')}: "
              f"{final.get('error')}", file=sys.stderr)
        return 1
    result = final.get("result") or {}
    print(f"strategy {result.get('strategy')}: evaluated "
          f"{result.get('points_evaluated')}/{result.get('space_size')} "
          f"design points (cost {result.get('evals_used', 0):.2f} "
          "full-model evals)")
    best = result.get("best")
    if not best:
        print("no design point fits the area budget", file=sys.stderr)
        return 1
    arch = best.get("arch") or {}
    print(f"best by {args.objective}: {arch.get('name')} "
          f"({best.get('gops', 0):.1f} GOP/s, "
          f"{best.get('gops_per_watt', 0):.0f} GOPS/W)")
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    from .dse.explorer import DesignSpace, pareto_front
    from .dse.strategies import run_search
    from .models import zoo

    if args.url:
        return _cmd_explore_remote(args)
    engine = _build_engine(args)
    models = [zoo.MODEL_BUILDERS[name]() for name in args.models]
    result = run_search(models, DesignSpace(), strategy=args.strategy,
                        objective=args.objective,
                        area_budget_mm2=args.area_budget,
                        workers=args.workers, cache=engine.cache,
                        max_evals=args.max_evals, seed=args.seed)
    points = result.points
    front = pareto_front(points)
    print(f"strategy {result.strategy}: evaluated "
          f"{result.points_evaluated}/{result.space_size} design points "
          f"(cost {result.evals_used:.2f} full-model evals)"
          + (f", skipped {result.degenerate_skipped} degenerate"
             if result.degenerate_skipped else ""))
    print(f"Pareto frontier ({len(front)} of {len(points)} points):")
    print(f"{'design':28s}{'GOP/s':>9s}{'GOPS/W':>9s}{'EDP':>12s}")
    for p in front:
        print(f"{p.arch.name:28s}{p.gops:9.1f}{p.gops_per_watt:9.0f}"
              f"{p.edp:12.3e}")
    if not points:
        print("no design point fits the area budget", file=sys.stderr)
        return 1
    best = points[0]
    print(f"\nbest by {args.objective}: {best.arch.name}")
    return 0


def _add_remote_flags(parser: argparse.ArgumentParser,
                      what: str) -> None:
    """``--url``/``--timeout``/``--connect-timeout``: run *what* against
    a live design service or fleet instead of in-process."""
    parser.add_argument("--url", metavar="URL",
                        help=f"run {what} on a running design service "
                        "or `repro route` fleet (e.g. "
                        "http://127.0.0.1:8731) instead of in-process")
    parser.add_argument("--timeout", type=float, default=120.0,
                        metavar="S",
                        help="with --url: per-read time budget in "
                        "seconds; expiry surfaces as a 504 naming the "
                        "expired budget")
    parser.add_argument("--connect-timeout", type=float, default=None,
                        metavar="S",
                        help="with --url: TCP dial budget in seconds "
                        "(default: share --timeout), so a down host "
                        "fails fast without shrinking the read budget")


def _add_fault_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--fault", action="append", metavar="SPEC",
                        help="arm a chaos fault at boot: "
                        "SITE:KIND[:PARAM] with KIND one of latency/"
                        "error/drop/crash (e.g. "
                        "server:/generate:latency:0.25, "
                        "router:forward:drop); repeatable, and also "
                        "armable at runtime via POST /debug/faults")


def build_parser() -> argparse.ArgumentParser:
    """The full argparse tree (also introspected by the docs-sync test
    and the ``docs/cli.md`` reference)."""
    from .backends import backend_names

    parser = argparse.ArgumentParser(
        prog="repro", description="LEGO spatial accelerator generator "
        "(HPCA'25 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate an accelerator")
    gen.add_argument("--kernel", default="gemm",
                     choices=["gemm", "conv2d", "mttkrp", "attention"])
    gen.add_argument("--dataflows", nargs="+", default=["KJ"])
    gen.add_argument("--array", nargs=2, type=int, default=[8, 8],
                     metavar=("P0", "P1"))
    gen.add_argument("--broadcast", action="store_true",
                     help="broadcast control (c=0) instead of systolic")
    gen.add_argument("--no-optimize", action="store_true",
                     help="delay matching only (the Fig. 10 baseline)")
    gen.add_argument("--topology", action="store_true",
                     help="print per-tensor interconnect diagrams")
    gen.add_argument("--backend", default="verilog",
                     choices=backend_names(),
                     help="emitter backend family (see `repro backends`)")
    gen.add_argument("--no-testbench", action="store_true",
                     help="skip companion self-checking testbench "
                     "artifacts (hls_c): emit only the kernel")
    gen.add_argument("--output", "-o", help="write the primary emitted "
                     "artifact here (companion artifacts land beside it)")
    gen.add_argument("--trace-out", metavar="FILE",
                     help="write this run's spans as Chrome-trace-event "
                     "JSON (load at https://ui.perfetto.dev)")
    gen.add_argument("--module", default="lego_top")
    _add_cache_flags(gen)
    _add_remote_flags(gen, "the generation")
    gen.set_defaults(func=_cmd_generate)

    bat = sub.add_parser("batch", help="generate many designs at once")
    bat.add_argument("--spec-file",
                     help="JSON list of design-request dicts (overrides "
                     "the kernel/dataflow/array flags)")
    bat.add_argument("--kernel", default="gemm",
                     choices=["gemm", "conv2d", "mttkrp", "attention"])
    bat.add_argument("--dataflows", nargs="+", default=["KJ"])
    bat.add_argument("--arrays", nargs="+", type=_parse_array,
                     default=[(8, 8)], metavar="P0xP1",
                     help="array shapes, e.g. --arrays 4x4 8x8 16x16")
    bat.add_argument("--fuse", action="store_true",
                     help="one fused multi-dataflow design per array "
                     "instead of one design per dataflow")
    bat.add_argument("--broadcast", action="store_true")
    bat.add_argument("--no-optimize", action="store_true")
    bat.add_argument("--backend", default="verilog",
                     choices=backend_names(),
                     help="emitter backend family for flag-built "
                     "requests (see `repro backends`)")
    bat.add_argument("--no-testbench", action="store_true",
                     help="skip companion self-checking testbench "
                     "artifacts for flag-built requests (bulk sweeps "
                     "only pay for the kernel)")
    bat.add_argument("--workers", type=int, default=1,
                     help="worker processes for cold requests")
    bat.add_argument("--output-dir",
                     help="write each design's emitted artifacts plus "
                     "<hash>.json here")
    bat.add_argument("--plan-summary", action="store_true",
                     help="print the batch planner's dry run before "
                     "executing: duplicates, cache hits, and how many "
                     "schedule phases the cold remainder collapses to")
    bat.add_argument("--show-traceback", action="store_true",
                     help="print the full captured traceback of each "
                     "failed request, not just the error line")
    bat.add_argument("--trace-out", metavar="FILE",
                     help="write a merged Chrome-trace-event JSON of "
                     "every span the batch produced (pool workers "
                     "included) — load it at https://ui.perfetto.dev")
    _add_cache_flags(bat)
    _add_remote_flags(bat, "the batch")
    bat.set_defaults(func=_cmd_batch)

    srv = sub.add_parser("serve", help="run the HTTP design service")
    srv.add_argument("--host", default="127.0.0.1",
                     help="bind address (default: loopback only)")
    srv.add_argument("--port", type=int, default=8731,
                     help="TCP port (0 picks an ephemeral port)")
    srv.add_argument("--workers", type=int, default=1,
                     help="worker processes for cold generation batches")
    srv.add_argument("--processes", type=int, default=1,
                     help="SO_REUSEPORT server processes sharing the "
                     "port (scale-out on multi-core hosts; designs are "
                     "shared through the on-disk cache tier)")
    srv.add_argument("--step-evals", type=float, default=1.0,
                     metavar="E", help="checkpoint granularity of explore "
                     "jobs, in full-model evaluations per step")
    from .obs import LOG_LEVELS
    srv.add_argument("--log-level", default="warning",
                     choices=list(LOG_LEVELS),
                     help="stdlib logging level of the repro.* loggers "
                     "(info logs one line per request at debug, slow "
                     "requests always warn)")
    srv.add_argument("--slow-request-ms", type=float, default=1000.0,
                     metavar="MS",
                     help="log a WARNING (with route and trace id) for "
                     "requests slower than this; 0 disables")
    srv.add_argument("--cache-shards", type=int, default=0, metavar="N",
                     help="fan the disk cache across N shard-NN/ "
                     "subdirectories of the cache dir, keyed by spec "
                     "hash prefix (eviction locks per shard; pairs with "
                     "'repro route' sharding)")
    srv.add_argument("--no-persist-jobs", action="store_true",
                     help="don't journal jobs under <cache>/jobs/; "
                     "jobs then die with the process instead of being "
                     "recovered (paused/failed) on reboot")
    srv.add_argument("--profile", action="store_true",
                     help="run a continuous sampling profiler in every "
                     "server process; GET /debug/profile (and `repro "
                     "profile --url`) snapshots it without a capture "
                     "window")
    srv.add_argument("--profile-hz", type=float, default=67.0,
                     metavar="HZ",
                     help="sampling rate of the continuous profiler "
                     "(with --profile; default 67 Hz)")
    srv.add_argument("--history-interval", type=float, default=2.0,
                     metavar="S",
                     help="seconds between metrics-history samples "
                     "(GET /metrics/history window; 0 disables the "
                     "recorder)")
    _add_cache_flags(srv)
    _add_fault_flag(srv)
    srv.set_defaults(func=_cmd_serve)

    rt = sub.add_parser("route",
                        help="run a fleet router over design-service "
                        "backends")
    rt.add_argument("--backend", action="append", required=True,
                    metavar="URL",
                    help="a backend server URL (repeat per shard); "
                    "/generate and /batch shard by spec-hash prefix, "
                    "matching each backend's --cache-shards layout")
    rt.add_argument("--host", default="127.0.0.1",
                    help="bind address (default: loopback only)")
    rt.add_argument("--port", type=int, default=8730,
                    help="TCP port (0 picks an ephemeral port)")
    rt.add_argument("--timeout", type=float, default=300.0, metavar="S",
                    help="per-request backend timeout in seconds")
    rt.add_argument("--log-level", default="warning",
                    choices=list(LOG_LEVELS),
                    help="stdlib logging level of the repro.* loggers")
    rt.add_argument("--slow-request-ms", type=float, default=1000.0,
                    metavar="MS",
                    help="log a WARNING for routed requests slower "
                    "than this; 0 disables")
    rt.add_argument("--profile", action="store_true",
                    help="run a continuous sampling profiler in the "
                    "router process (merged into GET /debug/profile)")
    rt.add_argument("--profile-hz", type=float, default=67.0,
                    metavar="HZ",
                    help="sampling rate of the continuous profiler "
                    "(with --profile; default 67 Hz)")
    rt.add_argument("--history-interval", type=float, default=2.0,
                    metavar="S",
                    help="seconds between router metrics-history "
                    "samples (GET /metrics/history; 0 disables)")
    rt.add_argument("--replicas", type=int, default=1, metavar="N",
                    help="owners per hash-prefix range: each range is "
                    "served by N consecutive backends, so a down "
                    "primary fails over to its replica instead of "
                    "502ing (clamped to the backend count)")
    rt.add_argument("--probe-interval", type=float, default=1.0,
                    metavar="S",
                    help="seconds between background /healthz probes "
                    "per backend; breaker cooldowns cap here, so a "
                    "revived backend is back within one interval "
                    "(0 disables the prober)")
    rt.add_argument("--breaker-threshold", type=int, default=3,
                    metavar="K",
                    help="consecutive transport failures that trip a "
                    "backend's circuit breaker open")
    rt.add_argument("--retry-budget", type=float, default=15.0,
                    metavar="S",
                    help="wall-clock deadline for write-path failover "
                    "retries (safe: /generate and /batch are "
                    "content-addressed, so repeats are idempotent)")
    _add_fault_flag(rt)
    rt.set_defaults(func=_cmd_route)

    bk = sub.add_parser("backends",
                        help="list the registered emitter backend "
                        "families")
    bk.add_argument("--names", action="store_true",
                    help="print bare family names only (one per line, "
                    "for scripting)")
    bk.set_defaults(func=_cmd_backends)

    ca = sub.add_parser("cache", help="inspect or clear the design cache")
    ca.add_argument("action", choices=["stats", "list", "clear"])
    ca.add_argument("--cache-dir", "--dir", dest="cache_dir",
                    help="cache location (default: $REPRO_CACHE_DIR or "
                    "~/.cache/repro)")
    ca.set_defaults(func=_cmd_cache)

    ev = sub.add_parser("evaluate", help="evaluate a model end to end")
    ev.add_argument("model")
    ev.add_argument("--arch", default="lego", choices=["lego", "gemmini"])
    ev.set_defaults(func=_cmd_evaluate)

    ex = sub.add_parser("explore", help="design-space exploration")
    ex.add_argument("--models", nargs="+", default=["ResNet50"])
    ex.add_argument("--objective", default="edp",
                    choices=["edp", "latency", "energy", "throughput"])
    ex.add_argument("--strategy", default="exhaustive",
                    choices=["exhaustive", "anneal", "halving"],
                    help="search strategy: exhaustive sweep, simulated "
                    "annealing over the design axes, or successive "
                    "halving on a cheap proxy")
    ex.add_argument("--max-evals", type=int, default=None, metavar="N",
                    help="evaluation budget for the guided strategies, in "
                    "full-model-evaluation units (default: "
                    "strategy-specific)")
    ex.add_argument("--seed", type=int, default=0,
                    help="RNG seed for the stochastic strategies")
    ex.add_argument("--area-budget", type=float, default=None,
                    metavar="MM2", help="screen out points whose MAC+SRAM "
                    "area exceeds this many mm^2")
    ex.add_argument("--workers", type=int, default=1,
                    help="worker processes for point evaluation")
    _add_cache_flags(ex)
    _add_remote_flags(ex, "the exploration")
    ex.set_defaults(func=_cmd_explore)

    mt = sub.add_parser("metrics",
                        help="print telemetry as Prometheus text")
    mt.add_argument("--url", metavar="URL",
                    help="scrape a running server's GET /metrics (e.g. "
                    "http://127.0.0.1:8731) instead of printing this "
                    "process's registry")
    mt.set_defaults(func=_cmd_metrics)

    tr = sub.add_parser("trace",
                        help="summarize a Chrome/Perfetto trace file, "
                        "or pull one live off a server/fleet")
    tr.add_argument("file", nargs="?",
                    help="Chrome-trace-event JSON, e.g. from "
                    "`repro batch --trace-out` (omit with --url)")
    tr.add_argument("--url", metavar="URL",
                    help="pull the live span buffer from a running "
                    "server's GET /trace instead of reading a file; "
                    "pointed at a `repro route` fleet this merges every "
                    "backend's spans into one cross-process tree")
    tr.add_argument("--out", metavar="FILE",
                    help="with --url: also write the pulled trace as "
                    "Perfetto-loadable JSON")
    tr.add_argument("--drain", action="store_true",
                    help="with --url: clear the server-side span "
                    "buffers as they are read (scrape pattern)")
    tr.add_argument("--trace-id", metavar="ID",
                    help="with --url: only spans of this trace id (the "
                    "id every /generate response carries)")
    tr.add_argument("--top", type=int, default=20, metavar="N",
                    help="show the N span names with the largest total "
                    "duration")
    tr.set_defaults(func=_cmd_trace)

    pf = sub.add_parser("profile",
                        help="capture a CPU flamegraph of a running "
                        "server/fleet, or of a local workload")
    pf.add_argument("--url", metavar="URL",
                    help="profile a running server via GET "
                    "/debug/profile (a `repro route` URL fans the "
                    "capture across every backend and merges); without "
                    "this, sample a local calibration workload")
    pf.add_argument("--seconds", type=float, default=2.0, metavar="S",
                    help="capture window (default 2s; servers clamp to "
                    "30s)")
    pf.add_argument("--hz", type=float, default=67.0,
                    help="sampling rate (default 67 Hz)")
    pf.add_argument("--snapshot", action="store_true",
                    help="with --url: read the server's always-on "
                    "profiler (`repro serve --profile`) instead of "
                    "running a timed capture")
    pf.add_argument("--top", type=int, default=15, metavar="N",
                    help="show the N hottest frames")
    pf.add_argument("--include-idle", action="store_true",
                    help="keep parked-thread stacks (event loops in "
                    "select, executors waiting) in the output")
    pf.add_argument("--collapsed-out", metavar="FILE",
                    help="write collapsed stacks (flamegraph.pl / "
                    "speedscope 'collapsed' input) here")
    _add_cache_flags(pf)
    pf.set_defaults(func=_cmd_profile)

    tp = sub.add_parser("top",
                        help="live terminal dashboard of a running "
                        "server or fleet")
    tp.add_argument("--url", default="http://127.0.0.1:8731",
                    metavar="URL",
                    help="server or router to watch (default "
                    "http://127.0.0.1:8731; a `repro route` URL shows "
                    "fleet-merged metrics plus per-backend health)")
    tp.add_argument("--interval", type=float, default=2.0, metavar="S",
                    help="refresh interval in seconds")
    tp.add_argument("--iterations", type=int, default=0, metavar="N",
                    help="render N frames then exit (0 = run until "
                    "interrupted; useful for scripts and CI)")
    tp.add_argument("--no-clear", action="store_true",
                    help="append frames instead of clearing the "
                    "terminal between refreshes")
    tp.set_defaults(func=_cmd_top)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
