"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``   run the full flow for a named kernel/dataflow and emit
               Verilog plus a design summary;
``evaluate``   end-to-end model performance on a named architecture;
``explore``    small design-space exploration with a Pareto report.
"""

from __future__ import annotations

import argparse
import sys

from . import kernels
from .backend import BackendOptions, generate, run_backend
from .core.frontend import build_adg


def _cmd_generate(args: argparse.Namespace) -> int:
    from .backend.verilog import emit_verilog
    from .report import design_summary, render_topology

    p0, p1 = args.array
    if args.kernel == "gemm":
        wl = kernels.gemm(4 * p0, 4 * p1, 4 * max(p0, p1))
        dfs = [kernels.gemm_dataflow(k, wl, p0, p1,
                                     systolic=not args.broadcast)
               for k in args.dataflows]
    elif args.kernel == "conv2d":
        wl = kernels.conv2d(1, 2 * p0, 2 * p1, 2 * p0, 2 * p1, 3, 3)
        dfs = [kernels.conv2d_dataflow(k, wl, p0, p1)
               for k in args.dataflows]
    elif args.kernel == "mttkrp":
        wl = kernels.mttkrp(4 * p0, 4 * p1, 2 * p0, 2 * p1)
        dfs = [kernels.mttkrp_dataflow(k, wl, p0, p1)
               for k in args.dataflows]
    else:
        print(f"unknown kernel {args.kernel!r}", file=sys.stderr)
        return 2

    options = (BackendOptions.baseline() if args.no_optimize
               else BackendOptions())
    design = run_backend(generate(build_adg(dfs)), options)
    print(design_summary(design))
    if args.topology:
        for tensor in design.adg.tensor_names():
            print(render_topology(design.adg, tensor, dfs[0].name))
    if args.output:
        rtl = emit_verilog(design, module_name=args.module)
        with open(args.output, "w") as fh:
            fh.write(rtl)
        print(f"wrote {len(rtl.splitlines())} lines of Verilog to "
              f"{args.output}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from .models import zoo
    from .sim.perf_model import GEMMINI_LIKE, ArchPerf, evaluate_model

    if args.model not in zoo.MODEL_BUILDERS:
        print(f"unknown model {args.model!r}; choose from "
              f"{sorted(zoo.MODEL_BUILDERS)}", file=sys.stderr)
        return 2
    model = zoo.MODEL_BUILDERS[args.model]()
    arch = (GEMMINI_LIKE if args.arch == "gemmini" else
            ArchPerf(name="LEGO-MNICOC", dataflows=("MN", "ICOC", "OCOH")))
    perf = evaluate_model(model, arch)
    print(f"{args.model} on {arch.name}:")
    print(f"  {perf.gops:8.1f} GOP/s   {perf.gops_per_watt:8.0f} GOPS/W   "
          f"utilization {100 * perf.utilization:.1f}%")
    stats = perf.instruction_stats()
    print(f"  {stats['cycles_per_instruction']:.0f} cycles/instruction, "
          f"{stats['instruction_bw_gbs'] * 1000:.1f} MB/s instruction BW")
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    from .dse.explorer import DesignSpace, explore, pareto_front
    from .models import zoo

    models = [zoo.MODEL_BUILDERS[name]() for name in args.models]
    points = explore(models, DesignSpace(), objective=args.objective)
    front = pareto_front(points)
    print(f"explored {len(points)} design points; Pareto frontier:")
    print(f"{'design':28s}{'GOP/s':>9s}{'GOPS/W':>9s}{'EDP':>12s}")
    for p in front:
        print(f"{p.arch.name:28s}{p.gops:9.1f}{p.gops_per_watt:9.0f}"
              f"{p.edp:12.3e}")
    best = points[0]
    print(f"\nbest by {args.objective}: {best.arch.name}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="LEGO spatial accelerator generator "
        "(HPCA'25 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate an accelerator")
    gen.add_argument("--kernel", default="gemm",
                     choices=["gemm", "conv2d", "mttkrp"])
    gen.add_argument("--dataflows", nargs="+", default=["KJ"])
    gen.add_argument("--array", nargs=2, type=int, default=[8, 8],
                     metavar=("P0", "P1"))
    gen.add_argument("--broadcast", action="store_true",
                     help="broadcast control (c=0) instead of systolic")
    gen.add_argument("--no-optimize", action="store_true",
                     help="delay matching only (the Fig. 10 baseline)")
    gen.add_argument("--topology", action="store_true",
                     help="print per-tensor interconnect diagrams")
    gen.add_argument("--output", "-o", help="write Verilog here")
    gen.add_argument("--module", default="lego_top")
    gen.set_defaults(func=_cmd_generate)

    ev = sub.add_parser("evaluate", help="evaluate a model end to end")
    ev.add_argument("model")
    ev.add_argument("--arch", default="lego", choices=["lego", "gemmini"])
    ev.set_defaults(func=_cmd_evaluate)

    ex = sub.add_parser("explore", help="design-space exploration")
    ex.add_argument("--models", nargs="+", default=["ResNet50"])
    ex.add_argument("--objective", default="edp",
                    choices=["edp", "latency", "energy", "throughput"])
    ex.set_defaults(func=_cmd_explore)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
