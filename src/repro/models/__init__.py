"""Model zoo: layer descriptors and the networks of the evaluation."""

from .layers import AttentionLayer, ConvLayer, LinearLayer, Model, PPULayer
from .zoo import MODEL_BUILDERS

__all__ = ["AttentionLayer", "ConvLayer", "LinearLayer", "Model", "PPULayer",
           "MODEL_BUILDERS"]
