"""The model zoo of the paper's evaluation (§VI-A).

Classical CNNs (AlexNet, MobileNetV2, ResNet50, EfficientNetV2),
transformers (BERT sentence length 16, GPT-2 decode with a 1000-token
prompt, CoAtNet), and generative models (DDPM, Stable Diffusion's UNet,
LLaMA-7B decode).  Image inputs are 224x224x3 except EfficientNetV2
(384x384x3), matching the paper.  Shapes follow the original papers;
repeated blocks are enumerated explicitly so per-layer mapping search
sees every distinct shape.
"""

from __future__ import annotations

from .layers import AttentionLayer, ConvLayer, LinearLayer, Model, PPULayer

__all__ = ["alexnet", "mobilenet_v2", "resnet50", "efficientnet_v2",
           "bert_base", "gpt2_decode", "coatnet", "ddpm", "stable_diffusion",
           "llama7b_decode", "lenet", "MODEL_BUILDERS"]


def _act(name: str, fn: str, n: int) -> PPULayer:
    return PPULayer(name, fn, n)


def lenet() -> Model:
    layers = [
        ConvLayer("conv1", 1, 1, 6, 28, 28, 5, 5),
        _act("act1", "sigmoid", 6 * 28 * 28),
        ConvLayer("conv2", 1, 6, 16, 14, 14, 5, 5),
        _act("act2", "sigmoid", 16 * 14 * 14),
        LinearLayer("fc1", 1, 120, 400),
        LinearLayer("fc2", 1, 84, 120),
        LinearLayer("fc3", 1, 10, 84),
    ]
    return Model("LeNet", tuple(layers))


def alexnet() -> Model:
    layers = [
        ConvLayer("conv1", 1, 3, 64, 224, 224, 11, 11, stride=4),
        _act("relu1", "relu", 64 * 56 * 56),
        ConvLayer("conv2", 1, 64, 192, 28, 28, 5, 5),
        _act("relu2", "relu", 192 * 28 * 28),
        ConvLayer("conv3", 1, 192, 384, 14, 14, 3, 3),
        ConvLayer("conv4", 1, 384, 256, 14, 14, 3, 3),
        ConvLayer("conv5", 1, 256, 256, 14, 14, 3, 3),
        _act("relu5", "relu", 256 * 14 * 14),
        LinearLayer("fc6", 1, 4096, 256 * 6 * 6),
        LinearLayer("fc7", 1, 4096, 4096),
        LinearLayer("fc8", 1, 1000, 4096),
    ]
    return Model("AlexNet", tuple(layers))


def mobilenet_v2() -> Model:
    """Inverted residual blocks: pointwise-expand, depthwise, pointwise."""
    cfg = [  # (expansion t, channels c, repeats n, stride s)
        (1, 16, 1, 1), (6, 24, 2, 2), (6, 32, 3, 2), (6, 64, 4, 2),
        (6, 96, 3, 1), (6, 160, 3, 2), (6, 320, 1, 1),
    ]
    layers: list = [ConvLayer("stem", 1, 3, 32, 224, 224, 3, 3, stride=2)]
    c_in, res = 32, 112
    idx = 0
    for t, c, n, s in cfg:
        for rep in range(n):
            stride = s if rep == 0 else 1
            hidden = c_in * t
            if t != 1:
                layers.append(ConvLayer(f"b{idx}_expand", 1, c_in, hidden,
                                        res, res, 1, 1))
            layers.append(ConvLayer(f"b{idx}_dw", 1, hidden, hidden,
                                    res, res, 3, 3, stride=stride,
                                    groups=hidden))
            res = max(1, res // stride)
            layers.append(ConvLayer(f"b{idx}_project", 1, hidden, c,
                                    res, res, 1, 1))
            layers.append(_act(f"b{idx}_relu6", "relu", c * res * res))
            c_in = c
            idx += 1
    layers.append(ConvLayer("head", 1, 320, 1280, 7, 7, 1, 1))
    layers.append(LinearLayer("classifier", 1, 1000, 1280))
    return Model("MobileNetV2", tuple(layers))


def resnet50() -> Model:
    layers: list = [ConvLayer("stem", 1, 3, 64, 224, 224, 7, 7, stride=2)]
    stage_cfg = [(64, 256, 3, 56), (128, 512, 4, 28),
                 (256, 1024, 6, 14), (512, 2048, 3, 7)]
    c_in = 64
    for s_idx, (mid, out, blocks, res) in enumerate(stage_cfg):
        for b in range(blocks):
            pre = f"s{s_idx}b{b}"
            layers.append(ConvLayer(f"{pre}_c1", 1, c_in, mid, res, res, 1, 1))
            layers.append(ConvLayer(f"{pre}_c2", 1, mid, mid, res, res, 3, 3))
            layers.append(ConvLayer(f"{pre}_c3", 1, mid, out, res, res, 1, 1))
            layers.append(_act(f"{pre}_bn", "batchnorm", out * res * res))
            c_in = out
    layers.append(LinearLayer("fc", 1, 1000, 2048))
    return Model("ResNet50", tuple(layers))


def efficientnet_v2() -> Model:
    """EfficientNetV2-S-like at 384x384 (fused-MBConv early, MBConv late)."""
    layers: list = [ConvLayer("stem", 1, 3, 24, 384, 384, 3, 3, stride=2)]
    cfg = [  # (fused?, expansion, channels, repeats, stride)
        (True, 1, 24, 2, 1), (True, 4, 48, 4, 2), (True, 4, 64, 4, 2),
        (False, 4, 128, 6, 2), (False, 6, 160, 9, 1), (False, 6, 256, 15, 2),
    ]
    c_in, res = 24, 192
    idx = 0
    for fused, t, c, n, s in cfg:
        for rep in range(n):
            stride = s if rep == 0 else 1
            hidden = c_in * t
            pre = f"b{idx}"
            if fused:
                layers.append(ConvLayer(f"{pre}_fused", 1, c_in, hidden,
                                        res, res, 3, 3, stride=stride))
                res = max(1, res // stride)
            else:
                if t != 1:
                    layers.append(ConvLayer(f"{pre}_expand", 1, c_in, hidden,
                                            res, res, 1, 1))
                layers.append(ConvLayer(f"{pre}_dw", 1, hidden, hidden,
                                        res, res, 3, 3, stride=stride,
                                        groups=hidden))
                res = max(1, res // stride)
            if t != 1 or fused:
                layers.append(ConvLayer(f"{pre}_project", 1, hidden, c,
                                        res, res, 1, 1))
            layers.append(_act(f"{pre}_silu", "sigmoid", c * res * res))
            c_in = c
            idx += 1
    layers.append(ConvLayer("head", 1, 256, 1280, 12, 12, 1, 1))
    layers.append(LinearLayer("classifier", 1, 1000, 1280))
    return Model("EfficientNetV2", tuple(layers))


def _transformer_block(pre: str, seq: int, kv: int, d_model: int, heads: int,
                       ff_mult: int = 4) -> list:
    d_head = d_model // heads
    return [
        LinearLayer(f"{pre}_qkv", seq, 3 * d_model, d_model),
        AttentionLayer(f"{pre}_attn", heads, seq, kv, d_head),
        PPULayer(f"{pre}_softmax", "softmax", heads * seq * kv),
        LinearLayer(f"{pre}_proj", seq, d_model, d_model),
        PPULayer(f"{pre}_ln1", "layernorm", seq * d_model),
        LinearLayer(f"{pre}_ff1", seq, ff_mult * d_model, d_model),
        PPULayer(f"{pre}_gelu", "gelu", seq * ff_mult * d_model),
        LinearLayer(f"{pre}_ff2", seq, d_model, ff_mult * d_model),
        PPULayer(f"{pre}_ln2", "layernorm", seq * d_model),
    ]


def bert_base(seq: int = 16) -> Model:
    layers: list = []
    for i in range(12):
        layers += _transformer_block(f"l{i}", seq, seq, 768, 12)
    return Model("BERT", tuple(layers))


def gpt2_decode(prompt: int = 1000) -> Model:
    """One-token decode after a 1000-token prompt: GEMV-shaped layers with
    a long KV cache — memory-bandwidth bound (Fig. 11)."""
    layers: list = []
    for i in range(12):
        layers += _transformer_block(f"l{i}", 1, prompt + 1, 768, 12)
    layers.append(LinearLayer("lm_head", 1, 50257, 768))
    return Model("GPT2", tuple(layers))


def coatnet() -> Model:
    """CoAtNet-0-like: conv stages then attention stages."""
    layers: list = [ConvLayer("stem", 1, 3, 64, 224, 224, 3, 3, stride=2)]
    c_in, res = 64, 112
    for s_idx, (c, n) in enumerate([(96, 2), (192, 3)]):
        for b in range(n):
            stride = 2 if b == 0 else 1
            hidden = c_in * 4
            pre = f"c{s_idx}b{b}"
            layers.append(ConvLayer(f"{pre}_expand", 1, c_in, hidden,
                                    res, res, 1, 1))
            layers.append(ConvLayer(f"{pre}_dw", 1, hidden, hidden, res, res,
                                    3, 3, stride=stride, groups=hidden))
            res = max(1, res // stride)
            layers.append(ConvLayer(f"{pre}_project", 1, hidden, c,
                                    res, res, 1, 1))
            c_in = c
    for s_idx, (d_model, n) in enumerate([(384, 5), (768, 2)]):
        seq = res * res
        for b in range(n):
            layers += _transformer_block(f"t{s_idx}b{b}", seq, seq,
                                         d_model, d_model // 32)
        res = max(1, res // 2)
    layers.append(LinearLayer("fc", 1, 1000, 768))
    return Model("CoAtNet", tuple(layers))


def ddpm(res: int = 32) -> Model:
    """DDPM UNet (CIFAR-scale): resnet blocks over 128..256 channels."""
    layers: list = [ConvLayer("stem", 1, 3, 128, res, res, 3, 3)]
    chans = [128, 256, 256, 256]
    r = res
    for i, c in enumerate(chans):
        c_prev = 128 if i == 0 else chans[i - 1]
        for b in range(2):
            pre = f"d{i}b{b}"
            layers.append(ConvLayer(f"{pre}_c1", 1, c_prev if b == 0 else c,
                                    c, r, r, 3, 3))
            layers.append(ConvLayer(f"{pre}_c2", 1, c, c, r, r, 3, 3))
            layers.append(_act(f"{pre}_gn", "layernorm", c * r * r))
        if i < len(chans) - 1:
            r //= 2
    for i, c in enumerate(reversed(chans)):
        for b in range(2):
            pre = f"u{i}b{b}"
            layers.append(ConvLayer(f"{pre}_c1", 1, c, c, r, r, 3, 3))
            layers.append(ConvLayer(f"{pre}_c2", 1, c, c, r, r, 3, 3))
            layers.append(_act(f"{pre}_gn", "layernorm", c * r * r))
        if i < len(chans) - 1:
            r *= 2
    layers.append(ConvLayer("head", 1, 128, 3, res, res, 3, 3))
    return Model("DDPM", tuple(layers))


def stable_diffusion() -> Model:
    """SD v1 UNet at 64x64 latents: conv ResBlocks + cross-attention."""
    layers: list = [ConvLayer("stem", 1, 4, 320, 64, 64, 3, 3)]
    stages = [(320, 64, 2), (640, 32, 2), (1280, 16, 2), (1280, 8, 2)]
    c_prev = 320
    for i, (c, r, n) in enumerate(stages):
        for b in range(n):
            pre = f"d{i}b{b}"
            layers.append(ConvLayer(f"{pre}_c1", 1, c_prev if b == 0 else c,
                                    c, r, r, 3, 3))
            layers.append(ConvLayer(f"{pre}_c2", 1, c, c, r, r, 3, 3))
            if r >= 16:
                seq = r * r
                layers.append(AttentionLayer(f"{pre}_self", c // 64, seq, seq, 64))
                layers.append(PPULayer(f"{pre}_sm", "softmax",
                                       (c // 64) * seq * seq))
                layers.append(AttentionLayer(f"{pre}_cross", c // 64, seq, 77, 64))
                layers.append(LinearLayer(f"{pre}_ff", seq, 4 * c, c))
            layers.append(_act(f"{pre}_gn", "layernorm", c * r * r))
        c_prev = c
    for i, (c, r, n) in enumerate(reversed(stages)):
        for b in range(n):
            pre = f"u{i}b{b}"
            layers.append(ConvLayer(f"{pre}_c1", 1, c, c, r, r, 3, 3))
            layers.append(ConvLayer(f"{pre}_c2", 1, c, c, r, r, 3, 3))
    layers.append(ConvLayer("head", 1, 320, 4, 64, 64, 3, 3))
    return Model("StableDiffusion", tuple(layers))


def llama7b_decode(batch: int = 1, prompt: int = 1000) -> Model:
    """LLaMA-7B one-token decode: 32 layers, d_model 4096, GQA-free."""
    d_model, heads, ff = 4096, 32, 11008
    layers: list = []
    for i in range(32):
        pre = f"l{i}"
        layers += [
            LinearLayer(f"{pre}_qkv", batch, 3 * d_model, d_model),
            AttentionLayer(f"{pre}_attn", heads, batch, prompt + 1,
                           d_model // heads),
            PPULayer(f"{pre}_softmax", "softmax", heads * batch * (prompt + 1)),
            LinearLayer(f"{pre}_proj", batch, d_model, d_model),
            PPULayer(f"{pre}_rms1", "layernorm", batch * d_model),
            LinearLayer(f"{pre}_gate", batch, ff, d_model),
            LinearLayer(f"{pre}_up", batch, ff, d_model),
            PPULayer(f"{pre}_silu", "sigmoid", batch * ff),
            LinearLayer(f"{pre}_down", batch, d_model, ff),
            PPULayer(f"{pre}_rms2", "layernorm", batch * d_model),
        ]
    layers.append(LinearLayer("lm_head", batch, 32000, d_model))
    return Model(f"LLaMA-7B(bs={batch})", tuple(layers))


MODEL_BUILDERS = {
    "AlexNet": alexnet,
    "MobileNetV2": mobilenet_v2,
    "ResNet50": resnet50,
    "EfficientNetV2": efficientnet_v2,
    "BERT": bert_base,
    "GPT2": gpt2_decode,
    "CoAtNet": coatnet,
    "DDPM": ddpm,
    "StableDiffusion": stable_diffusion,
    "LLaMA-7B": llama7b_decode,
    "LeNet": lenet,
}
