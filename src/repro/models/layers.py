"""Layer descriptors for end-to-end model evaluation (paper §VI-A).

Performance and energy depend only on layer *shapes*, dataflows and
bandwidth — not tensor values — so the model zoo is expressed as shape
descriptors.  Tensor layers (conv / depthwise conv / linear / attention
contractions) run on the FU array; non-tensor layers (softmax, norms,
activations) run on the post-processing units (§II).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["ConvLayer", "LinearLayer", "AttentionLayer", "PPULayer", "Model"]


@dataclass(frozen=True)
class ConvLayer:
    """2-D convolution; ``groups == ic == oc`` denotes depthwise."""

    name: str
    n: int
    ic: int
    oc: int
    ih: int
    iw: int
    kh: int
    kw: int
    stride: int = 1
    groups: int = 1

    @property
    def oh(self) -> int:
        return max(1, self.ih // self.stride)

    @property
    def ow(self) -> int:
        return max(1, self.iw // self.stride)

    @property
    def is_depthwise(self) -> bool:
        return self.groups > 1 and self.groups == self.ic

    def macs(self) -> int:
        return (self.n * self.oc * self.oh * self.ow
                * (self.ic // self.groups) * self.kh * self.kw)

    def ops(self) -> int:
        return 2 * self.macs()

    def dims(self) -> dict[str, int]:
        return {"n": self.n, "oc": self.oc, "ic": self.ic // self.groups,
                "oh": self.oh, "ow": self.ow, "kh": self.kh, "kw": self.kw}

    def tensor_bytes(self) -> dict[str, int]:
        return {
            "X": self.n * self.ic * self.ih * self.iw,
            "W": self.oc * (self.ic // self.groups) * self.kh * self.kw,
            "Y": self.n * self.oc * self.oh * self.ow,
        }


@dataclass(frozen=True)
class LinearLayer:
    """GEMM ``Y[m, n] += X[m, k] W[k, n]`` (fully-connected / projection)."""

    name: str
    m: int
    n: int
    k: int

    def macs(self) -> int:
        return self.m * self.n * self.k

    def ops(self) -> int:
        return 2 * self.macs()

    def dims(self) -> dict[str, int]:
        return {"i": self.m, "j": self.n, "k": self.k}

    def tensor_bytes(self) -> dict[str, int]:
        return {"X": self.m * self.k, "W": self.k * self.n, "Y": self.m * self.n}


@dataclass(frozen=True)
class AttentionLayer:
    """Multi-head attention's two tensor contractions (QK^T and PV);
    softmax runs on the PPUs.  ``kv_len`` covers decode-time KV caches."""

    name: str
    heads: int
    q_len: int
    kv_len: int
    d_head: int

    def macs(self) -> int:
        return 2 * self.heads * self.q_len * self.kv_len * self.d_head

    def ops(self) -> int:
        return 2 * self.macs()

    def dims(self) -> dict[str, int]:
        return {"h": self.heads, "q": self.q_len, "k": self.kv_len,
                "d": self.d_head}

    def tensor_bytes(self) -> dict[str, int]:
        hq = self.heads * self.q_len
        return {
            "Q": hq * self.d_head,
            "KV": 2 * self.heads * self.kv_len * self.d_head,
            "S": hq * self.kv_len,
            "Y": hq * self.d_head,
        }

    def softmax_elements(self) -> int:
        return self.heads * self.q_len * self.kv_len


@dataclass(frozen=True)
class PPULayer:
    """A non-tensor function: activation / softmax / normalization."""

    name: str
    fn: str           # relu | gelu | softmax | layernorm | batchnorm | sigmoid
    n_elements: int
    #: reductions need two passes over the data (stats then apply)
    n_passes: int = field(default=1)

    def __post_init__(self) -> None:
        if self.fn in ("softmax", "layernorm", "batchnorm") and self.n_passes == 1:
            object.__setattr__(self, "n_passes", 2)

    def ops(self) -> int:
        return self.n_elements * self.n_passes

    def macs(self) -> int:
        return 0


@dataclass(frozen=True)
class Model:
    """An end-to-end network: an ordered list of layers plus metadata."""

    name: str
    layers: tuple = ()

    def total_ops(self) -> int:
        return sum(l.ops() for l in self.layers)

    def total_macs(self) -> int:
        return sum(l.macs() for l in self.layers)

    def tensor_layers(self):
        return [l for l in self.layers if not isinstance(l, PPULayer)]

    def ppu_layers(self):
        return [l for l in self.layers if isinstance(l, PPULayer)]
